"""Streaming motif/anomaly monitoring with the incremental matrix profile.

The paper's industrial motivation (AspenTech's precursor search) is a
monitoring setting: data arrives continuously and the analyst wants the
current motif and the current most-anomalous window *at all times*,
without recomputing from scratch.  This example streams an ECG-like feed
point by point into a :class:`StreamingMatrixProfile`, then injects an
anomalous run and shows the discord jumping to it.

Run:  python examples/streaming_monitoring.py
"""

import numpy as np

from repro import StreamingMatrixProfile, stomp
from repro.datasets import generate_ecg
from repro.viz import profile_view

BEAT = 60


def main() -> None:
    feed = generate_ecg(3000, seed=3, beat_length=BEAT)
    warmup, live = feed[:2000], feed[2000:]

    monitor = StreamingMatrixProfile(warmup, length=BEAT)
    print(f"warmed up on {len(warmup)} points; streaming {len(live)} more...")

    for value in live:
        monitor.append(float(value))
    mp = monitor.matrix_profile()

    # The incremental state must equal a from-scratch computation.
    batch = stomp(monitor.series(), BEAT)
    finite = np.isfinite(batch.profile)
    assert np.allclose(mp.profile[finite], batch.profile[finite], atol=1e-6)
    print("incremental profile == batch profile: verified")
    print(profile_view(mp.profile, label="matrix profile"))

    motif = mp.motif_pair()
    print(f"\ncurrent motif: pair=({motif.a}, {motif.b}) "
          f"distance={motif.distance:.3f}")

    # Now stream an anomalous run and watch the discord move onto it.
    rng = np.random.default_rng(9)
    anomaly_start = len(monitor)
    for i in range(BEAT):
        monitor.append(float(3.0 * rng.standard_normal() + (-1) ** i))
    for value in generate_ecg(200, seed=4, beat_length=BEAT):
        monitor.append(float(value))

    discords = monitor.matrix_profile().discords(k=1)
    print(f"\nanomaly injected at {anomaly_start}; top discord at {discords[0]}")
    assert abs(discords[0] - anomaly_start) <= 2 * BEAT, (
        "the streaming discord should land on the injected anomaly"
    )
    print("OK: the monitor flagged the anomalous run as it streamed in.")


if __name__ == "__main__":
    main()
