"""Quickstart: discover variable-length motifs in a synthetic series.

Plants two copies of a wave pattern into noise, extracts features with
the one-call façade (``repro.extract_features``) over a length range
bracketing the pattern, and shows that (a) the per-length motif pairs
locate the planted copies and (b) the length-normalized ranking surfaces
the planted length near the top.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import extract_features
from repro.datasets import plant_motifs

PATTERN_LENGTH = 96
SERIES_LENGTH = 4000


def main() -> None:
    rng = np.random.default_rng(42)
    # Lightly smoothed noise: realistic sensor texture (white noise is
    # the adversarial worst case for every pruning-based algorithm).
    raw = rng.standard_normal(SERIES_LENGTH + 4)
    background = np.convolve(raw, np.ones(5) / 5.0, mode="valid")
    pattern = np.sin(np.linspace(0, 6 * np.pi, PATTERN_LENGTH)) * np.hanning(
        PATTERN_LENGTH
    )
    planted = plant_motifs(
        background, pattern, count=2, scale=4.0, amplitude_jitter=0.05, rng=rng
    )
    print(f"planted two copies of a {PATTERN_LENGTH}-point pattern "
          f"at {planted.positions}")

    # One call: VALMOD over the length range, motifs ranked across
    # lengths.  Pass store="some/dir" (or set REPRO_FEATURES_STORE) to
    # make repeat runs skip the kernels entirely.
    features = extract_features(
        planted.series,
        l_min=PATTERN_LENGTH - 16,
        l_max=PATTERN_LENGTH + 16,
        p=50,
        top_k=3,
        include=(),
    )
    print(f"extracted {len(features.motif_pairs)} per-length motif pairs "
          f"(engine={features.engine})")

    planted_gap = planted.positions[1] - planted.positions[0]

    def is_planted(pair) -> bool:
        # The pair is the planted motif when its two windows overlap the
        # two copies *and* share the copies' exact relative alignment
        # (discovery may phase-shift both windows identically).
        overlap = planted.hit(pair.a, tolerance=PATTERN_LENGTH) and planted.hit(
            pair.b, tolerance=PATTERN_LENGTH
        )
        aligned = abs((pair.b - pair.a) - planted_gap) <= 4
        return overlap and aligned

    print("\ntop motifs across lengths (normalized-distance ranked):")
    for pair in features.top_motifs:
        print(
            f"  length={pair.length:3d}  pair=({pair.a}, {pair.b})  "
            f"norm_dist={pair.normalized_distance:.4f}  "
            f"is planted motif: {is_planted(pair)}"
        )

    best = features.best_motif
    assert is_planted(best), (
        "the best variable-length motif should be the planted pattern"
    )
    print("\nOK: the best variable-length motif is the planted pattern.")


if __name__ == "__main__":
    main()
