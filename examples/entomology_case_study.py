"""Entomology case study (paper Section 9.1 / Figure 1), reproduced.

The paper records an insect's Electrical Penetration Graph and shows
that the top motif *changes meaning* with the search length: a complex
probing pattern at ~10 s versus a simple sucking rhythm at ~12 s.  A
fixed-length search at either length would have missed the other
behaviour entirely.

We reproduce the situation with the EPG-like generator, which plants a
probing behaviour (length 200) and an ingestion behaviour (length 240),
then run one VALMOD search across the whole range and check that the
motifs found at the two scales land on the two different behaviours.

Run:  python examples/entomology_case_study.py
"""

from repro import Valmod
from repro.datasets import generate_epg


def behaviour_of(offset: int, truth, tolerance: int = 40) -> str:
    """Which planted behaviour (if any) an offset falls into."""
    for pos in truth.probing_positions:
        if abs(offset - pos) <= tolerance:
            return "probing"
    for pos in truth.ingestion_positions:
        if abs(offset - pos) <= tolerance:
            return "ingestion"
    return "background"


def main() -> None:
    # Scaled-down version of the case study's 205,000 points; the
    # behaviours keep the 10s-vs-12s duration ratio (100 vs 125 samples).
    series, truth = generate_epg(
        n=6000, seed=7, probing_length=100, ingestion_length=125
    )
    print(
        f"EPG-like recording: {series.size} points; planted "
        f"probing@{truth.probing_positions} (len {truth.probing_length}), "
        f"ingestion@{truth.ingestion_positions} (len {truth.ingestion_length})"
    )

    run = Valmod(
        series,
        l_min=truth.probing_length - 8,
        l_max=truth.ingestion_length + 8,
        p=50,
    ).run()
    print(f"VALMOD over [{run.l_min}, {run.l_max}]: {run.stats.summary()}")

    short_pair = run.motif_pairs[truth.probing_length]
    long_pair = run.motif_pairs[truth.ingestion_length]
    short_kind = (
        behaviour_of(short_pair.a, truth),
        behaviour_of(short_pair.b, truth),
    )
    long_kind = (
        behaviour_of(long_pair.a, truth),
        behaviour_of(long_pair.b, truth),
    )
    print(
        f"\nmotif at length {truth.probing_length}: "
        f"({short_pair.a}, {short_pair.b}) -> {short_kind}"
    )
    print(
        f"motif at length {truth.ingestion_length}: "
        f"({long_pair.a}, {long_pair.b}) -> {long_kind}"
    )

    assert set(short_kind) == {"probing"}, "short motif should be the probing behaviour"
    assert set(long_kind) == {"ingestion"}, "long motif should be the ingestion behaviour"
    print(
        "\nOK: the two lengths surface two semantically different behaviours —\n"
        "a fixed-length search would have reported only one of them (Figure 1)."
    )


if __name__ == "__main__":
    main()
