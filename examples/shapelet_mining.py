"""Shapelet mining on labeled series — the paper's Section-8 outlook.

The paper names shapelet discovery as a key application that an
all-lengths matrix profile unlocks.  This example builds a two-class
collection (smooth "bump" devices vs sharp "sawtooth" devices, planted
at random positions in noise), uses VALMOD motifs as shapelet candidates
at *whatever length they occur*, and classifies held-out series.

Run:  python examples/shapelet_mining.py
"""

import numpy as np

from repro.shapelets import ShapeletClassifier
from repro.viz import sparkline


def make_collection(n_per_class, n_points, seed):
    rng = np.random.default_rng(seed)
    bump = np.hanning(40) * 3.0
    x = np.arange(40)
    sawtooth = 3.0 * ((x % 10) / 5.0 - 1.0)
    series, labels = [], []
    for _ in range(n_per_class):
        for pattern, label in ((bump, "bump-device"), (sawtooth, "saw-device")):
            t = rng.standard_normal(n_points) * 0.5
            pos = int(rng.integers(0, n_points - 40))
            t[pos : pos + 40] += pattern
            series.append(t)
            labels.append(label)
    return series, labels


def main() -> None:
    train_series, train_labels = make_collection(5, 300, seed=1)
    test_series, test_labels = make_collection(4, 300, seed=2)
    print(
        f"training on {len(train_series)} labeled series, "
        f"testing on {len(test_series)}"
    )

    clf = ShapeletClassifier(l_min=36, l_max=44, n_shapelets=2, strategy="motif")
    clf.fit(train_series, train_labels)

    print("\ndiscovered shapelets (candidates came from VALMOD motifs):")
    for shapelet in clf.shapelets_:
        print(
            f"  length={shapelet.length} gain={shapelet.gain:.3f} "
            f"threshold={shapelet.threshold:.3f}"
        )
        print(f"  shape: {sparkline(shapelet.values, width=shapelet.length)}")

    accuracy = clf.score(test_series, test_labels)
    print(f"\nheld-out accuracy: {accuracy:.0%}")
    assert accuracy >= 0.75, "shapelets should separate the two device classes"
    print("OK: motif-driven shapelets classify the held-out series.")


if __name__ == "__main__":
    main()
