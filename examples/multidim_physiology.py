"""Multidimensional motifs on driver-physiology-like channels.

The stress-recognition study behind the paper's ECG and EMG datasets
recorded several physiological channels at once.  A stress episode
expresses in a *subset* of channels — and you don't know which subset,
or its size, in advance.  mSTAMP answers all k at once: this example
builds three channels (ECG-like, EMG-like, and an uncorrelated
respiration-like wave), plants a joint episode in exactly two of them,
and shows that (a) the 2-dimensional motif finds the episode and names
the two right channels, while (b) forcing all 3 dimensions dilutes it.

Run:  python examples/multidim_physiology.py
"""

import numpy as np

from repro.datasets import generate_ecg, generate_emg
from repro.multidim import multidim_motifs
from repro.viz import motif_view

CHANNELS = ("ECG", "EMG", "RESP")
EPISODE = 80


def build_channels(n=3000, seed=21):
    rng = np.random.default_rng(seed)
    ecg = generate_ecg(n, seed=seed, beat_length=40)
    emg = generate_emg(n, seed=seed + 1)
    # Respiration with wandering rate: realistic, and crucially NOT a
    # pure sinusoid (a perfectly periodic channel would dominate every
    # k with trivial self-matches).
    rate = 1.0 + 0.35 * np.cumsum(rng.standard_normal(n)) / np.sqrt(n)
    resp = np.sin(2 * np.pi * np.cumsum(rate) / 120.0)
    resp = resp + 0.15 * rng.standard_normal(n)
    data = np.vstack([ecg / ecg.std(), emg / emg.std(), resp / resp.std()])
    # The "stress episode": a shared arousal pattern in ECG and EMG only.
    phase = np.linspace(0, 1, EPISODE)
    episode = (
        np.sin(2 * np.pi * (3 + 5 * phase) * phase) * np.hanning(EPISODE) * 8.0
    )
    positions = (700, 2100)
    for pos in positions:
        data[0, pos : pos + EPISODE] += episode
        data[1, pos : pos + EPISODE] += episode * 0.95
    return data, positions


def main() -> None:
    data, positions = build_channels()
    print(f"3 channels x {data.shape[1]} points; joint episode planted in "
          f"ECG+EMG at {positions}")

    motifs = multidim_motifs(data, EPISODE)
    for motif in motifs:
        names = ", ".join(CHANNELS[d] for d in motif.dimensions)
        print(
            f"k={motif.k}: pair=({motif.a}, {motif.b}) "
            f"mean distance={motif.distance:.3f}  channels=[{names}]"
        )

    two_dim = motifs[1]
    assert {CHANNELS[d] for d in two_dim.dimensions} == {"ECG", "EMG"}, (
        "the 2-dim motif should name the two episode channels"
    )
    assert min(abs(two_dim.a - p) for p in positions) <= 12
    assert min(abs(two_dim.b - p) for p in positions) <= 12
    assert motifs[2].distance > two_dim.distance, (
        "forcing the uninvolved channel must dilute the motif"
    )

    print("\nepisode occurrences on the ECG channel:")
    print(motif_view(data[0], [two_dim.a, two_dim.b], EPISODE, width=100))
    print(
        "\nOK: the 2-dimensional motif recovered the episode and its "
        "channels; k=3 dilutes it — the all-k answer mSTAMP gives."
    )


if __name__ == "__main__":
    main()
