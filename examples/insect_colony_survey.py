"""Cross-recording survey: consensus motifs, MPdist clustering, snippets.

The entomology case study records ONE insect; a real survey records a
colony.  Collection-level questions need collection-level tools:

* which feeding behaviour does *every* insect exhibit?  → the consensus
  motif (the minimum-radius pattern across all recordings);
* which recordings behave alike?  → the MPdist matrix;
* what does a single long recording consist of?  → snippets.

Run:  python examples/insect_colony_survey.py
"""

import numpy as np

from repro import consensus_motif, find_snippets, mpdist_matrix
from repro.datasets import generate_epg
from repro.viz import sparkline


def main() -> None:
    # Six EPG-like recordings: four feeding insects (shared behaviours)
    # and two resting ones (background only).
    feeding, resting = [], []
    for seed in range(4):
        series, _ = generate_epg(
            2500, seed=seed, probing_length=80, ingestion_length=100,
            occurrences=3,
        )
        feeding.append(series)
    for seed in (20, 21):
        rng = np.random.default_rng(seed)
        resting.append(0.15 * rng.standard_normal(2500))
    collection = feeding + resting
    labels = ["feeding"] * 4 + ["resting"] * 2
    print(f"colony: {len(collection)} recordings of {collection[0].size} points")

    # -- 1. the behaviour every feeding insect shares -------------------
    cm = consensus_motif(feeding, length=80)
    print(
        f"\nconsensus motif: insect {cm.series_index} @ {cm.start} "
        f"(radius {cm.radius:.2f}); per-insect matches at "
        f"{cm.neighbor_starts}"
    )
    shape = feeding[cm.series_index][cm.start : cm.start + 80]
    print(f"shape: {sparkline(shape, width=80)}")

    # -- 2. which recordings behave alike? ------------------------------
    matrix = mpdist_matrix(collection, length=60)
    feeding_pairs = [matrix[i, j] for i in range(4) for j in range(i + 1, 4)]
    cross_pairs = [matrix[i, j] for i in range(4) for j in range(4, 6)]
    print(
        f"\nMPdist: median within-feeding {np.median(feeding_pairs):.2f} "
        f"vs feeding-to-resting {np.median(cross_pairs):.2f}"
    )
    assert np.median(feeding_pairs) < np.median(cross_pairs), (
        "feeding recordings should cluster together under MPdist"
    )

    # -- 3. summarize one recording -------------------------------------
    snippets, assignment = find_snippets(feeding[0], length=100, k=2)
    print("\nsnippets of insect 0:")
    for rank, snippet in enumerate(snippets):
        print(
            f"  #{rank}: @{snippet.start} covers "
            f"{snippet.coverage_fraction:.0%} of the recording"
        )
    assert sum(s.coverage_fraction for s in snippets) == 1.0
    print("\nOK: consensus, clustering, and summarization all behave.")


if __name__ == "__main__":
    main()
