"""Regime segmentation and drift chains — the matrix-profile family tour.

Two sibling primitives of the family VALMOD belongs to ("Matrix Profile
X"), applied to one scenario: a machine whose vibration signature first
runs in a healthy regime, then degrades *gradually* (a drifting pattern
— a time-series chain), then fails into a distinct faulty regime.

* FLUSS segmentation finds the healthy/faulty boundary from the arc
  curve of the matrix-profile index.
* The unanchored chain tracks the gradual degradation inside the
  healthy regime — something motif discovery alone cannot express,
  because consecutive chain members are similar but the endpoints are
  not.

Run:  python examples/regime_and_drift_analysis.py
"""

import numpy as np

from repro import fluss, regime_boundaries, unanchored_chain
from repro.viz import motif_view, sparkline

PATTERN = 60


def build_scenario(seed: int = 12):
    rng = np.random.default_rng(seed)
    healthy_len = 1400
    base = np.linspace(0, 2 * np.pi, PATTERN)
    healthy = 0.1 * rng.standard_normal(healthy_len)
    drift_positions = list(range(60, healthy_len - PATTERN, 190))
    for k, pos in enumerate(drift_positions):
        warp = 1.0 + 0.15 * k  # the signature slowly deforms
        healthy[pos : pos + PATTERN] += 3 * np.sin(base * warp) * np.hanning(PATTERN)
    x = np.arange(900)
    faulty = 0.8 * np.sign(np.sin(2 * np.pi * x / 45)) + 0.2 * rng.standard_normal(900)
    return np.concatenate([healthy, faulty]), healthy_len, drift_positions


def main() -> None:
    series, true_boundary, drift_positions = build_scenario()
    print(f"scenario: {series.size} points, regime change at {true_boundary}")
    print(sparkline(series, width=100))

    # -- 1. where does the behaviour change? ---------------------------
    boundaries = regime_boundaries(series, PATTERN, n_regimes=2)
    cac = fluss(series, PATTERN)
    print(f"\nFLUSS boundary estimate: {boundaries[0]} "
          f"(true {true_boundary}, CAC min {cac.min():.3f})")
    assert abs(boundaries[0] - true_boundary) <= 150

    # -- 2. how is the healthy signature evolving? ---------------------
    healthy = series[:true_boundary]
    chain = unanchored_chain(healthy, PATTERN)
    print(
        f"\nunanchored chain: {len(chain)} members spanning "
        f"{chain.span} points:"
    )
    print(motif_view(healthy, chain.members, PATTERN, width=100))
    hits = sum(
        1 for member in chain.members
        if any(abs(member - pos) <= 45 for pos in drift_positions)
    )
    assert len(chain) >= 4
    assert hits >= len(chain) - 1
    print(
        "\nOK: FLUSS located the regime change and the chain tracked the "
        "gradual drift inside the healthy regime."
    )


if __name__ == "__main__":
    main()
