"""ECG screening: motifs as the normal rhythm, discords as anomalies.

Clinical-style workload on ECG-like data, in one façade call: the
dominant variable-length motif characterizes the normal beat-to-beat
rhythm; the matrix-profile *discord* (the subsequence farthest from
every other) flags the one abnormal beat we inject.  The paper lists
discord discovery as the natural companion application of the same
machinery (Section 8).

Run:  python examples/ecg_arrhythmia_screening.py
"""

import numpy as np

from repro import extract_features
from repro.datasets import generate_ecg

BEAT = 180  # nominal synthetic beat period in samples


def main() -> None:
    series = generate_ecg(8000, seed=11, beat_length=BEAT)
    # Inject one ectopic (premature, inverted, wide) beat.
    anomaly_at = 5000
    width = 120
    bump = -2.5 * series.std() * np.hanning(width)
    series = series.copy()
    series[anomaly_at : anomaly_at + width] += bump
    print(f"ECG-like series: {series.size} points, ectopic beat at {anomaly_at}")

    # One call covers both questions: the motif sweep runs over lengths
    # around one beat, while discord_lengths restricts the (expensive)
    # discord scan to the nominal beat period itself.
    features = extract_features(
        series,
        l_min=BEAT - 20,
        l_max=BEAT + 20,
        p=50,
        include=("discords",),
        discord_lengths=(BEAT,),
        k_discords=3,
    )

    # 1. The normal rhythm: top motif over lengths around one beat.
    best = features.best_motif
    print(
        f"dominant rhythm motif: length={best.length} "
        f"pair=({best.a}, {best.b}) norm_dist={best.normalized_distance:.4f}"
    )

    # 2. The anomaly: top discord at the beat scale.
    starts = [d.start for d in features.discords]
    print(f"top discords at length {BEAT}: {starts}")
    hit = any(abs(d - anomaly_at) <= BEAT for d in starts)
    assert hit, "the injected ectopic beat should be among the top discords"

    # The motif must NOT involve the anomaly.
    for offset in (best.a, best.b):
        assert abs(offset - anomaly_at) > width, (
            "the dominant motif should describe the normal rhythm"
        )
    print("\nOK: motif = normal rhythm, discord = injected ectopic beat.")


if __name__ == "__main__":
    main()
