"""Length-normalization demo — the paper's Figure 2, as a script.

Renders the TRACE-like signature pair at a sweep of lengths (the paper's
down-sampling protocol) and compares three candidate corrections for
ranking motifs of different lengths.  The ``sqrt(1/l)`` correction the
paper adopts should be nearly flat across the sweep; the raw distance is
biased short, the ``1/l`` correction biased long.

Run:  python examples/length_normalization_demo.py
"""

from repro.analysis.normalization_study import (
    correction_spreads,
    normalization_comparison,
)
from repro.datasets import trace_pair_at_lengths
from repro.harness.reporting import format_table

LENGTHS = [100, 140, 180, 220, 260, 300, 340, 380]


def main() -> None:
    pairs = trace_pair_at_lengths(LENGTHS)
    rows = normalization_comparison(pairs)

    print("distance between the two signature variants at each length:")
    table = [
        (
            r.length,
            f"{r.raw:.4f}",
            f"{r.divided_by_length:.6f}",
            f"{r.sqrt_corrected:.4f}",
        )
        for r in rows
    ]
    print(format_table(["length", "raw", "divide-by-l", "sqrt(1/l)"], table))

    spreads = correction_spreads(rows)
    print("\nmax/min spread across the sweep (1.0 = perfectly invariant):")
    for name, spread in spreads.items():
        print(f"  {name:>12}: {spread:.3f}")

    assert spreads["sqrt(1/l)"] < spreads["none"], (
        "sqrt(1/l) must beat the uncorrected distance"
    )
    assert spreads["sqrt(1/l)"] < spreads["divide-by-l"], (
        "sqrt(1/l) must beat the divide-by-length correction"
    )
    print(
        "\nOK: sqrt(1/l) is the flattest correction — the paper's Figure 2 "
        "conclusion."
    )


if __name__ == "__main__":
    main()
