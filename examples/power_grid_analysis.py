"""Household-power analysis: variable-length motif *sets* on GAP-like data.

The paper's motivating AspenTech anecdote is exactly this workload:
operations people want recurring consumption patterns without guessing
the pattern duration.  We run the full Problem-2 pipeline (VALMOD +
Algorithms 5-6) on a GAP-like series, list the discovered motif sets,
and verify the set semantics: disjointness and the radius guarantee.

Run:  python examples/power_grid_analysis.py
"""

import numpy as np

from repro import find_motif_sets
from repro.datasets import load_dataset
from repro.distance.znorm import znormalized_distance


def main() -> None:
    series = load_dataset("GAP", 6000, seed=3)
    l_min, l_max = 60, 90  # roughly one to one-and-a-half "hours"
    k, radius_factor = 8, 3.0

    sets = find_motif_sets(
        series, l_min, l_max, k=k, radius_factor=radius_factor, p=50
    )
    print(f"{len(sets)} motif sets over lengths [{l_min}, {l_max}]:")
    for ms in sets:
        print(
            f"  length={ms.length:3d} frequency={ms.frequency:3d} "
            f"seed pair=({ms.pair.a}, {ms.pair.b}) "
            f"seed distance={ms.pair.distance:.3f} radius={ms.radius:.3f}"
        )

    # -- verify the two structural guarantees of Problem 2 --------------
    claimed = set()
    for ms in sets:
        for member in ms.members:
            key = (member, ms.length)
            assert key not in claimed, "motif sets must be disjoint"
            claimed.add(key)
        for member in ms.members:
            d_a = znormalized_distance(
                series[member : member + ms.length],
                series[ms.pair.a : ms.pair.a + ms.length],
            )
            d_b = znormalized_distance(
                series[member : member + ms.length],
                series[ms.pair.b : ms.pair.b + ms.length],
            )
            assert min(d_a, d_b) < ms.radius + 1e-9, (
                "every member must lie within the radius of a seed"
            )
    total = sum(ms.frequency for ms in sets)
    print(f"\nOK: {total} member subsequences, disjoint, all within radius.")
    if sets:
        top = max(sets, key=lambda ms: ms.frequency)
        print(
            f"most frequent recurring pattern: length {top.length}, "
            f"{top.frequency} occurrences at {top.members[:8]}..."
        )


if __name__ == "__main__":
    main()
