"""Hilbert-packed MBR index over PAA summaries.

The in-memory stand-in for QUICK MOTIF's Hilbert R-tree (see DESIGN.md):
summaries are sorted along the Hilbert curve and packed into fixed-size
leaf pages, each covered by its minimum bounding rectangle.  The index
answers the one question QUICK MOTIF asks: *enumerate leaf pairs in
ascending lower-bound (MBR min-distance) order*.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Iterator, List, Tuple

import numpy as np

from repro.baselines.hilbert import hilbert_sort_order
from repro.exceptions import InvalidParameterError

__all__ = ["MBRIndex"]


@dataclass
class _Leaf:
    """One page: the row ids it contains and its bounding rectangle."""

    rows: np.ndarray
    lo: np.ndarray
    hi: np.ndarray


class MBRIndex:
    """Hilbert-packed leaf MBRs over a point matrix.

    Parameters
    ----------
    points:
        ``(n, d)`` float matrix (PAA summaries in QUICK MOTIF).
    leaf_capacity:
        Page size; QUICK MOTIF's behaviour is insensitive to the exact
        value as long as pages are small relative to n.
    scale:
        Factor applied to rectangle distances when reporting bounds —
        ``sqrt(l // w)`` turns PAA-space distances into data-space lower
        bounds.
    """

    def __init__(
        self, points: np.ndarray, leaf_capacity: int = 64, scale: float = 1.0
    ) -> None:
        pts = np.asarray(points, dtype=np.float64)
        if pts.ndim != 2 or pts.shape[0] == 0:
            raise InvalidParameterError("MBRIndex needs a non-empty (n, d) matrix")
        if leaf_capacity <= 0:
            raise InvalidParameterError(
                f"leaf_capacity must be positive, got {leaf_capacity}"
            )
        self.points = pts
        self.scale = float(scale)
        order = hilbert_sort_order(pts)
        self.leaves: List[_Leaf] = []
        for start in range(0, order.size, leaf_capacity):
            rows = order[start : start + leaf_capacity]
            block = pts[rows]
            self.leaves.append(
                _Leaf(rows=rows, lo=block.min(axis=0), hi=block.max(axis=0))
            )

    def __len__(self) -> int:
        return len(self.leaves)

    def mbr_min_distance(self, a: int, b: int) -> float:
        """Scaled minimum distance between the rectangles of two leaves.

        Zero when the rectangles intersect; for ``a == b`` (pairs within
        one page) the bound is trivially zero.
        """
        if a == b:
            return 0.0
        la, lb = self.leaves[a], self.leaves[b]
        gap = np.maximum(0.0, np.maximum(la.lo - lb.hi, lb.lo - la.hi))
        return self.scale * math.sqrt(float(np.dot(gap, gap)))

    def leaf_pairs_ascending(self) -> Iterator[Tuple[float, int, int]]:
        """Yield ``(bound, leaf_a, leaf_b)`` in ascending bound order.

        Includes the diagonal pairs (a == a) that cover within-page
        candidates.  Lazy: pairs are heap-ordered so the consumer can
        stop as soon as a bound exceeds its best-so-far.
        """
        n = len(self.leaves)
        heap: List[Tuple[float, int, int]] = []
        for a in range(n):
            heap.append((0.0, a, a))
            for b in range(a + 1, n):
                heap.append((self.mbr_min_distance(a, b), a, b))
        heapq.heapify(heap)
        while heap:
            yield heapq.heappop(heap)

    def candidate_rows(self, a: int, b: int) -> Tuple[np.ndarray, np.ndarray]:
        """Row ids of the two leaves of a pair."""
        return self.leaves[a].rows, self.leaves[b].rows
