"""The MK algorithm: reference-based exact fixed-length motif discovery.

Mueen-Keogh (SDM 2009, ref. [31] of the paper) — the classic exact
motif finder that predates the matrix profile, and the engine the MOEN
baseline builds on.  MK exploits the triangle inequality in the space
of z-normalized subsequences (where the z-normalized Euclidean distance
IS a metric):

1. pick a few random *reference* subsequences and compute every
   subsequence's distance to each (O(R n log n) with MASS);
2. order candidates by their distance to the best reference;
3. scan ordered pairs: for candidates ``x, y``,
   ``|d(ref,x) - d(ref,y)|`` lower-bounds ``d(x, y)`` — once the bound
   for adjacent-in-order pairs exceeds the best-so-far, stop.

Exact; fast when the reference distances spread the candidates out;
included both for completeness of the baseline suite and as the
standard-reference implementation MK-style pruning is tested against.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from repro.distance.mass import mass_with_stats
from repro.distance.profile import apply_exclusion_zone
from repro.kernels.context import ensure_context
from repro.distance.znorm import CONSTANT_EPS, as_series
from repro.exceptions import InvalidParameterError
from repro.matrixprofile.exclusion import exclusion_zone_half_width
from repro.types import MotifPair

__all__ = ["mk_motif"]


def _pair_distance(
    windows: np.ndarray,
    mu: np.ndarray,
    sigma: np.ndarray,
    length: int,
    i: int,
    j: int,
) -> float:
    qt = float(np.dot(windows[i], windows[j]))
    sig = max(sigma[i], CONSTANT_EPS) * max(sigma[j], CONSTANT_EPS)
    corr = (qt - length * mu[i] * mu[j]) / (length * sig)
    corr = min(1.0, max(-1.0, corr))
    return (2.0 * length * (1.0 - corr)) ** 0.5


def mk_motif(
    series: np.ndarray,
    length: int,
    n_references: int = 8,
    rng: Optional[np.random.Generator] = None,
) -> MotifPair:
    """Exact motif pair of one length via MK reference pruning."""
    t = as_series(series, min_length=8)
    n_subs = t.size - length + 1
    if n_subs < 2 or length < 2 or length > t.size // 2:
        raise InvalidParameterError(
            f"length {length} invalid for a series of {t.size} points"
        )
    if n_references <= 0:
        raise InvalidParameterError(
            f"n_references must be positive, got {n_references}"
        )
    if rng is None:
        rng = np.random.default_rng(0)
    zone = exclusion_zone_half_width(length)
    mu, sigma = ensure_context(t).moving_mean_std(length)
    windows = sliding_window_view(t, length)

    # Reference distance profiles; best-so-far from their own minima.
    refs = rng.choice(n_subs, size=min(n_references, n_subs), replace=False)
    ref_profiles = np.empty((refs.size, n_subs), dtype=np.float64)
    bsf = np.inf
    best: Tuple[int, int] = None
    for row, ref in enumerate(refs):
        profile = mass_with_stats(t, int(ref), length, mu, sigma)
        ref_profiles[row] = profile
        masked = profile.copy()
        apply_exclusion_zone(masked, int(ref), zone)
        j = int(np.argmin(masked))
        if np.isfinite(masked[j]) and masked[j] < bsf:
            bsf = float(masked[j])
            best = (int(ref), j)

    # The reference with the largest distance spread orders candidates
    # most usefully (the published heuristic).
    spread = ref_profiles.std(axis=1)
    ordering_ref = int(np.argmax(spread))
    order = np.argsort(ref_profiles[ordering_ref], kind="stable")
    ordered_dists = ref_profiles[ordering_ref][order]

    # Scan pairs by increasing offset in the ordering; stop the whole
    # scan when even adjacent entries can't beat bsf.
    for gap in range(1, n_subs):
        lower_bounds = ordered_dists[gap:] - ordered_dists[:-gap]
        if lower_bounds.size == 0 or lower_bounds.min() >= bsf:
            break
        candidates = np.where(lower_bounds < bsf)[0]
        for pos in candidates:
            i = int(order[pos])
            j = int(order[pos + gap])
            if abs(i - j) < zone:
                continue
            # Multi-reference pruning before the exact distance.
            bound = float(
                np.max(np.abs(ref_profiles[:, i] - ref_profiles[:, j]))
            )
            if bound >= bsf:
                continue
            d = _pair_distance(windows, mu, sigma, length, i, j)
            if d < bsf:
                bsf = d
                best = (i, j)
    if best is None:
        raise InvalidParameterError(
            f"no non-trivial motif pair exists at length {length}"
        )
    return MotifPair.build(best[0], best[1], length, bsf)
