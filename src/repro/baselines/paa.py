"""Piecewise Aggregate Approximation (PAA) over z-normalized subsequences.

QUICK MOTIF's summarization layer.  Every subsequence of length ``l`` is
z-normalized and reduced to ``w`` segment means.  The classic PAA bound
(Keogh et al.) makes the summaries a *lower-bounding* representation::

    dist(x, y)  >=  sqrt(s) * || PAA(x) - PAA(y) ||,    s = l // w

where the distance on the left is taken over the first ``w * s`` points
of the z-normalized subsequences (truncating the remainder only drops
non-negative terms, so the bound stays admissible for the full length).

The whole transform is computed for *all* subsequences at once from the
series prefix sums — O(n w) total.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from repro.distance.sliding import prefix_sums
from repro.kernels.context import ensure_context
from repro.distance.znorm import CONSTANT_EPS
from repro.exceptions import InvalidParameterError

__all__ = ["paa_transform", "paa_lower_bound_factor", "paa_pairwise_lower_bound"]


def paa_lower_bound_factor(length: int, width: int) -> float:
    """The ``sqrt(s)`` scale turning PAA distances into distance bounds."""
    if width <= 0 or width > length:
        raise InvalidParameterError(
            f"PAA width must be in [1, length], got {width} for length {length}"
        )
    return math.sqrt(length // width)


def paa_transform(series: np.ndarray, length: int, width: int) -> np.ndarray:
    """PAA summaries of every z-normalized subsequence.

    Returns an ``(n - l + 1, w)`` matrix; row ``i`` is the PAA of the
    z-normalized ``series[i : i + l]`` computed over ``w`` equal segments
    of ``s = l // w`` points (trailing remainder ignored, consistent with
    the lower bound).  Constant subsequences summarize to zeros.
    """
    t = np.asarray(series, dtype=np.float64)
    n_subs = t.size - length + 1
    if n_subs <= 0:
        raise InvalidParameterError(
            f"length {length} leaves no subsequences in {t.size} points"
        )
    if width <= 0 or width > length:
        raise InvalidParameterError(
            f"PAA width must be in [1, length], got {width} for length {length}"
        )
    seg = length // width
    cumsum, _ = prefix_sums(t)
    mu, sigma = ensure_context(t).moving_mean_std(length)
    starts = np.arange(n_subs)
    summaries = np.empty((n_subs, width), dtype=np.float64)
    for k in range(width):
        lo = starts + k * seg
        seg_mean = (cumsum[lo + seg] - cumsum[lo]) / seg
        summaries[:, k] = seg_mean - mu
    safe_sigma = np.maximum(sigma, CONSTANT_EPS)
    summaries /= safe_sigma[:, None]
    summaries[sigma < CONSTANT_EPS] = 0.0
    return summaries


def paa_pairwise_lower_bound(
    paa_a: np.ndarray, paa_b: np.ndarray, length: int, width: int
) -> np.ndarray:
    """Lower-bound distance matrix between two PAA row blocks.

    ``paa_a`` is ``(ka, w)``, ``paa_b`` ``(kb, w)``; the result is
    ``(ka, kb)`` of admissible bounds on the true z-normalized distances.
    """
    diff = paa_a[:, None, :] - paa_b[None, :, :]
    return paa_lower_bound_factor(length, width) * np.sqrt(
        np.einsum("abw,abw->ab", diff, diff)
    )


def paa_mbr(paa_block: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Minimum bounding rectangle (lo, hi) of a block of PAA rows."""
    return paa_block.min(axis=0), paa_block.max(axis=0)
