"""Baselines the paper compares VALMOD against (Section 6.1).

* :func:`repro.baselines.brute_force.brute_force_variable_length_motifs` —
  exhaustive ground truth for Problem 1.
* :func:`repro.baselines.stomp_range.stomp_range` — STOMP run
  independently per length ("adapted to find all the motifs for a given
  subsequence length range").
* :func:`repro.baselines.moen.moen` — MOEN (Mueen 2013): per-length exact
  motif discovery with a multiplicative cross-length lower bound.
* :func:`repro.baselines.quick_motif.quick_motif` — QUICK MOTIF (Li et
  al. 2015): PAA summaries packed into Hilbert-ordered MBRs, best-first
  exact refinement, run per length.

All four return exact per-length motif pairs; they differ (by design) in
how much work they do — that difference is what Figures 8, 12 and 13
measure.
"""

from repro.baselines.brute_force import brute_force_variable_length_motifs
from repro.baselines.stomp_range import stomp_range
from repro.baselines.moen import moen
from repro.baselines.quick_motif import quick_motif
from repro.baselines.paa import paa_transform, paa_lower_bound_factor
from repro.baselines.sax import sax_transform, sax_words, mindist
from repro.baselines.grammar_motif import grammar_motifs
from repro.baselines.mk import mk_motif

__all__ = [
    "brute_force_variable_length_motifs",
    "stomp_range",
    "moen",
    "quick_motif",
    "paa_transform",
    "paa_lower_bound_factor",
    "sax_transform",
    "sax_words",
    "mindist",
    "grammar_motifs",
    "mk_motif",
]
