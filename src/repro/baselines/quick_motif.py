"""QUICK MOTIF (Li, U, Yiu, Gong — ICDE 2015), adapted to a length range.

Per length, QUICK MOTIF:

1. summarizes every z-normalized subsequence with PAA
   (:mod:`repro.baselines.paa`);
2. packs the summaries into Hilbert-ordered MBR pages
   (:mod:`repro.baselines.rtree`);
3. enumerates page pairs best-first by MBR min-distance, refining each
   candidate pair exactly, and stops when the next page-pair bound
   exceeds the best-so-far distance.

The result is exact.  The performance profile matches the paper's
findings: excellent on easy, regular data (ECG) and steeply degrading as
the subsequence length grows at fixed PAA width, because the summaries
lose resolution and the MBR bounds stop pruning (Figures 8 and 13).

Like the paper's benchmark adaptation, the range version simply runs the
per-length search for every length, seeded with the previous length's
motif pair as an initial best-so-far.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from repro.baselines.paa import paa_lower_bound_factor, paa_transform
from repro.baselines.rtree import MBRIndex
from repro.kernels.context import ensure_context
from repro.distance.znorm import CONSTANT_EPS, as_series, znormalized_distance
from repro.exceptions import BudgetExceededError, InvalidParameterError
from repro.matrixprofile.exclusion import exclusion_zone_half_width
from repro.types import MotifPair

__all__ = ["quick_motif", "quick_motif_single", "QuickMotifStats"]


@dataclass
class QuickMotifStats:
    """Pruning counters of a QUICK MOTIF run (per length)."""

    lengths: List[int] = field(default_factory=list)
    page_pairs_opened: List[int] = field(default_factory=list)
    exact_distances: List[int] = field(default_factory=list)


def _exact_pair_distances(
    windows: np.ndarray,
    mu: np.ndarray,
    sigma: np.ndarray,
    length: int,
    left: np.ndarray,
    right: np.ndarray,
) -> np.ndarray:
    """Exact z-normalized distances for explicit index pairs (vectorized)."""
    qt = np.einsum("ij,ij->i", windows[left], windows[right])
    sig = np.maximum(sigma, CONSTANT_EPS)
    corr = (qt - length * mu[left] * mu[right]) / (length * sig[left] * sig[right])
    np.clip(corr, -1.0, 1.0, out=corr)
    dist = np.sqrt(np.maximum(2.0 * length * (1.0 - corr), 0.0))
    left_const = sigma[left] < CONSTANT_EPS
    right_const = sigma[right] < CONSTANT_EPS
    dist = np.where(left_const ^ right_const, np.sqrt(length), dist)
    return np.where(left_const & right_const, 0.0, dist)


def quick_motif_single(
    series: np.ndarray,
    length: int,
    width: int = 8,
    leaf_capacity: int = 64,
    initial_pair: Optional[Tuple[int, int]] = None,
    deadline: Optional[float] = None,
    stats: Optional[QuickMotifStats] = None,
) -> MotifPair:
    """Exact motif pair of one length via PAA + MBR best-first search."""
    t = as_series(series, min_length=8)
    n_subs = t.size - length + 1
    if n_subs < 2:
        raise InvalidParameterError(f"length {length} leaves fewer than two windows")
    zone = exclusion_zone_half_width(length)
    effective_width = min(width, length)
    summaries = paa_transform(t, length, effective_width)
    scale = paa_lower_bound_factor(length, effective_width)
    index = MBRIndex(summaries, leaf_capacity=leaf_capacity, scale=scale)
    mu, sigma = ensure_context(t).moving_mean_std(length)
    windows = sliding_window_view(t, length)

    bsf = np.inf
    best: Optional[Tuple[int, int]] = None
    if initial_pair is not None:
        a, b = initial_pair
        if b + length <= t.size and abs(a - b) >= zone:
            bsf = znormalized_distance(t[a : a + length], t[b : b + length])
            best = (a, b)

    pages_opened = 0
    exact_count = 0
    for bound, pa, pb in index.leaf_pairs_ascending():
        if bound >= bsf:
            break
        if deadline is not None and time.perf_counter() > deadline:
            raise BudgetExceededError(
                f"quick_motif exceeded its deadline at length {length}"
            )
        pages_opened += 1
        rows_a, rows_b = index.candidate_rows(pa, pb)
        # Point-level PAA bound before paying for exact distances.
        diff = summaries[rows_a][:, None, :] - summaries[rows_b][None, :, :]
        lb = scale * np.sqrt(np.einsum("abw,abw->ab", diff, diff))
        ii, jj = np.meshgrid(rows_a, rows_b, indexing="ij")
        survives = (lb < bsf) & (np.abs(ii - jj) >= zone)
        if pa == pb:
            survives &= ii < jj
        if not survives.any():
            continue
        left = ii[survives]
        right = jj[survives]
        dists = _exact_pair_distances(windows, mu, sigma, length, left, right)
        exact_count += dists.size
        k = int(np.argmin(dists))
        if dists[k] < bsf:
            bsf = float(dists[k])
            best = (int(left[k]), int(right[k]))
    if stats is not None:
        stats.lengths.append(length)
        stats.page_pairs_opened.append(pages_opened)
        stats.exact_distances.append(exact_count)
    if best is None:
        raise InvalidParameterError(
            f"no non-trivial motif pair exists at length {length}"
        )
    return MotifPair.build(best[0], best[1], length, bsf)


def quick_motif(
    series: np.ndarray,
    l_min: int,
    l_max: int,
    width: int = 8,
    leaf_capacity: int = 64,
    deadline: Optional[float] = None,
    stats: Optional[QuickMotifStats] = None,
) -> Dict[int, MotifPair]:
    """Exact motif pair per length in ``[l_min, l_max]``.

    Raises :class:`BudgetExceededError` when a ``deadline`` (absolute
    ``time.perf_counter()`` value) passes — the harness uses this to
    reproduce the paper's "did not finish" entries.
    """
    t = as_series(series, min_length=8)
    if l_min > l_max:
        raise InvalidParameterError(f"l_min ({l_min}) must not exceed l_max ({l_max})")
    result: Dict[int, MotifPair] = {}
    previous: Optional[Tuple[int, int]] = None
    for length in range(l_min, l_max + 1):
        pair = quick_motif_single(
            t,
            length,
            width=width,
            leaf_capacity=leaf_capacity,
            initial_pair=previous,
            deadline=deadline,
            stats=stats,
        )
        result[length] = pair
        previous = (pair.a, pair.b)
    return result
