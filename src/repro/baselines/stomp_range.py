"""STOMP adapted to a length range: one independent run per length.

This is the stronger of the paper's two fixed-length baselines ("STOMP
... adapted to find all the motifs for a given subsequence length
range").  Each length costs the full O(n^2), so the total grows linearly
with the range width — the behaviour Figure 12 shows.
"""

from __future__ import annotations

import time
from typing import Dict, Optional

import numpy as np

from repro.core.valmp import VALMP
from repro.exceptions import BudgetExceededError, InvalidParameterError
from repro.kernels.context import ensure_context
from repro.matrixprofile.parallel import parallel_stomp
from repro.matrixprofile.stomp import stomp
from repro.types import MotifPair

__all__ = ["stomp_range"]


def stomp_range(
    series: np.ndarray,
    l_min: int,
    l_max: int,
    valmp: Optional[VALMP] = None,
    deadline: Optional[float] = None,
    n_jobs: Optional[int] = 1,
) -> Dict[int, MotifPair]:
    """Exact motif pair per length via repeated STOMP runs.

    Passing a :class:`VALMP` collects the same variable-length matrix
    profile VALMOD produces (useful for cross-checking VALMP semantics).
    ``deadline`` (absolute ``time.perf_counter()`` value) turns slow runs
    into :class:`BudgetExceededError` for the harness's DNF reporting.
    ``n_jobs > 1`` routes each length through the chunked parallel STOMP
    engine, whose output is bitwise identical to the serial one.
    """
    ctx = ensure_context(series, min_length=8)
    t = ctx.series
    if l_min > l_max:
        raise InvalidParameterError(f"l_min ({l_min}) must not exceed l_max ({l_max})")
    result: Dict[int, MotifPair] = {}
    for length in range(l_min, l_max + 1):
        if deadline is not None and time.perf_counter() > deadline:
            raise BudgetExceededError(
                f"stomp_range exceeded its deadline at length {length}"
            )
        if n_jobs == 1:
            mp = stomp(t, length, context=ctx)
        else:
            mp = parallel_stomp(t, length, n_jobs=n_jobs, context=ctx)
        result[length] = mp.motif_pair()
        if valmp is not None:
            valmp.update(mp.profile, mp.index, length)
    return result
