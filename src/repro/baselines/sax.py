"""SAX: Symbolic Aggregate approXimation (Lin et al.).

The discretization layer of the approximate variable-length motif
discovery family the paper's related work discusses (grammar-based [8],
proper-length [54]).  A subsequence is z-normalized, PAA-reduced, and
each segment mean is mapped to a symbol through the equiprobable
Gaussian breakpoints.

Lower-bounding property (MINDIST): for the standard breakpoints, the
symbol-wise distance ``sqrt(s) * sqrt(sum cell_dist^2)`` lower-bounds
the true z-normalized distance; tested in ``tests/test_sax.py``.
"""

from __future__ import annotations

import math
from typing import Dict

import numpy as np
from scipy.stats import norm as _gaussian

from repro.baselines.paa import paa_transform
from repro.exceptions import InvalidParameterError

__all__ = [
    "gaussian_breakpoints",
    "sax_transform",
    "sax_words",
    "mindist",
]

_BREAKPOINT_CACHE: Dict[int, np.ndarray] = {}


def gaussian_breakpoints(alphabet_size: int) -> np.ndarray:
    """The ``a - 1`` breakpoints splitting N(0,1) into equiprobable bins."""
    if not 2 <= alphabet_size <= 26:
        raise InvalidParameterError(
            f"alphabet size must be in [2, 26], got {alphabet_size}"
        )
    if alphabet_size not in _BREAKPOINT_CACHE:
        quantiles = np.arange(1, alphabet_size) / alphabet_size
        _BREAKPOINT_CACHE[alphabet_size] = _gaussian.ppf(quantiles)
    return _BREAKPOINT_CACHE[alphabet_size]


def sax_transform(
    series: np.ndarray, length: int, word_length: int, alphabet_size: int
) -> np.ndarray:
    """SAX symbols of every subsequence.

    Returns an ``(n - l + 1, w)`` uint8 matrix of symbol ids in
    ``[0, alphabet_size)``; row ``i`` is the SAX word of the
    z-normalized ``series[i : i + l]``.
    """
    summaries = paa_transform(series, length, word_length)
    breakpoints = gaussian_breakpoints(alphabet_size)
    return np.searchsorted(breakpoints, summaries).astype(np.uint8)


def sax_words(
    series: np.ndarray, length: int, word_length: int, alphabet_size: int
) -> np.ndarray:
    """SAX words packed into single integers (for hashing/grouping)."""
    symbols = sax_transform(series, length, word_length, alphabet_size)
    if alphabet_size ** word_length > 2**62:
        raise InvalidParameterError(
            "word_length * log2(alphabet) exceeds the 62-bit packing budget"
        )
    packed = np.zeros(symbols.shape[0], dtype=np.int64)
    for column in range(symbols.shape[1]):
        packed = packed * alphabet_size + symbols[:, column]
    return packed


def _cell_distances(alphabet_size: int) -> np.ndarray:
    """Pairwise MINDIST cell table: 0 for adjacent symbols."""
    breakpoints = gaussian_breakpoints(alphabet_size)
    table = np.zeros((alphabet_size, alphabet_size), dtype=np.float64)
    for r in range(alphabet_size):
        for c in range(alphabet_size):
            if abs(r - c) > 1:
                hi = breakpoints[max(r, c) - 1]
                lo = breakpoints[min(r, c)]
                table[r, c] = hi - lo
    return table


def mindist(
    word_a: np.ndarray, word_b: np.ndarray, length: int, alphabet_size: int
) -> float:
    """SAX MINDIST: a lower bound on the z-normalized distance."""
    a = np.asarray(word_a)
    b = np.asarray(word_b)
    if a.shape != b.shape:
        raise InvalidParameterError("SAX words must have equal length")
    table = _cell_distances(alphabet_size)
    cells = table[a, b]
    segment = length // a.size
    return math.sqrt(segment) * math.sqrt(float(np.sum(cells * cells)))
