"""Exhaustive variable-length motif discovery — the test oracle.

The "obvious brute-force solution, which tests all lengths within a given
range" that the paper's introduction declares computationally untenable.
It is: O((l_max - l_min) n^2 l).  We keep it because it is trivially
correct, which makes it the ground truth for every integration test.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.distance.znorm import as_series
from repro.matrixprofile.brute import brute_force_matrix_profile
from repro.types import MotifPair

__all__ = ["brute_force_variable_length_motifs"]


def brute_force_variable_length_motifs(
    series: np.ndarray, l_min: int, l_max: int
) -> Dict[int, MotifPair]:
    """Exact motif pair for every length in ``[l_min, l_max]``, exhaustively."""
    t = as_series(series, min_length=8)
    result: Dict[int, MotifPair] = {}
    for length in range(l_min, l_max + 1):
        result[length] = brute_force_matrix_profile(t, length).motif_pair()
    return result
