"""Grammar-style APPROXIMATE variable-length motif discovery.

The paper's related work (Section 7) discusses a family of approximate
variable-length motif finders built on symbolic discretization —
grammar induction over SAX words [8], proper-length selection [54].
They are fast but "(i) approximate ... and (ii) require setting many
parameters (most of which are unintuitive)", with unbounded error.

This module implements that family's core recipe so the claim can be
*measured* (``benchmarks/bench_approximate_baseline.py``):

1. discretize every window of each length into a SAX word;
2. group windows by identical word (collisions = candidate motifs);
3. within each group, take the closest non-trivial pair (computed
   exactly — the standard "numerosity + refinement" step);
4. rank candidates across lengths by normalized distance.

It inherits the family's parameters (word length, alphabet size, length
stride) and its failure mode: a true motif pair whose two occurrences
straddle a SAX cell boundary lands in different groups and is *missed*
— exactly the unbounded-error behaviour the paper criticizes.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Tuple

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from repro.baselines.sax import sax_words
from repro.kernels.context import ensure_context
from repro.distance.znorm import CONSTANT_EPS, as_series
from repro.exceptions import InvalidParameterError
from repro.matrixprofile.exclusion import exclusion_zone_half_width
from repro.types import MotifPair

__all__ = ["grammar_motifs", "grammar_motif_per_length"]


def _closest_pair_in_group(
    t: np.ndarray,
    members: List[int],
    length: int,
    mu: np.ndarray,
    sigma: np.ndarray,
    zone: int,
) -> Optional[Tuple[int, int, float]]:
    """Exact closest non-trivial pair among a (small) candidate group."""
    best: Optional[Tuple[int, int, float]] = None
    windows = sliding_window_view(t, length)
    for i_pos, i in enumerate(members):
        for j in members[i_pos + 1 :]:
            if abs(i - j) < zone:
                continue
            qt = float(np.dot(windows[i], windows[j]))
            sig = max(sigma[i], CONSTANT_EPS) * max(sigma[j], CONSTANT_EPS)
            corr = (qt - length * mu[i] * mu[j]) / (length * sig)
            corr = min(1.0, max(-1.0, corr))
            dist = (2.0 * length * (1.0 - corr)) ** 0.5
            if best is None or dist < best[2]:
                best = (i, j, dist)
    return best


def grammar_motif_per_length(
    series: np.ndarray,
    length: int,
    word_length: int = 6,
    alphabet_size: int = 4,
    max_group: int = 64,
) -> Optional[MotifPair]:
    """Approximate motif pair of one length via SAX-word collisions.

    Returns None when no word repeats (the method's blind spot).
    Groups larger than ``max_group`` are subsampled, another standard
    speed/accuracy knob of the family.
    """
    t = as_series(series, min_length=8)
    effective_word = min(word_length, length)
    words = sax_words(t, length, effective_word, alphabet_size)
    zone = exclusion_zone_half_width(length)
    groups: Dict[int, List[int]] = defaultdict(list)
    for position, word in enumerate(words):
        groups[int(word)].append(position)
    mu, sigma = ensure_context(t).moving_mean_std(length)
    best: Optional[Tuple[int, int, float]] = None
    for members in groups.values():
        if len(members) < 2:
            continue
        if len(members) > max_group:
            stride = len(members) // max_group + 1
            members = members[::stride]
        found = _closest_pair_in_group(t, members, length, mu, sigma, zone)
        if found is not None and (best is None or found[2] < best[2]):
            best = found
    if best is None:
        return None
    return MotifPair.build(best[0], best[1], length, best[2])


def grammar_motifs(
    series: np.ndarray,
    l_min: int,
    l_max: int,
    length_stride: int = 1,
    word_length: int = 6,
    alphabet_size: int = 4,
) -> Dict[int, MotifPair]:
    """Approximate variable-length motif discovery.

    ``length_stride`` skips lengths (the family's usual shortcut); the
    returned dictionary only contains lengths where some SAX word
    repeated.  NO exactness guarantee — that is the point of this
    baseline; ``benchmarks/bench_approximate_baseline.py`` measures the
    error against VALMOD's exact answer.
    """
    t = as_series(series, min_length=8)
    if l_min > l_max:
        raise InvalidParameterError(f"l_min ({l_min}) must not exceed l_max ({l_max})")
    if length_stride <= 0:
        raise InvalidParameterError(
            f"length_stride must be positive, got {length_stride}"
        )
    result: Dict[int, MotifPair] = {}
    for length in range(l_min, l_max + 1, length_stride):
        pair = grammar_motif_per_length(
            t, length, word_length=word_length, alphabet_size=alphabet_size
        )
        if pair is not None:
            result[length] = pair
    return result
