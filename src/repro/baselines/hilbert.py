"""d-dimensional Hilbert curve indexing (Skilling's algorithm).

QUICK MOTIF packs PAA summaries into MBR pages in Hilbert-curve order so
that spatially close summaries land in the same page.  This module
implements the compact Hilbert index after J. Skilling, "Programming the
Hilbert curve" (AIP Conf. Proc. 707, 2004), vectorized over points: the
bit loops run ``bits * dims`` times regardless of how many points are
encoded.

The defining property — consecutive Hilbert indices are adjacent grid
cells — is property-tested in ``tests/test_hilbert.py``.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import InvalidParameterError

__all__ = ["hilbert_index", "quantize", "hilbert_sort_order"]


def quantize(points: np.ndarray, bits: int) -> np.ndarray:
    """Map float coordinates to the ``[0, 2^bits)`` integer grid.

    Each dimension is scaled independently over its own range; constant
    dimensions map to zero.
    """
    if bits <= 0 or bits > 16:
        raise InvalidParameterError(f"bits must be in [1, 16], got {bits}")
    pts = np.asarray(points, dtype=np.float64)
    if pts.ndim != 2:
        raise InvalidParameterError(f"expected (n, d) points, got ndim={pts.ndim}")
    lo = pts.min(axis=0)
    hi = pts.max(axis=0)
    span = hi - lo
    span[span <= 0] = 1.0
    scaled = (pts - lo) / span * ((1 << bits) - 1)
    return np.clip(np.rint(scaled), 0, (1 << bits) - 1).astype(np.uint64)


def hilbert_index(coords: np.ndarray, bits: int) -> np.ndarray:
    """Hilbert-curve index of integer grid points.

    ``coords`` is ``(n, d)`` with entries in ``[0, 2^bits)``; the result
    is ``(n,)`` uint64 indices in ``[0, 2^(bits*d))``.  ``bits * d`` must
    fit in 64 bits.
    """
    x = np.ascontiguousarray(coords, dtype=np.uint64).copy()
    if x.ndim != 2:
        raise InvalidParameterError(f"expected (n, d) coords, got ndim={x.ndim}")
    n_points, dims = x.shape
    if bits * dims > 64:
        raise InvalidParameterError(
            f"bits*dims = {bits * dims} exceeds the 64-bit index budget"
        )
    if n_points == 0:
        return np.empty(0, dtype=np.uint64)

    # --- Skilling: axes -> transposed Hilbert coordinates -------------
    q = np.uint64(1) << np.uint64(bits - 1)
    one = np.uint64(1)
    while q > one:
        p = q - one
        for i in range(dims):
            hit = (x[:, i] & q) != 0
            # invert low bits of the first axis where this axis has bit q
            x[hit, 0] ^= p
            # exchange low bits between axis 0 and axis i elsewhere
            miss = ~hit
            tval = (x[miss, 0] ^ x[miss, i]) & p
            x[miss, 0] ^= tval
            x[miss, i] ^= tval
        q >>= one

    # Gray encode
    for i in range(1, dims):
        x[:, i] ^= x[:, i - 1]
    t = np.zeros(n_points, dtype=np.uint64)
    q = np.uint64(1) << np.uint64(bits - 1)
    while q > one:
        hit = (x[:, dims - 1] & q) != 0
        t[hit] ^= q - one
        q >>= one
    for i in range(dims):
        x[:, i] ^= t

    # --- interleave transposed bits into a single key -----------------
    key = np.zeros(n_points, dtype=np.uint64)
    for bit in range(bits - 1, -1, -1):
        for dim in range(dims):
            key = (key << one) | ((x[:, dim] >> np.uint64(bit)) & one)
    return key


def hilbert_sort_order(points: np.ndarray, bits: int = 8) -> np.ndarray:
    """Indices that sort float points along the Hilbert curve.

    ``bits`` is automatically reduced for high-dimensional points so the
    interleaved key fits the 64-bit budget (precision per axis degrades
    gracefully; the ordering only drives page packing, not correctness).
    """
    pts = np.asarray(points, dtype=np.float64)
    if pts.ndim != 2:
        raise InvalidParameterError(f"expected (n, d) points, got ndim={pts.ndim}")
    dims = max(1, pts.shape[1])
    bits = max(1, min(bits, 64 // dims))
    keys = hilbert_index(quantize(pts, bits), bits)
    return np.argsort(keys, kind="stable")
