"""MOEN — enumeration of motifs of all lengths (Mueen, ICDM 2013).

MOEN is the paper's only variable-length competitor.  Its structure, as
reproduced here (see DESIGN.md for the substitution notes):

1. At the smallest length, compute the full matrix profile.
2. For each next length, *lower-bound* every subsequence's
   nearest-neighbor distance from its last exactly-known value via the
   multiplicative bound below, and *upper-bound* the motif distance by
   extending the previous length's motif pair exactly (O(l) work).
3. Only subsequences whose lower bound beats the upper bound can
   participate in a better pair; recompute exactly those rows (MASS).
4. When the bound prunes too little, refresh everything with a full
   matrix profile (this is what happens increasingly often as lengths
   grow — the degradation Figures 8 and 12 show).

The cross-length bound
----------------------
For windows x, y with z-normalized distance ``d_l`` and sigma ratios
``a = sigma[x,l] / sigma[x,l+1]``, ``b = sigma[y,l] / sigma[y,l+1]``::

    d_{l+1}^2  >=  l (a - b)^2 + a b d_l^2  >=  a b d_l^2

(drop the final term of the l+1 sum, then minimize over the cross terms;
see ``tests/test_moen.py`` for the property-based check).  Because MOEN
carries *one* bound per subsequence without remembering which neighbor
realized it, it must use the worst-case neighbor ratio
``b_min = min_j sigma[j,l] / sigma[j,l+1]``::

    mp_i(l+1)  >=  sqrt(a_i * b_min) * mp_i(l)

``b_min`` is typically < 1, so the bound *loosens multiplicatively* at
every step — precisely the weakness the VALMOD paper describes
("MOEN multiplies the lower bound by a value smaller than 1"), and the
reason its pruning collapses for wide length ranges.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.distance.mass import mass_with_stats
from repro.distance.profile import apply_exclusion_zone
from repro.kernels.context import ensure_context
from repro.distance.znorm import CONSTANT_EPS, znormalized_distance
from repro.exceptions import BudgetExceededError, InvalidParameterError
from repro.matrixprofile.exclusion import exclusion_zone_half_width
from repro.matrixprofile.stomp import stomp
from repro.types import MotifPair

__all__ = ["moen", "moen_step_factor", "MoenStats"]


@dataclass
class MoenStats:
    """Per-length instrumentation of a MOEN run."""

    lengths: List[int] = field(default_factory=list)
    candidate_counts: List[int] = field(default_factory=list)
    full_refreshes: int = 0
    elapsed_seconds: float = 0.0


def moen_step_factor(
    sigma_prev: np.ndarray, sigma_next: np.ndarray, n_next: int
) -> np.ndarray:
    """Per-subsequence multiplicative factors ``sqrt(a_i * b_min)``.

    ``sigma_prev`` / ``sigma_next`` are the window standard deviations at
    lengths ``l`` and ``l+1``; ``n_next`` the number of windows at l+1.
    """
    a = sigma_prev[:n_next] / np.maximum(sigma_next[:n_next], CONSTANT_EPS)
    b_min = float(a.min()) if a.size else 1.0
    return np.sqrt(np.maximum(a * b_min, 0.0))


def moen(
    series: np.ndarray,
    l_min: int,
    l_max: int,
    refresh_fraction: float = 0.5,
    stats: Optional[MoenStats] = None,
    deadline: Optional[float] = None,
) -> Dict[int, MotifPair]:
    """Exact motif pair per length with MOEN's pruning strategy.

    ``refresh_fraction``: when more than this fraction of subsequences
    survive the lower-bound prune, fall back to a full matrix profile for
    the length (refreshing all bounds) instead of row-by-row MASS.
    ``deadline`` (absolute ``time.perf_counter()`` value) aborts slow
    runs with :class:`BudgetExceededError` for DNF reporting.
    """
    ctx = ensure_context(series, min_length=8)
    t = ctx.series
    if l_min > l_max:
        raise InvalidParameterError(f"l_min ({l_min}) must not exceed l_max ({l_max})")
    start = time.perf_counter()
    result: Dict[int, MotifPair] = {}

    mp = stomp(t, l_min, context=ctx)
    result[l_min] = mp.motif_pair()
    lower = mp.profile.copy()
    lower[~np.isfinite(lower)] = np.inf
    _, sigma_prev = ctx.moving_mean_std(l_min)

    for length in range(l_min + 1, l_max + 1):
        if deadline is not None and time.perf_counter() > deadline:
            raise BudgetExceededError(
                f"moen exceeded its deadline at length {length}"
            )
        n_subs = t.size - length + 1
        mu, sigma = ctx.moving_mean_std(length)
        # Carry the per-row NN lower bounds one length forward.
        factors = moen_step_factor(sigma_prev, sigma, n_subs)
        lower = lower[:n_subs] * factors
        sigma_prev = sigma

        # Upper bound: the previous motif pair, extended by one point.
        prev = result[length - 1]
        zone = exclusion_zone_half_width(length)
        best_a, best_b = prev.a, prev.b
        if best_b + length <= t.size and abs(best_a - best_b) >= zone:
            bsf = znormalized_distance(
                t[best_a : best_a + length], t[best_b : best_b + length]
            )
        else:
            bsf = np.inf
        best_pair = (best_a, best_b) if np.isfinite(bsf) else None

        candidates = np.where(lower < bsf)[0]
        if stats is not None:
            stats.lengths.append(length)
            stats.candidate_counts.append(int(candidates.size))
        if candidates.size > refresh_fraction * n_subs:
            # Bound too loose: refresh everything (MOEN's worst case).
            mp = stomp(t, length, context=ctx)
            result[length] = mp.motif_pair()
            lower = mp.profile.copy()
            lower[~np.isfinite(lower)] = np.inf
            if stats is not None:
                stats.full_refreshes += 1
            continue

        for row in candidates:
            row = int(row)
            profile = mass_with_stats(t, row, length, mu, sigma, context=ctx)
            apply_exclusion_zone(profile, row, zone)
            j = int(np.argmin(profile))
            exact = float(profile[j])
            lower[row] = exact if np.isfinite(exact) else np.inf
            if exact < bsf:
                bsf = exact
                best_pair = (row, j)
        if best_pair is None:
            raise InvalidParameterError(
                f"no non-trivial motif pair exists at length {length}"
            )
        result[length] = MotifPair.build(best_pair[0], best_pair[1], length, bsf)

    if stats is not None:
        stats.elapsed_seconds = time.perf_counter() - start
    return result
