"""Series and result I/O.

* :func:`load_series` — one-column text/CSV (optionally a chosen column
  of a multi-column file) or ``.npy``.
* :func:`save_series` — the reverse.
* :func:`result_to_dict` / :func:`save_result_json` — serialize a
  VALMOD run (per-length motifs, VALMP summary, run statistics) to
  JSON for downstream tooling.
* :func:`motif_sets_to_dict` — the same for Problem-2 output.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Union

import numpy as np

from repro.core.valmod import ValmodResult
from repro.distance.znorm import as_series
from repro.exceptions import InvalidParameterError, InvalidSeriesError
from repro.types import MotifSet

__all__ = [
    "load_series",
    "save_series",
    "result_to_dict",
    "save_result_json",
    "motif_sets_to_dict",
]

PathLike = Union[str, Path]


def load_series(
    path: PathLike,
    column: Optional[int] = None,
    delimiter: Optional[str] = None,
) -> np.ndarray:
    """Load a 1-D series from ``.npy`` or a text/CSV file.

    Multi-column text files require ``column``; single-column files load
    directly.
    """
    path = Path(path)
    if not path.exists():
        raise InvalidSeriesError(f"no such file: {path}")
    if path.suffix == ".npy":
        data = np.load(path)
    else:
        data = np.loadtxt(path, delimiter=delimiter, ndmin=2)
        if data.shape[1] == 1 and column is None:
            data = data[:, 0]
        elif column is not None:
            if not 0 <= column < data.shape[1]:
                raise InvalidParameterError(
                    f"column {column} out of range for {data.shape[1]} columns"
                )
            data = data[:, column]
        else:
            raise InvalidParameterError(
                f"{path} has {data.shape[1]} columns; pass column=<index>"
            )
    return as_series(np.ravel(data) if np.ndim(data) > 1 else data)


def save_series(path: PathLike, series: np.ndarray) -> None:
    """Save a series as ``.npy`` or one-column text, by extension."""
    path = Path(path)
    t = as_series(series, min_length=1)
    if path.suffix == ".npy":
        np.save(path, t)
    else:
        np.savetxt(path, t)


def result_to_dict(result: ValmodResult) -> Dict:
    """JSON-ready dictionary of a VALMOD run."""
    return {
        "l_min": result.l_min,
        "l_max": result.l_max,
        "p": result.p,
        "motif_pairs": {
            str(length): {
                "a": pair.a,
                "b": pair.b,
                "distance": pair.distance,
                "normalized_distance": pair.normalized_distance,
            }
            for length, pair in sorted(result.motif_pairs.items())
        },
        "best": {
            "length": result.best_motif_pair().length,
            "a": result.best_motif_pair().a,
            "b": result.best_motif_pair().b,
            "normalized_distance": result.best_motif_pair().normalized_distance,
        },
        "stats": {
            "total_seconds": result.stats.total_seconds,
            "fast_lengths": result.stats.n_fast_lengths,
            "partial_recomputes": result.stats.n_partial_recomputes,
            "full_recomputes": result.stats.n_full_recomputes,
        },
    }


def save_result_json(path: PathLike, result: ValmodResult) -> None:
    """Write a VALMOD run to a JSON file."""
    Path(path).write_text(json.dumps(result_to_dict(result), indent=2) + "\n")


def motif_sets_to_dict(sets: List[MotifSet]) -> List[Dict]:
    """JSON-ready list of motif sets."""
    return [
        {
            "length": ms.length,
            "radius": ms.radius,
            "frequency": ms.frequency,
            "seed": {"a": ms.pair.a, "b": ms.pair.b,
                     "distance": ms.pair.distance},
            "members": list(ms.members),
        }
        for ms in sets
    ]
