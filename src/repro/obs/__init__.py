"""``repro.obs`` — the observability layer.

A zero-dependency tracer (timing spans, monotonic counters, gauges) the
kernels report into, plus report builders that turn the recorded state
into the JSON/pretty output of ``repro.cli --trace``.  Disabled by
default; enable with ``REPRO_TRACE=1`` or at runtime via
:func:`tracing` / the ``trace=`` kwargs.  See ``docs/OBSERVABILITY.md``
for the counter catalog and the span naming scheme.

Layering (enforced by lint rule R007): this package imports only the
standard library and :mod:`repro.exceptions`, so every other layer can
``from repro import obs`` without risking an import cycle; conversely
the foundation modules ``repro.types`` / ``repro.exceptions`` must
never import it.

Every name recorded through this package is declared in
:mod:`repro.obs.registry`, the single source of truth the derived
metrics, docs, and lint rule R010 all consume.
"""

from repro.obs import registry
from repro.obs.report import (
    build_report,
    derived_metrics,
    format_report,
    report_from_json,
    report_to_json,
)
from repro.obs.tracer import (
    TRACE_ENV,
    Tracer,
    add,
    disable,
    enable,
    enabled,
    gauge,
    get_tracer,
    merge,
    reset,
    snapshot,
    span,
    tracing,
    worker_begin,
    worker_snapshot,
)

__all__ = [
    "TRACE_ENV",
    "Tracer",
    "add",
    "build_report",
    "derived_metrics",
    "disable",
    "enable",
    "enabled",
    "format_report",
    "gauge",
    "get_tracer",
    "merge",
    "registry",
    "report_from_json",
    "report_to_json",
    "reset",
    "snapshot",
    "span",
    "tracing",
    "worker_begin",
    "worker_snapshot",
]
