"""Zero-dependency tracer: counters, gauges, and timing spans.

The observability layer the kernels report into.  Design constraints,
in order:

* **No overhead when off.**  Every recording method starts with a plain
  ``if not self.enabled: return``; :meth:`Tracer.span` returns a
  preallocated singleton, so the disabled hot path allocates nothing.
* **Thread-safe.**  One lock guards the shared dictionaries; span
  nesting state is thread-local, so concurrent threads interleave
  without corrupting each other's span paths.
* **Process-aware.**  Worker processes call :func:`worker_begin` at
  task start and ship a :func:`worker_snapshot` back with their result;
  the parent folds it in with :func:`merge`.  Counters and span timings
  add, gauges take the maximum, and the set of contributing PIDs is
  tracked so a report can show how many processes fed it.
* **Stdlib only.**  This module imports nothing from :mod:`repro`, so
  any layer — including :mod:`repro.types` helpers' callers — can
  instrument itself without creating an import cycle (enforced by lint
  rule R007).

The global tracer starts enabled when ``REPRO_TRACE=1`` is set in the
environment; :func:`tracing` toggles it at runtime (the ``trace=``
kwarg surface).
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Mapping, Optional, Set, Union

__all__ = [
    "TRACE_ENV",
    "Tracer",
    "add",
    "disable",
    "enable",
    "enabled",
    "gauge",
    "get_tracer",
    "merge",
    "reset",
    "snapshot",
    "span",
    "tracing",
    "worker_begin",
    "worker_snapshot",
]

#: environment variable that switches the global tracer on at import.
TRACE_ENV = "REPRO_TRACE"


def _env_enabled() -> bool:
    return os.environ.get(TRACE_ENV, "") == "1"


class _NullSpan:
    """No-op context manager returned by :meth:`Tracer.span` when off.

    A module-level singleton: entering it is two attribute lookups and
    zero allocations, which is what the no-op overhead bound relies on.
    """

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> None:
        return None


_NULL_SPAN = _NullSpan()


class _Span:
    """One live timing span, recorded under its ``/``-joined nesting path."""

    __slots__ = ("_tracer", "_name", "_start")

    def __init__(self, tracer: "Tracer", name: str) -> None:
        self._tracer = tracer
        self._name = name
        self._start = 0.0

    def __enter__(self) -> "_Span":
        self._tracer._push(self._name)
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        elapsed = time.perf_counter() - self._start
        self._tracer._pop_record(elapsed)


SpanLike = Union[_Span, _NullSpan]


class Tracer:
    """Thread-safe store of monotonic counters, gauges, and timing spans.

    ``enabled`` is a plain attribute consulted on every recording call;
    flipping it is the runtime on/off switch.  Counter and span names are
    dotted strings (``listdp.hits``, ``engine.stomp``); nested spans
    record under their full path (``compute_mp/block``), so a report
    distinguishes time in a stage from time in its sub-stages.
    """

    def __init__(self, enabled: Optional[bool] = None) -> None:
        self.enabled: bool = _env_enabled() if enabled is None else bool(enabled)
        self._lock = threading.Lock()
        self._local = threading.local()
        self._counters: Dict[str, int] = {}
        self._gauges: Dict[str, float] = {}
        # span path -> [count, total seconds]
        self._spans: Dict[str, List[float]] = {}
        self._pids: Set[int] = {os.getpid()}

    # -- recording (hot path) ------------------------------------------

    def add(self, name: str, value: int = 1) -> None:
        """Increment counter ``name`` by ``value`` (no-op when disabled)."""
        if not self.enabled:
            return
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + int(value)

    def gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` (last-write wins locally, max across merges)."""
        if not self.enabled:
            return
        with self._lock:
            self._gauges[name] = float(value)

    def span(self, name: str) -> SpanLike:
        """Context manager timing a stage; nests via a per-thread stack."""
        if not self.enabled:
            return _NULL_SPAN
        return _Span(self, name)

    # -- span bookkeeping ----------------------------------------------

    def _stack(self) -> List[str]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _push(self, name: str) -> None:
        self._stack().append(name)

    def _pop_record(self, elapsed: float) -> None:
        stack = self._stack()
        if not stack:
            # The tracer was reset while this span was open; drop the
            # sample rather than corrupt a fresh recording.
            return
        path = "/".join(stack)
        stack.pop()
        with self._lock:
            cell = self._spans.get(path)
            if cell is None:
                self._spans[path] = [1.0, elapsed]
            else:
                cell[0] += 1.0
                cell[1] += elapsed

    # -- reading -------------------------------------------------------

    def counter(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    def counters(self) -> Dict[str, int]:
        with self._lock:
            return dict(self._counters)

    def gauges(self) -> Dict[str, float]:
        with self._lock:
            return dict(self._gauges)

    def spans(self) -> Dict[str, Dict[str, float]]:
        with self._lock:
            return {
                path: {"count": int(cell[0]), "seconds": cell[1]}
                for path, cell in self._spans.items()
            }

    def snapshot(self) -> Dict[str, Any]:
        """Serializable copy of the full state (the worker->parent wire format)."""
        with self._lock:
            return {
                "pids": sorted(self._pids),
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "spans": {
                    path: [int(cell[0]), cell[1]]
                    for path, cell in self._spans.items()
                },
            }

    # -- aggregation ---------------------------------------------------

    def merge(self, snap: Optional[Mapping[str, Any]]) -> None:
        """Fold a snapshot from another tracer (typically a worker) in.

        Counters and span statistics are summed, gauges take the maximum
        (a gauge records a high-water mark across processes), PIDs union.
        ``None`` snapshots — workers that ran with tracing off — are
        ignored, so callers can merge unconditionally.
        """
        if not snap:
            return
        with self._lock:
            for name, value in snap.get("counters", {}).items():
                self._counters[name] = self._counters.get(name, 0) + int(value)
            for name, value in snap.get("gauges", {}).items():
                current = self._gauges.get(name)
                value = float(value)
                if current is None or value > current:
                    self._gauges[name] = value
            for path, (count, seconds) in snap.get("spans", {}).items():
                cell = self._spans.get(path)
                if cell is None:
                    self._spans[path] = [float(count), float(seconds)]
                else:
                    cell[0] += float(count)
                    cell[1] += float(seconds)
            self._pids.update(int(pid) for pid in snap.get("pids", ()))

    def reset(self) -> None:
        """Clear all recorded state (keeps the enabled flag)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._spans.clear()
            self._pids = {os.getpid()}
        # Fresh span stacks: a forked worker inherits the parent's
        # thread-local stack, which would otherwise prefix every worker
        # span with whatever span the parent had open at fork time.
        self._local = threading.local()


#: The process-global tracer.  Never rebound — module-level aliases below
#: are bound methods of this exact object, so call sites stay valid.
_GLOBAL = Tracer()

add = _GLOBAL.add
gauge = _GLOBAL.gauge
span = _GLOBAL.span
merge = _GLOBAL.merge
snapshot = _GLOBAL.snapshot
reset = _GLOBAL.reset


def get_tracer() -> Tracer:
    """The process-global tracer instance."""
    return _GLOBAL


def enabled() -> bool:
    """True when the global tracer is currently recording."""
    return _GLOBAL.enabled


def enable() -> None:
    _GLOBAL.enabled = True


def disable() -> None:
    _GLOBAL.enabled = False


@contextmanager
def tracing(on: bool = True) -> Iterator[Tracer]:
    """Force tracing on (or off) within a block, restoring the prior state.

    The runtime face of the ``trace=`` kwarg: ``with tracing(True):``
    records regardless of ``REPRO_TRACE``; ``with tracing(False):``
    silences an env-enabled tracer (used by overhead benchmarks).
    """
    previous = _GLOBAL.enabled
    _GLOBAL.enabled = bool(on)
    try:
        yield _GLOBAL
    finally:
        _GLOBAL.enabled = previous


def worker_begin(trace: bool) -> None:
    """Initialize the global tracer inside a worker process task.

    Workers inherit parent state under ``fork`` (stale counters, open
    span stacks) and miss kwarg-driven enablement under ``spawn`` (the
    parent may trace without ``REPRO_TRACE`` in the environment), so the
    parent ships its ``enabled`` flag in the task and every task starts
    from a clean slate.  The snapshot a worker returns is therefore the
    delta of exactly that task.
    """
    _GLOBAL.enabled = bool(trace)
    if trace:
        _GLOBAL.reset()


def worker_snapshot() -> Optional[Dict[str, Any]]:
    """The worker-side half of the aggregation protocol (None when off)."""
    if not _GLOBAL.enabled:
        return None
    return _GLOBAL.snapshot()
