"""Trace reports: structured, serializable views of a tracer's state.

A *report* is a plain dict (counters, gauges, spans, derived metrics)
built from the global tracer — the payload behind ``repro.cli --trace``,
the harness's per-run trace attachments, and the benchmark trace
sidecar files.  :func:`derived_metrics` reconstructs the paper's
evaluation quantities from the raw counters; in particular the Fig. 9
pruning power is ``submp.profiles.valid / submp.profiles.total``, which
equals the fraction of strictly positive pruning margins computed by
:func:`repro.analysis.pruning.pruning_margins` on the same input.
"""

from __future__ import annotations

import json
import re
from typing import Any, Dict, Mapping, Optional

from repro.exceptions import InvalidParameterError
from repro.obs import registry
from repro.obs.tracer import Tracer, get_tracer

__all__ = [
    "build_report",
    "derived_metrics",
    "format_report",
    "report_from_json",
    "report_to_json",
]

_PER_LENGTH = re.compile(r"^submp\.profiles\.total\.l(\d+)$")

# Counter names the derived metrics read, routed through the central
# registry (repro.obs.registry) so a typo here fails at import time
# instead of silently yielding an always-absent metric.
_SUBMP_TOTAL = registry.declared("submp.profiles.total")
_SUBMP_VALID = registry.declared("submp.profiles.valid")
_SUBMP_VALID_L = registry.declared("submp.profiles.valid.l{length}")
_DISCORDS_SWEPT = registry.declared("discords.lengths.swept")
_DISCORDS_PRUNED = registry.declared("discords.profiles.pruned")
_LISTDP_LOOKUPS = registry.declared("listdp.lookups")
_LISTDP_HITS = registry.declared("listdp.hits")
_FEATURES_HITS = registry.declared("features.cache.hits")
_FEATURES_MISSES = registry.declared("features.cache.misses")


def derived_metrics(counters: Mapping[str, int]) -> Dict[str, float]:
    """Ratios the paper's figures plot, computed from raw counters.

    ``pruning_power`` (and per-length ``pruning_power.l<N>``): fraction
    of distance profiles whose minimum the stored listDP entries certify
    exactly — Fig. 9's pruning fraction.  ``listdp_hit_rate``: fraction
    of listDP slots still usable (in range, outside the exclusion zone)
    at lookup time.  ``discords_pruning_power``: fraction of scanned
    lengths whose full profile the MAD-style discord driver skipped —
    ``discords.profiles.pruned / discords.lengths.swept`` (the two
    per-length counters partition the sweep, see
    :mod:`repro.core.discords_variable`).
    """
    out: Dict[str, float] = {}
    total = counters.get(_SUBMP_TOTAL, 0)
    if total:
        out["pruning_power"] = counters.get(_SUBMP_VALID, 0) / total
    for key, value in counters.items():
        match = _PER_LENGTH.match(key)
        if match and value:
            length = match.group(1)
            valid = counters.get(_SUBMP_VALID_L.format(length=length), 0)
            out[f"pruning_power.l{length}"] = valid / value
    swept = counters.get(_DISCORDS_SWEPT, 0)
    if swept:
        out["discords_pruning_power"] = counters.get(_DISCORDS_PRUNED, 0) / swept
    lookups = counters.get(_LISTDP_LOOKUPS, 0)
    if lookups:
        out["listdp_hit_rate"] = counters.get(_LISTDP_HITS, 0) / lookups
    feature_queries = counters.get(_FEATURES_HITS, 0) + counters.get(
        _FEATURES_MISSES, 0
    )
    if feature_queries:
        out["features_cache_hit_rate"] = (
            counters.get(_FEATURES_HITS, 0) / feature_queries
        )
    return out


def build_report(tracer: Optional[Tracer] = None) -> Dict[str, Any]:
    """Snapshot ``tracer`` (default: the global one) into a report dict."""
    t = tracer if tracer is not None else get_tracer()
    snap = t.snapshot()
    counters: Dict[str, int] = snap["counters"]
    spans: Dict[str, Any] = snap["spans"]
    return {
        "version": 1,
        "enabled": t.enabled,
        "pids": snap["pids"],
        "n_processes": len(snap["pids"]),
        "counters": {name: counters[name] for name in sorted(counters)},
        "gauges": {name: snap["gauges"][name] for name in sorted(snap["gauges"])},
        "spans": {
            path: {"count": int(spans[path][0]), "seconds": float(spans[path][1])}
            for path in sorted(spans)
        },
        "derived": derived_metrics(counters),
    }


def report_to_json(report: Mapping[str, Any], indent: int = 2) -> str:
    """Serialize a report; floats survive a round-trip exactly (repr)."""
    return json.dumps(report, indent=indent, sort_keys=True)


def report_from_json(text: str) -> Dict[str, Any]:
    """Parse a serialized report, validating the envelope."""
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise InvalidParameterError(f"not a trace report: {exc}") from exc
    if not isinstance(data, dict) or "counters" not in data:
        raise InvalidParameterError(
            "not a trace report: expected an object with a 'counters' key"
        )
    return data


def format_report(report: Mapping[str, Any]) -> str:
    """Human-readable rendering of a report (the ``--trace-format pretty`` view)."""
    lines = [
        f"trace report (processes: {report.get('n_processes', 1)})",
        "",
        "counters:",
    ]
    counters = report.get("counters", {})
    if counters:
        width = max(len(name) for name in counters)
        lines.extend(
            f"  {name.ljust(width)}  {counters[name]}" for name in sorted(counters)
        )
    else:
        lines.append("  (none)")
    gauges = report.get("gauges", {})
    if gauges:
        lines.append("")
        lines.append("gauges:")
        width = max(len(name) for name in gauges)
        lines.extend(
            f"  {name.ljust(width)}  {gauges[name]:g}" for name in sorted(gauges)
        )
    spans = report.get("spans", {})
    if spans:
        lines.append("")
        lines.append("spans:")
        width = max(len(path) for path in spans)
        for path in sorted(spans):
            cell = spans[path]
            lines.append(
                f"  {path.ljust(width)}  x{cell['count']}  {cell['seconds']:.6f}s"
            )
    derived = report.get("derived", {})
    if derived:
        lines.append("")
        lines.append("derived:")
        width = max(len(name) for name in derived)
        lines.extend(
            f"  {name.ljust(width)}  {derived[name]:.6f}" for name in sorted(derived)
        )
    return "\n".join(lines)
