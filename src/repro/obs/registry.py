"""Central catalog of observability names — the single source of truth.

Every counter, gauge, and span name the package emits at runtime is
declared here, next to a one-line description.  The names are
load-bearing: derived metrics (:mod:`repro.obs.report`), the Fig. 9
pruning-power proof, and the documentation tables all key off these
exact strings, so a typo at an emission site silently breaks a
published quantity instead of raising.  Lint rule R010 closes that
hole by checking, project-wide, that

* every name passed to ``obs.add`` / ``obs.gauge`` / ``obs.span``
  anywhere in ``src/`` is declared below (unknown names are reported
  at the emission site), and
* every declaration below is emitted somewhere (dead declarations are
  reported here), so the catalog cannot drift from the code.

Dynamic per-length families are declared as *templates* with
``{placeholder}`` segments (``submp.profiles.valid.l{length}``); a
placeholder matches one dot-free segment fragment, and an f-string
emission site matches a template structurally.  Because the rule is
static, the registry must stay statically readable: the three dicts
below hold only literal strings.

Like the rest of :mod:`repro.obs`, this module imports only the
standard library and :mod:`repro.exceptions` (lint rule R007).
"""

from __future__ import annotations

import re
from typing import Dict, Iterable, List, Optional, Tuple

from repro.exceptions import InvalidParameterError

__all__ = [
    "COUNTERS",
    "GAUGES",
    "SPANS",
    "all_names",
    "declared",
    "describe",
    "format_catalog",
    "is_declared",
    "normalize_template",
    "undeclared",
]

#: Monotonic counters, by exact name or ``{placeholder}`` template.
COUNTERS: Dict[str, str] = {
    # engines (shared across stomp/stamp/scrimp/parallel/blocked)
    "engine.rows": "profile rows an engine processed",
    "engine.cells": "distance cells an engine contributed (exclusion-adjusted)",
    "engine.n_jobs_ignored": "calls where a serial engine ignored n_jobs > 1",
    # serial stomp
    "stomp.qt_reanchor_rows": "rows recomputed exactly by the drift schedule",
    "stomp.qt_rolling_rows": "rows advanced by the rolling QT update",
    # stamp / scrimp
    "stamp.mass_rows": "rows computed via full MASS calls",
    "scrimp.diagonals": "diagonals visited by the SCRIMP schedule",
    # parallel engine
    "parallel.chunks": "diagonal chunks dispatched to workers",
    "parallel.qt_reanchor_rows": "chunk rows re-anchored exactly at chunk starts",
    # blocked kernel
    "kernel.blocks": "sheared blocks processed by blocked_stomp",
    "kernel.reanchor_rows": "anchor rows that force-started a new block",
    "kernel.f32.verified_cells": "candidate cells re-scored in float64 on the f32 path",
    # series-context caches
    "stats.cache.hits": "moving mean/std lookups served from the context cache",
    "stats.cache.misses": "moving mean/std lookups computed fresh",
    "fft.plan.build": "series rffts computed for a new plan size",
    "fft.plan.reuse": "sliding dot products that reused a cached series rfft",
    # MASS / distance layer
    "mass.profile_calls": "distance-profile evaluations via MASS",
    "mass.fft_calls": "sliding dot products computed through the FFT path",
    "mass.direct_dot_calls": "sliding dot products computed by direct correlation",
    # compute_mp
    "compute_mp.rows": "rows processed by the row-blocked reference driver",
    # listDP store (VALMOD partial profiles)
    "listdp.rows_filled": "listDP rows populated with best-entry lists",
    "listdp.entries_stored": "listDP entries stored across all rows",
    "listdp.entries_advanced": "listDP entries advanced to the next length",
    "listdp.lookups": "listDP slots consulted during a sub-MP update",
    "listdp.hits": "listDP slots whose stored entry stayed valid",
    "listdp.misses": "listDP slots whose stored entry had to be discarded",
    # compute_submp (Fig. 9 pruning power = valid / total)
    "submp.profiles.total": "distance profiles considered at a new length",
    "submp.profiles.total.l{length}": "per-length split of submp.profiles.total",
    "submp.profiles.valid": "profiles whose minimum the listDP entries certified",
    "submp.profiles.valid.l{length}": "per-length split of submp.profiles.valid",
    "submp.profiles.invalid": "profiles the listDP entries could not certify",
    "submp.profiles.invalid.l{length}": "per-length split of submp.profiles.invalid",
    "submp.profiles.recomputed": "profiles recomputed exactly after certification failed",
    "submp.profiles.recomputed.l{length}": "per-length split of submp.profiles.recomputed",
    # valmod driver
    "valmod.lengths.initial": "lengths solved by the initial full profile",
    "valmod.lengths.{mode}": "lengths resolved per update mode (lb-pruned/recomputed/...)",
    "valmod.lengths.full-recompute": "lengths that fell back to a full recompute",
    # variable-length discords (MAD pruning power = pruned / swept)
    "discords.lengths.swept": "lengths scanned by the pruned discord driver",
    "discords.profiles.pruned": "full profiles the upper bounds proved unnecessary",
    "discords.profiles.pruned.l{length}": "per-length split of discords.profiles.pruned",
    "discords.profiles.recomputed": "full profiles actually computed for discords",
    "discords.profiles.recomputed.l{length}": "per-length split of discords.profiles.recomputed",
    # streaming engines (fixed-length StreamingMatrixProfile and
    # variable-length StreamingValmod share the streaming.* namespace)
    "streaming.appends": "points ingested by a streaming engine",
    "streaming.lengths.updated": "per-length eager states refreshed across appends",
    "streaming.entries.evicted": "profile/VALMP entries retired by window eviction",
    "streaming.rows.repaired": "evicted-neighbor rows recomputed exactly after eviction",
    "streaming.buffer.regrows": "amortized capacity doublings of hoisted scratch buffers",
    "streaming.qt.reanchors": "trailing QT rows recomputed exactly (drift schedule)",
    "streaming.events.dropped": "change events discarded because the event queue was full",
    # features façade / store
    "features.cache.hits": "feature-store lookups served from disk",
    "features.cache.misses": "feature-store lookups that fell through to compute",
    "features.cache.corrupt": "store entries discarded as unreadable (counted as misses)",
    "features.cache.evictions": "store entries evicted by the size/mtime policy",
}

#: Gauges (last-write wins locally, max across worker merges).
GAUGES: Dict[str, str] = {
    "kernel.block_rows": "block size B the blocked kernel ran with",
}

#: Timing spans.  A span records under its ``/``-joined nesting path;
#: names declared here are the names passed to ``obs.span`` (a literal
#: ``parent/child`` name records directly under that path).
SPANS: Dict[str, str] = {
    "engine.stomp": "serial STOMP engine",
    "engine.stamp": "STAMP engine",
    "engine.scrimp": "SCRIMP engine",
    "engine.blocked_stomp": "blocked diagonal STOMP kernel",
    "engine.parallel-stomp": "parallel STOMP driver (parent side)",
    "engine.parallel-stomp/chunk": "one diagonal chunk (worker side, recorded as a path)",
    "chunk": "one diagonal chunk nested under the parallel driver",
    "compute_mp": "row-blocked reference driver",
    "compute_mp/block": "one row block (worker side, recorded as a path)",
    "block": "one row block nested under compute_mp",
    "submp.advance": "listDP advance + certification at a new length",
    "submp.recompute": "exact recomputation of uncertified profiles",
    "valmod.initial": "VALMOD initial full profile",
    "valmod.step": "one VALMOD length step",
    "valmod.full_recompute": "VALMOD full-recompute fallback",
    "discords.profile": "full profile computed by the discord driver",
    "discords.listdp": "listDP pair distances backing the discord bounds",
    "discords.advance": "per-length bound advance in the discord sweep",
    "features.extract": "one extract_features call",
    "features.valmod": "VALMP construction inside the façade",
    "features.motif_sets": "motif-set extraction inside the façade",
    "features.discords": "fixed-length discords inside the façade",
    "features.discords_variable": "variable-length discords inside the façade",
    "features.chains": "chain discovery inside the façade",
    "features.segmentation": "FLUSS segmentation inside the façade",
    "features.annotation": "annotation vectors inside the façade",
    "features.store": "one feature-store read or write",
    "streaming.append": "one streaming append (eager per-length update)",
    "streaming.materialize.motifs": "batch VALMOD run materializing streaming motifs",
    "streaming.materialize.discords": "warm-start pruned discord materialization",
}

_KINDS: Dict[str, Dict[str, str]] = {
    "counter": COUNTERS,
    "gauge": GAUGES,
    "span": SPANS,
}

#: what one ``{placeholder}`` may expand to: a dot-free fragment.
_PLACEHOLDER_PATTERN = r"[A-Za-z0-9_\-]+"

_PLACEHOLDER_RE = re.compile(r"\{[A-Za-z0-9_]*\}")


def normalize_template(name: str) -> str:
    """Canonical form of a template: every ``{placeholder}`` becomes ``{}``.

    Both registry declarations and f-string emission sites normalize to
    this form, so structural equality is one string comparison.
    """
    return _PLACEHOLDER_RE.sub("{}", name)


def _template_regex(template: str) -> "re.Pattern[str]":
    parts = _PLACEHOLDER_RE.split(template)
    pattern = _PLACEHOLDER_PATTERN.join(re.escape(part) for part in parts)
    return re.compile(f"^{pattern}$")


def _kind_table(kind: Optional[str]) -> List[Tuple[str, Dict[str, str]]]:
    if kind is None:
        return list(_KINDS.items())
    table = _KINDS.get(kind)
    if table is None:
        raise InvalidParameterError(
            f"unknown obs name kind {kind!r}; expected one of {sorted(_KINDS)}"
        )
    return [(kind, table)]


def is_declared(name: str, kind: Optional[str] = None) -> bool:
    """True when ``name`` matches a declaration (exact or template).

    ``name`` may itself be a template (``submp.profiles.valid.l{}``), in
    which case it matches structurally; a concrete runtime name
    (``submp.profiles.valid.l48``) matches the template's expansion.
    """
    wanted = normalize_template(name)
    for _, table in _kind_table(kind):
        for declared_name in table:
            if normalize_template(declared_name) == wanted:
                return True
            if "{" in declared_name and _template_regex(declared_name).match(name):
                return True
    return False


def declared(name: str, kind: str = "counter") -> str:
    """Return ``name`` unchanged, asserting it is declared.

    Consumers that build derived quantities from counter names route
    them through this helper so a typo fails at import time instead of
    silently producing an absent metric.
    """
    if not is_declared(name, kind):
        raise InvalidParameterError(
            f"obs {kind} name {name!r} is not declared in repro.obs.registry"
        )
    return name


def describe(name: str, kind: Optional[str] = None) -> Optional[str]:
    """The declared description for ``name``, or None when undeclared."""
    wanted = normalize_template(name)
    for _, table in _kind_table(kind):
        for declared_name, text in table.items():
            if normalize_template(declared_name) == wanted:
                return text
            if "{" in declared_name and _template_regex(declared_name).match(name):
                return text
    return None


def all_names(kind: Optional[str] = None) -> List[str]:
    """Every declared name (or only those of ``kind``), sorted."""
    names: List[str] = []
    for _, table in _kind_table(kind):
        names.extend(table)
    return sorted(names)


def undeclared(names: Iterable[str], kind: Optional[str] = None) -> List[str]:
    """The subset of ``names`` with no matching declaration, sorted."""
    return sorted({name for name in names if not is_declared(name, kind)})


def format_catalog() -> str:
    """Markdown tables of the full catalog (doc-generation surface)."""
    sections = []
    for kind, table in _KINDS.items():
        lines = [f"### {kind.capitalize()}s", "", "| name | meaning |", "| --- | --- |"]
        for name in sorted(table):
            lines.append(f"| `{name}` | {table[name]} |")
        sections.append("\n".join(lines))
    return "\n\n".join(sections)
