"""Optionally-enabled runtime contracts for the public numerical API.

Static rules catch code shapes; these decorators catch *values*.  Each
public entry point declares parameter and result contracts (shape, dtype,
finiteness, domain).  By default the decorators are free: unless the
environment variable ``REPRO_CONTRACTS`` is ``"1"`` at import time, they
return the function unchanged — zero wrapper, zero overhead.  With
``REPRO_CONTRACTS=1`` every decorated call validates its inputs and
result and raises :class:`repro.exceptions.ContractViolationError` on a
violation (series-shaped predicates raise the
:class:`repro.exceptions.SeriesContractViolationError` subclass, which
is also an :class:`repro.exceptions.InvalidSeriesError`).

Usage::

    @require(series=series_like(min_length=4), length=positive_int())
    @ensure(no_nan_profile)
    def stomp(series, length): ...

Predicates are plain callables returning ``None`` when satisfied or a
human-readable complaint string when not, so they compose and test
trivially.
"""

from __future__ import annotations

import functools
import inspect
import os
from typing import Any, Callable, Optional, Sequence, Tuple, Type, TypeVar, Union

import numpy as np

from repro.exceptions import ContractViolationError, SeriesContractViolationError

__all__ = [
    "CONTRACTS_ENV",
    "Contract",
    "contracts_enabled",
    "require",
    "ensure",
    "series_like",
    "float64_array",
    "finite_array",
    "positive_int",
    "int_at_least",
    "number_in",
    "instance_of",
    "optional",
    "no_nan_profile",
]

#: environment knob: set to "1" to activate contract checking at import.
CONTRACTS_ENV = "REPRO_CONTRACTS"

#: a predicate returns None when satisfied, else a complaint string.
Predicate = Callable[[Any], Optional[str]]
PredicateSpec = Union[Predicate, Sequence[Predicate]]

F = TypeVar("F", bound=Callable[..., Any])


def contracts_enabled() -> bool:
    """True when the ``REPRO_CONTRACTS`` environment knob is on."""
    return os.environ.get(CONTRACTS_ENV, "") == "1"


# ---------------------------------------------------------------------------
# Predicates
# ---------------------------------------------------------------------------


class Contract:
    """A predicate bundled with the error class its violations raise.

    Plain function predicates raise :class:`ContractViolationError`;
    wrapping one in a ``Contract`` lets a domain pick a more specific
    subclass, so ``except`` clauses written against the ordinary
    in-function validation behave identically with contracts on or off.
    """

    def __init__(
        self,
        check: Predicate,
        error_class: Type[ContractViolationError] = ContractViolationError,
    ) -> None:
        self.check = check
        self.error_class = error_class

    def __call__(self, value: Any) -> Optional[str]:
        return self.check(value)


def _error_class(pred: Predicate) -> Type[ContractViolationError]:
    if isinstance(pred, Contract):
        return pred.error_class
    return ContractViolationError


def series_like(min_length: int = 2) -> Predicate:
    """A 1-D finite numeric array-like with at least ``min_length`` points."""

    def check(value: Any) -> Optional[str]:
        try:
            arr = np.asarray(value, dtype=np.float64)
        except (TypeError, ValueError):
            return f"not convertible to a float array: {type(value).__name__}"
        if arr.ndim != 1:
            return f"expected a 1-D series, got ndim={arr.ndim}"
        if arr.size < min_length:
            return f"series has {arr.size} points, need at least {min_length}"
        if not np.isfinite(arr).all():
            return "series contains NaN or infinite values"
        return None

    return Contract(check, SeriesContractViolationError)


def float64_array(ndim: Optional[int] = None) -> Predicate:
    """A NumPy array of dtype float64 (optionally of fixed ndim)."""

    def check(value: Any) -> Optional[str]:
        if not isinstance(value, np.ndarray):
            return f"expected an ndarray, got {type(value).__name__}"
        if value.dtype != np.float64:
            return f"expected dtype float64, got {value.dtype}"
        if ndim is not None and value.ndim != ndim:
            return f"expected ndim={ndim}, got {value.ndim}"
        return None

    return Contract(check, SeriesContractViolationError)


def finite_array() -> Predicate:
    """An array-like with no NaN/inf entries."""

    def check(value: Any) -> Optional[str]:
        arr = np.asarray(value, dtype=np.float64)
        if not np.isfinite(arr).all():
            return "array contains NaN or infinite values"
        return None

    return Contract(check, SeriesContractViolationError)


def positive_int() -> Predicate:
    """A positive integer (NumPy integer scalars count)."""

    def check(value: Any) -> Optional[str]:
        if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
            return f"expected an int, got {type(value).__name__}"
        if int(value) <= 0:
            return f"expected a positive int, got {int(value)}"
        return None

    return check


def int_at_least(minimum: int) -> Predicate:
    """An integer no smaller than ``minimum``."""

    def check(value: Any) -> Optional[str]:
        if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
            return f"expected an int, got {type(value).__name__}"
        if int(value) < minimum:
            return f"expected an int >= {minimum}, got {int(value)}"
        return None

    return check


def number_in(
    low: float, high: float, open_low: bool = False, open_high: bool = False
) -> Predicate:
    """A real number inside the given (optionally open) interval."""

    def check(value: Any) -> Optional[str]:
        if isinstance(value, bool) or not isinstance(
            value, (int, float, np.integer, np.floating)
        ):
            return f"expected a number, got {type(value).__name__}"
        x = float(value)
        lo_ok = x > low if open_low else x >= low
        hi_ok = x < high if open_high else x <= high
        if not (lo_ok and hi_ok):
            lo_b = "(" if open_low else "["
            hi_b = ")" if open_high else "]"
            return f"expected a value in {lo_b}{low}, {high}{hi_b}, got {x}"
        return None

    return check


def instance_of(*types: type) -> Predicate:
    """An instance of any of the given types."""

    def check(value: Any) -> Optional[str]:
        if not isinstance(value, types):
            names = ", ".join(t.__name__ for t in types)
            return f"expected {names}, got {type(value).__name__}"
        return None

    return check


def optional(spec: PredicateSpec) -> Predicate:
    """Accept ``None``, otherwise delegate to the wrapped predicate(s)."""
    preds = _as_predicates(spec)

    def check(value: Any) -> Optional[str]:
        if value is None:
            return None
        for pred in preds:
            msg = pred(value)
            if msg is not None:
                return msg
        return None

    classes = {_error_class(pred) for pred in preds}
    if len(classes) == 1:
        return Contract(check, classes.pop())
    return check


def no_nan_profile(result: Any) -> Optional[str]:
    """Result contract: a MatrixProfile-like result must never contain NaN.

    ``inf`` is legitimate (untouched entries of anytime runs); NaN always
    means a kernel invariant was violated upstream.
    """
    profile = getattr(result, "profile", None)
    if profile is None:
        return "result has no 'profile' attribute"
    if bool(np.isnan(np.asarray(profile)).any()):
        return "profile contains NaN entries"
    return None


# ---------------------------------------------------------------------------
# Decorators
# ---------------------------------------------------------------------------


def _as_predicates(spec: PredicateSpec) -> Tuple[Predicate, ...]:
    if callable(spec):
        return (spec,)
    return tuple(spec)


def require(
    _enabled: Optional[bool] = None, **param_specs: PredicateSpec
) -> Callable[[F], F]:
    """Validate named parameters on call when contracts are enabled.

    ``_enabled`` overrides the environment knob (used by the tests); the
    default consults ``REPRO_CONTRACTS`` once, at decoration time, so a
    disabled contract costs nothing at call time.
    """
    enabled = contracts_enabled() if _enabled is None else _enabled

    def decorate(fn: F) -> F:
        if not enabled:
            return fn
        sig = inspect.signature(fn)
        for name in param_specs:
            if name not in sig.parameters:
                raise ContractViolationError(
                    f"{fn.__qualname__}: contract names unknown parameter {name!r}"
                )
        specs = {name: _as_predicates(s) for name, s in param_specs.items()}

        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            bound = sig.bind(*args, **kwargs)
            bound.apply_defaults()
            for name, preds in specs.items():
                value = bound.arguments.get(name)
                for pred in preds:
                    msg = pred(value)
                    if msg is not None:
                        raise _error_class(pred)(
                            f"contract violated in {fn.__qualname__}(): "
                            f"parameter {name!r}: {msg}"
                        )
            return fn(*args, **kwargs)

        return wrapper  # type: ignore[return-value]

    return decorate


def ensure(
    spec: PredicateSpec, _enabled: Optional[bool] = None
) -> Callable[[F], F]:
    """Validate the return value when contracts are enabled."""
    enabled = contracts_enabled() if _enabled is None else _enabled
    preds = _as_predicates(spec)

    def decorate(fn: F) -> F:
        if not enabled:
            return fn

        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            result = fn(*args, **kwargs)
            for pred in preds:
                msg = pred(result)
                if msg is not None:
                    raise _error_class(pred)(
                        f"contract violated in {fn.__qualname__}(): result: {msg}"
                    )
            return result

        return wrapper  # type: ignore[return-value]

    return decorate
