"""Intraprocedural dataflow for lint rules: CFG + reaching definitions.

The syntactic rules (R001–R009) match code shapes; the dataflow rules
(R012) need *provenance*: which assignments can reach a use, so that a
variable rebound from a float32 scratch value to a float64 recompute is
not flagged at its float64 uses.  This module provides exactly the
machinery that takes:

* :func:`build_cfg` — a statement-level control-flow graph for one
  function body, covering ``if``/``while``/``for``/``try``/``with``,
  ``break``/``continue``/``return``/``raise``, and ``match``;
* :class:`ReachingDefinitions` — the classic forward may-analysis over
  that graph (gen/kill per statement, worklist to a fixpoint).
  Definitions include plain and augmented assignments, ``for``/``with``
  targets, function parameters, and — important for NumPy kernels —
  ``out=name`` keyword arguments, which redefine their target in place;
* :class:`TaintAnalysis` — a taint fixpoint on top of reaching
  definitions.  A rule supplies a *producer* predicate (expressions
  that introduce taint) and sets of *sanitizer* callables/attributes
  (index-producing and shape-probing operations whose results do not
  carry the tainted value); the analysis answers "can this expression,
  at this statement, evaluate to a tainted value?".

Everything is standard library; functions are analyzed independently
(nested ``def``/``lambda`` bodies are opaque to the enclosing graph).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple

__all__ = [
    "ControlFlowGraph",
    "Definition",
    "ReachingDefinitions",
    "TaintAnalysis",
    "build_cfg",
    "definitions_in",
    "expressions_of",
    "iter_statements",
]

FunctionNode = ast.FunctionDef


@dataclass(frozen=True)
class Definition:
    """One definition site: ``name`` bound at ``stmt`` (value may be None).

    ``value`` is the defining expression when one exists — the RHS of an
    assignment, the iterable of a ``for``, the context expression of a
    ``with``, or the full call for an ``out=name`` in-place definition.
    Parameters and ``except ... as name`` bindings have ``value=None``.
    """

    index: int
    name: str
    stmt: Optional[ast.stmt]
    value: Optional[ast.expr]


@dataclass
class _Node:
    """One CFG node: a single simple statement or a control header."""

    index: int
    stmt: Optional[ast.stmt]
    succs: List[int] = field(default_factory=list)


class ControlFlowGraph:
    """Statement-level CFG for one function body."""

    def __init__(self) -> None:
        self.nodes: List[_Node] = []
        self.entry: int = self._new(None)
        self.exit: int = self._new(None)
        self.node_of_stmt: Dict[int, int] = {}

    def _new(self, stmt: Optional[ast.stmt]) -> int:
        node = _Node(index=len(self.nodes), stmt=stmt)
        self.nodes.append(node)
        if stmt is not None:
            self.node_of_stmt[id(stmt)] = node.index
        return node.index

    def _edge(self, src: int, dst: int) -> None:
        if dst not in self.nodes[src].succs:
            self.nodes[src].succs.append(dst)

    def node_for(self, stmt: ast.stmt) -> Optional[int]:
        return self.node_of_stmt.get(id(stmt))

    def predecessors(self) -> Dict[int, List[int]]:
        preds: Dict[int, List[int]] = {node.index: [] for node in self.nodes}
        for node in self.nodes:
            for succ in node.succs:
                preds[succ].append(node.index)
        return preds


def _is_opaque(stmt: ast.stmt) -> bool:
    return isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef))


def build_cfg(fn: FunctionNode) -> ControlFlowGraph:
    """Build the CFG of ``fn``'s body (nested defs are single nodes)."""
    cfg = ControlFlowGraph()
    # loop stack: (continue_target, break_targets accumulator)
    loop_stack: List[Tuple[int, List[int]]] = []

    def chain(body: Sequence[ast.stmt], heads: List[int]) -> List[int]:
        """Wire ``body`` after every node in ``heads``; return the exits."""
        current = list(heads)
        for stmt in body:
            current = visit(stmt, current)
            if not current:
                break  # unreachable fallthrough (return/raise/break...)
        return current

    def visit(stmt: ast.stmt, preds: List[int]) -> List[int]:
        node = cfg._new(stmt)
        for pred in preds:
            cfg._edge(pred, node)
        if isinstance(stmt, ast.If):
            then_exits = chain(stmt.body, [node])
            else_exits = chain(stmt.orelse, [node]) if stmt.orelse else [node]
            return then_exits + else_exits
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            breaks: List[int] = []
            loop_stack.append((node, breaks))
            body_exits = chain(stmt.body, [node])
            for exit_node in body_exits:
                cfg._edge(exit_node, node)  # back edge
            loop_stack.pop()
            after = chain(stmt.orelse, [node]) if stmt.orelse else [node]
            return after + breaks
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return chain(stmt.body, [node])
        if isinstance(stmt, ast.Try):
            body_exits = chain(stmt.body, [node])
            # An exception may surface before any body statement ran, or
            # after all of them: handlers hang off both ends (a coarse
            # but sound may-analysis approximation).
            handler_exits: List[int] = []
            for handler in stmt.handlers:
                handler_node = cfg._new(handler_stmt(handler))
                cfg._edge(node, handler_node)
                for exit_node in body_exits:
                    cfg._edge(exit_node, handler_node)
                handler_exits.extend(chain(handler.body, [handler_node]))
            else_exits = (
                chain(stmt.orelse, body_exits) if stmt.orelse else body_exits
            )
            exits = else_exits + handler_exits
            if stmt.finalbody:
                return chain(stmt.finalbody, exits or [node])
            return exits
        if isinstance(stmt, ast.Match):
            case_exits: List[int] = [node]  # no case may match
            for case in stmt.cases:
                case_exits.extend(chain(case.body, [node]))
            return case_exits
        if isinstance(stmt, (ast.Return, ast.Raise)):
            cfg._edge(node, cfg.exit)
            return []
        if isinstance(stmt, ast.Break):
            if loop_stack:
                loop_stack[-1][1].append(node)
            return []
        if isinstance(stmt, ast.Continue):
            if loop_stack:
                cfg._edge(node, loop_stack[-1][0])
            return []
        return [node]

    exits = chain(fn.body, [cfg.entry])
    for exit_node in exits:
        cfg._edge(exit_node, cfg.exit)
    return cfg


def handler_stmt(handler: ast.excepthandler) -> ast.stmt:
    """A synthetic ``stmt`` standing in for an except clause header.

    ``ast.excepthandler`` is not a statement, but the CFG wants one node
    per binding site (``except E as name`` defines ``name``).  A ``Pass``
    carrying the handler's location and a back-pointer serves; the stub
    lives in the CFG node, so no extra bookkeeping is needed.
    """
    stub = ast.Pass()
    stub.lineno = handler.lineno
    stub.col_offset = handler.col_offset
    stub._repro_handler = handler  # type: ignore[attr-defined]
    return stub


def _target_names(target: ast.expr) -> Iterator[str]:
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, (ast.Tuple, ast.List)):
        for elt in target.elts:
            yield from _target_names(elt)
    elif isinstance(target, ast.Starred):
        yield from _target_names(target.value)


def _walk_expr_shallow(node: ast.AST) -> Iterator[ast.AST]:
    """Walk an expression without descending into lambda/comprehension bodies."""
    yield node
    if isinstance(node, ast.Lambda):
        return
    for child in ast.iter_child_nodes(node):
        yield from _walk_expr_shallow(child)


def definitions_in(stmt: ast.stmt) -> Iterator[Tuple[str, Optional[ast.expr]]]:
    """The (name, defining value) pairs one statement creates."""
    handler = getattr(stmt, "_repro_handler", None)
    if handler is not None and handler.name:
        yield handler.name, None
        return
    if isinstance(stmt, ast.Assign):
        for target in stmt.targets:
            for name in _target_names(target):
                yield name, stmt.value
    elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
        for name in _target_names(stmt.target):
            yield name, stmt.value
    elif isinstance(stmt, ast.AugAssign):
        for name in _target_names(stmt.target):
            yield name, stmt.value
    elif isinstance(stmt, (ast.For, ast.AsyncFor)):
        for name in _target_names(stmt.target):
            yield name, stmt.iter
    elif isinstance(stmt, (ast.With, ast.AsyncWith)):
        for item in stmt.items:
            if item.optional_vars is not None:
                for name in _target_names(item.optional_vars):
                    yield name, item.context_expr
    elif isinstance(stmt, (ast.Import, ast.ImportFrom)):
        for alias in stmt.names:
            bound = (alias.asname or alias.name).split(".")[0]
            yield bound, None
    elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        yield stmt.name, None
    # NumPy in-place definitions: any call carrying out=<name> rebinds
    # that name's contents — model it as a fresh definition whose value
    # is the whole call, so taint flows from the call's inputs.
    if not _is_opaque(stmt):
        for sub in _walk_expr_iter(stmt):
            if isinstance(sub, ast.Call):
                for kw in sub.keywords:
                    if kw.arg == "out" and isinstance(kw.value, ast.Name):
                        yield kw.value.id, sub


def _walk_expr_iter(stmt: ast.stmt) -> Iterator[ast.AST]:
    """All expression nodes of one statement, excluding nested statement bodies."""
    compound_bodies = (
        ast.If,
        ast.While,
        ast.For,
        ast.AsyncFor,
        ast.With,
        ast.AsyncWith,
        ast.Try,
        ast.Match,
    )
    if isinstance(stmt, compound_bodies):
        # Only the header expressions belong to this node; body statements
        # have their own CFG nodes.
        headers: List[ast.AST] = []
        if isinstance(stmt, (ast.If, ast.While)):
            headers = [stmt.test]
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            headers = [stmt.target, stmt.iter]
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            headers = [item.context_expr for item in stmt.items]
        elif isinstance(stmt, ast.Match):
            headers = [stmt.subject]
        for header in headers:
            yield from _walk_expr_shallow(header)
        return
    for child in ast.iter_child_nodes(stmt):
        if isinstance(child, ast.expr):
            yield from _walk_expr_shallow(child)


def expressions_of(stmt: ast.stmt) -> Iterator[ast.AST]:
    """The expression nodes belonging to one CFG statement.

    For compound statements only the header expressions are yielded —
    body statements have their own CFG nodes and are visited separately,
    so a sink rule walking every statement sees each expression exactly
    once, at the statement whose reaching-definitions apply to it.
    """
    return _walk_expr_iter(stmt)


class ReachingDefinitions:
    """Forward may-analysis: which definitions reach each statement."""

    def __init__(self, fn: FunctionNode) -> None:
        self.fn = fn
        self.cfg = build_cfg(fn)
        self.definitions: List[Definition] = []
        self._defs_by_node: Dict[int, List[int]] = {}
        self._defs_by_name: Dict[str, List[int]] = {}

        # Parameters define their names at the entry node.
        args = fn.args
        params = (
            list(args.posonlyargs)
            + list(args.args)
            + list(args.kwonlyargs)
            + ([args.vararg] if args.vararg else [])
            + ([args.kwarg] if args.kwarg else [])
        )
        for param in params:
            self._add_def(self.cfg.entry, param.arg, None, None)

        for node in self.cfg.nodes:
            if node.stmt is None or _is_opaque(node.stmt):
                if node.stmt is not None:
                    # a nested def/class still binds its own name
                    for name, value in definitions_in(node.stmt):
                        self._add_def(node.index, name, node.stmt, value)
                continue
            for name, value in definitions_in(node.stmt):
                self._add_def(node.index, name, node.stmt, value)

        self._in_sets = self._solve()

    def _add_def(
        self,
        node_index: int,
        name: str,
        stmt: Optional[ast.stmt],
        value: Optional[ast.expr],
    ) -> None:
        definition = Definition(
            index=len(self.definitions), name=name, stmt=stmt, value=value
        )
        self.definitions.append(definition)
        self._defs_by_node.setdefault(node_index, []).append(definition.index)
        self._defs_by_name.setdefault(name, []).append(definition.index)

    def _solve(self) -> Dict[int, FrozenSet[int]]:
        gen: Dict[int, Set[int]] = {}
        kill: Dict[int, Set[int]] = {}
        for node in self.cfg.nodes:
            local = self._defs_by_node.get(node.index, [])
            gen[node.index] = set(local)
            killed: Set[int] = set()
            for def_index in local:
                name = self.definitions[def_index].name
                killed.update(self._defs_by_name[name])
            kill[node.index] = killed - gen[node.index]

        preds = self.cfg.predecessors()
        in_sets: Dict[int, Set[int]] = {n.index: set() for n in self.cfg.nodes}
        out_sets: Dict[int, Set[int]] = {
            n.index: set(gen[n.index]) for n in self.cfg.nodes
        }
        work = [node.index for node in self.cfg.nodes]
        while work:
            index = work.pop()
            new_in: Set[int] = set()
            for pred in preds[index]:
                new_in.update(out_sets[pred])
            new_out = gen[index] | (new_in - kill[index])
            in_sets[index] = new_in
            if new_out != out_sets[index]:
                out_sets[index] = new_out
                work.extend(self.cfg.nodes[index].succs)
        return {index: frozenset(values) for index, values in in_sets.items()}

    # -- queries -------------------------------------------------------

    def reaching(self, stmt: ast.stmt, name: str) -> List[Definition]:
        """Definitions of ``name`` that may reach ``stmt``."""
        node_index = self.cfg.node_for(stmt)
        if node_index is None:
            return []
        return [
            self.definitions[def_index]
            for def_index in sorted(self._in_sets[node_index])
            if self.definitions[def_index].name == name
        ]

    def statements(self) -> Iterator[ast.stmt]:
        """Every statement with a CFG node, in node order."""
        for node in self.cfg.nodes:
            if node.stmt is not None:
                yield node.stmt


class TaintAnalysis:
    """Taint fixpoint over reaching definitions.

    ``is_producer(expr)`` marks expressions that introduce taint.
    ``sanitizer_calls`` are dotted callable names whose results never
    carry a tainted *value* (index- and predicate-producing operations:
    ``np.argmax``, ``np.nonzero``, ``len`` ...); ``sanitizer_attrs``
    are attribute accesses with the same property (``.size``,
    ``.shape``).  Everything else propagates: a call's result is
    tainted when any argument is, a subscript is tainted when its base
    is, and a name is tainted when any reaching definition bound it to
    a tainted expression.
    """

    def __init__(
        self,
        fn: FunctionNode,
        is_producer: Callable[[ast.AST], bool],
        sanitizer_calls: FrozenSet[str] = frozenset(),
        sanitizer_attrs: FrozenSet[str] = frozenset(),
    ) -> None:
        self.reaching_defs = ReachingDefinitions(fn)
        self._is_producer = is_producer
        self._sanitizer_calls = sanitizer_calls
        self._sanitizer_attrs = sanitizer_attrs
        self._tainted_defs: Set[int] = set()
        self._solve()

    def _solve(self) -> None:
        changed = True
        while changed:
            changed = False
            for definition in self.reaching_defs.definitions:
                if definition.index in self._tainted_defs:
                    continue
                if definition.value is None or definition.stmt is None:
                    continue
                if self._expr_tainted(definition.value, definition.stmt):
                    self._tainted_defs.add(definition.index)
                    changed = True

    def _name_tainted(self, name: str, at: ast.stmt) -> bool:
        return any(
            definition.index in self._tainted_defs
            for definition in self.reaching_defs.reaching(at, name)
        )

    def _expr_tainted(self, expr: ast.AST, at: ast.stmt) -> bool:
        if self._is_producer(expr):
            return True
        if isinstance(expr, ast.Call):
            name = _dotted_name(expr.func)
            if name in self._sanitizer_calls:
                return False
            parts = [expr.func] + list(expr.args) + [
                kw.value for kw in expr.keywords
            ]
            return any(self._expr_tainted(part, at) for part in parts)
        if isinstance(expr, ast.Attribute):
            if expr.attr in self._sanitizer_attrs:
                return False
            return self._expr_tainted(expr.value, at)
        if isinstance(expr, ast.Name):
            return self._name_tainted(expr.id, at)
        if isinstance(expr, ast.Lambda):
            return False
        for child in ast.iter_child_nodes(expr):
            if self._expr_tainted(child, at):
                return True
        return False

    # -- queries -------------------------------------------------------

    def expr_is_tainted(self, expr: ast.AST, at: ast.stmt) -> bool:
        """Can ``expr`` (inside statement ``at``) carry a tainted value?"""
        return self._expr_tainted(expr, at)

    def has_producers(self) -> bool:
        """True when any definition in the function is tainted."""
        return bool(self._tainted_defs)

    def statements(self) -> Iterator[ast.stmt]:
        return self.reaching_defs.statements()


def _dotted_name(node: ast.AST) -> str:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def iter_statements(fn: FunctionNode) -> Iterator[ast.stmt]:
    """All statements of ``fn``'s body, excluding nested def/class bodies."""

    def walk(body: Sequence[ast.stmt]) -> Iterator[ast.stmt]:
        for stmt in body:
            yield stmt
            if _is_opaque(stmt):
                continue
            for attr in ("body", "orelse", "finalbody"):
                nested = getattr(stmt, attr, None)
                if isinstance(nested, list):
                    yield from walk(nested)
            for handler in getattr(stmt, "handlers", []) or []:
                yield from walk(handler.body)
            for case in getattr(stmt, "cases", []) or []:
                yield from walk(case.body)

    yield from walk(fn.body)
