"""`repro.lint`: whole-project static analyzer for the numerical core.

The exactness guarantees of the matrix-profile family rest on a handful of
numerical invariants — clip before ``sqrt``, guard every division by a
window deviation, centralize the exclusion-zone arithmetic, keep parallel
reductions deterministic.  This package encodes them as AST-based rules
(R001–R013) that run over the source tree and fail CI on violations::

    python -m repro.lint src/

Beyond the per-file syntactic rules, the analyzer builds a whole-project
view (:class:`~repro.lint.graph.ProjectContext`: module table, import
graph, observability emission sites) and an intraprocedural dataflow
layer (:mod:`repro.lint.dataflow`: CFG, reaching definitions, taint) for
the cross-file and provenance rules — R010 checks every emitted obs name
against :mod:`repro.obs.registry`, R012 proves no float32 value escapes
a kernel without a float64 verify.

See ``docs/LINTING.md`` for the rule catalog and the historical bug each
rule would have caught.  Runtime shape/dtype/finiteness contracts (enabled
with ``REPRO_CONTRACTS=1``) live in :mod:`repro.lint.contracts`.
"""

from __future__ import annotations

from repro.lint.base import Diagnostic, FileContext, Rule
from repro.lint.graph import ProjectContext
from repro.lint.rules import all_rules
from repro.lint.runner import lint_paths, lint_project, lint_source

__all__ = [
    "Diagnostic",
    "FileContext",
    "ProjectContext",
    "Rule",
    "all_rules",
    "lint_paths",
    "lint_project",
    "lint_source",
]
