"""Whole-project analysis context for :mod:`repro.lint`.

The per-file rules see one :class:`~repro.lint.base.FileContext` at a
time; cross-file rules (R010 obs-name-registry, R013 contract-coverage)
need the *project*: every parsed file, a module table keyed by dotted
name, the import graph, per-module export lists, and the observability
emission sites.  :class:`ProjectContext` parses the input set once and
exposes those views; rules receive it alongside the file context.

A "project" is simply the set of files handed to one lint invocation —
linting a single file builds a one-file project, so every rule runs
under the same API regardless of scope.  Rules that only make sense on
a whole tree (R010's declared-but-never-emitted direction) gate on
:attr:`ProjectContext.is_whole_package`.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.lint.base import FileContext, call_name, imported_names

__all__ = [
    "ObsEmission",
    "ProjectContext",
    "RegistryDeclarations",
    "collect_obs_emissions",
    "parse_registry_declarations",
]

#: dotted call targets that record an observability name, by kind.
_OBS_EMITTERS: Dict[str, str] = {
    "obs.add": "counter",
    "obs.gauge": "gauge",
    "obs.span": "span",
    "tracer.add": "counter",
    "tracer.gauge": "gauge",
    "tracer.span": "span",
}

#: registry module dict names, by kind (see repro/obs/registry.py).
_REGISTRY_TABLES: Dict[str, str] = {
    "COUNTERS": "counter",
    "GAUGES": "gauge",
    "SPANS": "span",
}


@dataclass(frozen=True)
class ObsEmission:
    """One ``obs.add``/``obs.gauge``/``obs.span`` call site.

    ``name`` is the literal string, or the normalized template
    (``submp.profiles.valid.l{}``) for an f-string argument; it is None
    when the argument is not statically readable (a variable), which
    R010 reports as its own violation.
    """

    kind: str
    name: Optional[str]
    is_template: bool
    node: ast.Call
    ctx: FileContext


def _fstring_template(node: ast.JoinedStr) -> Optional[str]:
    """Normalized ``{}`` template of an f-string, or None if malformed."""
    parts: List[str] = []
    for value in node.values:
        if isinstance(value, ast.Constant):
            if not isinstance(value.value, str):
                return None
            parts.append(value.value)
        else:
            parts.append("{}")
    return "".join(parts)


def collect_obs_emissions(ctx: FileContext) -> List[ObsEmission]:
    """Every observability emission call site in one file."""
    emissions: List[ObsEmission] = []
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        kind = _OBS_EMITTERS.get(call_name(node))
        if kind is None or not node.args:
            continue
        arg = node.args[0]
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            emissions.append(
                ObsEmission(
                    kind=kind, name=arg.value, is_template=False, node=node, ctx=ctx
                )
            )
        elif isinstance(arg, ast.JoinedStr):
            emissions.append(
                ObsEmission(
                    kind=kind,
                    name=_fstring_template(arg),
                    is_template=True,
                    node=node,
                    ctx=ctx,
                )
            )
        else:
            emissions.append(
                ObsEmission(kind=kind, name=None, is_template=False, node=node, ctx=ctx)
            )
    return emissions


@dataclass(frozen=True)
class RegistryDeclarations:
    """The statically parsed contents of ``repro/obs/registry.py``.

    ``names`` maps kind -> declared name -> declaration line number.
    """

    names: Dict[str, Dict[str, int]]
    ctx: FileContext

    def of_kind(self, kind: str) -> Dict[str, int]:
        return self.names.get(kind, {})


def parse_registry_declarations(
    ctx: FileContext,
) -> Optional[RegistryDeclarations]:
    """Extract COUNTERS/GAUGES/SPANS declarations from the registry module.

    Returns None when the file does not define the expected literal
    tables (R010 then reports the registry as unreadable).
    """
    names: Dict[str, Dict[str, int]] = {}
    for stmt in ctx.tree.body:
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        for target in targets:
            if not isinstance(target, ast.Name):
                continue
            kind = _REGISTRY_TABLES.get(target.id)
            if kind is None or not isinstance(value, ast.Dict):
                continue
            table: Dict[str, int] = {}
            for key in value.keys:
                if isinstance(key, ast.Constant) and isinstance(key.value, str):
                    table[key.value] = key.lineno
            names[kind] = table
    if not names:
        return None
    return RegistryDeclarations(names=names, ctx=ctx)


class ProjectContext:
    """Every file of one lint invocation, parsed once, with derived views."""

    def __init__(self, files: List[FileContext]) -> None:
        self.files = list(files)
        self.by_module: Dict[str, FileContext] = {}
        self.by_display: Dict[str, FileContext] = {}
        for ctx in self.files:
            self.by_module.setdefault(ctx.module_name, ctx)
            self.by_display[ctx.display_path] = ctx
        #: rule ids active in the current run (set by the runner before
        #: post-phase rules execute; R011 consults it).
        self.active_rule_ids: Set[str] = set()
        #: the full known rule-id universe (for unknown-id pragma checks).
        self.known_rule_ids: Set[str] = set()
        self._imports: Optional[Dict[str, Set[str]]] = None
        self._emissions: Optional[List[ObsEmission]] = None
        self._registry: Optional[RegistryDeclarations] = None
        self._registry_resolved = False

    # -- module table --------------------------------------------------

    def module(self, dotted: str) -> Optional[FileContext]:
        """The file defining module ``dotted``, if it is in the project."""
        return self.by_module.get(dotted)

    @property
    def is_whole_package(self) -> bool:
        """True when the ``repro`` package root is part of the project.

        The heuristic that separates "lint the tree" invocations (where
        global completeness checks are meaningful) from partial ones
        (single files, fixture directories).
        """
        return "repro" in self.by_module

    # -- import graph --------------------------------------------------

    @property
    def imports(self) -> Dict[str, Set[str]]:
        """module name -> set of absolute dotted names it imports."""
        if self._imports is None:
            graph: Dict[str, Set[str]] = {}
            for ctx in self.files:
                edges = graph.setdefault(ctx.module_name, set())
                for _node, name in imported_names(ctx.tree):
                    edges.add(name)
            self._imports = graph
        return self._imports

    def importers_of(self, dotted: str) -> List[FileContext]:
        """Files importing ``dotted`` (or a symbol from it)."""
        found: List[FileContext] = []
        prefix = dotted + "."
        for ctx in self.files:
            names = self.imports.get(ctx.module_name, set())
            if any(name == dotted or name.startswith(prefix) for name in names):
                found.append(ctx)
        return found

    # -- symbols -------------------------------------------------------

    def exported_names(self, ctx: FileContext) -> Optional[List[str]]:
        """The literal ``__all__`` of a module, or None when absent/dynamic."""
        for stmt in ctx.tree.body:
            if isinstance(stmt, ast.Assign) and any(
                isinstance(t, ast.Name) and t.id == "__all__" for t in stmt.targets
            ):
                try:
                    value = ast.literal_eval(stmt.value)
                except ValueError:
                    return None
                if isinstance(value, (list, tuple)) and all(
                    isinstance(item, str) for item in value
                ):
                    return list(value)
                return None
        return None

    def top_level_functions(self, ctx: FileContext) -> Dict[str, ast.FunctionDef]:
        """Module-level function definitions, by name."""
        return {
            stmt.name: stmt
            for stmt in ctx.tree.body
            if isinstance(stmt, ast.FunctionDef)
        }

    def top_level_classes(self, ctx: FileContext) -> Dict[str, ast.ClassDef]:
        """Module-level class definitions, by name."""
        return {
            stmt.name: stmt
            for stmt in ctx.tree.body
            if isinstance(stmt, ast.ClassDef)
        }

    # -- observability -------------------------------------------------

    @property
    def obs_emissions(self) -> List[ObsEmission]:
        """All emission call sites across the project, in file order."""
        if self._emissions is None:
            emissions: List[ObsEmission] = []
            for ctx in self.files:
                if ctx.skip_file:
                    continue
                emissions.extend(collect_obs_emissions(ctx))
            self._emissions = emissions
        return self._emissions

    @property
    def registry_declarations(self) -> Optional[RegistryDeclarations]:
        """Parsed registry tables when the registry module is in the project."""
        if not self._registry_resolved:
            self._registry_resolved = True
            ctx = self.module("repro.obs.registry")
            if ctx is not None:
                self._registry = parse_registry_declarations(ctx)
        return self._registry
