"""File discovery and rule dispatch for :mod:`repro.lint`."""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, List, Optional, Sequence

from repro.exceptions import InvalidParameterError
from repro.lint.base import Diagnostic, FileContext, Rule, discover_files, parse_file
from repro.lint.rules import all_rules

__all__ = ["lint_paths", "lint_source", "select_rules"]


def select_rules(
    rules: Optional[Iterable[Rule]] = None, select: Optional[Sequence[str]] = None
) -> List[Rule]:
    """Resolve the active rule set, optionally filtered by rule id."""
    active = list(rules) if rules is not None else all_rules()
    if select:
        wanted = {rule_id.strip().upper() for rule_id in select}
        unknown = wanted - {rule.rule_id for rule in active}
        if unknown:
            raise InvalidParameterError(
                f"unknown rule id(s): {', '.join(sorted(unknown))}"
            )
        active = [rule for rule in active if rule.rule_id in wanted]
    return active


def lint_source(
    source: str,
    path: str = "<string>",
    rules: Optional[Iterable[Rule]] = None,
) -> List[Diagnostic]:
    """Lint one source string (test and tooling entry point)."""
    ctx = FileContext(Path(path), source)
    diagnostics: List[Diagnostic] = []
    for rule in select_rules(rules):
        diagnostics.extend(rule.run(ctx))
    return sorted(diagnostics, key=lambda d: (d.path, d.line, d.col, d.rule_id))


def lint_paths(
    paths: Sequence[Path],
    rules: Optional[Iterable[Rule]] = None,
    select: Optional[Sequence[str]] = None,
) -> List[Diagnostic]:
    """Lint files and directories; returns diagnostics in stable order."""
    active = select_rules(rules, select)
    diagnostics: List[Diagnostic] = []
    for path in discover_files([Path(p) for p in paths]):
        try:
            ctx = parse_file(path)
        except SyntaxError as err:
            diagnostics.append(
                Diagnostic(
                    path=str(path),
                    line=err.lineno or 0,
                    col=(err.offset or 0),
                    rule_id="E000",
                    message=f"syntax error: {err.msg}",
                )
            )
            continue
        for rule in active:
            diagnostics.extend(rule.run(ctx))
    return sorted(diagnostics, key=lambda d: (d.path, d.line, d.col, d.rule_id))
