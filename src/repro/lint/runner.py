"""File discovery, project assembly, and phased rule dispatch.

One lint invocation is one *project*: every input file is parsed once
into a :class:`~repro.lint.base.FileContext`, the set is wrapped in a
:class:`~repro.lint.graph.ProjectContext`, and rules run in three
phases:

1. ``file`` rules over each file (with the project available for
   cross-file lookups), then ``project`` rules once per run;
2. central pragma filtering — the runner, not the rules, applies
   ``# repro-lint: ignore[...]`` suppressions, recording per pragma
   which rule ids actually consumed a diagnostic;
3. ``post`` rules over that suppression accounting (R011 stale-pragma),
   whose own diagnostics are pragma-filtered in turn.

Unparseable inputs become diagnostics rather than crashes: ``E000`` for
syntax errors, ``E001`` for unreadable files (permissions, encoding).
Output order is fully deterministic: (path, line, col, rule id,
message), independent of input order.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.exceptions import InvalidParameterError
from repro.lint.base import Diagnostic, FileContext, Rule, discover_files, parse_file
from repro.lint.graph import ProjectContext
from repro.lint.rules import all_rules

__all__ = ["lint_paths", "lint_project", "lint_source", "select_rules"]


def select_rules(
    rules: Optional[Iterable[Rule]] = None, select: Optional[Sequence[str]] = None
) -> List[Rule]:
    """Resolve the active rule set, optionally filtered by rule id."""
    active = list(rules) if rules is not None else all_rules()
    if select:
        wanted = {rule_id.strip().upper() for rule_id in select} - {""}
        if not wanted:
            raise InvalidParameterError("empty rule selection")
        unknown = wanted - {rule.rule_id for rule in active}
        if unknown:
            raise InvalidParameterError(
                f"unknown rule id(s): {', '.join(sorted(unknown))}"
            )
        active = [rule for rule in active if rule.rule_id in wanted]
    return active


def _sort_key(diag: Diagnostic) -> Tuple[str, int, int, str, str]:
    return (diag.path, diag.line, diag.col, diag.rule_id, diag.message)


def _filter_suppressed(
    diagnostics: Iterable[Diagnostic], project: ProjectContext
) -> List[Diagnostic]:
    """Drop pragma-suppressed diagnostics, marking the pragmas as used."""
    kept: List[Diagnostic] = []
    for diag in diagnostics:
        ctx = project.by_display.get(diag.path)
        if ctx is not None and ctx.consume(diag.line, diag.rule_id):
            continue
        kept.append(diag)
    return kept


def lint_project(
    project: ProjectContext, active: Sequence[Rule]
) -> List[Diagnostic]:
    """Run the three rule phases over an assembled project."""
    project.active_rule_ids = {rule.rule_id for rule in active}
    project.known_rule_ids = {rule.rule_id for rule in all_rules()}
    raw: List[Diagnostic] = []
    for rule in active:
        if rule.phase == "file":
            for ctx in project.files:
                raw.extend(rule.run(ctx, project))
        elif rule.phase == "project":
            raw.extend(rule.check_project(project))
    diagnostics = _filter_suppressed(raw, project)
    post: List[Diagnostic] = []
    for rule in active:
        if rule.phase == "post":
            post.extend(rule.check_project(project))
    diagnostics.extend(_filter_suppressed(post, project))
    return sorted(diagnostics, key=_sort_key)


def lint_source(
    source: str,
    path: str = "<string>",
    rules: Optional[Iterable[Rule]] = None,
) -> List[Diagnostic]:
    """Lint one source string (test and tooling entry point)."""
    ctx = FileContext(Path(path), source)
    return lint_project(ProjectContext([ctx]), select_rules(rules))


def lint_paths(
    paths: Sequence[Path],
    rules: Optional[Iterable[Rule]] = None,
    select: Optional[Sequence[str]] = None,
) -> List[Diagnostic]:
    """Lint files and directories; returns diagnostics in stable order."""
    active = select_rules(rules, select)
    contexts: List[FileContext] = []
    diagnostics: List[Diagnostic] = []
    for path in discover_files([Path(p) for p in paths]):
        try:
            contexts.append(parse_file(path))
        except SyntaxError as err:
            diagnostics.append(
                Diagnostic(
                    path=str(path),
                    line=err.lineno or 0,
                    col=(err.offset or 0),
                    rule_id="E000",
                    message=f"syntax error: {err.msg}",
                )
            )
        except (OSError, UnicodeDecodeError) as err:
            diagnostics.append(
                Diagnostic(
                    path=str(path),
                    line=0,
                    col=0,
                    rule_id="E001",
                    message=f"unreadable file: {err}",
                )
            )
    diagnostics.extend(lint_project(ProjectContext(contexts), active))
    return sorted(diagnostics, key=_sort_key)
