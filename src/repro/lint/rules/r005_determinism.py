"""R005: worker code must be deterministic and picklable.

The parallel engines promise bitwise-identical results for every worker
count.  Two code shapes silently break that promise:

* iterating a ``set`` (hash order varies across processes and runs) to
  produce ordered side effects — iterate ``sorted(...)`` instead;
* shipping a lambda or nested function to an executor — it fails to
  pickle under the *spawn* start method, so the code only works on the
  platform it was written on.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator, Optional, Set

from repro.lint.base import Diagnostic, FileContext, Rule, call_name

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lint.graph import ProjectContext

_SUBMIT_METHODS = frozenset(
    {"submit", "map", "imap", "imap_unordered", "starmap", "apply_async"}
)
_SET_CONSTRUCTORS = frozenset({"set", "frozenset"})


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and call_name(node) in _SET_CONSTRUCTORS:
        return True
    return False


class WorkerDeterminismRule(Rule):
    rule_id = "R005"
    name = "worker-determinism"
    summary = "no set-order iteration or unpicklable callables in worker code"
    rationale = (
        "set iteration order varies per process; lambdas/closures fail to "
        "pickle under spawn — both break the bitwise-parity guarantee of "
        "the parallel engines"
    )

    def applies(self, ctx: FileContext) -> bool:
        return ctx.is_worker_module

    def check(
        self, ctx: FileContext, project: Optional["ProjectContext"] = None
    ) -> Iterator[Diagnostic]:
        nested_funcs = self._nested_function_names(ctx)
        for scope in ctx.scopes:
            set_vars: Set[str] = set()
            for node in scope.walk():
                if isinstance(node, (ast.Assign, ast.AnnAssign)):
                    value = node.value
                    targets = (
                        node.targets if isinstance(node, ast.Assign) else [node.target]
                    )
                    for target in targets:
                        if isinstance(target, ast.Name) and value is not None:
                            if _is_set_expr(value):
                                set_vars.add(target.id)
                            else:
                                set_vars.discard(target.id)
                iters = []
                if isinstance(node, ast.For):
                    iters.append(node.iter)
                elif isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
                    iters.extend(gen.iter for gen in node.generators)
                for it in iters:
                    if _is_set_expr(it) or (
                        isinstance(it, ast.Name) and it.id in set_vars
                    ):
                        yield self.diag(
                            ctx,
                            it,
                            "iteration over a set in worker code; hash order "
                            "is process-dependent — iterate sorted(...) to "
                            "keep results deterministic",
                        )
                if isinstance(node, ast.Call):
                    func = node.func
                    if (
                        isinstance(func, ast.Attribute)
                        and func.attr in _SUBMIT_METHODS
                        and node.args
                    ):
                        work = node.args[0]
                        if isinstance(work, ast.Lambda):
                            yield self.diag(
                                ctx,
                                work,
                                "lambda shipped to an executor; lambdas do "
                                "not pickle under the spawn start method",
                            )
                        elif (
                            isinstance(work, ast.Name) and work.id in nested_funcs
                        ):
                            yield self.diag(
                                ctx,
                                work,
                                f"nested function {work.id!r} shipped to an "
                                "executor; closures do not pickle under "
                                "spawn — move it to module level",
                            )

    @staticmethod
    def _nested_function_names(ctx: FileContext) -> Set[str]:
        top_level: Set[str] = set()
        for stmt in ctx.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                top_level.add(stmt.name)
            elif isinstance(stmt, ast.ClassDef):
                for sub in stmt.body:
                    if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        top_level.add(sub.name)
        all_funcs = {
            node.name
            for node in ast.walk(ctx.tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        return all_funcs - top_level
