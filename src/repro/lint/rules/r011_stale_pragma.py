"""R011: a suppression pragma must actually suppress something.

``repro-lint: ignore[...]`` comments accumulate: the flagged code gets
rewritten, the pragma stays, and a year later the file is sprinkled with
suppressions that silence nothing today — but will silently swallow the
*next* real violation on that line.  The runner records, per pragma,
which rule ids actually consumed a diagnostic; this rule audits that
accounting after the file and project phases ran.

A pragma id is reported as stale only when its rule was active in the
current invocation (a ``--select R001`` run cannot know whether an
``ignore[R006]`` still earns its keep).  Ids that are not rules at all
are always reported — they never suppress anything under any selection.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from repro.lint.base import Diagnostic, Rule

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lint.graph import ProjectContext


class StalePragmaRule(Rule):
    rule_id = "R011"
    name = "stale-pragma"
    summary = "every ignore[...] pragma suppresses at least one diagnostic"
    rationale = (
        "a pragma that suppresses nothing today will silently swallow the "
        "next real violation on its line; unknown rule ids in pragmas "
        "never suppressed anything to begin with"
    )
    phase = "post"

    def check_project(self, project: "ProjectContext") -> Iterator[Diagnostic]:
        for ctx in project.files:
            if ctx.skip_file:
                continue
            for record in ctx.pragmas:
                for rule_id in sorted(record.rule_ids):
                    if rule_id not in project.known_rule_ids:
                        yield self.diag_at(
                            ctx,
                            record.line,
                            1,
                            f"pragma names unknown rule id {rule_id!r}; it "
                            "suppresses nothing under any rule selection",
                        )
                        continue
                    if rule_id not in project.active_rule_ids:
                        continue  # not checked this run: staleness unprovable
                    if rule_id in record.used:
                        continue
                    yield self.diag_at(
                        ctx,
                        record.line,
                        1,
                        f"stale pragma: ignore[{rule_id}] suppressed no "
                        "diagnostic — remove it before it swallows a real "
                        "violation",
                    )
