"""R006: float64 dtype discipline in kernel buffers.

Every kernel invariant (drift budgets, CONSTANT_EPS thresholds, bitwise
cross-engine parity) is calibrated for IEEE-754 double precision.  Two
shapes violate it: allocating a result buffer without an explicit dtype
(the default can be platform- or input-dependent, and implicitness hides
accidental downcasts), and introducing a narrow float dtype anywhere in a
kernel module.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator, Optional

from repro.lint.base import Diagnostic, FileContext, Rule, call_name

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lint.graph import ProjectContext

#: buffer constructors that must spell out their dtype.  The *_like and
#: asarray families inherit a dtype from an existing array and are exempt.
_CONSTRUCTOR_DTYPE_POS = {
    "np.empty": 1,
    "np.zeros": 1,
    "np.ones": 1,
    "np.full": 2,
    "numpy.empty": 1,
    "numpy.zeros": 1,
    "numpy.ones": 1,
    "numpy.full": 2,
}

_NARROW_FLOATS = frozenset({"float32", "float16", "half", "single"})


def _dtype_value_name(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


class DtypeDisciplineRule(Rule):
    rule_id = "R006"
    name = "float64-discipline"
    summary = "kernel buffers need explicit dtype; no narrow floats in kernels"
    rationale = (
        "drift tolerances and CONSTANT_EPS are double-precision constants; "
        "an implicit or narrow dtype silently changes every guarantee"
    )

    def applies(self, ctx: FileContext) -> bool:
        return ctx.is_kernel

    def check(
        self, ctx: FileContext, project: Optional["ProjectContext"] = None
    ) -> Iterator[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node)
            dtype_pos = _CONSTRUCTOR_DTYPE_POS.get(name)
            if dtype_pos is not None:
                has_kw = any(kw.arg == "dtype" for kw in node.keywords)
                has_pos = len(node.args) > dtype_pos
                if not has_kw and not has_pos:
                    yield self.diag(
                        ctx,
                        node,
                        f"{name} without an explicit dtype in a kernel "
                        "module; spell out dtype=np.float64 (or the intended "
                        "integer type)",
                    )
            for kw in node.keywords:
                if kw.arg == "dtype":
                    value = _dtype_value_name(kw.value)
                    if value in _NARROW_FLOATS:
                        yield self.diag(
                            ctx,
                            kw.value,
                            f"narrow float dtype {value!r} in a kernel "
                            "module; kernels are calibrated for float64",
                        )
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "astype"
                and node.args
            ):
                value = _dtype_value_name(node.args[0])
                if value in _NARROW_FLOATS:
                    yield self.diag(
                        ctx,
                        node,
                        f"astype({value}) in a kernel module; kernels are "
                        "calibrated for float64",
                    )
