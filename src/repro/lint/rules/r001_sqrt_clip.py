"""R001: clip before ``sqrt`` on correlation-derived expressions.

Eq. 3 turns a Pearson correlation into a distance via
``sqrt(2 l (1 - q))``.  Floating-point drift in the incremental
dot-product updates routinely pushes ``q`` a few ulps past 1, making the
radicand a tiny negative number and the distance NaN — a bug this repo
hit in the STOMP rolling update on drifted correlations.  Every ``sqrt``
whose argument derives from a correlation/distance/variance quantity must
therefore be clamped first (``np.maximum(x, 0)``, ``np.clip``,
``max(x, 0.0)``) in the same function, or wrap the clamp directly around
the radicand.
"""

from __future__ import annotations

import ast
import re
from typing import TYPE_CHECKING, Iterator, Optional

from repro.lint.base import (
    Diagnostic,
    FileContext,
    Rule,
    call_name,
    is_guard_call,
    name_tokens,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lint.graph import ProjectContext

_SQRT_CALLS = frozenset({"np.sqrt", "numpy.sqrt", "math.sqrt"})
_RISKY_SUBSTR = re.compile(r"corr|dist|var", re.IGNORECASE)
_RISKY_EXACT = frozenset({"q", "qt"})


def _risky_tokens(node: ast.AST) -> list:
    return sorted(
        tok
        for tok in name_tokens(node)
        if _RISKY_SUBSTR.search(tok) or tok in _RISKY_EXACT
    )


class SqrtClipRule(Rule):
    rule_id = "R001"
    name = "sqrt-needs-clip"
    summary = "sqrt over correlation-derived values must be clip-guarded"
    rationale = (
        "correlations drift past 1.0 by ulps; sqrt of the tiny negative "
        "radicand is NaN (hit in the STOMP rolling-QT update, PR 1)"
    )

    def applies(self, ctx: FileContext) -> bool:
        return ctx.is_kernel

    def check(
        self, ctx: FileContext, project: Optional["ProjectContext"] = None
    ) -> Iterator[Diagnostic]:
        for scope in ctx.scopes:
            for node in scope.walk():
                arg = None
                if isinstance(node, ast.Call) and call_name(node) in _SQRT_CALLS:
                    if node.args:
                        arg = node.args[0]
                elif (
                    isinstance(node, ast.BinOp)
                    and isinstance(node.op, ast.Pow)
                    and isinstance(node.right, ast.Constant)
                    and node.right.value == 0.5
                ):
                    arg = node.left
                if arg is None:
                    continue
                if is_guard_call(arg):
                    continue  # sqrt(np.maximum(x, 0)) / sqrt(max(0, x))
                line = getattr(node, "lineno", 0)
                for tok in _risky_tokens(arg):
                    if scope.is_clip_guarded(tok, line):
                        continue
                    yield self.diag(
                        ctx,
                        node,
                        f"sqrt radicand depends on {tok!r} with no "
                        "clip/maximum(0, ...) guard in this function; "
                        "drifted correlations make it negative and the "
                        "distance NaN",
                    )
                    break
