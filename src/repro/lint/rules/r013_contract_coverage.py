"""R013: public entry points carry require/ensure contracts.

:mod:`repro.lint.contracts` gives every public numerical entry point a
zero-cost way to declare parameter and result contracts (validated only
under ``REPRO_CONTRACTS=1``).  Coverage decays unless enforced: a new
public function ships without contracts, its callers learn to pass junk,
and the eventual failure surfaces three layers deep in a kernel instead
of at the boundary.

This rule checks every module of the entry packages (``core``,
``distance``, ``matrixprofile``, ``kernels``, ``features``): each
top-level function listed in the module's literal ``__all__`` must carry
at least one ``@require``/``@ensure`` decorator (dotted forms like
``contracts.require`` count).  An exported *class* is a boundary too —
its constructor is how junk enters a long-lived object — so a class in
``__all__`` that defines an explicit ``__init__`` must contract it the
same way (classes without their own ``__init__``, e.g. dataclasses and
plain result records, are exempt: there is no hand-written boundary to
predicate).  Constants and re-exports in ``__all__`` are exempt.  A
function or constructor whose boundary genuinely cannot be predicated
(pure dispatch, trivial accessors) opts out with a
``repro-lint: ignore[R013]`` pragma comment on its signature, which
keeps the exemption visible and auditable.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator, List, Optional

from repro.lint.base import Diagnostic, FileContext, Rule, call_name

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lint.graph import ProjectContext

#: packages whose public surface is the repro API boundary.
_ENTRY_DIRS = frozenset({"core", "distance", "matrixprofile", "kernels", "features"})

#: decorator stems that count as contract declarations.
_CONTRACT_DECORATORS = frozenset({"require", "ensure"})


def _literal_all(tree: ast.Module) -> Optional[List[str]]:
    """The module's literal ``__all__``, or None when absent or dynamic."""
    for stmt in tree.body:
        if isinstance(stmt, ast.Assign) and any(
            isinstance(t, ast.Name) and t.id == "__all__" for t in stmt.targets
        ):
            try:
                value = ast.literal_eval(stmt.value)
            except ValueError:
                return None
            if isinstance(value, (list, tuple)) and all(
                isinstance(item, str) for item in value
            ):
                return list(value)
            return None
    return None


def _is_contract_decorator(dec: ast.expr) -> bool:
    name = call_name(dec)
    if not name and isinstance(dec, ast.Name):
        name = dec.id
    stem = name.rsplit(".", 1)[-1]
    return stem in _CONTRACT_DECORATORS


class ContractCoverageRule(Rule):
    rule_id = "R013"
    name = "contract-coverage"
    summary = (
        "every public __all__ function (and exported-class __init__) in "
        "the entry packages declares require/ensure contracts (or an "
        "explicit pragma opt-out)"
    )
    rationale = (
        "uncontracted public boundaries let junk inputs travel three "
        "layers deep before failing inside a kernel; the zero-cost "
        "decorators move the failure to the call site, but only if "
        "coverage is enforced"
    )

    def applies(self, ctx: FileContext) -> bool:
        return any(part in _ENTRY_DIRS for part in ctx.module_parts[:-1])

    def check(
        self, ctx: FileContext, project: Optional["ProjectContext"] = None
    ) -> Iterator[Diagnostic]:
        exported = _literal_all(ctx.tree)
        if not exported:
            return
        public = {name for name in exported if not name.startswith("_")}
        for stmt in ctx.tree.body:
            if isinstance(stmt, ast.FunctionDef):
                if stmt.name not in public:
                    continue
                if any(_is_contract_decorator(d) for d in stmt.decorator_list):
                    continue
                yield self.diag(
                    ctx,
                    stmt,
                    f"public function {stmt.name} is exported via __all__ "
                    "but declares no require/ensure contract; add one (see "
                    "repro.lint.contracts) or opt out with a "
                    "'repro-lint: ignore[R013]' pragma",
                )
            elif isinstance(stmt, ast.ClassDef) and stmt.name in public:
                init = next(
                    (
                        member
                        for member in stmt.body
                        if isinstance(member, ast.FunctionDef)
                        and member.name == "__init__"
                    ),
                    None,
                )
                if init is None:
                    continue
                if any(_is_contract_decorator(d) for d in init.decorator_list):
                    continue
                yield self.diag(
                    ctx,
                    init,
                    f"constructor {stmt.name}.__init__ belongs to a class "
                    "exported via __all__ but declares no require/ensure "
                    "contract; add one (see repro.lint.contracts) or opt "
                    "out with a 'repro-lint: ignore[R013]' pragma",
                )
