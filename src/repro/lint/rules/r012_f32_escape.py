"""R012: no float32 value escapes a kernel without a float64 verify.

The float32 fast path in :mod:`repro.kernels` is a *selection* device:
demoted scores may pick candidate columns, but every value that leaves
the kernel — the returned profile, or a comparison against float64
state — must be recomputed in float64 first (the paper's exactness
guarantee rides on this).  Syntactic matching cannot check it: the same
buffer name is legitimately rebound from a float32 scratch value to a
float64 recompute, so the rule needs provenance, not spelling.

This rule runs the :mod:`repro.lint.dataflow` taint analysis per
function.  Taint *producers* are expressions that mention a float32
dtype (``x.astype(np.float32)``, ``np.empty(..., dtype=np.float32)``,
``np.float32(...)``).  *Sanitizers* are index- and predicate-producing
operations whose results carry positions or truth values, never the
demoted magnitudes (``np.argmax``, ``np.nonzero``, ``len``, ``int``,
``np.isfinite``, and the ``.size``/``.shape``/``.ndim``/``.dtype``
attributes).  ``float()`` is deliberately *not* a sanitizer: widening a
wrong value yields a wide wrong value.  Three sinks are checked:

* a ``return`` whose value may be tainted;
* a store of a tainted value into a subscript of an untainted array
  (smuggling float32 cells into the float64 output profile);
* a comparison mixing a tainted operand with an untainted one (ranking
  float32 scores against float64 state).
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator, List, Optional

from repro.lint.base import Diagnostic, FileContext, Rule, call_name
from repro.lint.dataflow import TaintAnalysis, expressions_of

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lint.graph import ProjectContext

#: calls whose results are indices, counts, or predicates — positions of
#: demoted values, never the values themselves.
_SANITIZER_CALLS = frozenset(
    {
        "np.argmax",
        "np.argmin",
        "np.argsort",
        "np.nonzero",
        "np.flatnonzero",
        "np.count_nonzero",
        "np.isfinite",
        "np.isnan",
        "np.isinf",
        "numpy.argmax",
        "numpy.argmin",
        "numpy.argsort",
        "numpy.nonzero",
        "numpy.flatnonzero",
        "numpy.count_nonzero",
        "numpy.isfinite",
        "numpy.isnan",
        "numpy.isinf",
        "len",
        "int",
        "bool",
        "range",
    }
)

#: attribute reads that probe metadata, not the demoted contents.
_SANITIZER_ATTRS = frozenset({"size", "shape", "ndim", "dtype", "itemsize"})


def _is_f32_ref(node: ast.AST) -> bool:
    """An expression naming the float32 dtype itself."""
    if isinstance(node, ast.Attribute) and node.attr == "float32":
        return True
    if isinstance(node, ast.Name) and node.id == "float32":
        return True
    if isinstance(node, ast.Constant) and node.value == "float32":
        return True
    return False


def _is_producer(expr: ast.AST) -> bool:
    """Calls that create or demote to a float32 value."""
    if not isinstance(expr, ast.Call):
        return False
    if call_name(expr) in ("np.float32", "numpy.float32"):
        return True
    parts: List[ast.expr] = list(expr.args) + [
        kw.value for kw in expr.keywords
    ]
    return any(_is_f32_ref(part) for part in parts)


def _mentions_f32(fn: ast.FunctionDef) -> bool:
    return any(_is_f32_ref(node) for node in ast.walk(fn))


class F32EscapeRule(Rule):
    rule_id = "R012"
    name = "f32-escape"
    summary = (
        "float32 values in repro.kernels never reach a return or a "
        "float64 comparison without a float64 recompute"
    )
    rationale = (
        "the float32 path may only select candidates; the exactness "
        "guarantee requires every escaping value be recomputed in float64, "
        "and dataflow (not spelling) decides whether a rebound buffer "
        "still carries demoted contents"
    )

    def applies(self, ctx: FileContext) -> bool:
        return "kernels" in ctx.module_parts[:-1]

    def check(
        self, ctx: FileContext, project: Optional["ProjectContext"] = None
    ) -> Iterator[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.FunctionDef) and _mentions_f32(node):
                yield from self._check_function(ctx, node)

    def _check_function(
        self, ctx: FileContext, fn: ast.FunctionDef
    ) -> Iterator[Diagnostic]:
        taint = TaintAnalysis(
            fn,
            is_producer=_is_producer,
            sanitizer_calls=_SANITIZER_CALLS,
            sanitizer_attrs=_SANITIZER_ATTRS,
        )
        if not taint.has_producers():
            return
        for stmt in taint.statements():
            if isinstance(stmt, ast.Return) and stmt.value is not None:
                if taint.expr_is_tainted(stmt.value, stmt):
                    yield self.diag(
                        ctx,
                        stmt,
                        f"{fn.name} may return a float32-derived value; "
                        "recompute the escaping value in float64 before "
                        "returning",
                    )
                continue
            if isinstance(stmt, ast.Assign):
                yield from self._check_store(ctx, fn, taint, stmt)
            for expr in expressions_of(stmt):
                if isinstance(expr, ast.Compare):
                    yield from self._check_compare(ctx, fn, taint, stmt, expr)

    def _check_store(
        self,
        ctx: FileContext,
        fn: ast.FunctionDef,
        taint: TaintAnalysis,
        stmt: ast.Assign,
    ) -> Iterator[Diagnostic]:
        for target in stmt.targets:
            if not isinstance(target, ast.Subscript):
                continue
            base = target.value
            if not isinstance(base, ast.Name):
                continue
            if taint.expr_is_tainted(base, stmt):
                continue  # a float32 scratch buffer may hold float32
            if taint.expr_is_tainted(stmt.value, stmt):
                yield self.diag(
                    ctx,
                    stmt,
                    f"{fn.name} stores a float32-derived value into "
                    f"{base.id}[...]; recompute it in float64 before "
                    "writing to the output",
                )

    def _check_compare(
        self,
        ctx: FileContext,
        fn: ast.FunctionDef,
        taint: TaintAnalysis,
        stmt: ast.stmt,
        expr: ast.Compare,
    ) -> Iterator[Diagnostic]:
        operands = [expr.left] + list(expr.comparators)
        flags = [taint.expr_is_tainted(op, stmt) for op in operands]
        if any(flags) and not all(flags):
            yield self.diag(
                ctx,
                expr,
                f"{fn.name} compares a float32-derived value against "
                "float64 state; demoted scores may only be compared "
                "among themselves — verify in float64 first",
            )
