"""Rule registry: one module per invariant, R001–R013."""

from __future__ import annotations

from typing import List

from repro.lint.base import Rule
from repro.lint.rules.r001_sqrt_clip import SqrtClipRule
from repro.lint.rules.r002_errstate_div import ErrstateDivRule
from repro.lint.rules.r003_exceptions import ExceptionHierarchyRule
from repro.lint.rules.r004_exclusion import ExclusionZoneRule
from repro.lint.rules.r005_determinism import WorkerDeterminismRule
from repro.lint.rules.r006_dtype import DtypeDisciplineRule
from repro.lint.rules.r007_obs_layering import ObsLayeringRule
from repro.lint.rules.r008_context_stats import ContextStatsRule
from repro.lint.rules.r009_features_layering import FeaturesLayeringRule
from repro.lint.rules.r010_obs_registry import ObsRegistryRule
from repro.lint.rules.r011_stale_pragma import StalePragmaRule
from repro.lint.rules.r012_f32_escape import F32EscapeRule
from repro.lint.rules.r013_contract_coverage import ContractCoverageRule

__all__ = ["all_rules"]


def all_rules() -> List[Rule]:
    """Instantiate the full rule set, in rule-id order."""
    return [
        SqrtClipRule(),
        ErrstateDivRule(),
        ExceptionHierarchyRule(),
        ExclusionZoneRule(),
        WorkerDeterminismRule(),
        DtypeDisciplineRule(),
        ObsLayeringRule(),
        ContextStatsRule(),
        FeaturesLayeringRule(),
        ObsRegistryRule(),
        StalePragmaRule(),
        F32EscapeRule(),
        ContractCoverageRule(),
    ]
