"""R003: raise the central exception hierarchy, never bare ValueError/assert.

Public entry points validate through the central validators
(:func:`repro.distance.znorm.as_series`,
:func:`repro.distance.sliding.validate_subsequence_length`) and raise
:mod:`repro.exceptions` types so callers can catch one ``ReproError``
base.  Bare ``ValueError``/``TypeError`` escape that contract, and
``assert`` statements vanish under ``python -O``, turning validation into
undefined behavior.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator, Optional

from repro.lint.base import Diagnostic, FileContext, Rule, call_name

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lint.graph import ProjectContext

_BARE_EXCEPTIONS = frozenset({"ValueError", "TypeError"})


class ExceptionHierarchyRule(Rule):
    rule_id = "R003"
    name = "exception-hierarchy"
    summary = "no bare ValueError/TypeError raises or assert-validation"
    rationale = (
        "callers catch ReproError; a bare ValueError bypasses the hierarchy "
        "and asserts disappear under -O, so invalid input slips into kernels"
    )

    def check(
        self, ctx: FileContext, project: Optional["ProjectContext"] = None
    ) -> Iterator[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Raise) and node.exc is not None:
                exc = node.exc
                name = call_name(exc) if isinstance(exc, ast.Call) else ""
                if isinstance(exc, ast.Name):
                    name = exc.id
                if name in _BARE_EXCEPTIONS:
                    yield self.diag(
                        ctx,
                        node,
                        f"raise {name} directly; use the repro.exceptions "
                        "hierarchy (InvalidSeriesError / InvalidParameterError)",
                    )
            elif isinstance(node, ast.Assert):
                yield self.diag(
                    ctx,
                    node,
                    "assert used for validation; asserts vanish under -O — "
                    "raise a repro.exceptions type instead",
                )
