"""R010: every observability name is declared in the central registry.

The obs counter/gauge/span names are load-bearing strings: the derived
metrics in :mod:`repro.obs.report` compute paper figures from them
(Fig. 9 pruning power is ``submp.profiles.valid / submp.profiles.total``),
and a typo at an emission site silently zeroes a figure instead of
raising.  :mod:`repro.obs.registry` is the single source of truth; this
rule checks both directions across the whole project:

* an ``obs.add``/``obs.gauge``/``obs.span`` call whose name (literal or
  f-string template) is not declared in the registry table of the same
  kind is a violation at the emission site;
* a registry entry whose name is never emitted anywhere is a violation
  at the declaration line — dead declarations hide exactly the typos
  this rule exists to catch.  This direction only runs when the whole
  ``repro`` package is being linted (partial invocations cannot prove
  absence).

When the registry module itself is not part of the lint input (single
files, fixture trees), the installed :mod:`repro.obs.registry` supplies
the declared-name tables so the emission-side check still works.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Dict, Iterator, Set

from repro.lint.base import Diagnostic, Rule
from repro.obs.registry import normalize_template

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lint.graph import ProjectContext

#: dotted module holding the declaration tables.
_REGISTRY_MODULE = "repro.obs.registry"

#: emission kind -> the registry table that must declare it.
_KIND_TABLE = {"counter": "COUNTERS", "gauge": "GAUGES", "span": "SPANS"}


def _runtime_tables() -> Dict[str, Dict[str, int]]:
    """Declared names from the installed registry (no source in project)."""
    from repro.obs import registry

    return {
        "counter": {name: 0 for name in registry.COUNTERS},
        "gauge": {name: 0 for name in registry.GAUGES},
        "span": {name: 0 for name in registry.SPANS},
    }


class ObsRegistryRule(Rule):
    rule_id = "R010"
    name = "obs-name-registry"
    summary = (
        "every emitted counter/gauge/span name is declared in "
        "repro.obs.registry, and every declared name is emitted"
    )
    rationale = (
        "derived metrics and paper figures are computed from counter names; "
        "a typo at an emission site silently zeroes a figure instead of "
        "raising, so both unknown emissions and dead declarations must fail "
        "the lint"
    )
    phase = "project"

    def check_project(self, project: "ProjectContext") -> Iterator[Diagnostic]:
        declarations = project.registry_declarations
        registry_ctx = project.module(_REGISTRY_MODULE)
        if registry_ctx is not None and declarations is None:
            yield self.diag_at(
                registry_ctx,
                1,
                1,
                "registry module defines no literal COUNTERS/GAUGES/SPANS "
                "tables; R010 cannot check emission names against it",
            )
            return
        if declarations is not None:
            raw_tables = {
                kind: declarations.of_kind(kind) for kind in _KIND_TABLE
            }
        else:
            raw_tables = _runtime_tables()
        tables: Dict[str, Set[str]] = {
            kind: {normalize_template(name) for name in table}
            for kind, table in raw_tables.items()
        }

        emitted: Dict[str, Set[str]] = {kind: set() for kind in _KIND_TABLE}
        for emission in project.obs_emissions:
            if emission.name is None:
                yield self.diag(
                    emission.ctx,
                    emission.node,
                    f"obs {emission.kind} name is not a string literal or "
                    "f-string; R010 cannot check it against the registry — "
                    "emit a literal (or f-string template) name declared in "
                    "repro.obs.registry",
                )
                continue
            normalized = normalize_template(emission.name)
            emitted[emission.kind].add(normalized)
            if normalized not in tables[emission.kind]:
                yield self.diag(
                    emission.ctx,
                    emission.node,
                    f"{emission.kind} name {emission.name!r} is not declared "
                    f"in repro.obs.registry ({_KIND_TABLE[emission.kind]})",
                )

        if declarations is None or not project.is_whole_package:
            return
        for kind in _KIND_TABLE:
            for name, line in sorted(raw_tables[kind].items()):
                if normalize_template(name) not in emitted[kind]:
                    yield self.diag_at(
                        declarations.ctx,
                        line,
                        1,
                        f"{kind} {name!r} is declared in the registry but "
                        "never emitted anywhere in the project",
                    )
