"""R007: keep the observability layer out of the foundation modules.

:mod:`repro.obs` is imported by every kernel, so it must sit at the
bottom of the dependency graph: it may import only the standard library
and :mod:`repro.exceptions`.  Conversely the foundation modules
(``repro.types``, ``repro.exceptions``) must never import ``repro.obs``
— either direction would create an import cycle that manifests as a
partially-initialized package at interpreter start, the least debuggable
failure mode Python has.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator, List, Optional, Tuple

from repro.lint.base import Diagnostic, FileContext, Rule, imported_names

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lint.graph import ProjectContext

#: module stems that form the import-graph foundation.
_FOUNDATION_STEMS = frozenset({"types", "exceptions"})

#: the only repro packages an obs module may import from.
_OBS_ALLOWED_PREFIXES = ("repro.obs", "repro.exceptions")


def _is_obs_module(ctx: FileContext) -> bool:
    parts = ctx.module_parts
    return "obs" in parts[:-1] or parts[-1] == "obs"


def _is_foundation_module(ctx: FileContext) -> bool:
    return ctx.module_parts[-1] in _FOUNDATION_STEMS


def _matches(name: str, prefixes: Tuple[str, ...]) -> bool:
    return any(
        name == prefix or name.startswith(prefix + ".") for prefix in prefixes
    )


class ObsLayeringRule(Rule):
    rule_id = "R007"
    name = "obs-layering"
    summary = "repro.obs imports only stdlib + repro.exceptions; foundations never import it"
    rationale = (
        "obs is imported by every kernel, so an obs -> kernel or "
        "types/exceptions -> obs edge closes an import cycle that breaks "
        "interpreter start with a partially-initialized package"
    )

    def applies(self, ctx: FileContext) -> bool:
        return _is_obs_module(ctx) or _is_foundation_module(ctx)

    def check(
        self, ctx: FileContext, project: Optional["ProjectContext"] = None
    ) -> Iterator[Diagnostic]:
        obs_module = _is_obs_module(ctx)
        flagged: List[int] = []
        for node, name in imported_names(ctx.tree):
            if node.lineno in flagged:
                continue  # one diagnostic per import statement
            if obs_module:
                if name == "repro" or (
                    name.startswith("repro.")
                    and not _matches(name, _OBS_ALLOWED_PREFIXES)
                ):
                    flagged.append(node.lineno)
                    yield self.diag(
                        ctx,
                        node,
                        f"obs module imports {name}; repro.obs may import "
                        "only the standard library and repro.exceptions",
                    )
            elif _matches(name, ("repro.obs",)):
                flagged.append(node.lineno)
                yield self.diag(
                    ctx,
                    node,
                    f"foundation module {ctx.module_parts[-1]} imports "
                    f"{name}; types/exceptions must stay below the "
                    "observability layer",
                )
