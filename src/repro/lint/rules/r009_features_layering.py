"""R009: the features façade owns the store and the workload composition.

Two invariants keep :mod:`repro.features` an actual façade rather than
one more loosely-coordinated module:

(a) ``repro.features.store`` is private to the façade.  Its cache keys
    encode the façade's exact parameter canonicalization; a second
    import site would inevitably drift and either miss forever or —
    worse — hit on stale semantics.
(b) Only the façade (and the workload packages themselves) may compose
    several *workload families* (motifs, discords, chains,
    segmentation, annotation, snippets) in one module.  Everything else
    should call :func:`repro.features.extract_features` instead of
    re-plumbing core modules — that is what keeps "one entry point,
    zero recompute" true.

``__init__`` modules are exempt from (b): re-exporting a public surface
is aggregation, not composition.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Dict, Iterator, Optional, Tuple

from repro.lint.base import Diagnostic, FileContext, Rule, imported_names

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lint.graph import ProjectContext

#: dotted module prefix -> workload family.  Longest prefix wins, so
#: ``repro.core.discords`` maps to discords while an unlisted
#: ``repro.core.*`` internal falls back to the motifs family (the
#: package's re-exports are motif machinery).
_WORKLOAD_GROUPS: Dict[str, str] = {
    "repro.core": "motifs",
    "repro.core.valmod": "motifs",
    "repro.core.motif_sets": "motifs",
    "repro.core.ranking": "motifs",
    "repro.core.discords": "discords",
    "repro.core.discords_variable": "discords",
    "repro.core.chains": "chains",
    "repro.core.segmentation": "segmentation",
    "repro.core.annotation": "annotation",
    "repro.multiseries": "snippets",
}

#: packages whose own modules may compose freely: the façade itself and
#: the packages that *implement* the workload families.
_EXEMPT_DIRS = frozenset({"features", "core", "multiseries"})


def _is_exempt(ctx: FileContext) -> bool:
    parts = ctx.module_parts
    if parts[-1] == "__init__":
        return True
    return any(part in _EXEMPT_DIRS for part in parts[:-1])


def _is_features_module(ctx: FileContext) -> bool:
    parts = ctx.module_parts
    return "features" in parts[:-1] or parts[-1] == "features"


def _workload_group(name: str) -> Optional[str]:
    best: Optional[str] = None
    best_len = -1
    for prefix, group in _WORKLOAD_GROUPS.items():
        if name == prefix or name.startswith(prefix + "."):
            if len(prefix) > best_len:
                best = group
                best_len = len(prefix)
    return best


def _is_store_import(name: str) -> bool:
    return name == "repro.features.store" or name.startswith(
        "repro.features.store."
    )


class FeaturesLayeringRule(Rule):
    rule_id = "R009"
    name = "features-layering"
    summary = (
        "repro.features.store is façade-private; only the façade composes "
        "several workload families"
    )
    rationale = (
        "a second store import site would drift from the façade's cache-key "
        "canonicalization (stale hits or permanent misses), and modules that "
        "re-plumb several core workloads bypass the one entry point whose "
        "shared SeriesContext and content-addressed store make repeat "
        "queries free"
    )

    def applies(self, ctx: FileContext) -> bool:
        return True

    def check(
        self, ctx: FileContext, project: Optional["ProjectContext"] = None
    ) -> Iterator[Diagnostic]:
        features_module = _is_features_module(ctx)
        exempt = _is_exempt(ctx)
        first_group: Optional[str] = None
        flagged: set = set()
        for node, name in imported_names(ctx.tree):
            if node.lineno in flagged:
                continue  # one diagnostic per import statement
            if not features_module and _is_store_import(name):
                flagged.add(node.lineno)
                yield self.diag(
                    ctx,
                    node,
                    f"{name} imported outside repro.features; the store is "
                    "private to the façade — call "
                    "repro.features.extract_features instead",
                )
                continue
            if exempt:
                continue
            group = _workload_group(name)
            if group is None:
                continue
            if first_group is None:
                first_group = group
            elif group != first_group:
                flagged.add(node.lineno)
                yield self.diag(
                    ctx,
                    node,
                    f"module composes workload family '{group}' on top of "
                    f"'{first_group}'; only the repro.features façade may "
                    "compose several families — use extract_features",
                )
