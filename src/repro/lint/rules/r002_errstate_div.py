"""R002: divisions by window deviations need ``np.errstate`` or a guard.

Eq. 3 divides by ``l * sigma_i * sigma_j``.  A flat window has sigma 0,
so an unguarded kernel division emits RuntimeWarnings, infinities, or
NaNs that silently poison the profile — the flat-segment bug class fixed
in PR 1/3.  Every division whose denominator references a deviation-like
quantity must sit under ``with np.errstate(...)``, clamp the denominator
(``np.maximum(sigma, EPS)``), or follow an explicit zero-deviation branch
(``if sigma < CONSTANT_EPS: ...``) in the same function.
"""

from __future__ import annotations

import ast
import re
from typing import TYPE_CHECKING, Iterator, List, Optional

from repro.lint.base import (
    Diagnostic,
    FileContext,
    Rule,
    contains_guard_call,
    name_tokens,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lint.graph import ProjectContext

_SIGMA_LIKE = re.compile(r"sig|std|denom", re.IGNORECASE)


class ErrstateDivRule(Rule):
    rule_id = "R002"
    name = "guarded-division"
    summary = "divisions by sigma-like values need errstate or a zero guard"
    rationale = (
        "flat (constant) windows have sigma 0; unguarded Eq. 3 divisions "
        "turn them into inf/NaN profile entries (flat-segment bugs, PR 1/3)"
    )

    def applies(self, ctx: FileContext) -> bool:
        return ctx.is_kernel

    def check(
        self, ctx: FileContext, project: Optional["ProjectContext"] = None
    ) -> Iterator[Diagnostic]:
        for scope in ctx.scopes:
            for node in scope.walk():
                if not (isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div)):
                    continue
                risky: List[str] = sorted(
                    tok for tok in name_tokens(node.right) if _SIGMA_LIKE.search(tok)
                )
                if not risky:
                    continue
                line = getattr(node, "lineno", 0)
                if scope.in_errstate(line):
                    continue
                if contains_guard_call(node.right):
                    continue  # denominator clamped in place
                if all(
                    scope.is_clip_guarded(tok, line)
                    or scope.is_compare_guarded(tok, line)
                    for tok in risky
                ):
                    continue
                yield self.diag(
                    ctx,
                    node,
                    f"division by deviation-like value(s) {', '.join(map(repr, risky))} "
                    "outside np.errstate and without a zero-std guard; a flat "
                    "window makes this inf/NaN",
                )
