"""R004: exclusion-zone arithmetic must go through the central helpers.

The trivial-match half-width is ``max(1, ceil(l / 2))`` — rounded *up*,
with a floor of one.  Hand-rolled ``m // 2`` variants round *down* and
lose the floor, which desynchronizes engines at chunk seams (each side
masks a different band and the merged profile keeps a trivial match).
All half-width math belongs in :mod:`repro.matrixprofile.exclusion`.
"""

from __future__ import annotations

import ast
import re
from typing import TYPE_CHECKING, Iterator, Optional

from repro.lint.base import Diagnostic, FileContext, Rule, name_tokens

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lint.graph import ProjectContext

_LENGTH_LIKE = re.compile(
    r"^(length|len|l|m|window|win|wlen|sub_?len(gth)?|seq_?len)$", re.IGNORECASE
)


class ExclusionZoneRule(Rule):
    rule_id = "R004"
    name = "central-exclusion-zone"
    summary = "no inline length//2 exclusion-zone arithmetic outside the helper"
    rationale = (
        "floor-vs-ceil half-width mismatches between engines leave trivial "
        "matches alive at chunk seams (exclusion bugs debugged in PR 3)"
    )

    def applies(self, ctx: FileContext) -> bool:
        return ctx.is_kernel and not ctx.is_exclusion_module

    def check(
        self, ctx: FileContext, project: Optional["ProjectContext"] = None
    ) -> Iterator[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.BinOp):
                continue
            if not isinstance(node.op, (ast.FloorDiv, ast.Div)):
                continue
            if not (
                isinstance(node.right, ast.Constant)
                and node.right.value in (2, 2.0)
            ):
                continue
            length_names = sorted(
                tok for tok in name_tokens(node.left) if _LENGTH_LIKE.match(tok)
            )
            if not length_names:
                continue
            yield self.diag(
                ctx,
                node,
                f"inline half-width arithmetic on {length_names[0]!r}; use "
                "repro.matrixprofile.exclusion.exclusion_zone_half_width "
                "so every engine applies the same ceil-with-floor rule",
            )
