"""R008: series statistics and FFTs flow through SeriesContext.

The stats/FFT cache (:class:`repro.kernels.SeriesContext`) only pays off
when every consumer goes through it: one stray ``moving_mean_std`` call
recomputes an O(n) pass the cache already holds, and one stray
``np.fft.*`` call plans a transform the cached series spectrum already
answered.  Only the layers that *implement* the primitives — the
``distance`` package and the ``kernels`` package — may touch them
directly; everyone else asks a context (``ctx.moving_mean_std(length)``,
``ctx.sliding_dot_product(query)``) or calls a context-accepting wrapper
such as :func:`repro.distance.mass.mass_with_stats`.

Flagged outside the distance/kernels layer:

* any import of ``numpy.fft`` and any ``<numpy alias>.fft`` attribute use;
* calls to ``moving_mean_std`` — whether imported bare, aliased, or
  reached through a module alias (``sliding.moving_mean_std``).

Method calls on a context object (``ctx.moving_mean_std(...)``) are the
endorsed idiom and are not flagged.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Set

from repro.lint.base import Diagnostic, FileContext, Rule, call_name

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lint.graph import ProjectContext

#: packages allowed to use the raw primitives (they implement them).
_ALLOWED_PARTS = frozenset({"distance", "kernels"})

#: the modules whose ``moving_mean_std`` is the raw recomputation.
_STATS_MODULES = frozenset({"repro.distance.sliding", "repro.distance"})


def _collect_bindings(tree: ast.AST):
    """Names bound to numpy, to stats modules, and to moving_mean_std."""
    numpy_aliases: Set[str] = set()
    stats_module_aliases: Set[str] = set()
    stats_names: Set[str] = set()
    fft_imports: List[ast.stmt] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                bound = alias.asname or alias.name.split(".")[0]
                if alias.name == "numpy":
                    numpy_aliases.add(bound)
                elif alias.name.startswith("numpy.fft"):
                    fft_imports.append(node)
                elif alias.name in _STATS_MODULES:
                    if alias.asname is not None:
                        stats_module_aliases.add(alias.asname)
        elif isinstance(node, ast.ImportFrom) and node.level == 0 and node.module:
            if node.module == "numpy":
                for alias in node.names:
                    if alias.name == "fft":
                        fft_imports.append(node)
            elif node.module.startswith("numpy.fft"):
                fft_imports.append(node)
            elif node.module in _STATS_MODULES or node.module == "repro":
                for alias in node.names:
                    if alias.name == "moving_mean_std":
                        stats_names.add(alias.asname or alias.name)
                    elif alias.name == "sliding":
                        stats_module_aliases.add(alias.asname or alias.name)
    return numpy_aliases, stats_module_aliases, stats_names, fft_imports


class ContextStatsRule(Rule):
    rule_id = "R008"
    name = "context-stats"
    summary = (
        "np.fft.* and raw moving_mean_std stay in the distance/kernels "
        "layer; everyone else goes through SeriesContext"
    )
    rationale = (
        "a stray moving_mean_std or np.fft call silently recomputes work "
        "the shared SeriesContext cache already holds, eroding the one-"
        "stats-pass-per-length / one-FFT-per-series guarantee the sweep "
        "counters assert"
    )

    def applies(self, ctx: FileContext) -> bool:
        return not any(part in _ALLOWED_PARTS for part in ctx.module_parts)

    def check(
        self, ctx: FileContext, project: Optional["ProjectContext"] = None
    ) -> Iterator[Diagnostic]:
        numpy_aliases, stats_modules, stats_names, fft_imports = _collect_bindings(
            ctx.tree
        )
        flagged: Dict[int, bool] = {}

        def emit(node: ast.AST, message: str) -> Iterator[Diagnostic]:
            line = getattr(node, "lineno", 0)
            if not flagged.get(line):
                flagged[line] = True
                yield self.diag(ctx, node, message)

        for node in fft_imports:
            yield from emit(
                node,
                "numpy.fft imported outside the distance/kernels layer; "
                "use SeriesContext.sliding_dot_product (cached spectrum)",
            )
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Attribute)
                and node.attr == "fft"
                and isinstance(node.value, ast.Name)
                and node.value.id in numpy_aliases
            ):
                yield from emit(
                    node,
                    f"direct {node.value.id}.fft use outside the "
                    "distance/kernels layer; go through SeriesContext",
                )
            elif isinstance(node, ast.Call):
                name = call_name(node)
                if name in stats_names:
                    yield from emit(
                        node,
                        "raw moving_mean_std call outside the distance/"
                        "kernels layer; use ensure_context(series)"
                        ".moving_mean_std(length) so the stats cache is "
                        "shared",
                    )
                elif "." in name:
                    base, last = name.rsplit(".", 1)
                    if last == "moving_mean_std" and base in stats_modules:
                        yield from emit(
                            node,
                            "raw moving_mean_std call outside the distance/"
                            "kernels layer; use ensure_context(series)"
                            ".moving_mean_std(length) so the stats cache "
                            "is shared",
                        )
