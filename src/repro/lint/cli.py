"""Command-line front end: ``python -m repro.lint [paths...]``.

Exit status 0 when every checked file is clean, 1 when any rule fired,
2 on usage errors — the contract the CI ``static-analysis`` job gates on.
``--format json`` emits a stable machine-readable envelope for tooling.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Optional

from repro.lint.base import Diagnostic
from repro.lint.rules import all_rules
from repro.lint.runner import lint_paths

__all__ = ["main", "build_parser", "format_json", "format_rule_table"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.lint",
        description=(
            "Whole-project static analyzer for the repro numerical core "
            "(rules R001-R013; see docs/LINTING.md)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: src/)",
    )
    parser.add_argument(
        "--select",
        metavar="IDS",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule table and exit",
    )
    return parser


def format_rule_table() -> str:
    rows = [(rule.rule_id, rule.name, rule.summary) for rule in all_rules()]
    id_w = max(len(r[0]) for r in rows)
    name_w = max(len(r[1]) for r in rows)
    lines = [f"{'ID':<{id_w}}  {'NAME':<{name_w}}  SUMMARY"]
    for rule_id, name, summary in rows:
        lines.append(f"{rule_id:<{id_w}}  {name:<{name_w}}  {summary}")
    return "\n".join(lines)


def format_json(diagnostics: List[Diagnostic], rule_ids: List[str]) -> str:
    """The machine-readable report envelope (stable key order)."""
    payload: Dict[str, Any] = {
        "version": 1,
        "rules": rule_ids,
        "count": len(diagnostics),
        "diagnostics": [
            {
                "path": diag.path,
                "line": diag.line,
                "col": diag.col,
                "rule_id": diag.rule_id,
                "message": diag.message,
            }
            for diag in diagnostics
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=False)


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        print(format_rule_table())
        return 0
    paths = args.paths or ["src"]
    select = args.select.split(",") if args.select is not None else None
    try:
        diagnostics = lint_paths(paths, select=select)
    except ValueError as err:
        parser.error(str(err))  # exits 2
        return 2  # pragma: no cover - parser.error raises SystemExit
    if args.format == "json":
        active = select_ids(select)
        print(format_json(diagnostics, active))
    else:
        for diag in diagnostics:
            print(diag.format())
    if diagnostics:
        if args.format == "text":
            print(
                f"repro.lint: {len(diagnostics)} violation(s) found",
                file=sys.stderr,
            )
        return 1
    return 0


def select_ids(select: Optional[List[str]]) -> List[str]:
    """The active rule ids for a ``--select`` argument, in id order."""
    if select is None:
        return [rule.rule_id for rule in all_rules()]
    wanted = {part.strip().upper() for part in select} - {""}
    return [rule.rule_id for rule in all_rules() if rule.rule_id in wanted]
