"""Command-line front end: ``python -m repro.lint [paths...]``.

Exit status 0 when every checked file is clean, 1 when any rule fired,
2 on usage errors — the contract the CI ``static-analysis`` job gates on.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.lint.rules import all_rules
from repro.lint.runner import lint_paths

__all__ = ["main", "build_parser", "format_rule_table"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.lint",
        description=(
            "Kernel-invariant static analyzer for the repro numerical core "
            "(rules R001-R006; see docs/LINTING.md)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: src/)",
    )
    parser.add_argument(
        "--select",
        metavar="IDS",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule table and exit",
    )
    return parser


def format_rule_table() -> str:
    rows = [(rule.rule_id, rule.name, rule.summary) for rule in all_rules()]
    id_w = max(len(r[0]) for r in rows)
    name_w = max(len(r[1]) for r in rows)
    lines = [f"{'ID':<{id_w}}  {'NAME':<{name_w}}  SUMMARY"]
    for rule_id, name, summary in rows:
        lines.append(f"{rule_id:<{id_w}}  {name:<{name_w}}  {summary}")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        print(format_rule_table())
        return 0
    paths = args.paths or ["src"]
    select = args.select.split(",") if args.select else None
    try:
        diagnostics = lint_paths(paths, select=select)
    except ValueError as err:
        parser.error(str(err))  # exits 2
        return 2  # pragma: no cover - parser.error raises SystemExit
    for diag in diagnostics:
        print(diag.format())
    if diagnostics:
        print(
            f"repro.lint: {len(diagnostics)} violation(s) found",
            file=sys.stderr,
        )
        return 1
    return 0
