"""Shared analysis machinery for the :mod:`repro.lint` rules.

A :class:`FileContext` wraps one parsed source file: its AST, the raw
lines, the ``# repro-lint:`` pragmas, and lazily computed per-scope guard
information (clip/floor assignments, comparison guards, ``np.errstate``
spans) that several rules consult.  Rules subclass :class:`Rule` and yield
:class:`Diagnostic` objects.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

__all__ = [
    "Diagnostic",
    "FileContext",
    "Rule",
    "Scope",
    "call_name",
    "name_tokens",
    "is_guard_call",
    "iter_calls",
]

#: directories whose modules count as numerical-kernel code.
KERNEL_DIRS = frozenset({"distance", "matrixprofile", "core"})

_PRAGMA_RE = re.compile(r"#\s*repro-lint:\s*ignore\[([A-Z0-9,\s]+)\]")
_SKIP_FILE_RE = re.compile(r"#\s*repro-lint:\s*skip-file")

#: calls that clamp a value into a safe domain (guards for R001/R002).
GUARD_CALLS = frozenset(
    {"np.maximum", "np.clip", "numpy.maximum", "numpy.clip", "max", "min"}
)


@dataclass(frozen=True)
class Diagnostic:
    """One rule violation at a source location."""

    path: str
    line: int
    col: int
    rule_id: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"


def call_name(node: ast.AST) -> str:
    """Dotted name of a call target: ``np.fft.rfft``, ``max``, ``''``."""
    if isinstance(node, ast.Call):
        node = node.func
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def name_tokens(node: ast.AST) -> Set[str]:
    """All identifier tokens (``Name`` ids and ``Attribute`` attrs) in a subtree."""
    tokens: Set[str] = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            tokens.add(sub.id)
        elif isinstance(sub, ast.Attribute):
            tokens.add(sub.attr)
    return tokens


def is_guard_call(node: ast.AST) -> bool:
    """True for calls that clamp their argument (``np.maximum``, ``np.clip``...)."""
    return isinstance(node, ast.Call) and call_name(node) in GUARD_CALLS


def contains_guard_call(node: ast.AST) -> bool:
    """True when any call in the subtree is a clamp/clip call."""
    return any(is_guard_call(sub) for sub in ast.walk(node))


def iter_calls(node: ast.AST) -> Iterator[ast.Call]:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call):
            yield sub


def _end_line(node: ast.AST) -> int:
    return getattr(node, "end_lineno", None) or getattr(node, "lineno", 0)


@dataclass
class Scope:
    """Guard bookkeeping for one function body (or the module top level).

    ``clip_guarded`` maps a variable name to the first line at which it was
    clamped into a safe domain — either re-assigned from an expression
    containing a clamp call (``x = np.maximum(..., eps)``,
    ``q = min(1.0, max(-1.0, q))``) or mutated in place through an
    ``out=x`` keyword.  ``compare_guarded`` maps a name to the first line
    it was tested in a branch condition (the early-return guard idiom).
    ``errstate_spans`` are the line ranges covered by ``np.errstate``
    context managers.
    """

    node: ast.AST
    name: str
    clip_guarded: Dict[str, int] = field(default_factory=dict)
    compare_guarded: Dict[str, int] = field(default_factory=dict)
    errstate_spans: List[Tuple[int, int]] = field(default_factory=list)
    statements: List[ast.stmt] = field(default_factory=list)

    def is_clip_guarded(self, name: str, before_line: int) -> bool:
        line = self.clip_guarded.get(name)
        return line is not None and line <= before_line

    def is_compare_guarded(self, name: str, before_line: int) -> bool:
        line = self.compare_guarded.get(name)
        return line is not None and line <= before_line

    def in_errstate(self, line: int) -> bool:
        return any(lo <= line <= hi for lo, hi in self.errstate_spans)

    def walk(self) -> Iterator[ast.AST]:
        """Walk the scope's own statements (nested defs are separate scopes)."""
        for stmt in self.statements:
            # A def statement at this level is its own scope: the def node
            # is visible here but its body belongs to the nested scope.
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield stmt
                continue
            yield from _walk_scope_local(stmt)


def _walk_scope_local(node: ast.AST) -> Iterator[ast.AST]:
    """``ast.walk`` that does not descend into nested function/class bodies."""
    yield node
    for child in ast.iter_child_nodes(node):
        if isinstance(
            child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)
        ):
            yield child  # the def itself is visible; its body is not
            continue
        yield from _walk_scope_local(child)


def _record_guard(scope: Scope, name: str, line: int) -> None:
    if name not in scope.clip_guarded or line < scope.clip_guarded[name]:
        scope.clip_guarded[name] = line


def _record_compare(scope: Scope, name: str, line: int) -> None:
    if name not in scope.compare_guarded or line < scope.compare_guarded[name]:
        scope.compare_guarded[name] = line


def _scan_scope(scope: Scope) -> None:
    for node in scope.walk():
        if isinstance(node, (ast.Assign, ast.AnnAssign)):
            value = node.value
            if value is not None and contains_guard_call(value):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    if isinstance(target, ast.Name):
                        _record_guard(scope, target.id, node.lineno)
        if isinstance(node, ast.Call) and is_guard_call(node):
            for kw in node.keywords:
                if kw.arg == "out" and isinstance(kw.value, ast.Name):
                    _record_guard(scope, kw.value.id, node.lineno)
        if isinstance(node, (ast.If, ast.While)):
            for sub in ast.walk(node.test):
                if isinstance(sub, ast.Compare):
                    for tok in name_tokens(sub):
                        _record_compare(scope, tok, node.lineno)
        if isinstance(node, ast.IfExp):
            for sub in ast.walk(node.test):
                if isinstance(sub, ast.Compare):
                    for tok in name_tokens(sub):
                        _record_compare(scope, tok, node.lineno)
        if isinstance(node, ast.With):
            for item in node.items:
                if call_name(item.context_expr) in (
                    "np.errstate",
                    "numpy.errstate",
                ):
                    scope.errstate_spans.append((node.lineno, _end_line(node)))
                    break


class FileContext:
    """One source file under analysis."""

    def __init__(self, path: Path, source: str, root: Optional[Path] = None) -> None:
        self.path = path
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=str(path))
        try:
            rel = path.relative_to(root) if root is not None else path
        except ValueError:
            rel = path
        self.display_path = str(rel)
        self.module_parts: Tuple[str, ...] = tuple(p.name for p in rel.parents)[
            ::-1
        ] + (rel.stem,)
        self.ignores: Dict[int, Set[str]] = {}
        self.skip_file = False
        for lineno, line in enumerate(self.lines, start=1):
            match = _PRAGMA_RE.search(line)
            if match:
                ids = {part.strip() for part in match.group(1).split(",")}
                self.ignores.setdefault(lineno, set()).update(ids - {""})
            if _SKIP_FILE_RE.search(line):
                self.skip_file = True
        self._scopes: Optional[List[Scope]] = None

    # -- classification ----------------------------------------------------

    @property
    def is_kernel(self) -> bool:
        """Module lives in a numerical-kernel package (distance/matrixprofile/core)."""
        return any(part in KERNEL_DIRS for part in self.module_parts[:-1])

    @property
    def is_exclusion_module(self) -> bool:
        return self.module_parts[-1] == "exclusion"

    @property
    def is_worker_module(self) -> bool:
        """Module that ships work to processes/threads (R005 scope)."""
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                if any(
                    alias.name.split(".")[0] in ("multiprocessing", "concurrent")
                    for alias in node.names
                ):
                    return True
            elif isinstance(node, ast.ImportFrom) and node.module:
                if node.module.split(".")[0] in ("multiprocessing", "concurrent"):
                    return True
        return False

    # -- scopes ------------------------------------------------------------

    @property
    def scopes(self) -> List[Scope]:
        if self._scopes is None:
            scopes: List[Scope] = []
            module_scope = Scope(
                node=self.tree, name="<module>", statements=list(self.tree.body)
            )
            scopes.append(module_scope)
            for node in ast.walk(self.tree):
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    scopes.append(
                        Scope(node=node, name=node.name, statements=list(node.body))
                    )
            for scope in scopes:
                _scan_scope(scope)
            self._scopes = scopes
        return self._scopes

    def scope_of(self, node: ast.AST) -> Scope:
        """The innermost scope whose span contains ``node``."""
        line = getattr(node, "lineno", 0)
        best = self.scopes[0]
        best_span = float("inf")
        for scope in self.scopes[1:]:
            lo = getattr(scope.node, "lineno", 0)
            hi = _end_line(scope.node)
            if lo <= line <= hi and (hi - lo) < best_span:
                best = scope
                best_span = hi - lo
        return best

    def ignored(self, line: int, rule_id: str) -> bool:
        return rule_id in self.ignores.get(line, set())


class Rule:
    """Base class for lint rules."""

    rule_id: str = ""
    name: str = ""
    summary: str = ""
    rationale: str = ""

    def applies(self, ctx: FileContext) -> bool:
        return True

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        raise NotImplementedError

    def run(self, ctx: FileContext) -> List[Diagnostic]:
        if ctx.skip_file or not self.applies(ctx):
            return []
        return [
            diag
            for diag in self.check(ctx)
            if not ctx.ignored(diag.line, diag.rule_id)
        ]

    def diag(self, ctx: FileContext, node: ast.AST, message: str) -> Diagnostic:
        return Diagnostic(
            path=ctx.display_path,
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0) + 1,
            rule_id=self.rule_id,
            message=message,
        )


def parse_file(path: Path, root: Optional[Path] = None) -> FileContext:
    """Read and parse one file into a :class:`FileContext`."""
    return FileContext(path, path.read_text(encoding="utf-8"), root=root)


def discover_files(paths: Sequence[Path]) -> List[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    found: List[Path] = []
    for path in paths:
        if path.is_dir():
            found.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            found.append(path)
    return found
