"""Shared analysis machinery for the :mod:`repro.lint` rules.

A :class:`FileContext` wraps one parsed source file: its AST, the raw
lines, the ``# repro-lint:`` pragmas, and lazily computed per-scope guard
information (clip/floor assignments, comparison guards, ``np.errstate``
spans) that several rules consult.  Rules subclass :class:`Rule` and yield
:class:`Diagnostic` objects; they run in one of three phases:

* ``file`` rules check one :class:`FileContext` at a time (and may read
  the shared :class:`~repro.lint.graph.ProjectContext` for cross-file
  facts);
* ``project`` rules run once per invocation over the whole project;
* ``post`` rules run after pragma filtering, over the suppression
  accounting itself (R011 stale-pragma).

Pragma suppression is applied centrally by the runner, which records
which pragmas actually consumed a diagnostic — the raw material of the
stale-pragma rule.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Sequence, Set, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (graph imports base)
    from repro.lint.graph import ProjectContext

__all__ = [
    "Diagnostic",
    "FileContext",
    "PragmaRecord",
    "Rule",
    "Scope",
    "call_name",
    "imported_names",
    "name_tokens",
    "is_guard_call",
    "iter_calls",
]

#: directories whose modules count as numerical-kernel code.
KERNEL_DIRS = frozenset({"distance", "matrixprofile", "core"})

_PRAGMA_RE = re.compile(r"#\s*repro-lint:\s*ignore\[([A-Z0-9,\s]+)\]")
_SKIP_FILE_RE = re.compile(r"#\s*repro-lint:\s*skip-file")

#: calls that clamp a value into a safe domain (guards for R001/R002).
GUARD_CALLS = frozenset(
    {"np.maximum", "np.clip", "numpy.maximum", "numpy.clip", "max", "min"}
)


@dataclass(frozen=True)
class Diagnostic:
    """One rule violation at a source location."""

    path: str
    line: int
    col: int
    rule_id: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"


def call_name(node: ast.AST) -> str:
    """Dotted name of a call target: ``np.fft.rfft``, ``max``, ``''``."""
    if isinstance(node, ast.Call):
        node = node.func
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def name_tokens(node: ast.AST) -> Set[str]:
    """All identifier tokens (``Name`` ids and ``Attribute`` attrs) in a subtree."""
    tokens: Set[str] = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            tokens.add(sub.id)
        elif isinstance(sub, ast.Attribute):
            tokens.add(sub.attr)
    return tokens


def is_guard_call(node: ast.AST) -> bool:
    """True for calls that clamp their argument (``np.maximum``, ``np.clip``...)."""
    return isinstance(node, ast.Call) and call_name(node) in GUARD_CALLS


def contains_guard_call(node: ast.AST) -> bool:
    """True when any call in the subtree is a clamp/clip call."""
    return any(is_guard_call(sub) for sub in ast.walk(node))


def iter_calls(node: ast.AST) -> Iterator[ast.Call]:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call):
            yield sub


def imported_names(tree: ast.AST) -> Iterator[Tuple[ast.stmt, str]]:
    """Every absolute dotted module name a file imports.

    ``from repro import obs`` is expanded to ``repro.obs`` (and likewise
    for any ``from <pkg> import <sub>``), so aliasing cannot hide a
    layering violation.
    """
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                yield node, alias.name
        elif isinstance(node, ast.ImportFrom) and node.level == 0 and node.module:
            # yield only the expanded names: ``from repro import obs`` is
            # an import of repro.obs, not of the whole repro package.
            for alias in node.names:
                yield node, f"{node.module}.{alias.name}"


def _end_line(node: ast.AST) -> int:
    return getattr(node, "end_lineno", None) or getattr(node, "lineno", 0)


@dataclass
class Scope:
    """Guard bookkeeping for one function body (or the module top level).

    ``clip_guarded`` maps a variable name to the first line at which it was
    clamped into a safe domain — either re-assigned from an expression
    containing a clamp call (``x = np.maximum(..., eps)``,
    ``q = min(1.0, max(-1.0, q))``) or mutated in place through an
    ``out=x`` keyword.  ``compare_guarded`` maps a name to the first line
    it was tested in a branch condition (the early-return guard idiom).
    ``errstate_spans`` are the line ranges covered by ``np.errstate``
    context managers.
    """

    node: ast.AST
    name: str
    clip_guarded: Dict[str, int] = field(default_factory=dict)
    compare_guarded: Dict[str, int] = field(default_factory=dict)
    errstate_spans: List[Tuple[int, int]] = field(default_factory=list)
    statements: List[ast.stmt] = field(default_factory=list)

    def is_clip_guarded(self, name: str, before_line: int) -> bool:
        line = self.clip_guarded.get(name)
        return line is not None and line <= before_line

    def is_compare_guarded(self, name: str, before_line: int) -> bool:
        line = self.compare_guarded.get(name)
        return line is not None and line <= before_line

    def in_errstate(self, line: int) -> bool:
        return any(lo <= line <= hi for lo, hi in self.errstate_spans)

    def walk(self) -> Iterator[ast.AST]:
        """Walk the scope's own statements (nested defs are separate scopes)."""
        for stmt in self.statements:
            # A def statement at this level is its own scope: the def node
            # is visible here but its body belongs to the nested scope.
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield stmt
                continue
            yield from _walk_scope_local(stmt)


def _walk_scope_local(node: ast.AST) -> Iterator[ast.AST]:
    """``ast.walk`` that does not descend into nested function/class bodies."""
    yield node
    for child in ast.iter_child_nodes(node):
        if isinstance(
            child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)
        ):
            yield child  # the def itself is visible; its body is not
            continue
        yield from _walk_scope_local(child)


def _record_guard(scope: Scope, name: str, line: int) -> None:
    if name not in scope.clip_guarded or line < scope.clip_guarded[name]:
        scope.clip_guarded[name] = line


def _record_compare(scope: Scope, name: str, line: int) -> None:
    if name not in scope.compare_guarded or line < scope.compare_guarded[name]:
        scope.compare_guarded[name] = line


def _scan_scope(scope: Scope) -> None:
    for node in scope.walk():
        if isinstance(node, (ast.Assign, ast.AnnAssign)):
            value = node.value
            if value is not None and contains_guard_call(value):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    if isinstance(target, ast.Name):
                        _record_guard(scope, target.id, node.lineno)
        if isinstance(node, ast.Call) and is_guard_call(node):
            for kw in node.keywords:
                if kw.arg == "out" and isinstance(kw.value, ast.Name):
                    _record_guard(scope, kw.value.id, node.lineno)
        if isinstance(node, (ast.If, ast.While)):
            for sub in ast.walk(node.test):
                if isinstance(sub, ast.Compare):
                    for tok in name_tokens(sub):
                        _record_compare(scope, tok, node.lineno)
        if isinstance(node, ast.IfExp):
            for sub in ast.walk(node.test):
                if isinstance(sub, ast.Compare):
                    for tok in name_tokens(sub):
                        _record_compare(scope, tok, node.lineno)
        if isinstance(node, ast.With):
            for item in node.items:
                if call_name(item.context_expr) in (
                    "np.errstate",
                    "numpy.errstate",
                ):
                    scope.errstate_spans.append((node.lineno, _end_line(node)))
                    break


@dataclass
class PragmaRecord:
    """One ``# repro-lint: ignore[...]`` pragma and its bookkeeping.

    ``covered`` is the set of source lines the pragma suppresses on —
    its own line, widened to the full span of a multi-line simple
    statement it sits inside (diagnostics anchor at the statement's
    first line, the pragma may trail the last).  ``used`` collects the
    rule ids that actually consumed a diagnostic, which is what the
    stale-pragma rule (R011) audits.
    """

    line: int
    rule_ids: Set[str]
    covered: Set[int]
    used: Set[str] = field(default_factory=set)


#: non-compound statements: a pragma anywhere in their line span applies
#: to the whole statement.  Compound statements (if/for/while/try) are
#: excluded so a pragma inside a 50-line branch does not blanket it.
_SIMPLE_STMTS = (
    ast.Assign,
    ast.AugAssign,
    ast.AnnAssign,
    ast.Expr,
    ast.Return,
    ast.Raise,
    ast.Assert,
    ast.Delete,
    ast.Import,
    ast.ImportFrom,
)


class FileContext:
    """One source file under analysis."""

    def __init__(self, path: Path, source: str, root: Optional[Path] = None) -> None:
        self.path = path
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=str(path))
        try:
            rel = path.relative_to(root) if root is not None else path
        except ValueError:
            rel = path
        self.display_path = str(rel)
        self.module_parts: Tuple[str, ...] = tuple(p.name for p in rel.parents)[
            ::-1
        ] + (rel.stem,)
        self.pragmas: List[PragmaRecord] = []
        self.skip_file = False
        for lineno, line in enumerate(self.lines, start=1):
            match = _PRAGMA_RE.search(line)
            if match:
                ids = {part.strip() for part in match.group(1).split(",")} - {""}
                if ids:
                    self.pragmas.append(
                        PragmaRecord(line=lineno, rule_ids=ids, covered={lineno})
                    )
            if _SKIP_FILE_RE.search(line):
                self.skip_file = True
        if self.pragmas:
            self._widen_multiline_pragmas()
        self._scopes: Optional[List[Scope]] = None

    def _widen_multiline_pragmas(self) -> None:
        """Let a pragma on any line of a multi-line statement cover it all.

        Black-style formatting regularly splits a flagged call over
        several lines with the pragma trailing the closing parenthesis;
        the diagnostic anchors at the statement's first line.  Function
        signatures get the same treatment (the def line through the line
        before the body) so R013 pragmas may trail a wrapped signature.
        """
        for node in ast.walk(self.tree):
            start = getattr(node, "lineno", None)
            end = getattr(node, "end_lineno", None)
            if start is None or end is None:
                continue
            if isinstance(node, _SIMPLE_STMTS):
                span_end = end
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                span_end = node.body[0].lineno - 1 if node.body else end
            else:
                continue
            if span_end <= start:
                continue
            span = range(start, span_end + 1)
            for record in self.pragmas:
                if start < record.line <= span_end:
                    record.covered.update(span)

    @property
    def module_name(self) -> str:
        """Best-effort dotted module name (``repro.obs.registry``).

        Paths inside a ``repro`` directory are rooted there; anything
        else (fixtures, scratch files) joins all its parts, which keeps
        names unique without claiming package membership.
        """
        parts = [part for part in self.module_parts if part]
        if "repro" in parts:
            parts = parts[parts.index("repro") :]
        if parts and parts[-1] == "__init__":
            parts = parts[:-1]
        return ".".join(parts)

    # -- classification ----------------------------------------------------

    @property
    def is_kernel(self) -> bool:
        """Module lives in a numerical-kernel package (distance/matrixprofile/core)."""
        return any(part in KERNEL_DIRS for part in self.module_parts[:-1])

    @property
    def is_exclusion_module(self) -> bool:
        return self.module_parts[-1] == "exclusion"

    @property
    def is_worker_module(self) -> bool:
        """Module that ships work to processes/threads (R005 scope)."""
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                if any(
                    alias.name.split(".")[0] in ("multiprocessing", "concurrent")
                    for alias in node.names
                ):
                    return True
            elif isinstance(node, ast.ImportFrom) and node.module:
                if node.module.split(".")[0] in ("multiprocessing", "concurrent"):
                    return True
        return False

    # -- scopes ------------------------------------------------------------

    @property
    def scopes(self) -> List[Scope]:
        if self._scopes is None:
            scopes: List[Scope] = []
            module_scope = Scope(
                node=self.tree, name="<module>", statements=list(self.tree.body)
            )
            scopes.append(module_scope)
            for node in ast.walk(self.tree):
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    scopes.append(
                        Scope(node=node, name=node.name, statements=list(node.body))
                    )
            for scope in scopes:
                _scan_scope(scope)
            self._scopes = scopes
        return self._scopes

    def scope_of(self, node: ast.AST) -> Scope:
        """The innermost scope whose span contains ``node``."""
        line = getattr(node, "lineno", 0)
        best = self.scopes[0]
        best_span = float("inf")
        for scope in self.scopes[1:]:
            lo = getattr(scope.node, "lineno", 0)
            hi = _end_line(scope.node)
            if lo <= line <= hi and (hi - lo) < best_span:
                best = scope
                best_span = hi - lo
        return best

    def ignored(self, line: int, rule_id: str) -> bool:
        """True when a pragma suppresses ``rule_id`` on ``line`` (read-only)."""
        return any(
            rule_id in record.rule_ids and line in record.covered
            for record in self.pragmas
        )

    def consume(self, line: int, rule_id: str) -> bool:
        """Like :meth:`ignored`, but records the suppression as *used*.

        The runner calls this while filtering; the usage marks feed the
        stale-pragma rule (R011).
        """
        hit = False
        for record in self.pragmas:
            if rule_id in record.rule_ids and line in record.covered:
                record.used.add(rule_id)
                hit = True
        return hit


class Rule:
    """Base class for lint rules.

    ``phase`` selects how the runner drives the rule:

    * ``"file"`` — :meth:`check` is called once per applicable file.
    * ``"project"`` — :meth:`check_project` is called once per run.
    * ``"post"`` — :meth:`check_project` is called once per run, after
      pragma filtering (the suppression accounting is populated).

    Pragma filtering is the runner's responsibility; ``check`` yields
    raw diagnostics.
    """

    rule_id: str = ""
    name: str = ""
    summary: str = ""
    rationale: str = ""
    phase: str = "file"

    def applies(self, ctx: FileContext) -> bool:
        return True

    def check(
        self, ctx: FileContext, project: Optional["ProjectContext"] = None
    ) -> Iterator[Diagnostic]:
        raise NotImplementedError

    def check_project(self, project: "ProjectContext") -> Iterator[Diagnostic]:
        raise NotImplementedError

    def run(
        self, ctx: FileContext, project: Optional["ProjectContext"] = None
    ) -> List[Diagnostic]:
        """Raw diagnostics for one file (no pragma filtering)."""
        if ctx.skip_file or not self.applies(ctx):
            return []
        return list(self.check(ctx, project))

    def diag(self, ctx: FileContext, node: ast.AST, message: str) -> Diagnostic:
        return Diagnostic(
            path=ctx.display_path,
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0) + 1,
            rule_id=self.rule_id,
            message=message,
        )

    def diag_at(
        self, ctx: FileContext, line: int, col: int, message: str
    ) -> Diagnostic:
        """A diagnostic at an explicit location (project/post rules)."""
        return Diagnostic(
            path=ctx.display_path,
            line=line,
            col=col,
            rule_id=self.rule_id,
            message=message,
        )


def parse_file(path: Path, root: Optional[Path] = None) -> FileContext:
    """Read and parse one file into a :class:`FileContext`."""
    return FileContext(path, path.read_text(encoding="utf-8"), root=root)


def discover_files(paths: Sequence[Path]) -> List[Path]:
    """Expand files/directories into a sorted list of ``.py`` files.

    Directory walks skip ``__pycache__`` and hidden directories
    explicitly (a stray ``.py`` inside a cache directory must not lint),
    and non-``.py`` arguments are dropped rather than parsed.
    """
    found: List[Path] = []
    for path in paths:
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                relative = candidate.relative_to(path)
                if any(
                    part == "__pycache__" or part.startswith(".")
                    for part in relative.parts[:-1]
                ):
                    continue
                found.append(candidate)
        elif path.suffix == ".py":
            found.append(path)
    return found
