"""Pan matrix profile: the complete profile of *every* length in a range.

Section 8 of the paper: "We also plan to extend VALMOD in order to
efficiently compute a complete matrix profile for each length in the
input range.  This would enable us to support more diverse applications,
such as discovery of shapelets and discords."  This module implements
that extension.

Representation: an ``(n_lengths, n_positions)`` matrix of z-normalized
nearest-neighbor distances (+inf where a window does not exist), plus
the matching neighbor-index matrix.  Construction strategies:

* ``exact``   — one STOMP run per length (the exhaustive baseline).
* ``valmod``  — VALMOD-assisted: reuse Algorithm 4's partial results for
  the rows it certifies (the *valid* profiles, typically the vast
  majority), and repair only the non-valid rows with MASS.  Exact
  output, often much cheaper — quantified by
  ``benchmarks/bench_pan_profile.py``.

Queries: per-length motif pairs, the VALMP (min over lengths of the
normalized columns), variable-length discords, and growth curves of a
position's NN distance across lengths.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.core.compute_mp import compute_matrix_profile
from repro.core.compute_submp import compute_submp
from repro.core.discords import Discord
from repro.distance.mass import mass_with_stats
from repro.distance.profile import apply_exclusion_zone
from repro.distance.znorm import as_series
from repro.exceptions import InvalidParameterError
from repro.kernels.context import SeriesContext
from repro.matrixprofile.exclusion import exclusion_zone_half_width
from repro.matrixprofile.index import MatrixProfile
from repro.matrixprofile.stomp import stomp
from repro.types import FloatArray, IntArray, MotifPair
from repro.lint.contracts import number_in, positive_int, require, series_like

__all__ = ["PanMatrixProfile", "compute_pan_matrix_profile"]


@dataclass
class PanMatrixProfile:
    """All-lengths matrix profile over ``[l_min, l_max]``."""

    l_min: int
    l_max: int
    distances: FloatArray  # (n_lengths, n_positions), +inf = undefined
    indices: IntArray    # (n_lengths, n_positions), -1 = undefined
    repaired_rows: int = 0
    build_seconds: float = field(default=0.0, repr=False)

    @property
    def lengths(self) -> IntArray:
        return np.arange(self.l_min, self.l_max + 1)

    def profile_for(self, length: int) -> MatrixProfile:
        """The full matrix profile of one length."""
        if not self.l_min <= length <= self.l_max:
            raise InvalidParameterError(
                f"length {length} outside [{self.l_min}, {self.l_max}]"
            )
        row = length - self.l_min
        n_positions = self.distances.shape[1]
        n_valid = n_positions - (length - self.l_min)
        return MatrixProfile(
            profile=self.distances[row, :n_valid].copy(),
            index=self.indices[row, :n_valid].copy(),
            length=length,
        )

    def motif_pairs(self) -> Dict[int, MotifPair]:
        """Exact motif pair per length."""
        return {
            int(length): self.profile_for(int(length)).motif_pair()
            for length in self.lengths
        }

    def normalized(self) -> FloatArray:
        """The matrix scaled by ``sqrt(1/l)`` per row (cross-length view)."""
        scales = np.sqrt(1.0 / self.lengths.astype(np.float64))
        return self.distances * scales[:, None]

    def valmp_arrays(self) -> Tuple[FloatArray, IntArray]:
        """(normalized distance, best length) per position — the VALMP."""
        norm = self.normalized()
        best_rows = np.argmin(np.where(np.isfinite(norm), norm, np.inf), axis=0)
        cols = np.arange(norm.shape[1])
        return norm[best_rows, cols], self.lengths[best_rows]

    def discords(self, k: int = 3) -> List[Discord]:
        """Top-k variable-length discords from the complete matrix."""
        if k <= 0:
            raise InvalidParameterError(f"k must be positive, got {k}")
        norm = self.normalized()
        candidates: List[Discord] = []
        for row, length in enumerate(self.lengths):
            length = int(length)
            values = norm[row]
            finite = np.isfinite(values)
            if not finite.any():
                continue
            pos = int(np.argmax(np.where(finite, values, -np.inf)))
            candidates.append(
                Discord(
                    normalized_distance=float(values[pos]),
                    distance=float(self.distances[row, pos]),
                    length=length,
                    start=pos,
                )
            )
        result: List[Discord] = []
        for candidate in sorted(candidates, reverse=True):
            zone = exclusion_zone_half_width(candidate.length)
            if any(abs(candidate.start - c.start) < zone for c in result):
                continue
            result.append(candidate)
            if len(result) >= k:
                break
        return result

    def growth_curve(self, position: int) -> FloatArray:
        """A position's NN distance as a function of the length."""
        if not 0 <= position < self.distances.shape[1]:
            raise InvalidParameterError(f"position {position} out of range")
        return self.distances[:, position].copy()


@require(
    series=series_like(),
    l_min=positive_int(),
    l_max=positive_int(),
    p=number_in(1, 100),
)
def compute_pan_matrix_profile(
    series: FloatArray,
    l_min: int,
    l_max: int,
    strategy: str = "valmod",
    p: int = 50,
) -> PanMatrixProfile:
    """Build the all-lengths matrix profile.

    ``strategy='valmod'`` reuses the Algorithm-4 machinery: at each
    length the valid rows come for free from the partial subMP; only the
    non-valid rows are repaired with one MASS profile each.
    ``strategy='exact'`` runs STOMP per length (the baseline the bench
    compares against).  Both produce identical matrices (tested).
    """
    t = as_series(series, min_length=8)
    if l_min > l_max:
        raise InvalidParameterError(f"l_min ({l_min}) must not exceed l_max ({l_max})")
    if strategy not in ("valmod", "exact"):
        raise InvalidParameterError(
            f"unknown strategy {strategy!r}; use 'valmod' or 'exact'"
        )
    start_time = time.perf_counter()
    # One shared stats/FFT cache for the whole length sweep.
    ctx = SeriesContext(t)
    n_positions = t.size - l_min + 1
    n_lengths = l_max - l_min + 1
    distances = np.full((n_lengths, n_positions), np.inf, dtype=np.float64)
    indices = np.full((n_lengths, n_positions), -1, dtype=np.int64)
    repaired = 0

    if strategy == "exact":
        for row, length in enumerate(range(l_min, l_max + 1)):
            mp = stomp(t, length, context=ctx)
            distances[row, : len(mp)] = mp.profile
            indices[row, : len(mp)] = mp.index
    else:
        mp, store = compute_matrix_profile(t, l_min, p, context=ctx)
        distances[0, : len(mp)] = mp.profile
        indices[0, : len(mp)] = mp.index
        for row, length in enumerate(range(l_min + 1, l_max + 1), start=1):
            result = compute_submp(t, store, length, context=ctx)
            known = np.isfinite(result.sub_profile)
            distances[row, : known.size][known] = result.sub_profile[known]
            indices[row, : known.size][known] = result.index[known]
            # Repair the rows Algorithm 4 could not certify.
            missing = np.where(~known)[0]
            if missing.size:
                mu, sigma = ctx.moving_mean_std(length)
                zone = exclusion_zone_half_width(length)
                for position in missing:
                    position = int(position)
                    profile = mass_with_stats(
                        t, position, length, mu, sigma, context=ctx
                    )
                    apply_exclusion_zone(profile, position, zone)
                    j = int(np.argmin(profile))
                    if np.isfinite(profile[j]):
                        distances[row, position] = profile[j]
                        indices[row, position] = j
                    repaired += 1

    return PanMatrixProfile(
        l_min=l_min,
        l_max=l_max,
        distances=distances,
        indices=indices,
        repaired_rows=repaired,
        build_seconds=time.perf_counter() - start_time,
    )
