"""MAD-style exact variable-length discord discovery with LB pruning.

"Matrix Profile Goes MAD" (Linardi et al., PAPERS.md) extends VALMOD's
lower-bound machinery from motifs (profile *minima*) to discords
(profile *maxima*).  The full-profile driver in
:mod:`repro.core.discords` pays one O(n^2) matrix profile per length;
this module pays that price only for lengths that can still matter.

How the bound flips sides
-------------------------
The listDP store keeps, per position ``j``, the ``p`` candidates with
the smallest Eq. 2 lower bound, each with its dot product maintained in
O(1) per length increment.  At any later length ``l``:

* every stored pair's *exact* distance is an upper bound on the profile
  value ``MP_l[j]`` (the minimum over all candidates can only be
  smaller), so ``ub[j] = min over stored entries`` bounds the row from
  above;
* the largest lower bound among stored entries bounds every *unstored*
  candidate from below (rank preservation, Section 4.2), closing the
  interval ``[min(minDist, maxLB), minDist]`` that contains ``MP_l[j]``.

A discord is a profile maximum, so a whole length ``l`` is irrelevant
once the largest length-normalized upper bound over its positions,
``U_l = max_j ub[j] / sqrt(l)``, falls strictly below the running k-th
discord threshold: no position of that length can enter the top-k, and
the full profile need never be computed.  Only lengths whose interval
overlaps the threshold are recomputed exactly — with the same
registered engine the full-profile driver would use, so the values (and
therefore the returned discords) are bitwise identical.

Exactness argument
------------------
The ascending sweep prunes against the *running* threshold, which can
later drop (a strong discord can overlap and evict previously selected
ones, shrinking the selection).  A final certification loop therefore
re-checks every pruned length against the *final* threshold and
recomputes any length whose bound reaches it, until a fixpoint: every
still-pruned length has ``U_l`` strictly below the k-th selected
discord's normalized distance and the selection holds ``k`` entries.
At that point the greedy selection (stable sort, best first) consumes
the pruned lengths' candidates — all strictly weaker than the k-th
selection — only after it is already full, so dropping them cannot
change the output (see ``docs/DISCORDS.md`` for the full argument).

Observability: per length, exactly one of
``discords.profiles.pruned`` / ``discords.profiles.recomputed`` is
incremented, so their sum equals ``discords.lengths.swept`` — the
accounting identity behind the Fig.-9-style discord pruning power
``pruned / swept``.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro import obs
from repro.core.compute_mp import compute_matrix_profile
from repro.core.compute_submp import pairwise_entry_distances
from repro.core.discords import Discord, per_length_candidates, select_top_k
from repro.core.valmod import DEFAULT_P
from repro.distance.znorm import as_series
from repro.exceptions import InvalidParameterError
from repro.kernels.context import SeriesContext
from repro.lint.contracts import instance_of, positive_int, require, series_like
from repro.matrixprofile.exclusion import exclusion_zone_half_width
from repro.matrixprofile.registry import compute_with
from repro.types import FloatArray, IntArray

__all__ = ["find_discords_pruned", "length_upper_bound", "UB_RELATIVE_SLACK"]

#: relative safety margin on the pruning comparison.  The stored dot
#: products accumulate one rounding error per length increment, so the
#: upper bound carries float noise the engine profiles do not; inflating
#: it before the strict comparison keeps a noisy bound from pruning a
#: length whose true maximum ties the threshold.  Pruning less is always
#: exact — this margin only ever converts a prune into a recompute.
UB_RELATIVE_SLACK = 1e-9


@require(length=positive_int())
def length_upper_bound(
    store_neighbor: IntArray,
    store_qt: FloatArray,
    ctx: SeriesContext,
    length: int,
) -> float:
    """``U_l``: largest normalized per-position upper bound at ``length``.

    ``+inf`` when any surviving position has no usable stored entry
    (nothing bounds its profile value, so the length cannot be pruned).
    Public because the streaming driver
    (:class:`repro.matrixprofile.streaming_valmod.StreamingValmod`)
    seeds its maintained per-length bounds from the same listDP store.
    """
    n = ctx.series.size
    n_dp = n - length + 1
    mu, sigma = ctx.moving_mean_std(length)
    zone = exclusion_zone_half_width(length)
    nb = store_neighbor[:n_dp]
    qt = store_qt[:n_dp]
    rows = np.arange(n_dp)[:, None]
    in_range = (nb >= 0) & (nb <= n - length)
    usable = in_range & (np.abs(nb - rows) >= zone)
    dist = pairwise_entry_distances(qt, nb, usable, in_range, mu, sigma, length)
    min_dist = dist.min(axis=1)
    return float(min_dist.max()) / math.sqrt(length)


@require(
    series=series_like(min_length=8),
    l_min=positive_int(),
    l_max=positive_int(),
    k=positive_int(),
    p=positive_int(),
    engine=instance_of(str),
)
def find_discords_pruned(
    series: FloatArray,
    l_min: int,
    l_max: int,
    k: int = 3,
    engine: str = "stomp",
    n_jobs: Optional[int] = 1,
    lengths: Optional[Sequence[int]] = None,
    context: Optional[SeriesContext] = None,
    p: int = DEFAULT_P,
) -> List[Discord]:
    """Top-k variable-length discords via exact lower-bound pruning.

    Bitwise-identical to :func:`repro.core.discords.find_discords` with
    the same arguments (the per-length profiles that *are* evaluated
    come from the same registered ``engine``), but full profiles are
    computed only for lengths the Eq. 2 bounds cannot rule out.  ``p``
    is the listDP width used for the bounds (the paper's Table 2
    default); it affects how much is pruned, never the result.  The one
    extra cost over a pruned length range is a single Algorithm 3 pass
    at the smallest scanned length to build the bound store.

    ``lengths`` restricts the scan to a subset of ``[l_min, l_max]``;
    intermediate lengths are still traversed by the O(n p) dot-product
    advance, but no profile is evaluated for them and they do not count
    toward the pruning statistics.
    """
    t = as_series(series, min_length=8)
    if l_min > l_max:
        raise InvalidParameterError(f"l_min ({l_min}) must not exceed l_max ({l_max})")
    if k <= 0:
        raise InvalidParameterError(f"k must be positive, got {k}")
    if lengths is None:
        scan: List[int] = list(range(l_min, l_max + 1))
    else:
        scan = sorted({int(length) for length in lengths})
        if not scan:
            raise InvalidParameterError("lengths must be non-empty when given")
        for length in scan:
            if not l_min <= length <= l_max:
                raise InvalidParameterError(
                    f"discord length {length} outside [{l_min}, {l_max}]"
                )
    ctx = SeriesContext.ensure(t, context, min_length=8)
    scan_set = frozenset(scan)

    # Per-length candidate lists keyed by length: concatenated in
    # ascending-length order they reproduce the full driver's pool (for
    # the lengths that were evaluated) entry for entry.
    computed: Dict[int, List[Discord]] = {}
    pruned: Dict[int, float] = {}

    def _candidates_at(length: int) -> List[Discord]:
        with obs.span("discords.profile"):
            mp = compute_with(engine, t, length, n_jobs=n_jobs, context=ctx)
        return per_length_candidates(mp.profile, length, k)

    def _selection() -> List[Discord]:
        pool = [c for length in sorted(computed) for c in computed[length]]
        return select_top_k(pool, k)

    base = scan[0]
    computed[base] = _candidates_at(base)
    selection = _selection()

    if len(scan) > 1:
        # The candidate values above came from the caller's engine; the
        # bound store additionally needs the listDP bookkeeping, which
        # only the Algorithm 3 pass produces.
        with obs.span("discords.listdp"):
            _, store = compute_matrix_profile(
                t, base, p, n_jobs=n_jobs, context=ctx
            )
        for length in range(base + 1, scan[-1] + 1):
            with obs.span("discords.advance"):
                store.advance_to(length, t)
            if length not in scan_set:
                continue
            # Until the selection holds k entries, *any* candidate could
            # still enter it, so nothing may be pruned.
            threshold = (
                selection[k - 1].normalized_distance
                if len(selection) == k
                else -math.inf
            )
            upper = length_upper_bound(store.neighbor, store.qt, ctx, length)
            if upper * (1.0 + UB_RELATIVE_SLACK) < threshold:
                pruned[length] = upper
                continue
            computed[length] = _candidates_at(length)
            selection = _selection()

        # Certification loop: the sweep pruned against running
        # thresholds; re-validate every pruned length against the final
        # one, recomputing violators until the fixpoint described in the
        # module docstring.
        while pruned:
            selection = _selection()
            if len(selection) == k:
                threshold = selection[k - 1].normalized_distance
                violating = sorted(
                    length
                    for length, upper in pruned.items()
                    if upper * (1.0 + UB_RELATIVE_SLACK) >= threshold
                )
            else:
                violating = sorted(pruned)
            if not violating:
                break
            for length in violating:
                computed[length] = _candidates_at(length)
                del pruned[length]

    if obs.enabled():
        obs.add("discords.lengths.swept", len(scan))
        obs.add("discords.profiles.recomputed", len(computed))
        obs.add("discords.profiles.pruned", len(pruned))
        for length in computed:
            obs.add(f"discords.profiles.recomputed.l{length}")
        for length in pruned:
            obs.add(f"discords.profiles.pruned.l{length}")

    return _selection()
