"""VALMOD core: the paper's contribution.

Modules
-------
:mod:`repro.core.lower_bound`
    The lower-bounding z-normalized distance of Eq. 1-2 and the
    lower-bound distance profile (Section 4.1).
:mod:`repro.core.entries`
    ``listDP``: the per-profile store of the p best lower-bound entries,
    vectorized over all profiles.
:mod:`repro.core.compute_mp`
    Algorithm 3 — STOMP extended with lower-bound bookkeeping.
:mod:`repro.core.compute_submp`
    Algorithm 4 — the partial matrix profile for subsequent lengths.
:mod:`repro.core.valmp`
    Algorithm 2 — the variable-length matrix profile output structure.
:mod:`repro.core.valmod`
    Algorithm 1 — the VALMOD driver.
:mod:`repro.core.motif_sets`
    Algorithms 5-6 — top-K variable-length motif sets.
:mod:`repro.core.ranking`
    Length-normalized ranking utilities (Section 3).
:mod:`repro.core.discords`
    Variable-length discords: the full-profile reference driver.
:mod:`repro.core.discords_variable`
    MAD-style lower-bound-pruned discord driver (exact, same output).
"""

from repro.core.lower_bound import (
    lower_bound_base,
    lower_bound_distance,
    lower_bound_profile,
    tightness_of_lower_bound,
)
from repro.core.valmp import VALMP
from repro.core.valmod import Valmod, ValmodResult, valmod
from repro.core.motif_sets import find_motif_sets
from repro.core.discords import Discord, find_discords
from repro.core.discords_variable import find_discords_pruned
from repro.core.ranking import (
    RankedEvent,
    rank_motif_pairs,
    top_motifs_across_lengths,
    unified_ranking,
)

__all__ = [
    "Discord",
    "find_discords",
    "find_discords_pruned",
    "RankedEvent",
    "unified_ranking",
    "lower_bound_base",
    "lower_bound_distance",
    "lower_bound_profile",
    "tightness_of_lower_bound",
    "VALMP",
    "Valmod",
    "ValmodResult",
    "valmod",
    "find_motif_sets",
    "rank_motif_pairs",
    "top_motifs_across_lengths",
]
