"""The lower-bounding distance of Eq. 1-2 — the heart of VALMOD.

Setting
-------
We know the correlation ``q`` between subsequences ``T[i]`` and ``T[j]``
at length ``l`` and want a bound on their z-normalized distance at length
``l + k`` *without looking at the last k values of* ``T[i]``.  Minimizing
over all possible normalizations of the unknown extension (Eq. 1) yields
the closed form of Eq. 2::

    LB(d[i,j; l+k]) = sqrt(l)           * sigma[j,l] / sigma[j,l+k]   if q <= 0
                      sqrt(l (1 - q^2)) * sigma[j,l] / sigma[j,l+k]   otherwise

where ``j`` is the subsequence whose extension *is* known (the distance
profile owner in VALMOD).

The two properties VALMOD exploits, both proved by inspection of the
formula and both covered by property-based tests:

* **Admissibility** — ``LB <= d`` for every ``k >= 0``.
* **Rank preservation** — within one distance profile, only the factor
  ``1 / sigma[j, l+k]`` depends on ``k``, and it is shared by every entry
  of the profile; the ranking of entries by LB is therefore identical for
  every ``k``.

We factor the formula as ``LB(l + k) = lb_base / sigma[j, l+k]`` with
``lb_base = f(q) * sqrt(l) * sigma[j, l]`` and ``f(q) = 1`` for ``q <= 0``
else ``sqrt(1 - q^2)``.  ``lb_base`` is constant per entry, which is what
``listDP`` stores.
"""

from __future__ import annotations

import math
from typing import Union

import numpy as np

from repro.types import FloatArray

from repro.distance.profile import correlation_from_qt
from repro.distance.znorm import CONSTANT_EPS
from repro.exceptions import InvalidParameterError
from repro.kernels.context import ensure_context
from repro.lint.contracts import finite_array, int_at_least, positive_int, require, series_like

__all__ = [
    "lower_bound_base",
    "lower_bound_from_base",
    "lower_bound_distance",
    "lower_bound_profile",
    "tightness_of_lower_bound",
]

FloatOrArray = Union[float, FloatArray]


@require(length=positive_int())
def lower_bound_base(
    correlation: FloatOrArray, length: int, sigma_owner: float
) -> FloatOrArray:
    """The k-independent numerator ``f(q) * sqrt(l) * sigma[j,l]`` of Eq. 2.

    ``correlation`` is ``q`` between the pair at the base length,
    ``sigma_owner`` the standard deviation of the profile-owner
    subsequence (the one whose extension is known) at the base length.
    Accepts scalars or arrays of correlations.
    """
    if length <= 0:
        raise InvalidParameterError(f"length must be positive, got {length}")
    q = np.clip(np.asarray(correlation, dtype=np.float64), -1.0, 1.0)
    # A correlation within a few ulps of +/-1 is a perfect match whose
    # computed q picked up rounding noise; snapping to the limit keeps the
    # bound admissible (raising |q| only shrinks f(q), never inflates it).
    q = np.where(np.abs(q) > 1.0 - 1e-12, np.sign(q), q)
    factor = np.where(q <= 0.0, 1.0, np.sqrt(np.maximum(1.0 - q * q, 0.0)))
    result = factor * math.sqrt(length) * sigma_owner
    if np.isscalar(correlation) or getattr(correlation, "ndim", 1) == 0:
        return float(result)
    return result


def lower_bound_from_base(  # repro-lint: ignore[R013] - listDP sentinel entries are +-inf by design
    lb_base: FloatOrArray, sigma_owner_at_target: FloatOrArray
) -> FloatOrArray:
    """Eq. 2 evaluated at a target length: ``lb_base / sigma[j, l+k]``.

    Constant (zero-sigma) owner windows make the bound vacuous, not
    invalid, so they map to 0.
    """
    sigma = np.asarray(sigma_owner_at_target, dtype=np.float64)
    base = np.asarray(lb_base, dtype=np.float64)
    with np.errstate(divide="ignore", invalid="ignore"):
        lb = np.where(sigma < CONSTANT_EPS, 0.0, base / np.maximum(sigma, CONSTANT_EPS))
    if lb.ndim == 0:
        return float(lb)
    return lb


@require(
    series=series_like(),
    i=int_at_least(0),
    j=int_at_least(0),
    length=positive_int(),
    k=int_at_least(0),
)
def lower_bound_distance(
    series: FloatArray, i: int, j: int, length: int, k: int
) -> float:
    """Eq. 2 for one pair, computed explicitly (reference implementation).

    Bounds ``dist(T[i, l+k], T[j, l+k])`` from the length-``l`` statistics
    of both subsequences plus ``sigma[j, l+k]``.  Used directly by tests
    and by the analysis modules; the engines use the factored form.
    """
    t = np.asarray(series, dtype=np.float64)
    if k < 0:
        raise InvalidParameterError(f"k must be non-negative, got {k}")
    if j + length + k > t.size:
        raise InvalidParameterError(
            f"owner subsequence at {j} of length {length + k} exceeds the series"
        )
    if i + length > t.size:
        raise InvalidParameterError(
            f"subsequence at {i} of length {length} exceeds the series"
        )
    a = t[i : i + length]
    b = t[j : j + length]
    sig_a = float(a.std())
    sig_b = float(b.std())
    if sig_a < CONSTANT_EPS or sig_b < CONSTANT_EPS:
        return 0.0  # degenerate windows: only the vacuous bound is admissible
    q = float(np.dot(a - a.mean(), b - b.mean()) / (length * sig_a * sig_b))
    sig_owner_ext = float(t[j : j + length + k].std())
    base = lower_bound_base(q, length, sig_b)
    return float(lower_bound_from_base(base, sig_owner_ext))


@require(
    series=series_like(),
    owner=int_at_least(0),
    length=positive_int(),
    k=int_at_least(0),
)
def lower_bound_profile(
    series: FloatArray, owner: int, length: int, k: int
) -> FloatArray:
    """The lower-bound distance profile ``LB(D_j^{l+k})`` of Section 4.1.

    Entry ``i`` bounds ``dist(T[i, l+k], T[owner, l+k])``.  The vector has
    one entry per subsequence of length ``l + k`` (the candidate set at
    the *target* length).
    """
    t = np.asarray(series, dtype=np.float64)
    target = length + k
    n_target = t.size - target + 1
    if n_target <= 0:
        raise InvalidParameterError(
            f"target length {target} leaves no subsequences in {t.size} points"
        )
    if owner >= n_target:
        raise InvalidParameterError(
            f"owner {owner} has no subsequence of target length {target}"
        )
    ctx = ensure_context(t)
    mu, sigma = ctx.moving_mean_std(length)
    qt = ctx.sliding_dot_product(t[owner : owner + length])
    corr = correlation_from_qt(
        qt, length, float(mu[owner]), max(float(sigma[owner]), CONSTANT_EPS), mu, sigma
    )
    base = lower_bound_base(corr[:n_target], length, float(sigma[owner]))
    sig_owner_ext = float(t[owner : owner + target].std())
    lb = lower_bound_from_base(base, sig_owner_ext)
    lb = np.asarray(lb, dtype=np.float64)
    # Degenerate candidate windows make q meaningless -> vacuous bound.
    lb[sigma[:n_target] < CONSTANT_EPS] = 0.0
    if float(sigma[owner]) < CONSTANT_EPS:
        lb[:] = 0.0
    return lb


@require(lb=finite_array())
def tightness_of_lower_bound(
    lb: FloatOrArray, true_distance: FloatOrArray
) -> FloatOrArray:
    """TLB = LB / true distance, the quality measure of Figure 10.

    Ranges in [0, 1] for an admissible bound; pairs at distance 0 define
    TLB = 1 (the bound is exact there).
    """
    lb_arr = np.asarray(lb, dtype=np.float64)
    d_arr = np.asarray(true_distance, dtype=np.float64)
    with np.errstate(divide="ignore", invalid="ignore"):
        tlb = np.where(d_arr <= 0.0, 1.0, lb_arr / np.where(d_arr <= 0.0, 1.0, d_arr))
    if tlb.ndim == 0:
        return float(tlb)
    return tlb
