"""Algorithm 1 — the VALMOD driver.

Orchestrates the run: Algorithm 3 at the smallest length, then one
Algorithm 4 step per subsequent length, falling back to Algorithm 3 when
the lower bounds cannot certify the motif, and merging every per-length
result into the VALMP structure (Algorithm 2).

The per-length motif pair is always *exact*: either ComputeSubMP proves
it via the lower bounds, or the driver recomputes the full matrix
profile.  Individual VALMP positions may hold values from a coarser
length when a profile stayed non-valid — exactly the paper's semantics.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro import obs
from repro.core.compute_mp import compute_matrix_profile
from repro.core.compute_submp import compute_submp
from repro.core.entries import EntryStore
from repro.core.lower_bound import lower_bound_from_base
from repro.core.stats import LengthStats, RunStats
from repro.core.valmp import VALMP, PairRecord, PartialProfile
from repro.distance.sliding import validate_subsequence_length
from repro.distance.znorm import as_series
from repro.exceptions import InvalidParameterError
from repro.kernels.context import SeriesContext
from repro.lint.contracts import (
    instance_of,
    int_at_least,
    optional,
    positive_int,
    require,
    series_like,
)
from repro.types import FloatArray, MotifPair

__all__ = ["Valmod", "ValmodResult", "valmod", "DEFAULT_P"]

#: the paper's default for p (Table 2).
DEFAULT_P = 50


@dataclass
class ValmodResult:
    """Everything a VALMOD run produces.

    Attributes
    ----------
    valmp:
        The variable-length matrix profile (Algorithm 2's structure).
    motif_pairs:
        Exact motif pair for every length in the range.
    stats:
        Per-length instrumentation (see :mod:`repro.core.stats`).
    """

    l_min: int
    l_max: int
    p: int
    valmp: VALMP
    motif_pairs: Dict[int, MotifPair]
    stats: RunStats = field(repr=False, default_factory=RunStats)

    def best_motif_pair(self) -> MotifPair:
        """The top variable-length motif (smallest normalized distance)."""
        return min(self.motif_pairs.values())

    def ranked_motif_pairs(self) -> List[MotifPair]:
        """All per-length motif pairs, best normalized distance first."""
        return sorted(self.motif_pairs.values())

    def best_k_pairs(self) -> List[PairRecord]:
        """The Algorithm 5 heap contents (needs ``track_top_k`` > 0)."""
        return self.valmp.best_k_pairs()


class Valmod:
    """Configurable VALMOD runner.

    Parameters
    ----------
    series:
        The input data series.
    l_min, l_max:
        Inclusive subsequence-length range.
    p:
        Number of distance-profile entries kept per subsequence
        (Table 2; the paper's default is 50).
    track_top_k:
        Size of the best-pair heap kept for motif-set discovery
        (Algorithm 5); 0 disables tracking.
    recompute_fraction:
        Threshold for ComputeSubMP's partial-recompute path (the paper's
        "fewer than half"); 0 disables the path (ablation).
    lb_pruning:
        Ablation switch — ``False`` recomputes the full matrix profile at
        every length, i.e. degenerates to STOMP-per-length.
    keep_margins:
        Keep per-profile maxLB - minDist vectors for Figure 9 analysis.
    n_jobs:
        Worker processes for the full matrix-profile passes (the initial
        length and every full recompute).  ``1`` (default) stays
        in-process; ``None``/``0`` uses all CPUs.  Results are identical
        for every value.
    trace:
        Observability switch (see :mod:`repro.obs`).  ``True`` records
        counters/spans during :meth:`run` regardless of ``REPRO_TRACE``;
        ``False`` silences an env-enabled tracer; ``None`` (default)
        leaves the global tracer's state untouched.  Results are
        bitwise identical either way.
    stats_cache:
        Share one :class:`~repro.kernels.SeriesContext` across the whole
        l_min..l_max sweep (default).  Every length then computes its
        window statistics exactly once and all FFT sliding dot products
        reuse a single cached series spectrum.  ``False`` disables the
        cache (ablation); the output is bitwise identical either way.
    context:
        An existing :class:`~repro.kernels.SeriesContext` to reuse (the
        :mod:`repro.features` façade threads one context through every
        workload it runs on a series).  Ignored unless it matches the
        series and ``stats_cache`` is on; results are bitwise identical
        with or without a shared context.
    """

    @require(
        series=series_like(min_length=8),
        l_min=positive_int(),
        l_max=positive_int(),
        p=positive_int(),
        track_top_k=int_at_least(0),
        n_jobs=optional(instance_of(int)),
        trace=optional(instance_of(bool)),
        stats_cache=instance_of(bool),
    )
    def __init__(
        self,
        series: FloatArray,
        l_min: int,
        l_max: int,
        p: int = DEFAULT_P,
        track_top_k: int = 0,
        recompute_fraction: float = 0.5,
        lb_pruning: bool = True,
        keep_margins: bool = False,
        n_jobs: Optional[int] = 1,
        trace: Optional[bool] = None,
        stats_cache: bool = True,
        context: Optional[SeriesContext] = None,
    ) -> None:
        self.series = as_series(series, min_length=8)
        if l_min > l_max:
            raise InvalidParameterError(
                f"l_min ({l_min}) must not exceed l_max ({l_max})"
            )
        validate_subsequence_length(self.series.size, l_min)
        validate_subsequence_length(self.series.size, l_max)
        if p <= 0:
            raise InvalidParameterError(f"p must be positive, got {p}")
        self.l_min = int(l_min)
        self.l_max = int(l_max)
        self.p = int(p)
        self.track_top_k = int(track_top_k)
        self.recompute_fraction = float(recompute_fraction)
        self.lb_pruning = bool(lb_pruning)
        self.keep_margins = bool(keep_margins)
        self.n_jobs = n_jobs
        self.trace = trace
        self.stats_cache = bool(stats_cache)
        self._store: Optional[EntryStore] = None
        # One context for the whole sweep: window statistics are computed
        # once per length and the series FFT once per plan size.  A caller
        # (the repro.features façade) may hand in its own context so the
        # same stats serve several workloads.  When the cache is off, a
        # fresh throwaway context per call keeps the code path identical
        # without reusing anything.
        if not self.stats_cache:
            self._context: Optional[SeriesContext] = None
        elif context is not None and context.matches(self.series):
            self._context = context
        else:
            self._context = SeriesContext(self.series)
        self._snapshot_context: Optional[SeriesContext] = None

    def run(self) -> ValmodResult:
        """Execute Algorithm 1 over the configured length range."""
        if self.trace is None:
            return self._run()
        with obs.tracing(self.trace):
            return self._run()

    def _run(self) -> ValmodResult:
        t = self.series
        n_profiles = t.size - self.l_min + 1
        valmp = VALMP(n_profiles, track_top_k=self.track_top_k)
        stats = RunStats()
        motif_pairs: Dict[int, MotifPair] = {}

        start = time.perf_counter()
        with obs.span("valmod.initial"):
            mp, store = compute_matrix_profile(
                t, self.l_min, self.p, n_jobs=self.n_jobs,
                context=self._context,
            )
        obs.add("valmod.lengths.initial")
        self._store = store
        improved = valmp.update(mp.profile, mp.index, self.l_min)
        valmp.record_pairs(improved, self.l_min, self._snapshot)
        pair = mp.motif_pair()
        motif_pairs[self.l_min] = pair
        stats.add(
            LengthStats(
                length=self.l_min,
                mode="initial",
                elapsed_seconds=time.perf_counter() - start,
                n_profiles=n_profiles,
                submp_size=n_profiles,
                motif_distance=pair.distance,
            )
        )

        for length in range(self.l_min + 1, self.l_max + 1):
            start = time.perf_counter()
            if not self.lb_pruning:
                self._full_recompute(length, valmp, motif_pairs, stats, start)
                continue
            with obs.span("valmod.step"):
                result = compute_submp(
                    t, store, length,
                    recompute_fraction=self.recompute_fraction,
                    context=self._context,
                )
            if result.found_motif:
                improved = valmp.update(result.sub_profile, result.index, length)
                valmp.record_pairs(improved, length, self._snapshot)
                if result.best_pair is not None:
                    motif_pairs[length] = MotifPair.build(
                        result.best_pair[0],
                        result.best_pair[1],
                        length,
                        result.best_distance,
                    )
                mode = "submp-partial" if result.n_recomputed else "submp"
                obs.add(f"valmod.lengths.{mode}")
                stats.add(
                    LengthStats(
                        length=length,
                        mode=mode,
                        elapsed_seconds=time.perf_counter() - start,
                        n_profiles=result.sub_profile.size,
                        n_valid=result.n_valid,
                        n_invalid=result.n_invalid,
                        n_recomputed=result.n_recomputed,
                        submp_size=result.submp_size,
                        motif_distance=result.best_distance,
                        pruning_margin=(
                            result.max_lb - result.min_dist
                            if self.keep_margins
                            else None
                        ),
                    )
                )
            else:
                self._full_recompute(length, valmp, motif_pairs, stats, start)

        return ValmodResult(
            l_min=self.l_min,
            l_max=self.l_max,
            p=self.p,
            valmp=valmp,
            motif_pairs=motif_pairs,
            stats=stats,
        )

    def _full_recompute(
        self,
        length: int,
        valmp: VALMP,
        motif_pairs: Dict[int, MotifPair],
        stats: RunStats,
        start: float,
    ) -> None:
        """Algorithm 1, line 13: rebuild the matrix profile and listDP."""
        with obs.span("valmod.full_recompute"):
            mp, store = compute_matrix_profile(
                self.series, length, self.p, n_jobs=self.n_jobs,
                context=self._context,
            )
        obs.add("valmod.lengths.full-recompute")
        self._store = store
        improved = valmp.update(mp.profile, mp.index, length)
        valmp.record_pairs(improved, length, self._snapshot)
        pair = mp.motif_pair()
        motif_pairs[length] = pair
        stats.add(
            LengthStats(
                length=length,
                mode="full-recompute",
                elapsed_seconds=time.perf_counter() - start,
                n_profiles=len(mp),
                submp_size=len(mp),
                motif_distance=pair.distance,
            )
        )

    def _snapshot(self, offset: int, length: int) -> Optional[PartialProfile]:
        """Snapshot one listDP row for the motif-set stage (Algorithm 5)."""
        store = self._store
        if store is None or offset >= store.n_profiles:
            return None
        t = self.series
        n = t.size
        if offset > n - length:
            return None
        ctx = self._context
        if ctx is None:
            # Cache-off ablation: snapshots still memoize their own window
            # statistics (as before the shared context existed), but the
            # measured compute paths receive no context at all.
            if self._snapshot_context is None:
                self._snapshot_context = SeriesContext(t)
            ctx = self._snapshot_context
        mu, sigma = ctx.moving_mean_std(length)
        nb = store.neighbor[offset]
        real = nb >= 0
        in_range = real & (nb <= n - length)
        if not in_range.any():
            return PartialProfile(
                owner=offset,
                length=length,
                neighbors=np.empty(0, dtype=np.int64),
                distances=np.empty(0, dtype=np.float64),
                max_lb=float("inf") if not real.all() else 0.0,
            )
        safe_nb = np.where(in_range, nb, 0)
        qt = store.qt[offset]
        length_f = float(length)
        mu_i = mu[safe_nb]
        sig_i = np.maximum(sigma[safe_nb], 1e-13)
        mu_j = float(mu[offset])
        sig_j = max(float(sigma[offset]), 1e-13)
        corr = (qt - length_f * mu_i * mu_j) / (length_f * sig_i * sig_j)
        np.clip(corr, -1.0, 1.0, out=corr)
        dist = np.sqrt(np.maximum(2.0 * length_f * (1.0 - corr), 0.0))
        lb = np.asarray(
            lower_bound_from_base(store.lb_base[offset], float(sigma[offset])),
            dtype=np.float64,
        )
        max_lb = float(lb.max()) if lb.size else float("inf")
        return PartialProfile(
            owner=offset,
            length=length,
            neighbors=nb[in_range].copy(),
            distances=dist[in_range].copy(),
            max_lb=max_lb,
        )


@require(
    series=series_like(min_length=8),
    l_min=positive_int(),
    l_max=positive_int(),
    p=positive_int(),
    track_top_k=int_at_least(0),
    n_jobs=optional(instance_of(int)),
    trace=optional(instance_of(bool)),
    stats_cache=instance_of(bool),
)
def valmod(
    series: FloatArray,
    l_min: int,
    l_max: int,
    p: int = DEFAULT_P,
    track_top_k: int = 0,
    n_jobs: Optional[int] = 1,
    trace: Optional[bool] = None,
    stats_cache: bool = True,
) -> ValmodResult:
    """Functional entry point: run VALMOD with default settings.

    Example
    -------
    >>> import numpy as np
    >>> from repro import valmod
    >>> rng = np.random.default_rng(0)
    >>> series = rng.standard_normal(2000)
    >>> result = valmod(series, l_min=32, l_max=48)
    >>> pair = result.best_motif_pair()
    """
    return Valmod(
        series, l_min, l_max, p=p, track_top_k=track_top_k, n_jobs=n_jobs,
        trace=trace, stats_cache=stats_cache,
    ).run()
