"""FLUSS semantic segmentation (Matrix Profile VIII).

Another sibling primitive of the matrix-profile family: the *arc curve*
counts, for every position, how many nearest-neighbor arcs (from the
matrix-profile index) cross above it.  Inside a homogeneous regime,
arcs are dense; at a regime boundary, few arcs cross — so the minima of
the corrected arc curve locate semantic segment boundaries (Gharghabi
et al., 2017).

The correction divides by the expected crossings of an
arc-at-random-positions model (an inverted parabola), clipping to
[0, 1]; edges are masked because the parabola vanishes there.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.types import FloatArray, IntArray

from repro.distance.znorm import as_series
from repro.exceptions import InvalidParameterError
from repro.matrixprofile.stomp import stomp
from repro.lint.contracts import instance_of, int_at_least, positive_int, require, series_like

__all__ = [
    "arc_curve",
    "boundaries_from_cac",
    "corrected_arc_curve",
    "fluss",
    "regime_boundaries",
]


@require(index=instance_of(np.ndarray))
def arc_curve(index: IntArray) -> FloatArray:
    """Raw arc crossings per position from a matrix-profile index."""
    idx = np.asarray(index, dtype=np.int64)
    n = idx.size
    delta = np.zeros(n + 1, dtype=np.int64)
    for i, j in enumerate(idx):
        if j < 0:
            continue
        lo, hi = (i, int(j)) if i < j else (int(j), i)
        delta[lo] += 1
        delta[hi] -= 1
    return np.cumsum(delta[:n]).astype(np.float64)


@require(index=instance_of(np.ndarray), length=positive_int())
def corrected_arc_curve(index: IntArray, length: int) -> FloatArray:
    """The CAC: arcs normalized by the random-arc parabola, in [0, 1].

    Positions within one subsequence length of either edge are set to
    1.0 (no boundary can be detected there), per the published practice.
    """
    idx = np.asarray(index, dtype=np.int64)
    n = idx.size
    if n < 3:
        raise InvalidParameterError("index too short for an arc curve")
    crossings = arc_curve(idx)
    positions = np.arange(n, dtype=np.float64)
    expected = 2.0 * positions * (n - positions) / n
    expected[expected < 1e-9] = 1e-9
    cac = np.minimum(crossings / expected, 1.0)
    guard = min(length, n // 2)
    cac[:guard] = 1.0
    cac[n - guard :] = 1.0
    return cac


@require(series=series_like(), length=positive_int())
def fluss(series: FloatArray, length: int) -> FloatArray:
    """Corrected arc curve of a series (computes the MP internally)."""
    t = as_series(series, min_length=8)
    mp = stomp(t, length)
    return corrected_arc_curve(mp.index, length)


@require(length=positive_int(), n_regimes=int_at_least(1))
def boundaries_from_cac(
    cac: FloatArray, length: int, n_regimes: int = 2
) -> List[int]:
    """The ``n_regimes - 1`` deepest minima of a precomputed CAC.

    Boundaries are extracted greedily: take the global CAC minimum, mask
    ``5 * length`` around it (the published separation heuristic), and
    repeat.  Callers that already hold a CAC (e.g. the
    :mod:`repro.features` façade) avoid recomputing the matrix profile
    :func:`fluss` would rebuild.
    """
    if n_regimes < 2:
        raise InvalidParameterError(f"n_regimes must be >= 2, got {n_regimes}")
    remaining = np.asarray(cac, dtype=np.float64).copy()
    boundaries: List[int] = []
    separation = 5 * length
    for _ in range(n_regimes - 1):
        pos = int(np.argmin(remaining))
        if remaining[pos] >= 1.0:
            break  # nothing left to split
        boundaries.append(pos)
        lo = max(0, pos - separation)
        hi = min(remaining.size, pos + separation)
        remaining[lo:hi] = 1.0
    return sorted(boundaries)


@require(series=series_like(), length=positive_int(), n_regimes=int_at_least(1))
def regime_boundaries(
    series: FloatArray, length: int, n_regimes: int = 2
) -> List[int]:
    """The ``n_regimes - 1`` deepest CAC minima, mutually separated.

    Convenience wrapper: computes :func:`fluss` and delegates to
    :func:`boundaries_from_cac`.
    """
    return boundaries_from_cac(fluss(series, length), length, n_regimes)
