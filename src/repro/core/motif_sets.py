"""Algorithms 5-6 — variable-length motif *sets* discovery (Section 5).

A motif set (Definition 2.6) extends a motif pair with every subsequence
within radius ``r = D * pair_distance`` of either member (``D`` is the
user's *radius factor*).  Algorithm 6 builds one set per top-K pair,
reusing the partial distance profiles snapshotted by Algorithm 5: when a
pair's partial profile has ``maxLB > r``, every subsequence within the
radius is guaranteed to be already stored (anything unstored is farther
than maxLB), so no recomputation is needed — this is where the 3-6 orders
of magnitude speedup of Figure 15 comes from.

The sets in the answer are pairwise disjoint (Problem 2): each
subsequence of each length is claimed by at most one set, and trivial
matches within a set are removed greedily by proximity to the seeds.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

import numpy as np

from repro.core.valmp import PairRecord, PartialProfile
from repro.distance.mass import mass
from repro.distance.profile import apply_exclusion_zone
from repro.exceptions import InvalidParameterError
from repro.lint.contracts import number_in, positive_int, require, series_like
from repro.matrixprofile.exclusion import exclusion_zone_half_width
from repro.types import FloatArray, IntArray, MotifPair, MotifSet

__all__ = ["compute_motif_sets", "find_motif_sets"]


def _candidates_for_side(
    series: FloatArray,
    owner: int,
    length: int,
    radius: float,
    snapshot: Optional[PartialProfile],
) -> Tuple[IntArray, FloatArray, bool]:
    """Offsets/distances within ``radius`` of one pair member.

    Returns ``(offsets, distances, recomputed)``.  Uses the snapshotted
    partial profile when its maxLB certifies completeness (Algorithm 6,
    lines 6-7 and 13-14), otherwise recomputes the full distance profile
    (lines 8-11 and 15-18).
    """
    if snapshot is not None and snapshot.max_lb > radius:
        within = snapshot.distances < radius
        return snapshot.neighbors[within], snapshot.distances[within], False
    profile = mass(series, owner, length)
    apply_exclusion_zone(profile, owner, exclusion_zone_half_width(length))
    within = np.where(profile < radius)[0]
    return within, profile[within], True


def _greedy_non_trivial(
    members: Dict[int, float], zone: int, seeds: Iterable[int]
) -> List[int]:
    """Keep at most one member per exclusion-zone cluster.

    Seeds are always kept first; remaining candidates are admitted in
    ascending distance order if they don't trivially match anything
    already kept — the "subsequence proximity as a quality measure" rule
    of Section 5.
    """
    kept: List[int] = []

    def clashes(offset: int) -> bool:
        return any(abs(offset - other) < zone for other in kept)

    for seed in seeds:
        if not clashes(seed):
            kept.append(seed)
    for offset in sorted(members, key=lambda o: (members[o], o)):
        if not clashes(offset):
            kept.append(offset)
    return kept


@require(
    series=series_like(),
    radius_factor=number_in(0.0, float("inf"), open_low=True),
)
def compute_motif_sets(
    series: FloatArray,
    pairs: List[PairRecord],
    radius_factor: float,
) -> List[MotifSet]:
    """Algorithm 6: extend each top-K pair into a disjoint motif set."""
    if radius_factor <= 0:
        raise InvalidParameterError(
            f"radius factor D must be positive, got {radius_factor}"
        )
    t = np.asarray(series, dtype=np.float64)
    claimed: Set[Tuple[int, int]] = set()
    result: List[MotifSet] = []
    for record in sorted(pairs, key=lambda r: r.normalized_distance):
        length = record.length
        zone = exclusion_zone_half_width(length)
        radius = record.distance * radius_factor
        members: Dict[int, float] = {}
        for owner, snapshot in (
            (record.a, record.profile_a),
            (record.b, record.profile_b),
        ):
            offsets, dists, _ = _candidates_for_side(
                t, owner, length, radius, snapshot
            )
            for offset, dist in zip(offsets, dists):
                offset = int(offset)
                best = members.get(offset)
                if best is None or dist < best:
                    members[offset] = float(dist)
        members.setdefault(record.a, 0.0)
        members.setdefault(record.b, 0.0)
        # Enforce global disjointness before the trivial-match sweep.
        members = {
            o: d for o, d in members.items() if (o, length) not in claimed
        }
        kept = _greedy_non_trivial(
            members, zone, seeds=[s for s in (record.a, record.b) if s in members]
        )
        if len(kept) < 2:
            continue
        for offset in kept:
            claimed.add((offset, length))
        result.append(
            MotifSet(
                pair=record.as_motif_pair(),
                radius=radius,
                members=tuple(sorted(kept)),
            )
        )
    return result


@require(
    series=series_like(min_length=8),
    l_min=positive_int(),
    l_max=positive_int(),
    k=positive_int(),
    radius_factor=number_in(0.0, float("inf"), open_low=True),
    p=positive_int(),
)
def find_motif_sets(
    series: FloatArray,
    l_min: int,
    l_max: int,
    k: int = 10,
    radius_factor: float = 4.0,
    p: int = 50,
    n_jobs: Optional[int] = 1,
) -> List[MotifSet]:
    """End-to-end Problem 2 solver: VALMOD + Algorithms 5-6.

    Runs VALMOD over ``[l_min, l_max]`` tracking the best ``k`` pairs,
    then extends each into a motif set with radius ``radius_factor``
    times the pair distance.  Returns the sets best-pair-first.
    ``n_jobs`` is forwarded to VALMOD's matrix-profile passes.
    """
    from repro.core.valmod import Valmod

    result = Valmod(
        series, l_min, l_max, p=p, track_top_k=k, n_jobs=n_jobs
    ).run()
    return compute_motif_sets(series, result.best_k_pairs(), radius_factor)


def motif_set_summary(motif_set: MotifSet) -> str:
    """One-line human-readable rendering of a motif set."""
    pair: MotifPair = motif_set.pair
    return (
        f"length={motif_set.length} freq={motif_set.frequency} "
        f"seed=({pair.a},{pair.b}) dist={pair.distance:.4f} "
        f"norm={pair.normalized_distance:.4f} radius={motif_set.radius:.4f}"
    )
