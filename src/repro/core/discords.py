"""Variable-length discord discovery — the paper's stated extension.

Section 8 of the paper names discords (the most *anomalous*
subsequences, i.e. the matrix-profile maxima) as the application that an
all-lengths matrix profile unlocks.  A discord of the wrong length is as
misleading as a motif of the wrong length: a 2-second glitch scanned
with a 10-second window dilutes into normality.

:func:`find_discords` scans every length in a range, length-normalizes
the profile values (the same ``sqrt(1/l)`` scale that makes motifs
comparable makes discords comparable), and returns the top-k
non-overlapping discords across all lengths.

Exactness note: per-position values require the *full* matrix profile
of each length, so this driver runs the per-length engines directly
(VALMOD's partial subMP intentionally leaves non-valid positions
unknown, which is fine for minima but not maxima).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.distance.znorm import as_series
from repro.exceptions import InvalidParameterError
from repro.kernels.context import SeriesContext
from repro.lint.contracts import instance_of, positive_int, require, series_like
from repro.matrixprofile.exclusion import exclusion_zone_half_width
from repro.matrixprofile.registry import compute_with
from repro.types import FloatArray, length_normalized

__all__ = ["Discord", "find_discords"]


@dataclass(frozen=True, order=True)
class Discord:
    """One anomalous subsequence, ranked by normalized NN distance."""

    normalized_distance: float
    distance: float = field(compare=False)
    length: int = field(compare=False)
    start: int = field(compare=False)

    @property
    def end(self) -> int:
        return self.start + self.length


@require(
    series=series_like(min_length=8),
    l_min=positive_int(),
    l_max=positive_int(),
    k=positive_int(),
    engine=instance_of(str),
)
def find_discords(
    series: FloatArray,
    l_min: int,
    l_max: int,
    k: int = 3,
    engine: str = "stomp",
    n_jobs: Optional[int] = 1,
    lengths: Optional[Sequence[int]] = None,
    context: Optional[SeriesContext] = None,
) -> List[Discord]:
    """Top-k variable-length discords, best (most anomalous) first.

    A discord's score is its length-normalized nearest-neighbor
    distance; discords of different lengths compete on that common
    scale, and returned discords are mutually non-overlapping (the
    exclusion zone of the *longer* window applies).  ``engine`` picks a
    registered matrix-profile engine by name; ``n_jobs`` is forwarded to
    engines that parallelize.  ``lengths`` restricts the scan to an
    explicit subset of ``[l_min, l_max]`` (the full range is exact but
    costs one matrix profile per length); ``context`` reuses an existing
    per-series stats/FFT cache — results are bitwise identical with or
    without one.
    """
    t = as_series(series, min_length=8)
    if l_min > l_max:
        raise InvalidParameterError(f"l_min ({l_min}) must not exceed l_max ({l_max})")
    if k <= 0:
        raise InvalidParameterError(f"k must be positive, got {k}")
    if lengths is None:
        scan: List[int] = list(range(l_min, l_max + 1))
    else:
        scan = sorted({int(length) for length in lengths})
        if not scan:
            raise InvalidParameterError("lengths must be non-empty when given")
        for length in scan:
            if not l_min <= length <= l_max:
                raise InvalidParameterError(
                    f"discord length {length} outside [{l_min}, {l_max}]"
                )
    ctx = SeriesContext.ensure(t, context, min_length=8)

    candidates: List[Discord] = []
    for length in scan:
        mp = compute_with(engine, t, length, n_jobs=n_jobs, context=ctx)
        finite = np.isfinite(mp.profile)
        order = np.argsort(mp.profile)[::-1]
        # Keep a handful of per-length maxima; cross-length competition
        # happens below.
        kept = 0
        zone = exclusion_zone_half_width(length)
        taken: List[int] = []
        for pos in order:
            pos = int(pos)
            if not finite[pos]:
                continue
            if any(abs(pos - other) < zone for other in taken):
                continue
            candidates.append(
                Discord(
                    normalized_distance=length_normalized(
                        float(mp.profile[pos]), length
                    ),
                    distance=float(mp.profile[pos]),
                    length=length,
                    start=pos,
                )
            )
            taken.append(pos)
            kept += 1
            if kept >= k:
                break

    result: List[Discord] = []
    for candidate in sorted(candidates, reverse=True):
        zone = exclusion_zone_half_width(candidate.length)
        if any(
            abs(candidate.start - chosen.start)
            < max(zone, exclusion_zone_half_width(chosen.length))
            for chosen in result
        ):
            continue
        result.append(candidate)
        if len(result) >= k:
            break
    return result
