"""Variable-length discord discovery — the paper's stated extension.

Section 8 of the paper names discords (the most *anomalous*
subsequences, i.e. the matrix-profile maxima) as the application that an
all-lengths matrix profile unlocks.  A discord of the wrong length is as
misleading as a motif of the wrong length: a 2-second glitch scanned
with a 10-second window dilutes into normality.

:func:`find_discords` scans every length in a range, length-normalizes
the profile values (the same ``sqrt(1/l)`` scale that makes motifs
comparable makes discords comparable), and returns the top-k
non-overlapping discords across all lengths.

Exactness note: two exact drivers share the candidate-extraction and
cross-length selection helpers of this module.  :func:`find_discords`
is the reference path — one *full* matrix profile per length (VALMOD's
partial subMP intentionally leaves non-valid positions unknown, which
is fine for minima but not maxima, so the full profile is unavoidable
for the lengths that are actually evaluated).
:func:`~repro.core.discords_variable.find_discords_pruned` is the
MAD-style path: it evaluates the full profile only at lengths the
lower-bound machinery cannot certify as irrelevant, and returns a
bitwise-identical discord list.  The full-profile driver remains the
right choice for single lengths, tiny ranges, and as the differential
oracle the pruned driver is tested against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.distance.znorm import as_series
from repro.exceptions import InvalidParameterError
from repro.kernels.context import SeriesContext
from repro.lint.contracts import instance_of, positive_int, require, series_like
from repro.matrixprofile.exclusion import exclusion_zone_half_width
from repro.matrixprofile.registry import compute_with
from repro.types import FloatArray, length_normalized

__all__ = ["Discord", "find_discords", "per_length_candidates", "select_top_k"]


@dataclass(frozen=True, order=True)
class Discord:
    """One anomalous subsequence, ranked by normalized NN distance."""

    normalized_distance: float
    distance: float = field(compare=False)
    length: int = field(compare=False)
    start: int = field(compare=False)

    @property
    def end(self) -> int:
        return self.start + self.length


@require(length=positive_int(), k=positive_int())
def per_length_candidates(
    profile: FloatArray, length: int, k: int
) -> List[Discord]:
    """Up to ``k`` non-overlapping per-length maxima of one profile.

    The per-length half of discord discovery, shared verbatim by the
    full-profile and the lower-bound-pruned drivers so that, given
    bitwise-identical profiles, they extract bitwise-identical
    candidates.  Cross-length competition happens in
    :func:`select_top_k`.
    """
    finite = np.isfinite(profile)
    order = np.argsort(profile)[::-1]
    zone = exclusion_zone_half_width(length)
    candidates: List[Discord] = []
    taken: List[int] = []
    for pos in order:
        pos = int(pos)
        if not finite[pos]:
            continue
        if any(abs(pos - other) < zone for other in taken):
            continue
        candidates.append(
            Discord(
                normalized_distance=length_normalized(
                    float(profile[pos]), length
                ),
                distance=float(profile[pos]),
                length=length,
                start=pos,
            )
        )
        taken.append(pos)
        if len(taken) >= k:
            break
    return candidates


@require(k=positive_int())
def select_top_k(candidates: Sequence[Discord], k: int) -> List[Discord]:
    """Greedy cross-length selection: best-first, non-overlapping.

    Candidates are stable-sorted by normalized distance (descending), so
    equal-distance discords keep their pool order — ties break
    deterministically toward the shorter length, then the earlier
    per-length rank, because both drivers build the pool in ascending
    length order.  The exclusion zone of the *longer* window applies
    between a candidate and every already-chosen discord.
    """
    result: List[Discord] = []
    for candidate in sorted(candidates, reverse=True):
        zone = exclusion_zone_half_width(candidate.length)
        if any(
            abs(candidate.start - chosen.start)
            < max(zone, exclusion_zone_half_width(chosen.length))
            for chosen in result
        ):
            continue
        result.append(candidate)
        if len(result) >= k:
            break
    return result


@require(
    series=series_like(min_length=8),
    l_min=positive_int(),
    l_max=positive_int(),
    k=positive_int(),
    engine=instance_of(str),
)
def find_discords(
    series: FloatArray,
    l_min: int,
    l_max: int,
    k: int = 3,
    engine: str = "stomp",
    n_jobs: Optional[int] = 1,
    lengths: Optional[Sequence[int]] = None,
    context: Optional[SeriesContext] = None,
) -> List[Discord]:
    """Top-k variable-length discords, best (most anomalous) first.

    A discord's score is its length-normalized nearest-neighbor
    distance; discords of different lengths compete on that common
    scale, and returned discords are mutually non-overlapping (the
    exclusion zone of the *longer* window applies).  ``engine`` picks a
    registered matrix-profile engine by name; ``n_jobs`` is forwarded to
    engines that parallelize.  ``lengths`` restricts the scan to an
    explicit subset of ``[l_min, l_max]`` (the full range is exact but
    costs one matrix profile per length); ``context`` reuses an existing
    per-series stats/FFT cache — results are bitwise identical with or
    without one.

    This driver evaluates the full matrix profile at *every* scanned
    length.  For wide ranges prefer
    :func:`repro.core.discords_variable.find_discords_pruned`, which
    returns the identical list while skipping the lengths the Eq. 2
    lower bounds certify as unable to reach the top-k.
    """
    t = as_series(series, min_length=8)
    if l_min > l_max:
        raise InvalidParameterError(f"l_min ({l_min}) must not exceed l_max ({l_max})")
    if k <= 0:
        raise InvalidParameterError(f"k must be positive, got {k}")
    if lengths is None:
        scan: List[int] = list(range(l_min, l_max + 1))
    else:
        scan = sorted({int(length) for length in lengths})
        if not scan:
            raise InvalidParameterError("lengths must be non-empty when given")
        for length in scan:
            if not l_min <= length <= l_max:
                raise InvalidParameterError(
                    f"discord length {length} outside [{l_min}, {l_max}]"
                )
    ctx = SeriesContext.ensure(t, context, min_length=8)

    candidates: List[Discord] = []
    for length in scan:
        mp = compute_with(engine, t, length, n_jobs=n_jobs, context=ctx)
        candidates.extend(per_length_candidates(mp.profile, length, k))
    return select_top_k(candidates, k)
