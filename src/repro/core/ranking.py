"""Length-normalized motif ranking (Section 3).

The paper's key usability point: once motifs of several lengths are
discovered, they must be *ranked* on a common scale.  The correct scale
is the ``sqrt(1/l)``-normalized Euclidean distance (Figure 2 shows both
the raw distance and the ``1/l`` normalization are biased).  These
helpers turn per-length motif pairs into cross-length rankings.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from repro.exceptions import InvalidParameterError
from repro.matrixprofile.exclusion import exclusion_zone_half_width
from repro.types import MotifPair

__all__ = ["rank_motif_pairs", "top_motifs_across_lengths", "deduplicate_pairs"]


def rank_motif_pairs(pairs: Iterable[MotifPair]) -> List[MotifPair]:
    """Sort motif pairs by length-normalized distance, best first."""
    return sorted(pairs)


def deduplicate_pairs(
    pairs: Iterable[MotifPair], min_length_gap: int = 0
) -> List[MotifPair]:
    """Drop pairs that are length-shifted duplicates of a better pair.

    Adjacent lengths usually rediscover the same underlying motif at
    slightly shifted offsets; for presentation we keep only the best
    representative of each (a, b) neighborhood.  Two pairs are considered
    duplicates when both offsets fall within each other's exclusion zones
    and their lengths differ by at most ``min_length_gap`` (0 means any
    length difference collapses into one representative).
    """
    if min_length_gap < 0:
        raise InvalidParameterError(
            f"min_length_gap must be >= 0, got {min_length_gap}"
        )
    kept: List[MotifPair] = []
    for pair in rank_motif_pairs(pairs):
        zone = exclusion_zone_half_width(pair.length)
        duplicate = False
        for other in kept:
            if min_length_gap and abs(other.length - pair.length) > min_length_gap:
                continue
            same_a = abs(other.a - pair.a) < zone
            same_b = abs(other.b - pair.b) < zone
            crossed = abs(other.a - pair.b) < zone and abs(other.b - pair.a) < zone
            if (same_a and same_b) or crossed:
                duplicate = True
                break
        if not duplicate:
            kept.append(pair)
    return kept


def top_motifs_across_lengths(
    motif_pairs: Dict[int, MotifPair], k: int, deduplicate: bool = True
) -> List[MotifPair]:
    """The k best motifs over all lengths, normalized-distance ranked.

    ``motif_pairs`` maps length -> motif pair (a VALMOD result's
    ``motif_pairs`` attribute).  With ``deduplicate`` the ranking
    collapses length-shifted rediscoveries of the same motif.
    """
    if k <= 0:
        raise InvalidParameterError(f"k must be positive, got {k}")
    ranked = rank_motif_pairs(motif_pairs.values())
    if deduplicate:
        ranked = deduplicate_pairs(ranked)
    return ranked[:k]
