"""Length-normalized motif and discord ranking (Section 3).

The paper's key usability point: once motifs of several lengths are
discovered, they must be *ranked* on a common scale.  The correct scale
is the ``sqrt(1/l)``-normalized Euclidean distance (Figure 2 shows both
the raw distance and the ``1/l`` normalization are biased).  These
helpers turn per-length motif pairs into cross-length rankings.

The same scale makes *discords* comparable across lengths — motifs are
the profile minima and discords the maxima of one normalized axis — so
this module also hosts the unified motif+discord ranking: each family is
ranked internally on the normalized scale, then the two are interleaved
by per-family rank (best motif, best discord, second motif, ...).
Interleaving, rather than merging on raw score, is deliberate: "most
similar" and "most anomalous" sit at opposite ends of the axis, so no
total order between a motif's score and a discord's score is meaningful,
while per-family rank is.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.discords import Discord
from repro.exceptions import InvalidParameterError
from repro.matrixprofile.exclusion import exclusion_zone_half_width
from repro.types import MotifPair
from repro.lint.contracts import int_at_least, optional, positive_int, require

__all__ = [
    "rank_motif_pairs",
    "top_motifs_across_lengths",
    "deduplicate_pairs",
    "RankedEvent",
    "unified_ranking",
]


def rank_motif_pairs(pairs: Iterable[MotifPair]) -> List[MotifPair]:  # repro-lint: ignore[R013] - pure reordering of validated records
    """Sort motif pairs by length-normalized distance, best first."""
    return sorted(pairs)


@require(min_length_gap=int_at_least(0))
def deduplicate_pairs(
    pairs: Iterable[MotifPair], min_length_gap: int = 0
) -> List[MotifPair]:
    """Drop pairs that are length-shifted duplicates of a better pair.

    Adjacent lengths usually rediscover the same underlying motif at
    slightly shifted offsets; for presentation we keep only the best
    representative of each (a, b) neighborhood.  Two pairs are considered
    duplicates when both offsets fall within each other's exclusion zones
    and their lengths differ by at most ``min_length_gap`` (0 means any
    length difference collapses into one representative).
    """
    if min_length_gap < 0:
        raise InvalidParameterError(
            f"min_length_gap must be >= 0, got {min_length_gap}"
        )
    kept: List[MotifPair] = []
    for pair in rank_motif_pairs(pairs):
        zone = exclusion_zone_half_width(pair.length)
        duplicate = False
        for other in kept:
            if min_length_gap and abs(other.length - pair.length) > min_length_gap:
                continue
            same_a = abs(other.a - pair.a) < zone
            same_b = abs(other.b - pair.b) < zone
            crossed = abs(other.a - pair.b) < zone and abs(other.b - pair.a) < zone
            if (same_a and same_b) or crossed:
                duplicate = True
                break
        if not duplicate:
            kept.append(pair)
    return kept


@require(k=positive_int())
def top_motifs_across_lengths(
    motif_pairs: Dict[int, MotifPair], k: int, deduplicate: bool = True
) -> List[MotifPair]:
    """The k best motifs over all lengths, normalized-distance ranked.

    ``motif_pairs`` maps length -> motif pair (a VALMOD result's
    ``motif_pairs`` attribute).  With ``deduplicate`` the ranking
    collapses length-shifted rediscoveries of the same motif.
    """
    if k <= 0:
        raise InvalidParameterError(f"k must be positive, got {k}")
    ranked = rank_motif_pairs(motif_pairs.values())
    if deduplicate:
        ranked = deduplicate_pairs(ranked)
    return ranked[:k]


@dataclass(frozen=True)
class RankedEvent:
    """One entry of the unified motif+discord ranking.

    ``kind`` is ``"motif"`` or ``"discord"``; ``rank`` is the 1-based
    position within that family; ``normalized_distance`` is the shared
    ``sqrt(1/l)``-corrected score (small = similar for motifs, large =
    anomalous for discords); ``starts`` holds the motif pair's two
    offsets or the discord's single offset.
    """

    kind: str
    rank: int
    normalized_distance: float
    length: int
    starts: Tuple[int, ...]


@require(k=optional(positive_int()))
def unified_ranking(
    motif_pairs: Iterable[MotifPair],
    discords: Sequence[Discord],
    k: Optional[int] = None,
    deduplicate: bool = True,
) -> List[RankedEvent]:
    """Interleave the motif and discord rankings into one event list.

    Motifs are ranked ascending and discords descending by normalized
    distance (each family's natural "best first"), then interleaved by
    rank: best motif, best discord, second-best motif, and so on, with
    the longer family's tail appended once the shorter runs out.  The
    interleave is deterministic because each family's internal order is
    (stable sort on the normalized scale — see the module docstring for
    why rank, not raw score, is the cross-family key).  ``k`` truncates
    the combined list; ``None`` returns every event.
    """
    if k is not None and k <= 0:
        raise InvalidParameterError(f"k must be positive, got {k}")
    motifs = rank_motif_pairs(motif_pairs)
    if deduplicate:
        motifs = deduplicate_pairs(motifs)
    anomalies = sorted(discords, reverse=True)
    events: List[RankedEvent] = []
    for i in range(max(len(motifs), len(anomalies))):
        if i < len(motifs):
            pair = motifs[i]
            events.append(
                RankedEvent(
                    kind="motif",
                    rank=i + 1,
                    normalized_distance=pair.normalized_distance,
                    length=pair.length,
                    starts=(pair.a, pair.b),
                )
            )
        if i < len(anomalies):
            discord = anomalies[i]
            events.append(
                RankedEvent(
                    kind="discord",
                    rank=i + 1,
                    normalized_distance=discord.normalized_distance,
                    length=discord.length,
                    starts=(discord.start,),
                )
            )
    return events if k is None else events[:k]
