"""Algorithm 2 — the VALMP (variable-length matrix profile) structure.

VALMP is VALMOD's output: for every position of the series it stores the
best *length-normalized* match found over all processed lengths — the
raw distance, the normalized distance, the matching length, and the
neighbor offset.  Updating is a vectorized "keep the smaller normalized
distance" merge (Algorithm 2).

:class:`VALMP` also implements the bookkeeping of Algorithm 5
(``updateVALMPForMotifSets``): a bounded best-K heap of the subsequence
pairs that entered the structure, each remembered together with a
snapshot of its partial distance profiles so that Algorithm 6 can build
motif sets without recomputing (see :mod:`repro.core.motif_sets`).
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.exceptions import InvalidParameterError, NotComputedError
from repro.lint.contracts import int_at_least, positive_int, require
from repro.types import BoolArray, FloatArray, IntArray, MotifPair

__all__ = ["VALMP", "PairRecord", "PartialProfile"]


@dataclass(frozen=True)
class PartialProfile:
    """Snapshot of one partial distance profile (p entries) at one length.

    ``neighbors`` are candidate offsets, ``distances`` their exact
    distances to the owner at ``length``, and ``max_lb`` the largest
    lower bound among the stored entries: any candidate *not* listed is
    guaranteed to be farther than ``max_lb``.
    """

    owner: int
    length: int
    neighbors: IntArray
    distances: FloatArray
    max_lb: float


@dataclass(order=True)
class PairRecord:
    """One candidate motif pair in the best-K heap (Algorithm 5)."""

    sort_key: float
    normalized_distance: float = field(compare=False)
    distance: float = field(compare=False)
    length: int = field(compare=False)
    a: int = field(compare=False)
    b: int = field(compare=False)
    profile_a: Optional[PartialProfile] = field(compare=False, default=None)
    profile_b: Optional[PartialProfile] = field(compare=False, default=None)

    def as_motif_pair(self) -> MotifPair:
        return MotifPair.build(self.a, self.b, self.length, self.distance)


class VALMP:
    """The variable-length matrix profile of Algorithm 2.

    Parameters
    ----------
    n_profiles:
        Number of positions, ``|T| - l_min + 1``.
    track_top_k:
        When positive, maintain the best-K pair heap of Algorithm 5.
    """

    @require(n_profiles=positive_int(), track_top_k=int_at_least(0))
    def __init__(self, n_profiles: int, track_top_k: int = 0) -> None:
        if n_profiles <= 0:
            raise InvalidParameterError(
                f"VALMP needs at least one profile, got {n_profiles}"
            )
        if track_top_k < 0:
            raise InvalidParameterError(f"track_top_k must be >= 0, got {track_top_k}")
        self.n_profiles = n_profiles
        self.distances = np.full(n_profiles, np.inf, dtype=np.float64)
        self.norm_distances = np.full(n_profiles, np.inf, dtype=np.float64)
        self.lengths = np.zeros(n_profiles, dtype=np.int64)
        self.indices = np.full(n_profiles, -1, dtype=np.int64)
        self.updated = np.zeros(n_profiles, dtype=bool)
        self._track_top_k = track_top_k
        # Max-heap by normalized distance, kept at size <= K: Python's
        # heapq is a min-heap, so sort_key is the negated distance.
        self._heap: List[PairRecord] = []
        # Canonical (min(a,b), max(a,b), length) keys currently in the
        # heap, so the symmetric record (b, a) never duplicates (a, b).
        self._heap_keys: set = set()

    @property
    def track_top_k(self) -> int:
        return self._track_top_k

    def update(
        self,
        profile: FloatArray,
        index: IntArray,
        length: int,
    ) -> BoolArray:
        """Merge one per-length profile into VALMP (Algorithm 2).

        ``profile`` may contain NaN for the ⊥ entries of a partial subMP;
        those positions are skipped.  Returns the boolean mask of improved
        positions (used by Algorithm 5's pair collection).
        """
        values = np.asarray(profile, dtype=np.float64)
        idx = np.asarray(index, dtype=np.int64)
        if values.size > self.n_profiles:
            raise InvalidParameterError(
                f"profile of size {values.size} exceeds VALMP size {self.n_profiles}"
            )
        norm = values * math.sqrt(1.0 / length)
        known = np.isfinite(norm) & (idx >= 0)
        head_norm = self.norm_distances[: values.size]
        improved = known & (norm < head_norm)
        positions = np.where(improved)[0]
        self.distances[positions] = values[positions]
        self.norm_distances[positions] = norm[positions]
        self.lengths[positions] = length
        self.indices[positions] = idx[positions]
        self.updated[positions] = True
        return improved

    def record_pairs(
        self,
        improved: BoolArray,
        length: int,
        snapshot,
    ) -> None:
        """Algorithm 5: push improved pairs into the best-K heap.

        ``snapshot`` is a callable ``(offset, length) -> PartialProfile``
        evaluated lazily, only for pairs that actually enter the heap.
        """
        if self._track_top_k == 0:
            return
        for i in np.where(improved)[0]:
            i = int(i)
            b = int(self.indices[i])
            key = (min(i, b), max(i, b), length)
            if key in self._heap_keys:
                continue
            record = PairRecord(
                sort_key=-self.norm_distances[i],
                normalized_distance=float(self.norm_distances[i]),
                distance=float(self.distances[i]),
                length=length,
                a=i,
                b=b,
            )
            if len(self._heap) < self._track_top_k:
                record.profile_a = snapshot(record.a, length)
                record.profile_b = snapshot(record.b, length)
                heapq.heappush(self._heap, record)
                self._heap_keys.add(key)
            elif record.normalized_distance < self._heap[0].normalized_distance:
                record.profile_a = snapshot(record.a, length)
                record.profile_b = snapshot(record.b, length)
                evicted = heapq.heapreplace(self._heap, record)
                self._heap_keys.discard(
                    (min(evicted.a, evicted.b), max(evicted.a, evicted.b), evicted.length)
                )
                self._heap_keys.add(key)

    def best_k_pairs(self) -> List[PairRecord]:
        """The tracked pairs, best (smallest normalized distance) first."""
        return sorted(self._heap, key=lambda r: r.normalized_distance)

    def motif_pair(self) -> MotifPair:
        """The single best variable-length motif pair in the structure."""
        if not self.updated.any():
            raise NotComputedError("VALMP has not been updated yet")
        i = int(np.argmin(self.norm_distances))
        return MotifPair.build(
            i, int(self.indices[i]), int(self.lengths[i]), float(self.distances[i])
        )

    def as_arrays(self) -> Tuple[FloatArray, FloatArray, IntArray, IntArray]:
        """(distances, norm_distances, lengths, indices) views."""
        return self.distances, self.norm_distances, self.lengths, self.indices
