"""Algorithm 4 — ComputeSubMP: the matrix profile for subsequent lengths.

Given the ``listDP`` store built at a smaller length, this routine tries
to find the motif pair of the new length by evaluating only the ``p``
stored entries per distance profile (O(n p) work), instead of the full
O(n^2) matrix profile.

Validity logic (paper, Section 4.4)
-----------------------------------
For each profile, ``minDist`` is the smallest exact distance among the
stored entries and ``maxLB`` the largest lower bound among them (the p-th
smallest LB of the whole profile).  Because the LB ranking is preserved
across lengths, every *unstored* candidate has LB >= maxLB, hence true
distance >= maxLB.  So:

* ``minDist < maxLB``   -> the profile minimum is known exactly (*valid*).
* otherwise             -> the true minimum lies in [maxLB, minDist]
  (*non-valid*); we record maxLB.

If the best valid distance beats every non-valid profile's maxLB, it is
the motif distance (``bBestM``).  Otherwise the non-valid profiles whose
maxLB could hide a better pair are recomputed in full — but only when
they are few; else the caller falls back to Algorithm 3.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from repro import obs
from repro.types import BoolArray, FloatArray, IntArray

from repro.core.entries import EntryStore
from repro.core.lower_bound import lower_bound_from_base
from repro.distance.mass import mass_with_stats
from repro.distance.profile import apply_exclusion_zone, correlation_from_qt
from repro.distance.znorm import CONSTANT_EPS
from repro.exceptions import InvalidParameterError
from repro.kernels.context import SeriesContext
from repro.matrixprofile.exclusion import exclusion_zone_half_width
from repro.lint.contracts import number_in, positive_int, require, series_like

__all__ = ["SubMPResult", "compute_submp", "pairwise_entry_distances"]


@dataclass
class SubMPResult:
    """Output of one ComputeSubMP step.

    ``sub_profile`` holds the exact matrix-profile value where known and
    NaN for the paper's ⊥ (non-valid, not recomputed) entries.
    """

    length: int
    sub_profile: FloatArray
    index: IntArray
    found_motif: bool
    best_distance: float
    best_pair: Optional[Tuple[int, int]]
    n_valid: int
    n_invalid: int
    n_recomputed: int
    # Diagnostics for Figures 9 and 14: per-profile pruning margin.
    min_dist: Optional[FloatArray] = field(repr=False, default=None)
    max_lb: Optional[FloatArray] = field(repr=False, default=None)

    @property
    def submp_size(self) -> int:
        """Number of exactly-known entries (Figure 14's |subMP|)."""
        return int(np.isfinite(self.sub_profile).sum())


@require(length=positive_int())
def pairwise_entry_distances(
    qt: FloatArray,
    nb: IntArray,
    usable: BoolArray,
    in_range: BoolArray,
    mu: FloatArray,
    sigma: FloatArray,
    length: int,
) -> FloatArray:
    """Exact distances for every stored entry at ``length`` (vectorized Eq. 3).

    Shared by ComputeSubMP's validity test and the MAD-style discord
    driver (:mod:`repro.core.discords_variable`): each stored pair's
    dot product, advanced to ``length``, yields that pair's exact
    z-normalized distance, which is an *upper bound* on the profile
    minimum of its row.  Unusable entries report ``+inf``.
    """
    n_rows = qt.shape[0]
    safe_nb = np.where(in_range, nb, 0)
    mu_i = mu[safe_nb]
    sig_i = sigma[safe_nb]
    mu_j = mu[:n_rows][:, None]
    sig_j = sigma[:n_rows][:, None]
    denom = length * np.maximum(sig_i, CONSTANT_EPS) * np.maximum(sig_j, CONSTANT_EPS)
    corr = (qt - length * mu_i * mu_j) / denom
    np.clip(corr, -1.0, 1.0, out=corr)
    dist = np.sqrt(np.maximum(2.0 * length * (1.0 - corr), 0.0))
    i_const = sig_i < CONSTANT_EPS
    j_const = sig_j < CONSTANT_EPS
    dist = np.where(i_const ^ j_const, math.sqrt(length), dist)
    dist = np.where(i_const & j_const, 0.0, dist)
    return np.where(usable, dist, np.inf)


@require(
    series=series_like(),
    new_length=positive_int(),
    recompute_fraction=number_in(0.0, 1.0),
)
def compute_submp(
    series: FloatArray,
    store: EntryStore,
    new_length: int,
    recompute_fraction: float = 0.5,
    context: Optional[SeriesContext] = None,
) -> SubMPResult:
    """Run one ComputeSubMP step, advancing ``store`` to ``new_length``.

    ``recompute_fraction`` is the paper's "less than half" threshold: the
    partial-recompute path (Algorithm 4 lines 27-38) only runs when the
    non-valid profiles are fewer than this fraction of all profiles; set
    it to 0 to disable the path (ablation).  ``context`` optionally reuses
    cached window statistics and the series spectrum for the recompute
    FFTs.
    """
    ctx = SeriesContext.ensure(series, context, min_length=4)
    t = ctx.series
    n = t.size
    n_dp = n - new_length + 1
    if n_dp < 2:
        raise InvalidParameterError(
            f"length {new_length} leaves fewer than two subsequences"
        )
    with obs.span("submp.advance"):
        store.advance_to(new_length, t)
    mu, sigma = ctx.moving_mean_std(new_length)
    zone = exclusion_zone_half_width(new_length)

    nb = store.neighbor[:n_dp]
    qt = store.qt[:n_dp]
    rows = np.arange(n_dp)[:, None]
    real = nb >= 0
    in_range = real & (nb <= n - new_length)
    usable = in_range & (np.abs(nb - rows) >= zone)
    if obs.enabled():
        # A "lookup" is one stored listDP slot consulted at this length;
        # a "hit" is a slot still usable (in range, outside the zone).
        slots = int(nb.size)
        hits = int(usable.sum())
        obs.add("listdp.lookups", slots)
        obs.add("listdp.hits", hits)
        obs.add("listdp.misses", slots - hits)

    dist = pairwise_entry_distances(qt, nb, usable, in_range, mu, sigma, new_length)
    lb = np.asarray(
        lower_bound_from_base(store.lb_base[:n_dp], sigma[:n_dp][:, None]),
        dtype=np.float64,
    )
    # Empty slots keep lb_base = +inf -> lb = +inf, encoding "nothing
    # was left unstored for this profile".
    max_lb = lb.max(axis=1)
    min_dist = dist.min(axis=1)
    arg = np.argmin(dist, axis=1)
    ind = np.take_along_axis(nb, arg[:, None], axis=1).ravel()

    valid = min_dist < max_lb
    n_valid = int(valid.sum())
    if obs.enabled():
        # Fig. 9's pruning power is valid/total: the fraction of profiles
        # whose minimum the lower bounds certify without recomputation.
        obs.add("submp.profiles.total", n_dp)
        obs.add(f"submp.profiles.total.l{new_length}", n_dp)
        obs.add("submp.profiles.valid", n_valid)
        obs.add(f"submp.profiles.valid.l{new_length}", n_valid)
        obs.add("submp.profiles.invalid", n_dp - n_valid)
        obs.add(f"submp.profiles.invalid.l{new_length}", n_dp - n_valid)
    sub_profile = np.full(n_dp, np.nan, dtype=np.float64)
    index = np.full(n_dp, -1, dtype=np.int64)
    sub_profile[valid] = min_dist[valid]
    index[valid] = ind[valid]

    best_distance = np.inf
    best_pair: Optional[Tuple[int, int]] = None
    if valid.any():
        masked = np.where(valid, min_dist, np.inf)
        best_row = int(np.argmin(masked))
        if np.isfinite(masked[best_row]):
            best_distance = float(masked[best_row])
            best_pair = (best_row, int(ind[best_row]))

    invalid_rows = np.where(~valid)[0]
    min_lb_abs = float(max_lb[invalid_rows].min()) if invalid_rows.size else np.inf
    found = best_distance < min_lb_abs
    n_recomputed = 0

    # Refinement over the paper's pseudocode: Algorithm 4 gates the
    # partial path on the count of *all* non-valid profiles, but only the
    # non-valid profiles whose maxLB undercuts the best-so-far can hide a
    # better pair (line 29 skips the rest anyway) — so we gate on that
    # count.  Strictly fewer full recomputations, identical results.
    needing = (
        invalid_rows[max_lb[invalid_rows] < best_distance]
        if invalid_rows.size
        else invalid_rows
    )
    if not found and needing.size < recompute_fraction * n_dp:
        # Partial recompute (Algorithm 4, lines 27-38): visit non-valid
        # profiles in ascending maxLB order; stop as soon as the bound
        # proves no remaining profile can beat the best-so-far.
        positions = np.arange(n_dp)
        with obs.span("submp.recompute"):
            for r in needing[np.argsort(max_lb[needing])]:
                if max_lb[r] >= best_distance:
                    break
                r = int(r)
                qt_row = ctx.sliding_dot_product(t[r : r + new_length])
                row_dp = mass_with_stats(t, r, new_length, mu, sigma, qt=qt_row)
                apply_exclusion_zone(row_dp, r, zone)
                j = int(np.argmin(row_dp))
                sub_profile[r] = row_dp[j] if np.isfinite(row_dp[j]) else np.nan
                index[r] = j if np.isfinite(row_dp[j]) else -1
                if row_dp[j] < best_distance:
                    best_distance = float(row_dp[j])
                    best_pair = (r, j)
                # Rebuild this profile's listDP row at the new base length
                # so later steps keep pruning (Algorithm 4, line 34).
                corr_row = correlation_from_qt(
                    qt_row,
                    new_length,
                    float(mu[r]),
                    max(float(sigma[r]), CONSTANT_EPS),
                    mu,
                    sigma,
                )
                store.fill_row(
                    r,
                    qt_row,
                    corr_row,
                    float(sigma[r]),
                    new_length,
                    np.abs(positions - r) >= zone,
                )
                n_recomputed += 1
        found = True

    if obs.enabled():
        obs.add("submp.profiles.recomputed", n_recomputed)
        obs.add(f"submp.profiles.recomputed.l{new_length}", n_recomputed)

    return SubMPResult(
        length=new_length,
        sub_profile=sub_profile,
        index=index,
        found_motif=found,
        best_distance=best_distance,
        best_pair=best_pair,
        n_valid=n_valid,
        n_invalid=int(invalid_rows.size),
        n_recomputed=n_recomputed,
        min_dist=min_dist,
        max_lb=max_lb,
    )
