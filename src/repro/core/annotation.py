"""Annotation vectors: guided motif search (Matrix Profile V idea).

An annotation vector ``AV`` in [0, 1] expresses, per subsequence, how
*interesting* the analyst finds that region.  The corrected matrix
profile ``CMP = MP + (1 - AV) * max(MP)`` pushes unannotated regions'
entries toward the ceiling so motif extraction concentrates on the
annotated parts — without touching the underlying engine (Dau & Keogh,
"Matrix Profile V", 2017).

Ready-made annotation builders cover the two most common guidance
needs: suppressing flat (low-variance) regions and suppressing
user-specified intervals (e.g. known artifacts).
"""

from __future__ import annotations

from typing import Iterable, Tuple

import numpy as np

from repro.types import FloatArray

from repro.distance.znorm import as_series
from repro.exceptions import InvalidParameterError
from repro.kernels.context import ensure_context
from repro.matrixprofile.index import MatrixProfile
from repro.lint.contracts import finite_array, positive_int, require, series_like

__all__ = [
    "apply_annotation",
    "variance_annotation",
    "interval_annotation",
]


@require(annotation=finite_array())
def apply_annotation(mp: MatrixProfile, annotation: FloatArray) -> MatrixProfile:
    """The corrected matrix profile ``CMP = MP + (1 - AV) * max(MP)``."""
    av = np.asarray(annotation, dtype=np.float64)
    if av.shape != mp.profile.shape:
        raise InvalidParameterError(
            f"annotation shape {av.shape} != profile shape {mp.profile.shape}"
        )
    if av.min() < 0.0 or av.max() > 1.0:
        raise InvalidParameterError("annotation values must lie in [0, 1]")
    finite = np.isfinite(mp.profile)
    if not finite.any():
        raise InvalidParameterError("matrix profile has no finite entries")
    ceiling = float(mp.profile[finite].max())
    corrected = mp.profile + (1.0 - av) * ceiling
    corrected[~finite] = np.inf
    return MatrixProfile(
        profile=corrected, index=mp.index.copy(), length=mp.length
    )


@require(series=series_like(), length=positive_int())
def variance_annotation(series: FloatArray, length: int) -> FloatArray:
    """AV favoring lively regions: per-window std rescaled to [0, 1].

    Flat stretches (sensor dropouts, saturation plateaus) produce
    spurious near-zero-distance motifs; this annotation suppresses them.
    """
    t = as_series(series, min_length=4)
    _, sigma = ensure_context(t).moving_mean_std(length)
    span = sigma.max() - sigma.min()
    if span < 1e-12:
        return np.ones_like(sigma)
    return (sigma - sigma.min()) / span


@require(n_subsequences=positive_int())
def interval_annotation(
    n_subsequences: int, suppressed: Iterable[Tuple[int, int]]
) -> FloatArray:
    """AV that zeroes user-specified [start, end) intervals."""
    av = np.ones(n_subsequences, dtype=np.float64)
    for start, end in suppressed:
        if start < 0 or end <= start:
            raise InvalidParameterError(
                f"invalid suppressed interval [{start}, {end})"
            )
        av[start : min(end, n_subsequences)] = 0.0
    return av
