"""Time-series chains: directional, evolving patterns (Matrix Profile VII).

A chain is a sequence of subsequences each of which is the *right*
nearest neighbor of its predecessor AND the *left* nearest neighbor of
its successor — a pattern drifting through time (Zhu, Imamura, Nikovski,
Keogh, 2017).  VALMOD is "Matrix Profile X"; chains are a sibling
primitive of the same family, built directly on the left/right profiles
of :mod:`repro.matrixprofile.leftright`.

The all-chain set algorithm: every position belongs to exactly one
maximal chain under the bidirectional-link rule; we follow links
``right_index[i] = j and left_index[j] = i`` forward from every chain
head.  The *unanchored chain* is the longest one (ties: smallest total
link distance).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.types import FloatArray, IntArray

from repro.distance.znorm import as_series
from repro.exceptions import InvalidParameterError
from repro.matrixprofile.leftright import LeftRightProfiles, stomp_left_right
from repro.lint.contracts import positive_int, require, series_like

__all__ = ["Chain", "all_chains", "unanchored_chain"]


@dataclass(frozen=True)
class Chain:
    """One time-series chain: strictly time-ordered member offsets."""

    members: Tuple[int, ...]
    length: int
    total_link_distance: float

    def __len__(self) -> int:
        return len(self.members)

    @property
    def span(self) -> int:
        """Time between the first and last member."""
        return self.members[-1] - self.members[0]


def _bidirectional_links(lr: LeftRightProfiles) -> IntArray:
    """``link[i] = j`` when i->j is a bidirectional chain link, else -1."""
    n = lr.right_index.size
    link = np.full(n, -1, dtype=np.int64)
    for i in range(n):
        j = lr.right_index[i]
        if j >= 0 and lr.left_index[j] == i:
            link[i] = j
    return link


@require(series=series_like(), length=positive_int())
def all_chains(series: FloatArray, length: int) -> List[Chain]:
    """Every maximal chain of the given subsequence length.

    Chains of cardinality 1 (isolated subsequences) are omitted.  Each
    position appears in exactly one returned chain or in none.
    """
    t = as_series(series, min_length=4)
    lr = stomp_left_right(t, length)
    link = _bidirectional_links(lr)
    has_incoming = np.zeros(link.size, dtype=bool)
    valid = link >= 0
    has_incoming[link[valid]] = True

    chains: List[Chain] = []
    for head in np.where(valid & ~has_incoming)[0]:
        members = [int(head)]
        total = 0.0
        current = int(head)
        while link[current] >= 0:
            nxt = int(link[current])
            total += float(lr.right_profile[current])
            members.append(nxt)
            current = nxt
        if len(members) >= 2:
            chains.append(
                Chain(
                    members=tuple(members),
                    length=length,
                    total_link_distance=total,
                )
            )
    return chains


@require(series=series_like(), length=positive_int())
def unanchored_chain(series: FloatArray, length: int) -> Chain:
    """The longest chain (the 'unanchored' chain of the original paper).

    Ties break toward the smallest total link distance.  Raises when no
    chain of cardinality >= 2 exists (degenerate inputs).
    """
    chains = all_chains(series, length)
    if not chains:
        raise InvalidParameterError(
            f"no chain of two or more members exists at length {length}"
        )
    return max(
        chains, key=lambda c: (len(c.members), -c.total_link_distance)
    )
