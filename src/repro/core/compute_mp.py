"""Algorithm 3 — ComputeMatrixProfile with lower-bound bookkeeping.

Runs the STOMP inner loop (shared with :mod:`repro.matrixprofile.stomp`)
and, per distance profile, stores the p entries with the smallest
lower-bound distance into the :class:`~repro.core.entries.EntryStore`.
This is the O(n^2 log p) first phase of VALMOD.

With ``n_jobs > 1`` the rows are split into blocks processed by worker
processes.  Each worker replays the STOMP dot-product recurrence up to
its block start (cheap — no distance profiles are materialized during the
replay) and then runs the identical per-row pipeline, so the assembled
profile, index, and listDP rows are bitwise identical to a serial run.
The series travels through ``multiprocessing.shared_memory``; each block
result comes back as plain arrays the parent stitches together.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import List, Optional, Tuple

import numpy as np

from repro import obs
from repro.types import FloatArray

from repro.core.entries import EntryStore
from repro.distance.profile import correlation_from_qt
from repro.distance.sliding import validate_subsequence_length
from repro.distance.znorm import CONSTANT_EPS
from repro.kernels.context import SeriesContext
from repro.lint.contracts import positive_int, require, series_like
from repro.matrixprofile.exclusion import exclusion_zone_half_width
from repro.matrixprofile.index import MatrixProfile
from repro.matrixprofile.parallel import (
    _attach,
    _create_shared,
    _preferred_context,
    resolve_n_jobs,
)
from repro.matrixprofile.stomp import iterate_stomp_rows

__all__ = ["compute_matrix_profile", "row_blocks"]

#: relative cost of replaying one row of the dot-product recurrence,
#: versus fully processing one row (distance profile + listDP insert).
#: Measured on the vectorized kernels; only load balance depends on it.
REPLAY_COST = 0.35


@require(n_rows=positive_int(), n_blocks=positive_int())
def row_blocks(n_rows: int, n_blocks: int, replay_cost: float = REPLAY_COST) -> List[Tuple[int, int]]:
    """Split ``[0, n_rows)`` into blocks with balanced replay-aware cost.

    Block ``[s, e)`` costs ``replay_cost * s + (e - s)``: later blocks
    replay more rows before producing output, so equal-size blocks would
    leave early workers idle.  The recurrence ``s_{k+1} = (1 - r) s_k + C``
    with the closed-form target ``C = n r / (1 - (1 - r)^K)`` equalizes
    the cost; boundaries are rounded to integers and deduplicated.
    """
    if n_rows <= 0:
        return []
    n_blocks = max(1, min(n_blocks, n_rows))
    if n_blocks == 1:
        return [(0, n_rows)]
    r = replay_cost
    target = n_rows * r / (1.0 - (1.0 - r) ** n_blocks)
    bounds = [0]
    s = 0.0
    for _ in range(n_blocks - 1):
        s = (1.0 - r) * s + target
        bounds.append(int(round(s)))
    bounds.append(n_rows)
    bounds = sorted(set(min(max(b, 0), n_rows) for b in bounds))
    return [(bounds[k], bounds[k + 1]) for k in range(len(bounds) - 1)]


def _fill_block(
    t: FloatArray,
    length: int,
    p: int,
    start: int,
    stop: int,
    context: Optional[SeriesContext] = None,
) -> Tuple[FloatArray, FloatArray, FloatArray, FloatArray, FloatArray]:
    """Profile, index, and listDP rows for the row block ``[start, stop)``.

    The exact per-row pipeline of the serial loop, restricted to a block;
    ``iterate_stomp_rows`` replays the recurrence up to ``start`` so every
    produced row matches a full serial run bit for bit.
    """
    ctx = SeriesContext.ensure(t, context, min_length=4)
    t = ctx.series
    n_subs = t.size - length + 1
    mu, sigma = ctx.moving_mean_std(length)
    zone = exclusion_zone_half_width(length)
    rows = stop - start
    profile = np.empty(rows, dtype=np.float64)
    index = np.empty(rows, dtype=np.int64)
    store = EntryStore.empty(max(rows, 1), p, length)
    positions = np.arange(n_subs)
    for i, qt, row in iterate_stomp_rows(
        t, length, mu, sigma, row_range=(start, stop), context=ctx
    ):
        j = int(np.argmin(row))
        k = i - start
        profile[k] = row[j]
        index[k] = j if np.isfinite(row[j]) else -1
        corr = correlation_from_qt(
            qt, length, float(mu[i]), max(float(sigma[i]), CONSTANT_EPS), mu, sigma
        )
        eligible = np.abs(positions - i) >= zone
        store.fill_row(k, qt, corr, float(sigma[i]), length, eligible)
    return profile, index, store.neighbor[:rows], store.qt[:rows], store.lb_base[:rows]


def _block_worker(task):
    """Worker-process entry: evaluate one row block from shared memory.

    Returns the block result plus the worker's tracer snapshot (None
    when tracing is off) so the parent can aggregate listDP counters.
    """
    name, n, length, p, start, stop, untrack, trace = task
    obs.worker_begin(trace)
    shm, t = _attach(name, (n,), "float64", untrack)
    try:
        with obs.span("compute_mp/block"):
            block = _fill_block(t.copy(), length, p, start, stop)
        return (start, stop) + block + (obs.worker_snapshot(),)
    finally:
        shm.close()


@require(series=series_like(min_length=4), length=positive_int(), p=positive_int())
def compute_matrix_profile(
    series: FloatArray,
    length: int,
    p: int,
    n_jobs: Optional[int] = 1,
    context: Optional[SeriesContext] = None,
) -> Tuple[MatrixProfile, EntryStore]:
    """Matrix profile at ``length`` plus the listDP store (Algorithm 3).

    Returns the exact :class:`MatrixProfile` and an
    :class:`EntryStore` holding, for every subsequence, the p candidates
    with the smallest lower bound for greater lengths.  ``n_jobs``
    distributes row blocks over worker processes (``None``/``0`` = all
    CPUs); results are identical for every worker count.  ``context``
    optionally carries cached series statistics; workers rebuild their
    own from the shared series (the cache is per-process).
    """
    ctx = SeriesContext.ensure(series, context, min_length=4)
    t = ctx.series
    n_subs = validate_subsequence_length(t.size, length)
    jobs = 1 if n_jobs == 1 else resolve_n_jobs(n_jobs)
    blocks = row_blocks(n_subs, jobs)
    store = EntryStore.empty(n_subs, p, length)
    profile = np.empty(n_subs, dtype=np.float64)
    index = np.empty(n_subs, dtype=np.int64)
    obs.add("compute_mp.rows", n_subs)

    if len(blocks) <= 1:
        with obs.span("compute_mp"):
            with obs.span("block"):
                prof, idx, nb, qt, lb = _fill_block(
                    t, length, p, 0, n_subs, context=ctx
                )
        profile[:] = prof
        index[:] = idx
        store.neighbor[:] = nb
        store.qt[:] = qt
        store.lb_base[:] = lb
        return MatrixProfile(profile=profile, index=index, length=length), store

    shm, _ = _create_shared(t)
    try:
        ctx = _preferred_context()
        untrack = ctx.get_start_method() != "fork"
        tasks = [
            (shm.name, t.size, length, p, start, stop, untrack, obs.enabled())
            for start, stop in blocks
        ]
        with obs.span("compute_mp"):
            with ProcessPoolExecutor(
                max_workers=min(jobs, len(blocks)), mp_context=ctx
            ) as pool:
                for start, stop, prof, idx, nb, qt, lb, trace in pool.map(
                    _block_worker, tasks
                ):
                    profile[start:stop] = prof
                    index[start:stop] = idx
                    store.neighbor[start:stop] = nb
                    store.qt[start:stop] = qt
                    store.lb_base[start:stop] = lb
                    obs.merge(trace)
    finally:
        shm.close()
        try:
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover
            pass
    return MatrixProfile(profile=profile, index=index, length=length), store
