"""Algorithm 3 — ComputeMatrixProfile with lower-bound bookkeeping.

Runs the STOMP inner loop (shared with :mod:`repro.matrixprofile.stomp`)
and, per distance profile, stores the p entries with the smallest
lower-bound distance into the :class:`~repro.core.entries.EntryStore`.
This is the O(n^2 log p) first phase of VALMOD.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.core.entries import EntryStore
from repro.distance.profile import correlation_from_qt
from repro.distance.sliding import (
    moving_mean_std,
    validate_subsequence_length,
)
from repro.distance.znorm import CONSTANT_EPS
from repro.matrixprofile.exclusion import exclusion_zone_half_width
from repro.matrixprofile.index import MatrixProfile
from repro.matrixprofile.stomp import iterate_stomp_rows

__all__ = ["compute_matrix_profile"]


def compute_matrix_profile(
    series: np.ndarray, length: int, p: int
) -> Tuple[MatrixProfile, EntryStore]:
    """Matrix profile at ``length`` plus the listDP store (Algorithm 3).

    Returns the exact :class:`MatrixProfile` and an
    :class:`EntryStore` holding, for every subsequence, the p candidates
    with the smallest lower bound for greater lengths.
    """
    t = np.asarray(series, dtype=np.float64)
    n_subs = validate_subsequence_length(t.size, length)
    mu, sigma = moving_mean_std(t, length)
    zone = exclusion_zone_half_width(length)
    profile = np.empty(n_subs, dtype=np.float64)
    index = np.empty(n_subs, dtype=np.int64)
    store = EntryStore.empty(n_subs, p, length)
    positions = np.arange(n_subs)
    for i, qt, row in iterate_stomp_rows(t, length, mu, sigma):
        j = int(np.argmin(row))
        profile[i] = row[j]
        index[i] = j if np.isfinite(row[j]) else -1
        corr = correlation_from_qt(
            qt, length, float(mu[i]), max(float(sigma[i]), CONSTANT_EPS), mu, sigma
        )
        eligible = np.abs(positions - i) >= zone
        store.fill_row(i, qt, corr, float(sigma[i]), length, eligible)
    return MatrixProfile(profile=profile, index=index, length=length), store
