"""``listDP``: per-profile stores of the p best lower-bound entries.

Algorithm 3 keeps, for every distance profile, the ``p`` entries with the
smallest lower-bound distance (a max-heap of capacity p in the paper).
Each entry carries the pair's dot product and enough statistics to update
its exact distance and lower bound in O(1) per length increment
(Algorithm 4, line 10).

Instead of n Python heaps we store the structure as three ``(n, p)``
arrays — neighbor offsets, dot products, and the k-independent lower
bound numerators ``lb_base`` (see :mod:`repro.core.lower_bound`) — so the
whole of Algorithm 4 vectorizes across profiles.  Window sums are *not*
stored per entry: they are O(1) reads from the series prefix sums at any
length, which is exactly the role of the per-entry sums in the paper's C
implementation.

Empty slots (profiles with fewer than p non-trivial candidates) have
neighbor -1 and ``lb_base = +inf``; the +inf makes ``max_lb`` infinite for
such profiles, which encodes "the store holds every candidate, nothing
was left unstored" — the validity test is then trivially satisfied.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.types import BoolArray, FloatArray, IntArray

from repro.core.lower_bound import lower_bound_base
from repro.exceptions import InvalidParameterError

__all__ = ["EntryStore"]


@dataclass
class EntryStore:
    """Vectorized ``listDP`` for all profiles of one VALMOD run.

    Attributes
    ----------
    neighbor:
        ``(n, p)`` int64; the other offset of each stored pair, -1 = empty.
    qt:
        ``(n, p)`` float64; dot product of the pair at ``current_length``.
    lb_base:
        ``(n, p)`` float64; ``f(q) sqrt(l_base) sigma[j, l_base]``
        evaluated at the row's base length (+inf = empty).
    base_length:
        ``(n,)`` int64; the length each row was (re)built at.
    current_length:
        The length the ``qt`` values correspond to right now.
    """

    neighbor: IntArray
    qt: FloatArray
    lb_base: FloatArray
    base_length: IntArray
    current_length: int

    @classmethod
    def empty(cls, n_profiles: int, p: int, length: int) -> "EntryStore":
        """Allocate an all-empty store for ``n_profiles`` rows of width p."""
        if p <= 0:
            raise InvalidParameterError(f"p must be positive, got {p}")
        if n_profiles <= 0:
            raise InvalidParameterError(
                f"need at least one profile, got {n_profiles}"
            )
        return cls(
            neighbor=np.full((n_profiles, p), -1, dtype=np.int64),
            qt=np.zeros((n_profiles, p), dtype=np.float64),
            lb_base=np.full((n_profiles, p), np.inf, dtype=np.float64),
            base_length=np.full(n_profiles, length, dtype=np.int64),
            current_length=length,
        )

    @property
    def n_profiles(self) -> int:
        return self.neighbor.shape[0]

    @property
    def p(self) -> int:
        return self.neighbor.shape[1]

    def fill_row(
        self,
        row: int,
        qt_row: FloatArray,
        corr_row: FloatArray,
        sigma_owner: float,
        length: int,
        eligible: BoolArray,
    ) -> None:
        """Rebuild one row from a freshly computed distance profile.

        ``qt_row`` / ``corr_row`` are the dot products and correlations of
        profile ``row`` against every candidate at ``length``;
        ``eligible`` marks candidates outside the exclusion zone.  Keeps
        the p candidates with the smallest lower bound (equivalently, the
        smallest ``lb_base``, since the 1/sigma factor is shared).
        """
        base = np.asarray(
            lower_bound_base(corr_row, length, sigma_owner), dtype=np.float64
        )
        base = np.where(eligible, base, np.inf)
        p = self.p
        n_candidates = base.size
        if n_candidates > p:
            picked = np.argpartition(base, p - 1)[:p]
        else:
            picked = np.arange(n_candidates)
        picked = picked[np.isfinite(base[picked])]
        count = picked.size
        if obs.enabled():
            obs.add("listdp.rows_filled")
            obs.add("listdp.entries_stored", int(count))
        self.neighbor[row, :count] = picked
        self.neighbor[row, count:] = -1
        self.qt[row, :count] = qt_row[picked]
        self.qt[row, count:] = 0.0
        self.lb_base[row, :count] = base[picked]
        self.lb_base[row, count:] = np.inf
        self.base_length[row] = length

    def advance_to(self, new_length: int, series: FloatArray) -> None:
        """Extend every stored pair's dot product to ``new_length``.

        Implements the O(1)-per-entry update of Algorithm 4, line 10:
        ``qt += t[i + L - 1] * t[j + L - 1]`` for each unit length
        increment.  Pairs whose neighbor no longer fits in the series stop
        being updated (their distance is reported as +inf downstream).
        """
        if new_length != self.current_length + 1:
            raise InvalidParameterError(
                f"advance_to expects length {self.current_length + 1}, "
                f"got {new_length}"
            )
        t = series
        n = t.size
        n_rows = min(self.n_profiles, n - new_length + 1)
        if n_rows <= 0:
            raise InvalidParameterError(
                f"length {new_length} leaves no subsequences"
            )
        nb = self.neighbor[:n_rows]
        in_range = (nb >= 0) & (nb <= n - new_length)
        if obs.enabled():
            obs.add("listdp.entries_advanced", int(in_range.sum()))
        rows = np.arange(n_rows)[:, None]
        safe_nb = np.where(in_range, nb, 0)
        increment = t[safe_nb + new_length - 1] * t[rows + new_length - 1]
        block = self.qt[:n_rows]
        block[in_range] += increment[in_range]
        self.current_length = new_length
