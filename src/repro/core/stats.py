"""Instrumentation for VALMOD runs.

The evaluation section of the paper reports, beyond wall-clock time, the
internal behaviour of the algorithm: how many profiles were valid at each
length (the |subMP| curves of Figure 14), how often the partial and full
recomputation fallbacks fire, and the pruning margins of Figure 9.  The
driver records one :class:`LengthStats` per processed length.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.types import FloatArray

__all__ = ["LengthStats", "RunStats"]


@dataclass
class LengthStats:
    """What happened while processing one subsequence length."""

    length: int
    mode: str  # 'initial' | 'submp' | 'submp-partial' | 'full-recompute'
    elapsed_seconds: float
    n_profiles: int
    n_valid: int = 0
    n_invalid: int = 0
    n_recomputed: int = 0
    submp_size: int = 0
    motif_distance: float = float("nan")
    # Optional per-profile pruning margin maxLB - minDist (Figure 9).
    pruning_margin: Optional[FloatArray] = field(default=None, repr=False)

    @property
    def valid_fraction(self) -> float:
        """Fraction of profiles solved without recomputation."""
        if self.n_profiles == 0:
            return 0.0
        return self.n_valid / self.n_profiles


@dataclass
class RunStats:
    """Aggregated statistics of one VALMOD run."""

    per_length: List[LengthStats] = field(default_factory=list)

    def add(self, stats: LengthStats) -> None:
        self.per_length.append(stats)

    @property
    def total_seconds(self) -> float:
        return sum(s.elapsed_seconds for s in self.per_length)

    @property
    def n_full_recomputes(self) -> int:
        return sum(1 for s in self.per_length if s.mode == "full-recompute")

    @property
    def n_partial_recomputes(self) -> int:
        return sum(1 for s in self.per_length if s.mode == "submp-partial")

    @property
    def n_fast_lengths(self) -> int:
        """Lengths solved purely from the stored entries (best case O(np))."""
        return sum(1 for s in self.per_length if s.mode == "submp")

    def submp_sizes(self) -> List[int]:
        """|subMP| per non-initial length — the right-hand plots of Fig. 14."""
        return [s.submp_size for s in self.per_length if s.mode != "initial"]

    def summary(self) -> str:
        """One-paragraph human-readable digest."""
        if not self.per_length:
            return "no lengths processed"
        return (
            f"{len(self.per_length)} lengths in {self.total_seconds:.3f}s: "
            f"{self.n_fast_lengths} pure-subMP, "
            f"{self.n_partial_recomputes} partial recomputes, "
            f"{self.n_full_recomputes} full recomputes"
        )
