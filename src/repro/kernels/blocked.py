"""Blocked diagonal STOMP: the QT recurrence vectorized over row blocks.

Serial STOMP (:mod:`repro.matrixprofile.stomp`) pays one Python iteration
per row, and inside it roughly a dozen full-row NumPy temporaries: the
rolling update allocates four scratch vectors, Eq. 3 normalizes, clips,
masks and square-roots the whole row, and only then an argmin runs.  On a
single core the run is memory-bound — the distance work streams several
freshly allocated row-sized arrays per row.

This kernel restructures the work around blocks of ``B = block_rows``
rows.  In *sheared* coordinates the rolling update loses its column
shift: with ``S[k, m] = QT[r0 + k][m + k]`` the recurrence

    QT[i][j] = QT[i-1][j-1] - t[i-1] t[j-1] + t[i+l-1] t[j+l-1]

reads ``S[k] = S[k-1] + delta_k`` where every ``delta_k`` is a plain
window of the (padded) series times two scalars — zero-copy sliding
windows shared by the whole block.  Per block the kernel therefore:

* builds each increment row with two full-width multiplies of the
  block's shared window views (no shifted reads, no per-row slicing
  arithmetic), seeds the diagonal entering at column 0 from
  ``qt_first``, and accumulates it onto its predecessor while both rows
  are cache-resident — the block-chained cumulative sum of the shear;
* scores each accumulated row against per-column factors computed once
  per call, in *ranking* space: ``rank_j = QT_j / sigma_j - mu_i l
  mu_j / sigma_j`` equals ``corr_ij * l * sigma_i``, a positive per-row
  multiple of the correlation, so its argmax is the row's nearest
  neighbor and only the B winning cells ever pay the clip/sqrt of
  Eq. 3.  All scratch buffers are preallocated once per call.

Numerical behavior:

* The QT recurrence stays in float64 and the re-anchoring schedule of
  :func:`repro.matrixprofile.stomp.stomp_reanchor_rows` is honored by
  force-starting a new block (with an exactly summed row) at every anchor
  row, so the drift bound of the serial engine applies per block chain.
  Within a block the sheared accumulation groups the additions
  differently than the serial per-row update, so results agree with
  serial STOMP to rounding (and with ``brute`` within the differential
  harness tolerance), not bitwise.
* ``precision="float32"`` keeps the recurrence and the cancellation-prone
  centering ``QT - l mu_i mu_j`` in float64, demotes only the scaled
  ranking scores to float32, and re-scores every candidate column — all
  columns within :data:`F32_SCORE_MARGIN` (in correlation units) of the
  float32 row maximum — in float64 before the winner is chosen; rows
  with more than :data:`F32_CANDIDATE_CAP` candidates fall back to an
  exact full-row float64 rescore.  Reported distances are always
  float64.  This path exists to bound the cost of reduced-precision
  scoring (and as scaffolding for accelerators whose fast path is
  float32); on CPU it is not faster than the float64 path.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

import numpy as np

from repro import obs
from repro.types import FloatArray

from repro.distance.sliding import validate_subsequence_length
from repro.distance.znorm import CONSTANT_EPS
from repro.exceptions import InvalidParameterError
from repro.kernels.context import SeriesContext
from repro.lint.contracts import ensure, no_nan_profile, positive_int, require, series_like

if TYPE_CHECKING:  # pragma: no cover - engines sit above this layer
    from repro.matrixprofile.index import MatrixProfile

__all__ = [
    "blocked_stomp",
    "DEFAULT_BLOCK_ROWS",
    "F32_SCORE_MARGIN",
    "F32_CANDIDATE_CAP",
]

#: default rows per block: large enough to amortize the block's shared
#: window views and boundary handling over tens of thousands of cells,
#: small enough that the two live scratch rows stay cache-resident.
#: See docs/ENGINES.md for how to choose a different value.
DEFAULT_BLOCK_ROWS = 64

#: float32 verify margin, in correlation units: columns whose float32
#: ranking score is within ``margin * l * sigma_i`` of the row maximum
#: are re-scored in float64.  Two orders of magnitude above the float32
#: rounding of a well-scaled score.
F32_SCORE_MARGIN = 3e-5

#: candidate-set size above which the float32 path re-scores the whole
#: row in float64 (cheaper and exact for, e.g., constant-heavy rows
#: where many columns tie at the conventional score).
F32_CANDIDATE_CAP = 64


def _finish_value(
    profile: FloatArray, index: np.ndarray, i: int, corr: float, j: int, length: int
) -> None:
    """Write one profile entry from the winning correlation."""
    if not np.isfinite(corr):
        profile[i] = np.inf
        index[i] = -1
        return
    c = min(max(corr, -1.0), 1.0)
    profile[i] = (max(2.0 * length * (1.0 - c), 0.0)) ** 0.5
    index[i] = j


@require(series=series_like(min_length=4), length=positive_int())
@ensure(no_nan_profile)
def blocked_stomp(
    series: FloatArray,
    length: int,
    block_rows: int = DEFAULT_BLOCK_ROWS,
    precision: str = "float64",
    context: Optional[SeriesContext] = None,
) -> "MatrixProfile":
    """Compute the full matrix profile with the blocked STOMP kernel.

    Parameters
    ----------
    block_rows:
        Rows advanced per sheared block (``B``).  ``B=1`` degenerates to
        a rowwise schedule; any ``B`` larger than the number of
        subsequences processes everything in one block.  All block sizes
        produce the same profile up to rounding.
    precision:
        ``"float64"`` (default) or ``"float32"`` — see the module
        docstring for the float32 verify semantics.
    context:
        Optional :class:`SeriesContext`; pass one to reuse cached window
        statistics and the cached series FFT across calls and lengths.
    """
    # Engines live in repro.matrixprofile, above this package at import
    # time (stomp imports SeriesContext); resolve them at call time.
    from repro.matrixprofile.exclusion import contributing_cells, exclusion_zone_half_width
    from repro.matrixprofile.index import MatrixProfile
    from repro.matrixprofile.stomp import exact_qt_row, stomp_reanchor_rows

    if block_rows < 1:
        raise InvalidParameterError(
            f"block_rows must be at least 1, got {block_rows}"
        )
    if precision not in ("float64", "float32"):
        raise InvalidParameterError(
            f"precision must be 'float64' or 'float32', got {precision!r}"
        )
    use_f32 = precision == "float32"
    ctx = SeriesContext.ensure(series, context, min_length=4)
    t = ctx.series
    n = t.size
    n_subs = validate_subsequence_length(n, length)
    mu, sigma = ctx.moving_mean_std(length)
    zone = exclusion_zone_half_width(length)
    qt_first = ctx.sliding_dot_product(t[:length])
    anchors = stomp_reanchor_rows(t, length, sigma)
    anchor_list = [int(a) for a in anchors]
    anchor_set = frozenset(anchor_list)

    # Per-column ranking factors, computed once per call:
    #   rank[i, j] = QT[i, j] * c1[j] - mu_i * c2[j] = corr_ij * l * sigma_i
    invsig = 1.0 / np.maximum(sigma, CONSTANT_EPS)
    c1 = invsig
    lmu = length * mu
    c2 = lmu * invsig
    window_const = sigma < CONSTANT_EPS
    any_window_const = bool(window_const.any())
    inv_l = 1.0 / length

    if obs.enabled():
        obs.add("engine.rows", n_subs)
        obs.add("engine.cells", contributing_cells(n_subs, zone))
        obs.add("kernel.reanchor_rows", len(anchor_list))
        obs.gauge("kernel.block_rows", block_rows)

    # Padded series: tp[x + pad] == t[x], zeros outside.  Lets the sheared
    # increment rows be plain windows even where they cover out-of-range
    # diagonals (those cells only pollute rows that are never extracted).
    pad = min(block_rows, n_subs)
    tp = np.zeros(n + 2 * pad, dtype=np.float64)
    tp[pad : pad + n] = t
    win = np.lib.stride_tricks.sliding_window_view

    # Scratch, allocated once per call and reused by every block.
    width_max = n_subs + pad - 1
    block = np.empty((pad, width_max), dtype=np.float64)
    tmprow = np.empty(width_max, dtype=np.float64)
    buf = np.empty(n_subs, dtype=np.float64)
    buf2 = np.empty(n_subs, dtype=np.float64)
    if use_f32:
        c1_32 = c1.astype(np.float32)
        buf32 = np.empty(n_subs, dtype=np.float32)

    profile = np.empty(n_subs, dtype=np.float64)
    index = np.empty(n_subs, dtype=np.int64)
    heads = t[: n_subs - 1]
    tails = t[length : length + n_subs - 1]

    carry: Optional[FloatArray] = None
    blocks = 0
    f32_verified = 0
    with obs.span("engine.blocked_stomp"):
        r0 = 0
        next_anchor = 0
        while r0 < n_subs:
            r1 = min(r0 + block_rows, n_subs)
            # The drift schedule is respected at block boundaries: every
            # anchor row starts a new block with an exactly summed row.
            while next_anchor < len(anchor_list) and anchor_list[next_anchor] <= r0:
                next_anchor += 1
            if next_anchor < len(anchor_list) and anchor_list[next_anchor] < r1:
                r1 = anchor_list[next_anchor]
            b_rows = r1 - r0
            width = n_subs + b_rows - 1
            blocks += 1

            # --- row r0 of the block: full QT via the serial update ----
            if r0 == 0:
                row0 = qt_first
            elif r0 in anchor_set:
                row0 = exact_qt_row(t, r0, length)
                row0[0] = qt_first[r0]
            else:
                # carry is always set here: every non-anchor r0 > 0 follows
                # a completed block that stored its last QT row.
                np.subtract(carry[:-1], heads * t[r0 - 1], out=buf2[1:])
                buf2[1:] += tails * t[r0 + length - 1]
                buf2[0] = qt_first[r0]
                row0 = buf2
            s = block[:b_rows, :width]
            s[0, : b_rows - 1] = 0.0
            s[0, b_rows - 1 :] = row0[:n_subs]

            # Shared zero-copy window views for the block's increments.
            if b_rows > 1:
                base = pad - b_rows
                m1 = win(tp, width)[base + 1 : base + b_rows]
                m2 = win(tp[length:], width)[base + 1 : base + b_rows]
                a_coef = t[r0 : r1 - 1]
                b_coef = t[r0 + length : r1 + length - 1]

            # --- build, accumulate and score row by row ----------------
            # Each row is materialized, chained onto its predecessor and
            # scored while both stay cache-hot; the shear keeps every
            # operation a full-width contiguous vector op.
            for k in range(b_rows):
                i = r0 + k
                shift = b_rows - 1 - k
                if k > 0:
                    row = s[k]
                    np.multiply(m1[k - 1], -a_coef[k - 1], out=row)
                    np.multiply(m2[k - 1], b_coef[k - 1], out=tmprow[:width])
                    row += tmprow[:width]
                    # Seed the diagonal entering at column 0, zero the
                    # j < 0 cells, then advance the sheared cumsum.
                    row[:shift] = 0.0
                    row[shift] = qt_first[i]
                    row += s[k - 1]
                qt_row = s[k, shift : shift + n_subs]
                lo = max(0, i - zone + 1)
                hi = min(n_subs, i + zone)
                if window_const[i]:
                    # Constant query: distance 0 to constant windows,
                    # sqrt(l) to everything else (scale-free ranking).
                    buf.fill(0.5)
                    if any_window_const:
                        buf[window_const] = 1.0
                    buf[lo:hi] = -np.inf
                    j = int(np.argmax(buf))
                    _finish_value(profile, index, i, float(buf[j]), j, length)
                    continue
                if use_f32:
                    # Center in float64 (cancellation-prone), demote the
                    # scaled scores, select in float32, verify in float64.
                    np.multiply(lmu, mu[i], out=buf2)
                    np.subtract(qt_row, buf2, out=buf)
                    np.multiply(buf, c1_32, out=buf32)
                    if any_window_const:
                        buf32[window_const] = np.float32(0.5 * length * sigma[i])
                    buf32[lo:hi] = -np.inf
                    top = buf32[int(np.argmax(buf32))]
                    if not np.isfinite(top):
                        _finish_value(profile, index, i, -np.inf, -1, length)
                        continue
                    margin = np.float32(F32_SCORE_MARGIN * length * sigma[i])
                    cand = np.nonzero(buf32 >= top - margin)[0]
                    if cand.size > F32_CANDIDATE_CAP:
                        np.multiply(buf, c1, out=buf2)
                        if any_window_const:
                            buf2[window_const] = 0.5 * length * sigma[i]
                        buf2[lo:hi] = -np.inf
                        j = int(np.argmax(buf2))
                        best = float(buf2[j])
                        f32_verified += n_subs
                    else:
                        exact = buf[cand] * c1[cand]
                        if any_window_const:
                            wc = window_const[cand]
                            if wc.any():
                                exact[wc] = 0.5 * length * sigma[i]
                        pick = int(np.argmax(exact))
                        j = int(cand[pick])
                        best = float(exact[pick])
                        f32_verified += int(cand.size)
                    _finish_value(
                        profile, index, i, best * invsig[i] * inv_l, j, length
                    )
                    continue
                np.multiply(qt_row, c1, out=buf)
                np.multiply(c2, mu[i], out=buf2)
                buf -= buf2
                if any_window_const:
                    buf[window_const] = 0.5 * length * sigma[i]
                buf[lo:hi] = -np.inf
                j = int(np.argmax(buf))
                _finish_value(
                    profile, index, i, float(buf[j]) * invsig[i] * inv_l, j, length
                )
            carry = np.array(s[b_rows - 1, :n_subs])
            r0 = r1

    if obs.enabled():
        obs.add("kernel.blocks", blocks)
        if use_f32:
            obs.add("kernel.f32.verified_cells", f32_verified)
    return MatrixProfile(profile=profile, index=index, length=length)
