"""``repro.kernels`` — shared per-series state and blocked compute kernels.

Two layers the whole compute stack builds on (see ``docs/KERNELS.md``):

:mod:`repro.kernels.context`
    :class:`~repro.kernels.context.SeriesContext`, the per-series cache of
    window statistics (one ``moving_mean_std`` per length) and FFT plans
    (one ``rfft`` of the padded series per plan size), threaded through
    every engine and both VALMOD sweep layers as an optional argument.
:mod:`repro.kernels.blocked`
    :func:`~repro.kernels.blocked.blocked_stomp`, the blocked diagonal
    STOMP backend (``engine="blocked-stomp"``): the QT recurrence as a
    sheared block cumulative sum, Eq.-3 evaluated block-wide in
    correlation space, optional float32 scoring with float64 verify.

Layering: this package imports only :mod:`repro.distance`, :mod:`repro.obs`
and the foundation modules at import time (engine types are resolved
lazily), so engines above it can import :class:`SeriesContext` freely.
"""

from repro.kernels.context import SeriesContext, ensure_context
from repro.kernels.blocked import DEFAULT_BLOCK_ROWS, blocked_stomp
from repro.kernels.streaming_stats import StreamingSeriesStats

#: Version of the numerical contract the kernels implement.  Bump this
#: whenever a kernel change may alter results at the bit level (new
#: recurrence order, different clipping, changed dtype policy): the
#: content-addressed feature store (``repro.features.store``) folds it
#: into every cache key, so stale entries computed under the old
#: contract miss instead of shadowing fresh results.
KERNEL_SCHEMA_VERSION = 1

__all__ = [
    "KERNEL_SCHEMA_VERSION",
    "SeriesContext",
    "StreamingSeriesStats",
    "ensure_context",
    "DEFAULT_BLOCK_ROWS",
    "blocked_stomp",
]
