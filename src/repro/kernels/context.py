"""Per-series cache of window statistics and FFT plans.

Every O(n^2) engine, both VALMOD sweep layers, and most analysis modules
need the same two derived quantities of a series: the running mean/std of
every window of one length (:func:`repro.distance.sliding.moving_mean_std`)
and the zero-padded ``rfft`` of the full series that powers every FFT
sliding dot product.  Before this layer existed each module recomputed
both from scratch — VALMOD's l_min→l_max sweep redid the series transform
once per length, and a single CLI invocation could run ``moving_mean_std``
on the same ``(series, length)`` pair a dozen times across engines,
lower-bound code and reporting.

:class:`SeriesContext` memoizes both, keyed exactly the way the distance
layer computes them, so the cached path is **bitwise identical** to the
uncached one: cache hits return the array the uncached call would have
produced (same function, same inputs, NumPy's FFT and reductions are
deterministic).  The context is threaded through the compute stack as an
optional trailing argument — every public entry point still works without
one, constructing a throwaway context internally.

Cache effectiveness is observable (``docs/OBSERVABILITY.md``):

``stats.cache.misses`` / ``stats.cache.hits``
    per-length window-statistics computations vs. reuses.
``fft.plan.build`` / ``fft.plan.reuse``
    series spectra computed vs. reused across sliding dot products.

Layering: this module sits directly above :mod:`repro.distance` and below
every engine; it imports nothing from :mod:`repro.matrixprofile` or
:mod:`repro.core`, so any of those layers may import it freely (lint rule
R008 pushes them to).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro import obs
from repro.types import ComplexArray, FloatArray, SeriesLike

from repro.distance.sliding import (
    DIRECT_DOT_MAX,
    fft_plan_size,
    moving_mean_std,
    prefix_sums,
    sliding_dot_product,
)
from repro.distance.znorm import as_series
from repro.lint.contracts import positive_int, require

__all__ = ["SeriesContext", "ensure_context"]


class SeriesContext:
    """Memoized per-series state shared across engines and sweep lengths.

    Construct one per analyzed series and pass it to every compute call
    that accepts a ``context`` argument.  All caches fill lazily; a
    context that is never asked for anything costs one :func:`as_series`
    validation.

    The cached arrays are returned with ``writeable=False`` so an
    accidental in-place mutation by one consumer cannot corrupt every
    other consumer of the cache (NumPy raises instead).
    """

    __slots__ = ("series", "_stats", "_ffts", "_prefix")

    @require(min_length=positive_int())
    def __init__(self, series: SeriesLike, min_length: int = 2) -> None:
        self.series: FloatArray = as_series(series, min_length=min_length)
        self._stats: Dict[int, Tuple[FloatArray, FloatArray]] = {}
        self._ffts: Dict[int, ComplexArray] = {}
        self._prefix: Optional[Tuple[FloatArray, FloatArray]] = None

    # -- construction helpers ------------------------------------------

    @classmethod
    def ensure(
        cls,
        series: SeriesLike,
        context: Optional["SeriesContext"] = None,
        min_length: int = 2,
    ) -> "SeriesContext":
        """Return ``context`` if it caches ``series``, else a fresh one.

        The standard prologue of every context-aware entry point: callers
        that pass a context for the right series get full reuse; callers
        that pass none (or a context built for another series) get a
        private context and the old uncached behavior, bit for bit.
        """
        if context is not None and context.matches(series):
            return context
        return cls(series, min_length=min_length)

    def matches(self, series: SeriesLike) -> bool:
        """True when this context's caches describe ``series``.

        Identity and shared memory are checked first; the O(n) value
        comparison only runs for distinct same-length buffers, and is
        negligible next to any computation worth caching.
        """
        t = np.asarray(series)
        mine = self.series
        if t.ndim != 1 or t.size != mine.size:
            return False
        if t is mine or np.shares_memory(t, mine):
            return True
        return bool(np.array_equal(t, mine))

    # -- cached primitives ---------------------------------------------

    def moving_mean_std(self, length: int) -> Tuple[FloatArray, FloatArray]:
        """Cached :func:`repro.distance.sliding.moving_mean_std`.

        One computation per distinct ``length`` for the lifetime of the
        context; every further request is a dictionary hit.
        """
        cached = self._stats.get(length)
        if cached is not None:
            obs.add("stats.cache.hits")
            return cached
        obs.add("stats.cache.misses")
        mu, sigma = moving_mean_std(self.series, length)
        mu.setflags(write=False)
        sigma.setflags(write=False)
        self._stats[length] = (mu, sigma)
        return mu, sigma

    def prefix_sums(self) -> Tuple[FloatArray, FloatArray]:
        """Cached :func:`repro.distance.sliding.prefix_sums` of the series."""
        if self._prefix is None:
            cumsum, cumsum_sq = prefix_sums(self.series)
            cumsum.setflags(write=False)
            cumsum_sq.setflags(write=False)
            self._prefix = (cumsum, cumsum_sq)
        return self._prefix

    def series_fft(self, size: int) -> ComplexArray:
        """Cached ``np.fft.rfft(series, size)`` for one padded plan size.

        The series half of every FFT sliding dot product.  All queries of
        lengths that zero-pad to the same power of two share one
        transform — for VALMOD that is typically the whole l_min→l_max
        sweep.
        """
        cached = self._ffts.get(size)
        if cached is not None:
            obs.add("fft.plan.reuse")
            return cached
        obs.add("fft.plan.build")
        spectrum = np.fft.rfft(self.series, size)
        spectrum.setflags(write=False)
        self._ffts[size] = spectrum
        return spectrum

    def sliding_dot_product(self, query: FloatArray) -> FloatArray:
        """Dot product of ``query`` against every window, reusing the plan.

        Bitwise identical to
        ``sliding_dot_product(query, self.series)``: the direct path for
        short queries is untouched, and the FFT path receives this
        context's cached series spectrum for the exact plan size the
        uncached call would build.
        """
        q = np.asarray(query, dtype=np.float64)
        if q.size <= DIRECT_DOT_MAX:
            return sliding_dot_product(q, self.series)
        size = fft_plan_size(self.series.size, q.size)
        return sliding_dot_product(q, self.series, series_fft=self.series_fft(size))

    # -- introspection -------------------------------------------------

    @property
    def cached_stat_lengths(self) -> Tuple[int, ...]:
        """Lengths with memoized window statistics (ascending)."""
        return tuple(sorted(self._stats))

    @property
    def cached_fft_sizes(self) -> Tuple[int, ...]:
        """Plan sizes with memoized series spectra (ascending)."""
        return tuple(sorted(self._ffts))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SeriesContext(n={self.series.size}, "
            f"stats={list(self.cached_stat_lengths)}, "
            f"ffts={list(self.cached_fft_sizes)})"
        )


@require(min_length=positive_int())
def ensure_context(
    series: SeriesLike,
    context: Optional[SeriesContext] = None,
    min_length: int = 2,
) -> SeriesContext:
    """Module-level alias of :meth:`SeriesContext.ensure`."""
    return SeriesContext.ensure(series, context, min_length=min_length)
