"""Incrementally-extended per-window statistics for the streaming engines.

:class:`~repro.kernels.context.SeriesContext` caches one
``moving_mean_std`` array pair per length for a *fixed* series; a
streaming engine would have to rebuild that context (and recompute every
window) on each append.  :class:`StreamingSeriesStats` is the streaming
counterpart: it owns an amortized-growth buffer of the current window
and, for every length in ``[l_min, l_max]``, per-window mean/std arrays
that are *extended in place* — one exact O(l) window computation per
length per append, never a full recompute.

Numerical contract: every per-window value is computed directly on the
window slice (``window.mean()`` / ``window.var()``), which is exactly
the "suspicious window" recompute path ``moving_mean_std`` falls back to
when prefix-sum cancellation bites (PR 1's noise-floor fix).  Streaming
values therefore agree with the batch statistics to rounding error even
on high-magnitude shelves — close enough for the eager bound layer,
whose comparisons carry an explicit slack; the materialization paths
recompute batch statistics on the window and never read these arrays.
"""

from __future__ import annotations

import math

import numpy as np

from repro import obs
from repro.distance.sliding import moving_mean_std
from repro.distance.znorm import as_series
from repro.exceptions import InvalidParameterError
from repro.lint.contracts import positive_int, require, series_like
from repro.types import FloatArray

__all__ = ["StreamingSeriesStats"]


def _capacity_for(n: int) -> int:
    cap = 64
    while cap < n:
        cap *= 2
    return cap


class StreamingSeriesStats:
    """Growing window buffer plus per-length running window statistics.

    Supports :meth:`append` (O(sum of lengths) exact window stats),
    :meth:`evict` (slide the retained window left), and zero-copy
    :meth:`mean_std` views per length.  All arrays are float64.
    """

    @require(series=series_like(), l_min=positive_int(), l_max=positive_int())
    def __init__(self, series: FloatArray, l_min: int, l_max: int) -> None:
        t = as_series(series, min_length=2)
        if l_min < 2 or l_min > l_max:
            raise InvalidParameterError(
                f"need 2 <= l_min <= l_max, got l_min={l_min} l_max={l_max}"
            )
        if l_max > t.size:
            raise InvalidParameterError(
                f"l_max {l_max} exceeds the initial series size {t.size}"
            )
        self.l_min = int(l_min)
        self.l_max = int(l_max)
        self._n = t.size
        self._cap = _capacity_for(t.size)
        self._buf = np.empty(self._cap, dtype=np.float64)
        self._buf[: self._n] = t
        self._mu: dict = {}
        self._sigma: dict = {}
        for length in range(self.l_min, self.l_max + 1):
            mu, sigma = moving_mean_std(t, length)
            mu_buf = np.empty(self._cap, dtype=np.float64)
            sigma_buf = np.empty(self._cap, dtype=np.float64)
            mu_buf[: mu.size] = mu
            sigma_buf[: sigma.size] = sigma
            self._mu[length] = mu_buf
            self._sigma[length] = sigma_buf

    @property
    def n_points(self) -> int:
        """Number of points currently retained."""
        return self._n

    def series(self) -> FloatArray:
        """Read-only view of the current window (no copy)."""
        view = self._buf[: self._n]
        view.flags.writeable = False
        return view

    def _grow(self) -> None:
        obs.add("streaming.buffer.regrows")
        self._cap *= 2
        new_buf = np.empty(self._cap, dtype=np.float64)
        new_buf[: self._n] = self._buf[: self._n]
        self._buf = new_buf
        for length in range(self.l_min, self.l_max + 1):
            count = max(0, self._n - length + 1)
            for table in (self._mu, self._sigma):
                new = np.empty(self._cap, dtype=np.float64)
                new[:count] = table[length][:count]
                table[length] = new

    def append(self, value: float) -> None:
        """Ingest one point, extending every per-length stats array."""
        if not np.isfinite(value):
            raise InvalidParameterError(
                f"appended value must be finite, got {value}"
            )
        if self._n + 1 > self._cap:
            self._grow()
        self._buf[self._n] = float(value)
        self._n += 1
        n = self._n
        for length in range(self.l_min, self.l_max + 1):
            if n < length:
                continue
            window = self._buf[n - length : n]
            mu = float(window.mean())
            sigma = math.sqrt(max(float(window.var()), 0.0))
            self._mu[length][n - length] = mu
            self._sigma[length][n - length] = sigma

    def evict(self, count: int) -> None:
        """Retire the ``count`` oldest points (slide the window left)."""
        if count < 0:
            raise InvalidParameterError(f"evict count must be >= 0, got {count}")
        if count == 0:
            return
        if count >= self._n or self._n - count < self.l_max:
            raise InvalidParameterError(
                f"evicting {count} of {self._n} points would leave fewer "
                f"than l_max={self.l_max} points"
            )
        n = self._n
        self._buf[: n - count] = self._buf[count:n]
        for length in range(self.l_min, self.l_max + 1):
            windows = n - length + 1
            if windows <= count:
                continue
            for table in (self._mu, self._sigma):
                arr = table[length]
                arr[: windows - count] = arr[count:windows]
        self._n = n - count

    def mean_std(self, length: int) -> tuple:
        """(mu, sigma) views over the current window's length-``l`` windows."""
        if not self.l_min <= length <= self.l_max:
            raise InvalidParameterError(
                f"length {length} outside configured [{self.l_min}, {self.l_max}]"
            )
        count = self._n - length + 1
        if count <= 0:
            raise InvalidParameterError(
                f"window of {self._n} points has no length-{length} subsequences"
            )
        return self._mu[length][:count], self._sigma[length][:count]
