"""Shapelet discovery — the second application the paper's Section 8 names.

A *shapelet* (Ye & Keogh 2009) is a subsequence whose distance to a
series discriminates between classes: "does this series contain a close
match to this shape?".  The machinery is exactly the library's distance
substrate (MASS distance profiles, z-normalized distance), plus an
information-gain search over candidate subsequences — and motif
discovery is a natural candidate generator, which is the VALMOD
connection: motifs of a class are the recurring shapes most likely to
characterize it, *at whatever length they occur*.

API
---
:func:`repro.shapelets.discovery.find_shapelets`
    search candidates over a length range, rank by information gain.
:class:`repro.shapelets.classifier.ShapeletClassifier`
    shapelet-transform + nearest-centroid classification.
"""

from repro.shapelets.evaluation import (
    information_gain,
    best_split,
    series_to_shapelet_distance,
)
from repro.shapelets.candidates import motif_candidates, window_candidates
from repro.shapelets.discovery import Shapelet, find_shapelets
from repro.shapelets.classifier import ShapeletClassifier

__all__ = [
    "information_gain",
    "best_split",
    "series_to_shapelet_distance",
    "motif_candidates",
    "window_candidates",
    "Shapelet",
    "find_shapelets",
    "ShapeletClassifier",
]
