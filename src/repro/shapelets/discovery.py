"""Shapelet discovery: rank candidates by information gain."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

import numpy as np

from repro.exceptions import InvalidParameterError
from repro.shapelets.candidates import motif_candidates, window_candidates
from repro.shapelets.evaluation import best_split, series_to_shapelet_distance

__all__ = ["Shapelet", "find_shapelets"]


@dataclass(frozen=True, order=True)
class Shapelet:
    """One discovered shapelet with its decision threshold.

    Ordering puts the best shapelet first: higher gain, then wider
    margin.
    """

    sort_key: tuple
    values: np.ndarray = field(compare=False, repr=False)
    gain: float = field(compare=False)
    threshold: float = field(compare=False)
    margin: float = field(compare=False)
    source_series: int = field(compare=False)
    start: int = field(compare=False)

    @property
    def length(self) -> int:
        return self.values.size

    def distance_to(self, series: np.ndarray) -> float:
        """Length-normalized distance of a series' best window."""
        return series_to_shapelet_distance(series, self.values)

    def predicts_close(self, series: np.ndarray) -> bool:
        """True when the series matches the shapelet within threshold."""
        return self.distance_to(series) <= self.threshold


def find_shapelets(
    series_list: Sequence[np.ndarray],
    labels: Sequence,
    l_min: int,
    l_max: int,
    k: int = 3,
    strategy: str = "motif",
    stride: int = 4,
    per_series: int = 3,
) -> List[Shapelet]:
    """Top-k shapelets for a labeled collection of series.

    ``strategy`` is ``"motif"`` (VALMOD candidates — fast, the
    recommended default) or ``"window"`` (strided enumeration —
    exhaustive-ish, slow).  Shapelets are ranked by information gain,
    margin-tie-broken, and deduplicated by source region.
    """
    if len(series_list) != len(list(labels)):
        raise InvalidParameterError(
            f"{len(series_list)} series vs {len(list(labels))} labels"
        )
    if len(set(labels)) < 2:
        raise InvalidParameterError("need at least two classes")
    if k <= 0:
        raise InvalidParameterError(f"k must be positive, got {k}")

    if strategy == "motif":
        candidates = motif_candidates(
            series_list, l_min, l_max, per_series=per_series
        )
    elif strategy == "window":
        step = max(1, (l_max - l_min) // 4) if l_max > l_min else 1
        lengths = list(range(l_min, l_max + 1, step))
        candidates = window_candidates(series_list, lengths, stride=stride)
    else:
        raise InvalidParameterError(
            f"unknown strategy {strategy!r}; use 'motif' or 'window'"
        )
    if not candidates:
        raise InvalidParameterError(
            "no candidates generated; check lengths against series sizes"
        )

    scored: List[Shapelet] = []
    for values, source, start in candidates:
        distances = np.array(
            [series_to_shapelet_distance(s, values) for s in series_list]
        )
        gain, threshold, margin = best_split(distances, labels)
        scored.append(
            Shapelet(
                sort_key=(-gain, -margin),
                values=values,
                gain=gain,
                threshold=threshold,
                margin=margin,
                source_series=source,
                start=start,
            )
        )

    result: List[Shapelet] = []
    for shapelet in sorted(scored):
        overlaps = any(
            other.source_series == shapelet.source_series
            and abs(other.start - shapelet.start) < min(other.length, shapelet.length)
            for other in result
        )
        if overlaps:
            continue
        result.append(shapelet)
        if len(result) >= k:
            break
    return result
