"""Candidate shapelet generation.

Two strategies:

* :func:`window_candidates` — the classic exhaustive-ish enumeration:
  strided windows of every length in the range, from every training
  series.
* :func:`motif_candidates` — the VALMOD-powered shortcut: the
  variable-length motifs of each series are its most *recurring*
  shapes, so they concentrate the shapes worth testing as shapelets.
  This slashes the candidate count (motifs per series instead of all
  windows) while keeping the discriminative shapes, in the spirit of
  the paper's shapelet outlook.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.core.valmod import Valmod
from repro.distance.znorm import as_series
from repro.exceptions import InvalidParameterError

__all__ = ["window_candidates", "motif_candidates"]

Candidate = Tuple[np.ndarray, int, int]  # (values, source series idx, start)


def window_candidates(
    series_list: Sequence[np.ndarray],
    lengths: Sequence[int],
    stride: int = 1,
) -> List[Candidate]:
    """Strided windows of each requested length from every series."""
    if stride <= 0:
        raise InvalidParameterError(f"stride must be positive, got {stride}")
    out: List[Candidate] = []
    for source, raw in enumerate(series_list):
        t = as_series(raw, min_length=4)
        for length in lengths:
            if length > t.size:
                continue
            for start in range(0, t.size - length + 1, stride):
                out.append((t[start : start + length].copy(), source, start))
    return out


def motif_candidates(
    series_list: Sequence[np.ndarray],
    l_min: int,
    l_max: int,
    per_series: int = 3,
    p: int = 20,
) -> List[Candidate]:
    """The top variable-length motifs of each series, as candidates.

    Runs VALMOD per series and takes each of the best ``per_series``
    cross-length motif pairs' first member.  Series too short for the
    range contribute nothing.
    """
    from repro.core.ranking import top_motifs_across_lengths

    out: List[Candidate] = []
    for source, raw in enumerate(series_list):
        t = as_series(raw, min_length=8)
        if l_max > t.size // 2:
            continue
        run = Valmod(t, l_min, l_max, p=p).run()
        for pair in top_motifs_across_lengths(run.motif_pairs, per_series):
            out.append((t[pair.a : pair.a + pair.length].copy(), source, pair.a))
    return out
