"""Shapelet-transform classifier.

Each series maps to a feature vector of its distances to the discovered
shapelets; classification is nearest class centroid in that feature
space.  Deliberately minimal — the point is to demonstrate the
shapelet *discovery* machinery end to end, not to compete with a
full-blown learner.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.exceptions import InvalidParameterError, NotComputedError
from repro.shapelets.discovery import Shapelet, find_shapelets

__all__ = ["ShapeletClassifier"]


class ShapeletClassifier:
    """Fit shapelets on labeled series, classify new series.

    Parameters mirror :func:`find_shapelets`; ``n_shapelets`` is the
    feature dimensionality.
    """

    def __init__(
        self,
        l_min: int,
        l_max: int,
        n_shapelets: int = 3,
        strategy: str = "motif",
    ) -> None:
        if n_shapelets <= 0:
            raise InvalidParameterError(
                f"n_shapelets must be positive, got {n_shapelets}"
            )
        self.l_min = l_min
        self.l_max = l_max
        self.n_shapelets = n_shapelets
        self.strategy = strategy
        self.shapelets_: List[Shapelet] = []
        self._centroids: Dict[object, np.ndarray] = {}

    def transform(self, series_list: Sequence[np.ndarray]) -> np.ndarray:
        """Shapelet-distance feature matrix, shape (n_series, n_shapelets)."""
        if not self.shapelets_:
            raise NotComputedError("classifier not fitted")
        return np.array(
            [
                [shapelet.distance_to(series) for shapelet in self.shapelets_]
                for series in series_list
            ]
        )

    def fit(
        self, series_list: Sequence[np.ndarray], labels: Sequence
    ) -> "ShapeletClassifier":
        """Discover shapelets and the per-class feature centroids."""
        self.shapelets_ = find_shapelets(
            series_list,
            labels,
            self.l_min,
            self.l_max,
            k=self.n_shapelets,
            strategy=self.strategy,
        )
        features = self.transform(series_list)
        labels = list(labels)
        self._centroids = {
            label: features[[i for i, lab in enumerate(labels) if lab == label]].mean(
                axis=0
            )
            for label in set(labels)
        }
        return self

    def predict(self, series_list: Sequence[np.ndarray]) -> List:
        """Nearest-centroid labels for new series."""
        if not self._centroids:
            raise NotComputedError("classifier not fitted")
        features = self.transform(series_list)
        out = []
        for row in features:
            out.append(
                min(
                    self._centroids,
                    key=lambda label: float(
                        np.linalg.norm(row - self._centroids[label])
                    ),
                )
            )
        return out

    def score(self, series_list: Sequence[np.ndarray], labels: Sequence) -> float:
        """Accuracy on a labeled set."""
        predictions = self.predict(series_list)
        labels = list(labels)
        if len(labels) != len(predictions):
            raise InvalidParameterError("series and labels must align")
        hits = sum(1 for p, lab in zip(predictions, labels) if p == lab)
        return hits / len(labels)
