"""Shapelet quality evaluation: distances, entropy, information gain.

A candidate shapelet turns every series into one number — the
length-normalized distance of the series' best-matching window — and
its quality is the information gain of the best threshold split of
those numbers against the labels (Ye & Keogh 2009).
"""

from __future__ import annotations

import math
from typing import Sequence, Tuple

import numpy as np

from repro.distance.mass import mass
from repro.distance.znorm import as_series, znormalized_distance
from repro.exceptions import InvalidParameterError
from repro.types import length_normalized

__all__ = [
    "series_to_shapelet_distance",
    "entropy",
    "information_gain",
    "best_split",
]


def series_to_shapelet_distance(series: np.ndarray, shapelet: np.ndarray) -> float:
    """Length-normalized distance of the series' best window to the shapelet.

    Uses a MASS profile when the series is long enough, the direct
    distance when the series length equals the shapelet length.
    """
    t = as_series(series, min_length=2)
    s = np.asarray(shapelet, dtype=np.float64)
    if s.size > t.size:
        raise InvalidParameterError(
            f"shapelet of {s.size} points longer than series of {t.size}"
        )
    if s.size == t.size:
        return length_normalized(znormalized_distance(t, s), s.size)
    # MASS needs the query to come from the series; compute the profile
    # of the shapelet against the series directly instead.
    from repro.distance.profile import distance_profile_from_qt
    from repro.kernels.context import ensure_context

    ctx = ensure_context(t)
    mu, sigma = ctx.moving_mean_std(s.size)
    qt = ctx.sliding_dot_product(s)
    profile = distance_profile_from_qt(
        qt, s.size, float(s.mean()), float(s.std()), mu, sigma
    )
    return length_normalized(float(profile.min()), s.size)


def entropy(labels: Sequence) -> float:
    """Shannon entropy (bits) of a label multiset."""
    labels = list(labels)
    if not labels:
        return 0.0
    total = len(labels)
    out = 0.0
    for label in set(labels):
        p = labels.count(label) / total
        out -= p * math.log2(p)
    return out


def information_gain(
    distances: np.ndarray, labels: Sequence, threshold: float
) -> float:
    """Information gain of splitting at ``distance <= threshold``."""
    d = np.asarray(distances, dtype=np.float64)
    labels = list(labels)
    if d.size != len(labels):
        raise InvalidParameterError(
            f"{d.size} distances vs {len(labels)} labels"
        )
    left = [lab for dist, lab in zip(d, labels) if dist <= threshold]
    right = [lab for dist, lab in zip(d, labels) if dist > threshold]
    total = len(labels)
    if not left or not right:
        return 0.0
    return entropy(labels) - (
        len(left) / total * entropy(left) + len(right) / total * entropy(right)
    )


def best_split(distances: np.ndarray, labels: Sequence) -> Tuple[float, float, float]:
    """The threshold with maximal information gain.

    Returns ``(gain, threshold, margin)`` where the margin is the
    separation between the two sides at the chosen split — the standard
    tie-breaker among equal-gain shapelets.
    """
    d = np.asarray(distances, dtype=np.float64)
    if d.size != len(list(labels)):
        raise InvalidParameterError("distances and labels must align")
    order = np.argsort(d)
    sorted_d = d[order]
    best = (0.0, float(sorted_d[0]) if d.size else 0.0, 0.0)
    for i in range(d.size - 1):
        if sorted_d[i] == sorted_d[i + 1]:
            continue
        threshold = 0.5 * (sorted_d[i] + sorted_d[i + 1])
        gain = information_gain(d, labels, threshold)
        margin = float(sorted_d[i + 1] - sorted_d[i])
        if gain > best[0] or (gain == best[0] and margin > best[2]):
            best = (gain, float(threshold), margin)
    return best
