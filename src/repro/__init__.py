"""repro — a full reproduction of VALMOD (SIGMOD 2018).

VALMOD discovers, exactly and scalably, the motif pairs of *every*
subsequence length in a range ``[l_min, l_max]`` of a data series, plus
the variable-length motif sets built on top of them.

Quickstart
----------
>>> import numpy as np
>>> from repro import extract_features
>>> rng = np.random.default_rng(7)
>>> series = rng.standard_normal(4000)
>>> features = extract_features(series, l_min=64, l_max=96)
>>> best = features.best_motif              # top motif over all lengths
>>> per_length = features.pairs_by_length() # exact motif pair per length
>>> counts = features.motif_set_counts      # motif-set frequencies
>>> anomalies = features.discords           # ranked discords

Pass ``store="~/.cache/repro-features"`` (or set the
``REPRO_FEATURES_STORE`` environment variable) and a repeat query
returns a bitwise-identical result without running any kernel.  The
lower-level building blocks (:func:`valmod`, :func:`find_motif_sets`,
:func:`find_discords`, the engines) remain available for staged use.

Package layout
--------------
``repro.features``      the one-call façade + content-addressed store
``repro.core``          VALMOD itself (Algorithms 1-6, Eq. 2 lower bound)
``repro.distance``      z-normalized distance kernels, MASS
``repro.matrixprofile`` STOMP / STAMP / brute-force engines
``repro.baselines``     STOMP-per-length, MOEN, QUICK MOTIF, brute force
``repro.datasets``      synthetic stand-ins for the paper's five datasets
``repro.analysis``      TLB, pruning margins, distance distributions
``repro.harness``       experiment drivers for every figure and table
"""

from repro.core.valmod import Valmod, ValmodResult, valmod, DEFAULT_P
from repro.core.valmp import VALMP
from repro.core.motif_sets import compute_motif_sets, find_motif_sets
from repro.core.ranking import (
    RankedEvent,
    rank_motif_pairs,
    top_motifs_across_lengths,
    unified_ranking,
)
from repro.core.lower_bound import (
    lower_bound_distance,
    lower_bound_profile,
    tightness_of_lower_bound,
)
from repro.core.discords import Discord, find_discords
from repro.core.discords_variable import find_discords_pruned
from repro.core.pan import PanMatrixProfile, compute_pan_matrix_profile
from repro.core.chains import Chain, all_chains, unanchored_chain
from repro.core.segmentation import fluss, regime_boundaries
from repro.core.annotation import apply_annotation, variance_annotation
from repro.features import (
    AnnotationSummary,
    FeatureStore,
    SeriesFeatures,
    StreamingFeatures,
    extract_features,
    extract_features_batch,
    feature_cache_key,
)
from repro.matrixprofile.join import ab_join_motif, stomp_ab_join
from repro.matrixprofile.mpdist import mpdist
from repro.multiseries import consensus_motif, find_snippets, mpdist_matrix
from repro.multidim import mstamp, multidim_motifs
from repro.matrixprofile import (
    MatrixProfile,
    StreamEvent,
    StreamingMatrixProfile,
    StreamingValmod,
    compute_with,
    engine_names,
    parallel_stomp,
    scrimp,
    stamp,
    stomp,
)
from repro.types import Motif, MotifPair, MotifSet, length_normalized
from repro.exceptions import (
    InvalidParameterError,
    InvalidSeriesError,
    NotComputedError,
    ReproError,
    WindowTooSmallError,
)

__version__ = "1.4.0"

__all__ = [
    "AnnotationSummary",
    "FeatureStore",
    "SeriesFeatures",
    "extract_features",
    "extract_features_batch",
    "feature_cache_key",
    "Valmod",
    "ValmodResult",
    "valmod",
    "DEFAULT_P",
    "VALMP",
    "compute_motif_sets",
    "find_motif_sets",
    "rank_motif_pairs",
    "top_motifs_across_lengths",
    "lower_bound_distance",
    "lower_bound_profile",
    "tightness_of_lower_bound",
    "MatrixProfile",
    "StreamingMatrixProfile",
    "StreamingValmod",
    "StreamingFeatures",
    "StreamEvent",
    "stomp",
    "stamp",
    "scrimp",
    "parallel_stomp",
    "engine_names",
    "compute_with",
    "Discord",
    "find_discords",
    "find_discords_pruned",
    "RankedEvent",
    "unified_ranking",
    "PanMatrixProfile",
    "compute_pan_matrix_profile",
    "Chain",
    "all_chains",
    "unanchored_chain",
    "fluss",
    "regime_boundaries",
    "apply_annotation",
    "variance_annotation",
    "ab_join_motif",
    "stomp_ab_join",
    "mpdist",
    "consensus_motif",
    "find_snippets",
    "mpdist_matrix",
    "mstamp",
    "multidim_motifs",
    "Motif",
    "MotifPair",
    "MotifSet",
    "length_normalized",
    "ReproError",
    "InvalidSeriesError",
    "InvalidParameterError",
    "NotComputedError",
    "WindowTooSmallError",
    "__version__",
]
