"""Command-line interface: ``python -m repro`` / the ``valmod`` script.

Subcommands
-----------
``motifs``   run VALMOD on a CSV file or a named synthetic dataset and
             print the ranked variable-length motifs.
``profile``  compute one fixed-length matrix profile with a chosen
             engine (``--engine``, ``--n-jobs``).
``sets``     run the full Problem-2 pipeline (VALMOD + motif sets).
``datasets`` list the synthetic dataset families and their statistics.
``bench``    run one of the figure sweeps at a small scale.

Every subcommand accepts ``--trace`` (plus ``--trace-format`` /
``--trace-out``): the run executes with the :mod:`repro.obs` tracer
enabled and a trace report — pruning-power counters, listDP hit rates,
kernel call counts, stage timings — is emitted after the normal output.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np

from repro import obs
from repro.analysis.stats import dataset_statistics
from repro.core.motif_sets import find_motif_sets, motif_set_summary
from repro.core.ranking import top_motifs_across_lengths
from repro.core.valmod import DEFAULT_P, Valmod
from repro.datasets.registry import DATASET_NAMES, dataset_spec, load_dataset
from repro.exceptions import ReproError
from repro.harness.config import default_grid
from repro.harness.experiments import (
    sweep_motif_length,
    sweep_motif_range,
    sweep_series_size,
)
from repro.harness.reporting import format_table
from repro.matrixprofile.registry import DEFAULT_ENGINE, compute_with, engine_names

__all__ = ["main", "build_parser"]


def _load_series(args: argparse.Namespace) -> np.ndarray:
    if args.csv is not None:
        return np.loadtxt(args.csv, dtype=np.float64, delimiter=args.delimiter)
    return load_dataset(args.dataset, args.points, seed=args.seed)


def _add_source_arguments(parser: argparse.ArgumentParser) -> None:
    source = parser.add_mutually_exclusive_group()
    source.add_argument("--csv", help="one-column CSV/text file with the series")
    source.add_argument(
        "--dataset",
        default="ECG",
        choices=list(DATASET_NAMES),
        help="synthetic dataset family (default ECG)",
    )
    parser.add_argument("--delimiter", default=None, help="CSV delimiter")
    parser.add_argument("--points", type=int, default=8000, help="synthetic size")
    parser.add_argument("--seed", type=int, default=0, help="synthetic seed")


def _add_series_arguments(parser: argparse.ArgumentParser) -> None:
    _add_source_arguments(parser)
    parser.add_argument("--l-min", type=int, default=64, dest="l_min")
    parser.add_argument("--l-max", type=int, default=96, dest="l_max")
    parser.add_argument("--p", type=int, default=DEFAULT_P)


def _add_jobs_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--n-jobs",
        type=int,
        default=1,
        dest="n_jobs",
        help="worker processes for parallel engines (0 = all CPUs, default 1)",
    )


def _add_trace_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace",
        action="store_true",
        help="record repro.obs counters/spans and emit a trace report",
    )
    parser.add_argument(
        "--trace-format",
        choices=["json", "pretty"],
        default="json",
        dest="trace_format",
        help="trace report rendering (default json)",
    )
    parser.add_argument(
        "--trace-out",
        dest="trace_out",
        default=None,
        help="write the trace report to this file instead of stdout",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="valmod",
        description="VALMOD: variable-length motif discovery (SIGMOD 2018 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    motifs = sub.add_parser("motifs", help="discover ranked variable-length motifs")
    _add_series_arguments(motifs)
    _add_jobs_argument(motifs)
    motifs.add_argument("--top", type=int, default=5, help="motifs to print")
    motifs.add_argument("--export", help="write the full result to this JSON file")
    motifs.add_argument(
        "--no-stats-cache",
        action="store_false",
        dest="stats_cache",
        help="disable the shared series stats/FFT cache (ablation; "
        "results are bitwise identical either way)",
    )

    profile = sub.add_parser(
        "profile", help="compute one fixed-length matrix profile"
    )
    _add_source_arguments(profile)
    profile.add_argument(
        "--length", type=int, default=64, help="subsequence length (default 64)"
    )
    profile.add_argument(
        "--engine",
        default=DEFAULT_ENGINE,
        choices=list(engine_names()),
        help=f"matrix-profile engine (default {DEFAULT_ENGINE})",
    )
    _add_jobs_argument(profile)
    profile.add_argument(
        "--top", type=int, default=5, help="lowest-distance positions to print"
    )

    discords = sub.add_parser(
        "discords", help="discover ranked variable-length discords (anomalies)"
    )
    _add_series_arguments(discords)
    discords.add_argument(
        "--engine",
        default=DEFAULT_ENGINE,
        choices=list(engine_names()),
        help=f"matrix-profile engine (default {DEFAULT_ENGINE})",
    )
    _add_jobs_argument(discords)
    discords.add_argument("--top", type=int, default=3, help="discords to print")

    sets = sub.add_parser("sets", help="discover variable-length motif sets")
    _add_series_arguments(sets)
    _add_jobs_argument(sets)
    sets.add_argument("--k", type=int, default=10, help="top-K pairs to extend")
    sets.add_argument("--radius-factor", type=float, default=3.0, dest="radius_factor")

    segment = sub.add_parser(
        "segment", help="FLUSS semantic segmentation (regime boundaries)"
    )
    _add_series_arguments(segment)
    segment.add_argument(
        "--regimes", type=int, default=2, help="number of regimes to split into"
    )

    snippets = sub.add_parser(
        "snippets", help="representative subsequences summarizing the series"
    )
    _add_series_arguments(snippets)
    snippets.add_argument("--k", type=int, default=2, help="snippets to extract")

    sub.add_parser("datasets", help="list synthetic dataset families")

    bench = sub.add_parser("bench", help="run one scalability sweep")
    bench.add_argument(
        "figure",
        choices=["fig8", "fig12", "fig13"],
        help="which figure's sweep to run",
    )
    bench.add_argument(
        "--datasets",
        nargs="+",
        default=["ECG", "EMG"],
        choices=list(DATASET_NAMES),
    )
    bench.add_argument(
        "--algorithms",
        nargs="+",
        default=["VALMOD", "STOMP"],
        choices=["VALMOD", "STOMP", "MOEN", "QUICKMOTIF"],
    )
    _add_jobs_argument(bench)
    for sub_parser in set(sub.choices.values()):
        _add_trace_arguments(sub_parser)
    return parser


def _cmd_motifs(args: argparse.Namespace) -> int:
    series = _load_series(args)
    run = Valmod(
        series, args.l_min, args.l_max, p=args.p, n_jobs=args.n_jobs,
        stats_cache=getattr(args, "stats_cache", True),
    ).run()
    print(f"# processed {len(run.motif_pairs)} lengths; {run.stats.summary()}")
    rows = [
        (pair.length, pair.a, pair.b, f"{pair.distance:.4f}",
         f"{pair.normalized_distance:.4f}")
        for pair in top_motifs_across_lengths(run.motif_pairs, args.top)
    ]
    print(format_table(["length", "a", "b", "distance", "normalized"], rows))
    if getattr(args, "export", None):
        from repro.io import save_result_json

        save_result_json(args.export, run)
        print(f"# full result written to {args.export}")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.kernels import SeriesContext

    series = _load_series(args)
    context = SeriesContext(series)
    mp = compute_with(
        args.engine, series, args.length, n_jobs=args.n_jobs, context=context
    )
    finite = np.isfinite(mp.profile)
    print(
        f"# engine={args.engine} length={args.length} "
        f"profiles={len(mp.profile)} finite={int(finite.sum())}"
    )
    order = np.argsort(mp.profile)[: max(args.top, 0)]
    rows = [
        (int(pos), int(mp.index[pos]), f"{mp.profile[pos]:.4f}")
        for pos in order
        if finite[pos]
    ]
    print(format_table(["position", "neighbor", "distance"], rows))
    return 0


def _cmd_discords(args: argparse.Namespace) -> int:
    from repro.core.discords import find_discords

    series = _load_series(args)
    discords = find_discords(
        series,
        args.l_min,
        args.l_max,
        k=args.top,
        engine=args.engine,
        n_jobs=args.n_jobs,
    )
    rows = [
        (d.length, d.start, f"{d.distance:.4f}", f"{d.normalized_distance:.4f}")
        for d in discords
    ]
    print(format_table(["length", "start", "distance", "normalized"], rows))
    return 0


def _cmd_sets(args: argparse.Namespace) -> int:
    series = _load_series(args)
    sets = find_motif_sets(
        series, args.l_min, args.l_max, k=args.k,
        radius_factor=args.radius_factor, p=args.p, n_jobs=args.n_jobs,
    )
    print(f"# {len(sets)} motif sets")
    for motif_set in sets:
        print(motif_set_summary(motif_set))
    return 0


def _cmd_segment(args: argparse.Namespace) -> int:
    from repro.core.segmentation import fluss, regime_boundaries

    series = _load_series(args)
    boundaries = regime_boundaries(series, args.l_min, n_regimes=args.regimes)
    cac = fluss(series, args.l_min)
    print(f"# corrected arc curve minimum: {cac.min():.4f}")
    rows = [(i + 1, b, f"{cac[b]:.4f}") for i, b in enumerate(boundaries)]
    print(format_table(["boundary", "position", "CAC"], rows))
    return 0


def _cmd_snippets(args: argparse.Namespace) -> int:
    from repro.multiseries import find_snippets

    series = _load_series(args)
    snippets, _ = find_snippets(series, args.l_min, k=args.k)
    rows = [
        (i, s.start, s.length, f"{s.coverage_fraction:.1%}")
        for i, s in enumerate(snippets)
    ]
    print(format_table(["snippet", "start", "length", "coverage"], rows))
    return 0


def _cmd_datasets(_: argparse.Namespace) -> int:
    rows = []
    for name in DATASET_NAMES:
        spec = dataset_spec(name)
        stats = dataset_statistics(load_dataset(name, 8000, seed=0))
        rows.append(
            (name, spec.description, f"{stats.mean:.4g}", f"{stats.std:.4g}")
        )
    print(format_table(["name", "structure", "mean", "std"], rows))
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    import dataclasses

    grid = default_grid()
    if args.n_jobs != grid.n_jobs:
        grid = dataclasses.replace(grid, n_jobs=args.n_jobs)
    sweeps = {
        "fig8": sweep_motif_length,
        "fig12": sweep_motif_range,
        "fig13": sweep_series_size,
    }
    result = sweeps[args.figure](
        datasets=args.datasets, algorithms=args.algorithms, grid=grid
    )
    print(format_table(result.headers(), result.table_rows()))
    return 0


def _emit_trace(args: argparse.Namespace) -> None:
    """Render the recorded trace as JSON or a pretty table."""
    from repro.obs import build_report, format_report, report_to_json

    report = build_report()
    text = (
        format_report(report)
        if args.trace_format == "pretty"
        else report_to_json(report)
    )
    if args.trace_out:
        with open(args.trace_out, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"# trace report written to {args.trace_out}")
    else:
        print(text)


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "motifs": _cmd_motifs,
        "profile": _cmd_profile,
        "discords": _cmd_discords,
        "sets": _cmd_sets,
        "segment": _cmd_segment,
        "snippets": _cmd_snippets,
        "datasets": _cmd_datasets,
        "bench": _cmd_bench,
    }

    def dispatch() -> int:
        try:
            return handlers[args.command](args)
        except ReproError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    if not getattr(args, "trace", False):
        return dispatch()
    with obs.tracing(True):
        obs.reset()
        code = dispatch()
        # Emit even on failure: a partial trace is still attributable.
        _emit_trace(args)
    return code


if __name__ == "__main__":
    sys.exit(main())
