"""Command-line interface: ``python -m repro`` / the ``valmod`` script.

Subcommands
-----------
``features`` one-call feature extraction (motifs + any requested
             families) with optional on-disk caching (``--store``).
``motifs``   run VALMOD on a CSV file or a named synthetic dataset and
             print the ranked variable-length motifs.
``profile``  compute one fixed-length matrix profile with a chosen
             engine (``--engine``, ``--n-jobs``).
``sets``     run the full Problem-2 pipeline (VALMOD + motif sets).
``stream``   feed a series point-by-point through the streaming engine,
             printing motif/discord change events as they fire.
``datasets`` list the synthetic dataset families and their statistics.
``bench``    run one of the figure sweeps at a small scale.

Per-series analysis commands route through the :mod:`repro.features`
façade — the CLI composes no workload modules itself (lint rule R009).

Every subcommand accepts ``--trace`` (plus ``--trace-format`` /
``--trace-out``): the run executes with the :mod:`repro.obs` tracer
enabled and a trace report — pruning-power counters, listDP hit rates,
kernel call counts, stage timings — is emitted after the normal output.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np

from repro import obs
from repro.analysis.stats import dataset_statistics
from repro.datasets.registry import DATASET_NAMES, dataset_spec, load_dataset
from repro.exceptions import ReproError
from repro.features import (
    DEFAULT_INCLUDE,
    DEFAULT_P,
    INCLUDE_OPTIONS,
    extract_features,
    motif_set_summary,
    save_features_json,
)
from repro.harness.config import default_grid
from repro.harness.experiments import (
    sweep_motif_length,
    sweep_motif_range,
    sweep_series_size,
)
from repro.harness.reporting import format_table
from repro.matrixprofile.registry import DEFAULT_ENGINE, compute_with, engine_names

__all__ = ["main", "build_parser"]


def _load_series(args: argparse.Namespace) -> np.ndarray:
    if args.csv is not None:
        source = sys.stdin if args.csv == "-" else args.csv
        return np.loadtxt(source, dtype=np.float64, delimiter=args.delimiter)
    return load_dataset(args.dataset, args.points, seed=args.seed)


def _add_source_arguments(parser: argparse.ArgumentParser) -> None:
    source = parser.add_mutually_exclusive_group()
    source.add_argument("--csv", help="one-column CSV/text file with the series")
    source.add_argument(
        "--dataset",
        default="ECG",
        choices=list(DATASET_NAMES),
        help="synthetic dataset family (default ECG)",
    )
    parser.add_argument("--delimiter", default=None, help="CSV delimiter")
    parser.add_argument("--points", type=int, default=8000, help="synthetic size")
    parser.add_argument("--seed", type=int, default=0, help="synthetic seed")


def _add_series_arguments(parser: argparse.ArgumentParser) -> None:
    _add_source_arguments(parser)
    parser.add_argument("--l-min", type=int, default=64, dest="l_min")
    parser.add_argument("--l-max", type=int, default=96, dest="l_max")
    parser.add_argument("--p", type=int, default=DEFAULT_P)


def _add_jobs_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--n-jobs",
        type=int,
        default=1,
        dest="n_jobs",
        help="worker processes for parallel engines (0 = all CPUs, default 1)",
    )


def _add_trace_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace",
        action="store_true",
        help="record repro.obs counters/spans and emit a trace report",
    )
    parser.add_argument(
        "--trace-format",
        choices=["json", "pretty"],
        default="json",
        dest="trace_format",
        help="trace report rendering (default json)",
    )
    parser.add_argument(
        "--trace-out",
        dest="trace_out",
        default=None,
        help="write the trace report to this file instead of stdout",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="valmod",
        description="VALMOD: variable-length motif discovery (SIGMOD 2018 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    features = sub.add_parser(
        "features",
        help="one-call feature extraction with optional on-disk caching",
    )
    _add_series_arguments(features)
    _add_jobs_argument(features)
    features.add_argument(
        "--engine",
        default=DEFAULT_ENGINE,
        choices=list(engine_names()),
        help=f"matrix-profile engine (default {DEFAULT_ENGINE})",
    )
    features.add_argument("--top", type=int, default=5, help="motifs to print")
    features.add_argument(
        "--include",
        nargs="+",
        default=list(DEFAULT_INCLUDE),
        help="optional feature families to compute (space- or "
        f"comma-separated from: {', '.join(INCLUDE_OPTIONS)}; "
        "'none' for motifs only)",
    )
    features.add_argument(
        "--set-k", type=int, default=10, dest="set_k",
        help="top-K pairs to extend into motif sets",
    )
    features.add_argument(
        "--radius-factor", type=float, default=3.0, dest="radius_factor"
    )
    features.add_argument(
        "--k-discords", type=int, default=3, dest="k_discords"
    )
    features.add_argument(
        "--discord-lengths",
        nargs="+",
        type=int,
        default=None,
        dest="discord_lengths",
        help="restrict the discord scan to these lengths",
    )
    features.add_argument(
        "--regimes", type=int, default=2, help="regimes for segmentation"
    )
    features.add_argument(
        "--store",
        default=None,
        help="feature-store directory (default: $REPRO_FEATURES_STORE)",
    )
    features.add_argument(
        "--no-store",
        action="store_true",
        dest="no_store",
        help="never read or write the feature store",
    )
    features.add_argument("--export", help="write the features JSON here")

    motifs = sub.add_parser("motifs", help="discover ranked variable-length motifs")
    _add_series_arguments(motifs)
    _add_jobs_argument(motifs)
    motifs.add_argument("--top", type=int, default=5, help="motifs to print")
    motifs.add_argument("--export", help="write the full result to this JSON file")
    motifs.add_argument(
        "--no-stats-cache",
        action="store_false",
        dest="stats_cache",
        help="disable the shared series stats/FFT cache (ablation; "
        "results are bitwise identical either way)",
    )

    profile = sub.add_parser(
        "profile", help="compute one fixed-length matrix profile"
    )
    _add_source_arguments(profile)
    profile.add_argument(
        "--length", type=int, default=64, help="subsequence length (default 64)"
    )
    profile.add_argument(
        "--engine",
        default=DEFAULT_ENGINE,
        choices=list(engine_names()),
        help=f"matrix-profile engine (default {DEFAULT_ENGINE})",
    )
    _add_jobs_argument(profile)
    profile.add_argument(
        "--top", type=int, default=5, help="lowest-distance positions to print"
    )

    discords = sub.add_parser(
        "discords", help="discover ranked variable-length discords (anomalies)"
    )
    _add_series_arguments(discords)
    discords.add_argument(
        "--engine",
        default=DEFAULT_ENGINE,
        choices=list(engine_names()),
        help=f"matrix-profile engine (default {DEFAULT_ENGINE})",
    )
    _add_jobs_argument(discords)
    discords.add_argument("--top", type=int, default=3, help="discords to print")
    driver = discords.add_mutually_exclusive_group()
    driver.add_argument(
        "--pruned",
        dest="pruned",
        action="store_true",
        default=True,
        help="lower-bound-pruned driver: skips lengths the Eq. 2 bounds "
        "rule out (default; identical output to --exact-full)",
    )
    driver.add_argument(
        "--exact-full",
        dest="pruned",
        action="store_false",
        help="ablation: full matrix profile at every length",
    )

    sets = sub.add_parser("sets", help="discover variable-length motif sets")
    _add_series_arguments(sets)
    _add_jobs_argument(sets)
    sets.add_argument("--k", type=int, default=10, help="top-K pairs to extend")
    sets.add_argument("--radius-factor", type=float, default=3.0, dest="radius_factor")

    segment = sub.add_parser(
        "segment", help="FLUSS semantic segmentation (regime boundaries)"
    )
    _add_series_arguments(segment)
    segment.add_argument(
        "--regimes", type=int, default=2, help="number of regimes to split into"
    )

    snippets = sub.add_parser(
        "snippets", help="representative subsequences summarizing the series"
    )
    _add_series_arguments(snippets)
    snippets.add_argument("--k", type=int, default=2, help="snippets to extract")

    stream = sub.add_parser(
        "stream",
        help="replay a series through the streaming engine, printing "
        "motif/discord change events",
    )
    _add_series_arguments(stream)
    _add_jobs_argument(stream)
    stream.add_argument(
        "--engine",
        default=DEFAULT_ENGINE,
        choices=list(engine_names()),
        help=f"matrix-profile engine (default {DEFAULT_ENGINE})",
    )
    stream.add_argument(
        "--init",
        type=int,
        default=0,
        help="points used to seed the engine before streaming "
        "(default: 4 * l_max)",
    )
    stream.add_argument(
        "--chunk", type=int, default=64, help="points fed per batch"
    )
    stream.add_argument(
        "--max-points",
        type=int,
        default=None,
        dest="max_points",
        help="sliding-window capacity (default: unbounded growth)",
    )
    stream.add_argument(
        "--k-discords", type=int, default=3, dest="k_discords"
    )
    stream.add_argument(
        "--snapshot-every",
        type=int,
        default=0,
        dest="snapshot_every",
        help="materialize exact motifs/discords every N streamed points "
        "(0 = only at the end)",
    )
    stream.add_argument("--top", type=int, default=5, help="motifs to print")

    sub.add_parser("datasets", help="list synthetic dataset families")

    bench = sub.add_parser("bench", help="run one scalability sweep")
    bench.add_argument(
        "figure",
        choices=["fig8", "fig12", "fig13"],
        help="which figure's sweep to run",
    )
    bench.add_argument(
        "--datasets",
        nargs="+",
        default=["ECG", "EMG"],
        choices=list(DATASET_NAMES),
    )
    bench.add_argument(
        "--algorithms",
        nargs="+",
        default=["VALMOD", "STOMP"],
        choices=["VALMOD", "STOMP", "MOEN", "QUICKMOTIF"],
    )
    _add_jobs_argument(bench)
    for sub_parser in set(sub.choices.values()):
        _add_trace_arguments(sub_parser)
    return parser


def _motif_table(pairs) -> str:
    rows = [
        (pair.length, pair.a, pair.b, f"{pair.distance:.4f}",
         f"{pair.normalized_distance:.4f}")
        for pair in pairs
    ]
    return format_table(["length", "a", "b", "distance", "normalized"], rows)


def _parse_include(values) -> tuple:
    # Accept both "--include motif_sets discords" and the comma form
    # "--include motif_sets,discords"; "none" means motifs only.  The
    # façade validates the names.
    names = [
        name
        for value in values
        for name in str(value).split(",")
        if name and name != "none"
    ]
    return tuple(names)


def _cmd_features(args: argparse.Namespace) -> int:
    series = _load_series(args)
    store = False if args.no_store else (args.store if args.store else None)
    result = extract_features(
        series,
        args.l_min,
        args.l_max,
        p=args.p,
        top_k=args.top,
        include=_parse_include(args.include),
        motif_set_k=args.set_k,
        radius_factor=args.radius_factor,
        k_discords=args.k_discords,
        discord_lengths=args.discord_lengths,
        n_regimes=args.regimes,
        engine=args.engine,
        n_jobs=args.n_jobs,
        store=store,
    )
    print(
        f"# features: {result.n_points} points, lengths "
        f"{result.l_min}..{result.l_max}, engine={result.engine}, "
        f"include={','.join(result.include) or '-'}"
    )
    print(_motif_table(result.top_motifs))
    if result.motif_sets:
        print(f"# {len(result.motif_sets)} motif sets")
        for motif_set in result.motif_sets:
            print(motif_set_summary(motif_set))
    for family in (result.discords, result.discords_variable):
        if family:
            rows = [
                (d.length, d.start, f"{d.distance:.4f}",
                 f"{d.normalized_distance:.4f}")
                for d in family
            ]
            print(
                format_table(["length", "start", "distance", "normalized"], rows)
            )
    if result.chain is not None:
        print(
            f"# chain: {len(result.chain)} members spanning "
            f"{result.chain.span} points"
        )
    if result.regime_boundaries is not None:
        print(
            "# regime boundaries: "
            + (
                ", ".join(str(b) for b in result.regime_boundaries)
                or "(none found)"
            )
        )
    if result.annotation is not None:
        print(
            f"# annotation: mean={result.annotation.mean:.4f} "
            f"flat={result.annotation.flat_fraction:.1%}"
        )
    if getattr(args, "export", None):
        save_features_json(args.export, result)
        print(f"# features written to {args.export}")
    return 0


def _cmd_motifs(args: argparse.Namespace) -> int:
    series = _load_series(args)
    result = extract_features(
        series, args.l_min, args.l_max, p=args.p, top_k=args.top,
        include=(), n_jobs=args.n_jobs,
        stats_cache=getattr(args, "stats_cache", True), store=False,
    )
    print(f"# processed {len(result.motif_pairs)} lengths")
    print(_motif_table(result.top_motifs))
    if getattr(args, "export", None):
        save_features_json(args.export, result)
        print(f"# full result written to {args.export}")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.kernels import SeriesContext

    series = _load_series(args)
    context = SeriesContext(series)
    mp = compute_with(
        args.engine, series, args.length, n_jobs=args.n_jobs, context=context
    )
    finite = np.isfinite(mp.profile)
    print(
        f"# engine={args.engine} length={args.length} "
        f"profiles={len(mp.profile)} finite={int(finite.sum())}"
    )
    order = np.argsort(mp.profile)[: max(args.top, 0)]
    rows = [
        (int(pos), int(mp.index[pos]), f"{mp.profile[pos]:.4f}")
        for pos in order
        if finite[pos]
    ]
    print(format_table(["position", "neighbor", "distance"], rows))
    return 0


def _cmd_discords(args: argparse.Namespace) -> int:
    series = _load_series(args)
    family = "discords_variable" if args.pruned else "discords"
    result = extract_features(
        series, args.l_min, args.l_max, include=(family,),
        k_discords=args.top, engine=args.engine, n_jobs=args.n_jobs,
        store=False,
    )
    found = result.discords_variable if args.pruned else result.discords
    rows = [
        (d.length, d.start, f"{d.distance:.4f}", f"{d.normalized_distance:.4f}")
        for d in found
    ]
    print(format_table(["length", "start", "distance", "normalized"], rows))
    return 0


def _cmd_sets(args: argparse.Namespace) -> int:
    series = _load_series(args)
    result = extract_features(
        series, args.l_min, args.l_max, p=args.p, include=("motif_sets",),
        motif_set_k=args.k, radius_factor=args.radius_factor,
        n_jobs=args.n_jobs, store=False,
    )
    print(f"# {len(result.motif_sets)} motif sets")
    for motif_set in result.motif_sets:
        print(motif_set_summary(motif_set))
    return 0


def _cmd_segment(args: argparse.Namespace) -> int:
    series = _load_series(args)
    # Segmentation works at a single window length (l_min); the trivial
    # l_min..l_min motif sweep rides along on the shared context.
    result = extract_features(
        series, args.l_min, args.l_min, include=("segmentation",),
        n_regimes=args.regimes, store=False,
    )
    print(f"# corrected arc curve minimum: {result.cac_min:.4f}")
    rows = [
        (i + 1, position, f"{value:.4f}")
        for i, (position, value) in enumerate(
            zip(result.regime_boundaries or (), result.regime_cac or ())
        )
    ]
    print(format_table(["boundary", "position", "CAC"], rows))
    return 0


def _cmd_snippets(args: argparse.Namespace) -> int:
    from repro.multiseries import find_snippets

    series = _load_series(args)
    snippets, _ = find_snippets(series, args.l_min, k=args.k)
    rows = [
        (i, s.start, s.length, f"{s.coverage_fraction:.1%}")
        for i, s in enumerate(snippets)
    ]
    print(format_table(["snippet", "start", "length", "coverage"], rows))
    return 0


def _discord_table(discords) -> str:
    rows = [
        (d.length, d.start, f"{d.distance:.4f}", f"{d.normalized_distance:.4f}")
        for d in discords
    ]
    return format_table(["length", "start", "distance", "normalized"], rows)


def _cmd_stream(args: argparse.Namespace) -> int:
    from repro.features import StreamingFeatures

    series = _load_series(args)
    init = args.init if args.init > 0 else 4 * args.l_max
    if series.size <= init:
        print(
            f"error: need more than {init} points to stream "
            f"(got {series.size}; lower --init)",
            file=sys.stderr,
        )
        return 2
    stream = StreamingFeatures(
        series[:init],
        args.l_min,
        args.l_max,
        p=args.p,
        top_k=args.top,
        k_discords=args.k_discords,
        engine=args.engine,
        n_jobs=args.n_jobs,
        max_points=args.max_points,
    )
    print(
        f"# streaming {series.size - init} points after a {init}-point seed, "
        f"lengths {args.l_min}..{args.l_max}, engine={args.engine}, "
        f"max_points={args.max_points or 'unbounded'}"
    )
    since_snapshot = 0
    for start in range(init, series.size, max(args.chunk, 1)):
        chunk = series[start : start + max(args.chunk, 1)]
        stream.extend(chunk)
        evicted = 0
        for event in stream.drain_events():
            # One eviction event fires per retired point once the window
            # is full; summarize them per chunk to keep the feed legible.
            if event.kind == "window-evicted":
                evicted += 1
                continue
            print(
                f"@ {event.at_point} {event.kind} length={event.length} "
                f"{event.detail}"
            )
        if evicted:
            print(
                f"@ {stream.total_points} window-evicted {evicted} points; "
                f"window now starts at {stream.window_start}"
            )
        since_snapshot += chunk.size
        if args.snapshot_every and since_snapshot >= args.snapshot_every:
            since_snapshot = 0
            pairs = sorted(
                stream.motif_pairs().values(),
                key=lambda pair: pair.normalized_distance,
            )[: args.top]
            best = pairs[0] if pairs else None
            print(
                f"# snapshot @ {stream.total_points}: window "
                f"[{stream.window_start}, {stream.total_points}), best motif "
                + (
                    f"l={best.length} ({best.a}, {best.b}) "
                    f"nd={best.normalized_distance:.4f}"
                    if best
                    else "(none)"
                )
            )
    print(f"# final window [{stream.window_start}, {stream.total_points})")
    pairs = sorted(
        stream.motif_pairs().values(),
        key=lambda pair: pair.normalized_distance,
    )[: args.top]
    print(_motif_table(pairs))
    print(_discord_table(stream.discords()))
    return 0


def _cmd_datasets(_: argparse.Namespace) -> int:
    rows = []
    for name in DATASET_NAMES:
        spec = dataset_spec(name)
        stats = dataset_statistics(load_dataset(name, 8000, seed=0))
        rows.append(
            (name, spec.description, f"{stats.mean:.4g}", f"{stats.std:.4g}")
        )
    print(format_table(["name", "structure", "mean", "std"], rows))
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    import dataclasses

    grid = default_grid()
    if args.n_jobs != grid.n_jobs:
        grid = dataclasses.replace(grid, n_jobs=args.n_jobs)
    sweeps = {
        "fig8": sweep_motif_length,
        "fig12": sweep_motif_range,
        "fig13": sweep_series_size,
    }
    result = sweeps[args.figure](
        datasets=args.datasets, algorithms=args.algorithms, grid=grid
    )
    print(format_table(result.headers(), result.table_rows()))
    return 0


def _emit_trace(args: argparse.Namespace) -> None:
    """Render the recorded trace as JSON or a pretty table."""
    from repro.obs import build_report, format_report, report_to_json

    report = build_report()
    text = (
        format_report(report)
        if args.trace_format == "pretty"
        else report_to_json(report)
    )
    if args.trace_out:
        with open(args.trace_out, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"# trace report written to {args.trace_out}")
    else:
        print(text)


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "features": _cmd_features,
        "motifs": _cmd_motifs,
        "profile": _cmd_profile,
        "discords": _cmd_discords,
        "sets": _cmd_sets,
        "segment": _cmd_segment,
        "snippets": _cmd_snippets,
        "stream": _cmd_stream,
        "datasets": _cmd_datasets,
        "bench": _cmd_bench,
    }

    def dispatch() -> int:
        try:
            return handlers[args.command](args)
        except ReproError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    if not getattr(args, "trace", False):
        return dispatch()
    with obs.tracing(True):
        obs.reset()
        code = dispatch()
        # Emit even on failure: a partial trace is still attributable.
        _emit_trace(args)
    return code


if __name__ == "__main__":
    sys.exit(main())
