"""Distance kernels: the substrate every motif-discovery engine builds on.

Contents
--------
:mod:`repro.distance.znorm`
    z-normalization and the exact (naive) z-normalized Euclidean distance.
:mod:`repro.distance.sliding`
    FFT sliding dot products and O(1) running window statistics.
:mod:`repro.distance.profile`
    vectorized distance-profile kernels implementing Eq. 3 of the paper.
:mod:`repro.distance.mass`
    MASS: Mueen's Algorithm for Similarity Search (one distance profile in
    O(n log n)).
"""

from repro.distance.znorm import (
    znormalize,
    znormalized_distance,
    pearson_to_distance,
    distance_to_pearson,
)
from repro.distance.sliding import (
    sliding_dot_product,
    moving_mean_std,
    prefix_sums,
    window_mean_std_at,
)
from repro.distance.profile import (
    distance_profile_from_qt,
    naive_distance_profile,
    apply_exclusion_zone,
)
from repro.distance.mass import mass
from repro.distance.missing import (
    admissible_distance,
    has_missing,
    missing_aware_profile,
)

__all__ = [
    "admissible_distance",
    "has_missing",
    "missing_aware_profile",
    "znormalize",
    "znormalized_distance",
    "pearson_to_distance",
    "distance_to_pearson",
    "sliding_dot_product",
    "moving_mean_std",
    "prefix_sums",
    "window_mean_std_at",
    "distance_profile_from_qt",
    "naive_distance_profile",
    "apply_exclusion_zone",
    "mass",
]
