"""MASS: Mueen's Algorithm for Similarity Search.

Computes one full distance profile in O(n log n): a single FFT sliding dot
product followed by the closed-form Eq. 3 kernel.  This is the inner loop
of STAMP and the recomputation primitive of VALMOD's Algorithm 4 (lines
30-33).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Tuple

import numpy as np

from repro import obs
from repro.types import FloatArray

from repro.distance.profile import distance_profile_from_qt
from repro.distance.sliding import moving_mean_std, sliding_dot_product
from repro.exceptions import InvalidParameterError
from repro.lint.contracts import int_at_least, positive_int, require, series_like

if TYPE_CHECKING:  # pragma: no cover - kernels sits above this layer
    from repro.kernels.context import SeriesContext

__all__ = ["mass", "mass_with_stats"]


@require(series=series_like(), start=int_at_least(0), length=positive_int())
def mass(
    series: FloatArray,
    start: int,
    length: int,
    context: Optional["SeriesContext"] = None,
) -> FloatArray:
    """Distance profile of ``series[start : start + length]`` vs all windows.

    Convenience wrapper that computes the window statistics internally
    (or pulls them from ``context`` when one for this series is passed);
    use :func:`mass_with_stats` inside loops that already have them.
    """
    t = np.asarray(series, dtype=np.float64)
    if context is not None and context.matches(t):
        mu, sigma = context.moving_mean_std(length)
    else:
        mu, sigma = moving_mean_std(t, length)
    return mass_with_stats(t, start, length, mu, sigma, context=context)


@require(start=int_at_least(0), length=positive_int())
def mass_with_stats(
    series: FloatArray,
    start: int,
    length: int,
    mu: FloatArray,
    sigma: FloatArray,
    qt: Optional[FloatArray] = None,
    context: Optional["SeriesContext"] = None,
) -> FloatArray:
    """MASS with precomputed per-window statistics (and optionally QT).

    ``mu`` / ``sigma`` must be the length-``length`` moving statistics of
    ``series``.  Passing ``qt`` skips the FFT (used by engines that
    maintain dot products incrementally); passing ``context`` reuses the
    cached series spectrum for the FFT (duck-typed so the distance layer
    never imports :mod:`repro.kernels` — any object with a matching
    ``matches``/``sliding_dot_product`` works).
    """
    t = np.asarray(series, dtype=np.float64)
    n_subs = t.size - length + 1
    if n_subs <= 0:
        raise InvalidParameterError(
            f"length {length} leaves no subsequences in series of {t.size} points"
        )
    if not 0 <= start < n_subs:
        raise InvalidParameterError(
            f"query start {start} out of range for {n_subs} subsequences"
        )
    obs.add("mass.profile_calls")
    if qt is None:
        query = t[start : start + length]
        if context is not None and context.matches(t):
            qt = context.sliding_dot_product(query)
        else:
            qt = sliding_dot_product(query, t)
    return distance_profile_from_qt(
        qt, length, float(mu[start]), float(sigma[start]), mu, sigma
    )


def mass_pair(series: FloatArray, length: int, i: int, j: int) -> Tuple[float, float]:
    """Distance and correlation between windows ``i`` and ``j`` (exact).

    Small helper used by engines that need a single pairwise value without
    materializing a profile.
    """
    t = np.asarray(series, dtype=np.float64)
    a = t[i : i + length]
    b = t[j : j + length]
    qt = float(np.dot(a, b))
    mu_a, sig_a = a.mean(), a.std()
    mu_b, sig_b = b.mean(), b.std()
    if sig_a <= 0.0 or sig_b <= 0.0:
        from repro.distance.znorm import znormalized_distance

        d = znormalized_distance(a, b)
        return d, 1.0 - d * d / (2.0 * length)
    corr = (qt - length * mu_a * mu_b) / (length * sig_a * sig_b)
    corr = min(1.0, max(-1.0, corr))
    return (2.0 * length * (1.0 - corr)) ** 0.5, corr
