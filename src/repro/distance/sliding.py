"""Sliding dot products and running window statistics.

Two primitives power every O(n^2) matrix-profile engine in this library:

* :func:`sliding_dot_product` — the dot product of one query against every
  window of the series, computed in the frequency domain in O(n log n)
  (Algorithm 3, line 5 of the paper).
* :func:`moving_mean_std` — mean and standard deviation of every window of
  one length, in O(n) via prefix sums (the running ``s`` / ``ss`` of
  Algorithm 3, lines 6 and 13-14).

:func:`prefix_sums` exposes the raw cumulative sums so that VALMOD can
obtain the statistics of *any* window of *any* length in O(1) while the
subsequence length grows (Algorithm 4 needs this).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro import obs
from repro.types import ComplexArray, FloatArray

from repro.exceptions import InvalidParameterError
from repro.distance.znorm import CONSTANT_EPS, as_series
from repro.lint.contracts import finite_array, int_at_least, positive_int, require

__all__ = [
    "DIRECT_DOT_MAX",
    "fft_plan_size",
    "sliding_dot_product",
    "moving_mean_std",
    "prefix_sums",
    "window_mean_std_at",
    "window_sums_at",
]

#: queries at or below this length use direct correlation instead of the
#: FFT path.  Exposed so :class:`repro.kernels.context.SeriesContext` can
#: predict which calls will consult its cached series spectrum.
DIRECT_DOT_MAX = 64


@require(n=positive_int(), m=positive_int())
def fft_plan_size(n: int, m: int) -> int:
    """Zero-padded FFT length used for an ``(n, m)`` sliding dot product.

    The next power of two at or above ``n + m``.  One source of truth for
    the plan size so a cached series spectrum (``SeriesContext``) is keyed
    exactly the way :func:`sliding_dot_product` would compute it.
    """
    return 1 << int(np.ceil(np.log2(n + m)))


@require(query=finite_array())
def sliding_dot_product(
    query: FloatArray,
    series: FloatArray,
    series_fft: Optional[ComplexArray] = None,
) -> FloatArray:
    """Dot product of ``query`` with every window of ``series``.

    Returns a vector ``QT`` of length ``n - m + 1`` with
    ``QT[j] = sum(query * series[j : j + m])``, computed by FFT
    convolution.  For short queries NumPy's direct correlate is faster and
    exact, so we pick per call.

    ``series_fft`` may carry a precomputed ``np.fft.rfft(series, size)``
    with ``size = fft_plan_size(n, m)`` — the series half of the
    convolution is then reused instead of recomputed, and the result is
    bitwise identical to the uncached path (the transform is deterministic
    in its inputs).  Ignored on the direct-correlation path.
    """
    q = np.asarray(query, dtype=np.float64)
    t = np.asarray(series, dtype=np.float64)
    m = q.size
    n = t.size
    if m == 0:
        raise InvalidParameterError("query must be non-empty")
    if m > n:
        raise InvalidParameterError(
            f"query (length {m}) longer than series (length {n})"
        )
    if m <= DIRECT_DOT_MAX:
        # Direct correlation: exact and fast for short queries.
        obs.add("mass.direct_dot_calls")
        return np.correlate(t, q, mode="valid")
    obs.add("mass.fft_calls")
    size = fft_plan_size(n, m)
    fq = np.fft.rfft(q[::-1], size)
    if series_fft is None:
        ft = np.fft.rfft(t, size)
    else:
        ft = series_fft
        if ft.size != size // 2 + 1:
            raise InvalidParameterError(
                f"series_fft has {ft.size} bins but plan size {size} "
                f"needs {size // 2 + 1}"
            )
    conv = np.fft.irfft(fq * ft, size)
    return conv[m - 1 : n]


@require(window=positive_int())
def moving_mean_std(series: FloatArray, window: int) -> Tuple[FloatArray, FloatArray]:
    """Mean and std of every length-``window`` subsequence, in O(n).

    Uses compensated prefix sums: the variance is computed as
    ``ss/l - mu^2`` clipped at zero, which matches the paper's running-sum
    formulation (Algorithm 3) and is accurate for the z-scored magnitudes
    used throughout.
    """
    t = np.asarray(series, dtype=np.float64)
    n = t.size
    if window <= 0:
        raise InvalidParameterError(f"window must be positive, got {window}")
    if window > n:
        raise InvalidParameterError(
            f"window {window} longer than series of length {n}"
        )
    cumsum, cumsum_sq = prefix_sums(t)
    sums = cumsum[window:] - cumsum[:-window]
    sq_sums = cumsum_sq[window:] - cumsum_sq[:-window]
    mu = sums / window
    variance = sq_sums / window - mu * mu
    np.maximum(variance, 0.0, out=variance)
    # Catastrophic cancellation makes the prefix differences carry the
    # absolute error of the running totals, so a window downstream of a
    # high-magnitude segment can report a variance that is pure noise —
    # tiny-positive for a constant window (which must be *exactly* zero
    # for the constant-window conventions to fire), or relatively wrong
    # for an ordinary window.  Recompute every window whose cancellation
    # noise floor is within 10 digits of its reported variance; for data
    # in a sane range the set is empty and the O(n) path is untouched.
    noise_floor = (
        64.0 * np.finfo(np.float64).eps * (cumsum_sq[window:] / window + mu * mu)
    )
    suspicious = np.where(variance <= 1e10 * noise_floor)[0]
    if suspicious.size:
        windows = np.lib.stride_tricks.sliding_window_view(t, window)[suspicious]
        mu[suspicious] = windows.mean(axis=1)
        variance[suspicious] = windows.var(axis=1)
    sigma = np.sqrt(variance)
    return mu, sigma


@require(series=finite_array())
def prefix_sums(series: FloatArray) -> Tuple[FloatArray, FloatArray]:
    """Cumulative sum and cumulative squared sum, each with a leading zero.

    With ``c, c2 = prefix_sums(T)`` the window ``T[i : i + l]`` has sum
    ``c[i + l] - c[i]`` and squared sum ``c2[i + l] - c2[i]``.
    """
    t = np.asarray(series, dtype=np.float64)
    cumsum = np.empty(t.size + 1, dtype=np.float64)
    cumsum[0] = 0.0
    np.cumsum(t, out=cumsum[1:])
    cumsum_sq = np.empty(t.size + 1, dtype=np.float64)
    cumsum_sq[0] = 0.0
    np.cumsum(t * t, out=cumsum_sq[1:])
    return cumsum, cumsum_sq


@require(start=int_at_least(0), length=positive_int())
def window_sums_at(
    cumsum: FloatArray, cumsum_sq: FloatArray, start: int, length: int
) -> Tuple[float, float]:
    """Sum and squared sum of the window at ``start`` of ``length`` in O(1)."""
    end = start + length
    return (
        float(cumsum[end] - cumsum[start]),
        float(cumsum_sq[end] - cumsum_sq[start]),
    )


@require(start=int_at_least(0), length=positive_int())
def window_mean_std_at(
    cumsum: FloatArray, cumsum_sq: FloatArray, start: int, length: int
) -> Tuple[float, float]:
    """Mean and std of the window at ``start`` of ``length`` in O(1)."""
    s, ss = window_sums_at(cumsum, cumsum_sq, start, length)
    mu = s / length
    variance = max(ss / length - mu * mu, 0.0)
    return mu, variance**0.5


def is_constant(sigma: float) -> bool:
    """True when a window standard deviation denotes a constant window."""
    return sigma < CONSTANT_EPS


def validate_subsequence_length(n: int, length: int) -> int:
    """Validate ``length`` against a series of ``n`` points.

    Returns the number of subsequences ``n - length + 1``.  Mirrors the
    checks done by :func:`repro.distance.znorm.as_series` for lengths.
    """
    if length < 2:
        raise InvalidParameterError(
            f"subsequence length must be at least 2, got {length}"
        )
    if length > n // 2:
        raise InvalidParameterError(
            f"subsequence length {length} must be at most half the series "
            f"length ({n} points) so a non-overlapping match can exist"
        )
    return n - length + 1


# Re-export for convenience in this module's callers.
_ = as_series
