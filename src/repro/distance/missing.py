"""z-normalized distance under missing data.

VALMOD's Eq. 2 is imported from Zhu, Mueen & Keogh, "Admissible Time
Series Motif Discovery with Missing Data" (ref. [55] of the paper): the
lower bound there answers "how close could these windows be, given that
some values are unknown?"  This module implements that setting directly,
which both grounds Eq. 2's provenance and makes the library usable on
real sensor data with gaps.

Semantics
---------
Missing values are NaN.  For two windows with missing entries, the
*admissible* distance is the minimum achievable z-normalized distance
over all imputations of the missing values — a lower bound on the true
(unobserved) distance.  We compute it the same way Eq. 1 is derived:
restrict to the co-observed positions and minimize over the affine
normalization of each side, which yields the correlation-based closed
form below.  Motif discovery that prunes with these bounds never
discards the true motif (the paper's admissibility argument).
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from repro.types import BoolArray, FloatArray

from repro.exceptions import InvalidParameterError, InvalidSeriesError
from repro.lint.contracts import int_at_least, positive_int, require

__all__ = [
    "admissible_distance",
    "missing_aware_profile",
    "has_missing",
]

_EPS = 1e-13


def has_missing(series: FloatArray) -> bool:  # repro-lint: ignore[R013] - NaN-bearing input is the domain
    """True when the series contains NaN gaps."""
    return bool(np.isnan(np.asarray(series, dtype=np.float64)).any())


def admissible_distance(a: FloatArray, b: FloatArray) -> float:  # repro-lint: ignore[R013] - NaN-bearing input is the domain
    """Minimum achievable z-normalized distance given the NaN gaps.

    With no gaps this equals the exact z-normalized distance.  With
    gaps, it is the tight lower bound over imputations: only the
    co-observed positions constrain the distance, and each side's
    normalization over its missing part is free (Eq. 1's minimization).

    Fully-disjoint observations (no co-observed positions) yield 0 —
    the vacuous bound.
    """
    x = np.asarray(a, dtype=np.float64)
    y = np.asarray(b, dtype=np.float64)
    if x.shape != y.shape:
        raise InvalidParameterError(
            f"windows must have equal length, got {x.size} and {y.size}"
        )
    if x.size < 2:
        raise InvalidSeriesError("windows must have at least 2 points")
    x_gappy = bool(np.isnan(x).any())
    y_gappy = bool(np.isnan(y).any())
    if x_gappy and y_gappy:
        # Both normalizations are free: scaling both fragments toward
        # zero drives the distance to zero, so only the vacuous bound is
        # admissible (matching the published treatment of double gaps).
        return 0.0
    if x_gappy:
        x, y = y, x  # make x the complete side
        y_gappy = True
    observed = ~np.isnan(y)
    m = int(observed.sum())
    if m < 2:
        return 0.0
    xo = x[observed]
    yo = y[observed]
    sig_xo = float(xo.std())
    sig_yo = float(yo.std())
    if sig_xo < _EPS or sig_yo < _EPS:
        return 0.0  # a constant observed part constrains nothing
    q = float(np.dot(xo - xo.mean(), yo - yo.mean()) / (m * sig_xo * sig_yo))
    q = min(1.0, max(-1.0, q))
    if not y_gappy:
        return math.sqrt(2.0 * m * (1.0 - q))  # both complete: exact
    # One side gappy: Eq. 2's one-anchored minimization over the gappy
    # side's normalization, scaled by the complete side's restriction.
    sig_x_full = float(x.std())
    if sig_x_full < _EPS:
        return 0.0
    factor = 1.0 if q <= 0.0 else math.sqrt(max(0.0, 1.0 - q * q))
    return factor * math.sqrt(m) * sig_xo / sig_x_full


@require(start=int_at_least(0), length=positive_int())
def missing_aware_profile(
    series: FloatArray, start: int, length: int
) -> Tuple[FloatArray, BoolArray]:
    """Admissible distance profile of one query over a gappy series.

    Returns ``(bounds, exact_mask)``: ``bounds[j]`` is the admissible
    distance between windows ``start`` and ``j``; ``exact_mask[j]`` is
    True where neither window has gaps, i.e. the bound is the exact
    distance.  O(n l) — the gappy setting defeats the FFT tricks, which
    is the published algorithm's behaviour too.
    """
    t = np.asarray(series, dtype=np.float64)
    n_subs = t.size - length + 1
    if n_subs <= 0:
        raise InvalidParameterError(
            f"length {length} leaves no subsequences in {t.size} points"
        )
    if not 0 <= start < n_subs:
        raise InvalidParameterError(f"query start {start} out of range")
    query = t[start : start + length]
    query_gappy = bool(np.isnan(query).any())
    bounds = np.empty(n_subs, dtype=np.float64)
    exact = np.empty(n_subs, dtype=bool)
    for j in range(n_subs):
        window = t[j : j + length]
        bounds[j] = admissible_distance(query, window)
        exact[j] = not (query_gappy or np.isnan(window).any())
    return bounds, exact
