"""Distance-profile kernels: Eq. 3 of the paper, vectorized.

A distance profile (Definition 2.4) holds the z-normalized Euclidean
distance between one query subsequence and every other subsequence of the
series.  Given the sliding dot products ``QT`` and the per-window
statistics, Eq. 3 turns each entry into::

    dist(T[i], T[j]) = sqrt(2 l (1 - (QT[i,j] - l mu_i mu_j) / (l sigma_i sigma_j)))

Constant windows are handled with the conventions documented in
:mod:`repro.distance.znorm`.
"""

from __future__ import annotations

import numpy as np

from repro.types import FloatArray

from repro.distance.znorm import CONSTANT_EPS, znormalized_distance
from repro.exceptions import InvalidParameterError
from repro.lint.contracts import int_at_least, positive_int, require, series_like

__all__ = [
    "correlation_from_qt",
    "distance_profile_from_qt",
    "naive_distance_profile",
    "apply_exclusion_zone",
]


@require(length=positive_int())
def correlation_from_qt(
    qt: FloatArray,
    length: int,
    mu_q: float,
    sigma_q: float,
    mu: FloatArray,
    sigma: FloatArray,
) -> FloatArray:
    """Pearson correlation between the query and every window, from QT.

    ``qt`` is the sliding dot product of the query against the series,
    ``mu_q`` / ``sigma_q`` the query statistics, ``mu`` / ``sigma`` the
    per-window statistics.  Windows where either side is constant get
    correlation 0 here; the distance kernel overrides them explicitly.
    """
    denom = length * sigma_q * sigma[: qt.size]
    with np.errstate(divide="ignore", invalid="ignore"):
        corr = (qt - length * mu_q * mu[: qt.size]) / denom
    corr[~np.isfinite(corr)] = 0.0
    np.clip(corr, -1.0, 1.0, out=corr)
    return corr


@require(length=positive_int())
def distance_profile_from_qt(
    qt: FloatArray,
    length: int,
    mu_q: float,
    sigma_q: float,
    mu: FloatArray,
    sigma: FloatArray,
) -> FloatArray:
    """Vectorized Eq. 3: distance profile from dot products and statistics.

    Applies the constant-window conventions: distance 0 when both the
    query and the window are constant, ``sqrt(l)`` when exactly one is.
    """
    if length <= 0:
        raise InvalidParameterError(f"length must be positive, got {length}")
    sig = sigma[: qt.size]
    query_const = sigma_q < CONSTANT_EPS
    window_const = sig < CONSTANT_EPS
    corr = correlation_from_qt(qt, length, mu_q, max(sigma_q, CONSTANT_EPS), mu, sigma)
    dist_sq = 2.0 * length * (1.0 - corr)
    np.maximum(dist_sq, 0.0, out=dist_sq)
    profile = np.sqrt(dist_sq)
    if query_const:
        profile = np.where(window_const, 0.0, np.sqrt(length))
        return np.asarray(profile, dtype=np.float64)
    profile[window_const] = np.sqrt(length)
    return profile


@require(series=series_like(), start=int_at_least(0), length=positive_int())
def naive_distance_profile(series: FloatArray, start: int, length: int) -> FloatArray:
    """Reference distance profile by explicit re-normalization (O(n l)).

    Slow but obviously correct; used as ground truth in tests and by the
    brute-force engines.  No exclusion zone is applied.
    """
    t = np.asarray(series, dtype=np.float64)
    n_subs = t.size - length + 1
    if not 0 <= start < n_subs:
        raise InvalidParameterError(
            f"query start {start} out of range for {n_subs} subsequences"
        )
    query = t[start : start + length]
    profile = np.empty(n_subs, dtype=np.float64)
    for j in range(n_subs):
        profile[j] = znormalized_distance(query, t[j : j + length])
    return profile


@require(center=int_at_least(0), exclusion=int_at_least(0))
def apply_exclusion_zone(
    profile: FloatArray, center: int, exclusion: int, value: float = np.inf
) -> FloatArray:
    """Mask the trivial-match region around ``center`` in place.

    The paper's exclusion zone covers positions within ``l/2`` of the
    query (Section 2); ``exclusion`` is that half-width.  Returns the
    profile for chaining.
    """
    lo = max(0, center - exclusion + 1)
    hi = min(profile.size, center + exclusion)
    profile[lo:hi] = value
    return profile


def exclusion_half_width(length: int) -> int:
    """Deprecated alias for the central exclusion-zone helper.

    Kept for backward compatibility; the one source of truth for the
    half-width rule is :mod:`repro.matrixprofile.exclusion` (R004).
    """
    from repro.matrixprofile.exclusion import exclusion_zone_half_width

    return exclusion_zone_half_width(length)
