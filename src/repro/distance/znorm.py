"""z-normalization and the exact z-normalized Euclidean distance.

This module is the reference ("naive") implementation of the distance used
throughout the paper.  Every fast kernel in the library (Eq. 3, MASS,
STOMP, the lower bound of Eq. 2) is tested against these functions.

Degenerate (constant) subsequences have undefined z-normalization; we
adopt the standard matrix-profile convention:

* both subsequences constant        -> distance 0
* exactly one subsequence constant  -> distance ``sqrt(l)``

which is the limit behaviour used by the reference C implementations and
keeps all downstream pruning admissible.
"""

from __future__ import annotations

import math
from typing import Union

import numpy as np

from repro.types import FloatArray

from repro.exceptions import InvalidParameterError, InvalidSeriesError
from repro.lint.contracts import positive_int, require, series_like

__all__ = [
    "as_series",
    "znormalize",
    "znormalized_distance",
    "pearson_to_distance",
    "distance_to_pearson",
    "CONSTANT_EPS",
]

#: standard deviations below this threshold are treated as zero (constant
#: subsequence).  Relative to z-normalized data this is conservatively tiny.
CONSTANT_EPS = 1e-13

ArrayLike = Union[FloatArray, list, tuple]


@require(min_length=positive_int())
def as_series(data: ArrayLike, min_length: int = 2) -> FloatArray:
    """Validate and convert input to a 1-D float64 array.

    Raises :class:`InvalidSeriesError` for non-1-D input, series shorter
    than ``min_length``, or non-finite values.
    """
    series = np.asarray(data, dtype=np.float64)
    if series.ndim != 1:
        raise InvalidSeriesError(f"expected a 1-D series, got ndim={series.ndim}")
    if series.size < min_length:
        raise InvalidSeriesError(
            f"series too short: {series.size} points, need at least {min_length}"
        )
    if not np.isfinite(series).all():
        raise InvalidSeriesError("series contains NaN or infinite values")
    return series


@require(subsequence=series_like(min_length=1))
def znormalize(subsequence: ArrayLike) -> FloatArray:
    """Return the z-normalized copy ``(x - mean) / std`` of a subsequence.

    A constant subsequence (std below :data:`CONSTANT_EPS`) normalizes to
    the all-zeros vector, consistent with the distance conventions above.
    """
    x = np.asarray(subsequence, dtype=np.float64)
    if x.ndim != 1 or x.size == 0:
        raise InvalidSeriesError("znormalize expects a non-empty 1-D array")
    mu = x.mean()
    sigma = x.std()
    if sigma < CONSTANT_EPS:
        return np.zeros_like(x)
    return (x - mu) / sigma


@require(a=series_like(min_length=1), b=series_like(min_length=1))
def znormalized_distance(a: ArrayLike, b: ArrayLike) -> float:
    """Exact z-normalized Euclidean distance between two subsequences.

    This is the ``dist`` function of Definition 2.3, computed the slow,
    obviously-correct way: z-normalize both inputs, then take the plain
    Euclidean distance.
    """
    x = np.asarray(a, dtype=np.float64)
    y = np.asarray(b, dtype=np.float64)
    if x.shape != y.shape:
        raise InvalidParameterError(
            f"subsequences must have equal length, got {x.size} and {y.size}"
        )
    x_const = x.std() < CONSTANT_EPS
    y_const = y.std() < CONSTANT_EPS
    if x_const and y_const:
        return 0.0
    if x_const or y_const:
        return math.sqrt(x.size)
    return float(np.linalg.norm(znormalize(x) - znormalize(y)))


@require(length=positive_int())
def pearson_to_distance(correlation: float, length: int) -> float:
    """Convert Pearson correlation to z-normalized Euclidean distance.

    Implements ``dist = sqrt(2 * l * (1 - q))`` — the identity underlying
    Eq. 3 of the paper.  The correlation is clipped to [-1, 1] to absorb
    floating-point drift from the incremental dot-product updates.
    """
    if length <= 0:
        raise InvalidParameterError(f"length must be positive, got {length}")
    q = min(1.0, max(-1.0, correlation))
    return math.sqrt(2.0 * length * (1.0 - q))


@require(length=positive_int())
def distance_to_pearson(distance: float, length: int) -> float:
    """Inverse of :func:`pearson_to_distance`: ``q = 1 - dist^2 / (2l)``."""
    if length <= 0:
        raise InvalidParameterError(f"length must be positive, got {length}")
    return 1.0 - (distance * distance) / (2.0 * length)
