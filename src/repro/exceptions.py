"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single base class.  Input-validation problems raise
:class:`InvalidSeriesError` or :class:`InvalidParameterError`, which also
derive from :class:`ValueError` so that code written against plain NumPy
conventions keeps working.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class InvalidSeriesError(ReproError, ValueError):
    """The input data series is unusable (too short, non-finite, wrong ndim)."""


class InvalidParameterError(ReproError, ValueError):
    """A parameter (subsequence length, range, p, K, D, ...) is out of domain."""


class NotComputedError(ReproError, RuntimeError):
    """A result was requested before the producing computation ran."""


class BudgetExceededError(ReproError, RuntimeError):
    """A deadline-bounded run (benchmark harness) ran out of time.

    The paper reports baselines that "fail to terminate within a
    reasonable amount of time"; the harness reproduces those DNF entries
    by passing a deadline to the baselines and catching this error.
    """

