"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single base class.  Input-validation problems raise
:class:`InvalidSeriesError` or :class:`InvalidParameterError`, which also
derive from :class:`ValueError` so that code written against plain NumPy
conventions keeps working.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "InvalidSeriesError",
    "InvalidParameterError",
    "NotComputedError",
    "WindowTooSmallError",
    "BudgetExceededError",
    "ContractViolationError",
    "SeriesContractViolationError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class InvalidSeriesError(ReproError, ValueError):
    """The input data series is unusable (too short, non-finite, wrong ndim)."""


class InvalidParameterError(ReproError, ValueError):
    """A parameter (subsequence length, range, p, K, D, ...) is out of domain."""


class NotComputedError(ReproError, RuntimeError):
    """A result was requested before the producing computation ran."""


class WindowTooSmallError(InvalidParameterError):
    """A sliding window cannot hold the configured subsequence lengths.

    Raised by the streaming engines when ``max_points`` (or an eviction
    that would shrink the retained window) leaves fewer than two
    non-overlapping subsequences of the largest configured length —
    the point where batch recomputation on the window becomes
    ill-defined and results would silently drift instead of failing.
    """


class BudgetExceededError(ReproError, RuntimeError):
    """A deadline-bounded run (benchmark harness) ran out of time.

    The paper reports baselines that "fail to terminate within a
    reasonable amount of time"; the harness reproduces those DNF entries
    by passing a deadline to the baselines and catching this error.
    """


class ContractViolationError(InvalidParameterError, TypeError):
    """A runtime contract (:mod:`repro.lint.contracts`) was violated.

    Raised only when contracts are enabled via ``REPRO_CONTRACTS=1``.
    Derives from :class:`InvalidParameterError` (and hence
    :class:`ValueError`) because a contract catches the same misuse the
    in-function validation would — code testing for either type must
    behave identically in both modes — and from :class:`TypeError` for
    callers treating API misuse as a typing problem.
    """


class SeriesContractViolationError(ContractViolationError, InvalidSeriesError):
    """A contract on a series-shaped parameter was violated.

    The series predicates (``series_like``, ``float64_array``,
    ``finite_array``) police the same domain in-function validation
    reports as :class:`InvalidSeriesError`, so their violations derive
    from it too — an ``except InvalidSeriesError`` written against the
    ordinary validation keeps working when contracts are enabled.
    """
