"""Streaming variable-length VALMOD — online motif/discord maintenance.

:class:`StreamingValmod` generalizes the fixed-length STAMPI appends of
:class:`~repro.matrixprofile.streaming.StreamingMatrixProfile` to the
paper's whole length range ``[l_min, l_max]``, with optional sliding-
window eviction (``max_points=``).  It is built as two layers:

**Eager layer (per append, O(L·n) vector work).**  One trailing QT row
is maintained at ``l_min`` by the STAMPI recurrence (re-anchored exactly
on a drift schedule) and advanced across lengths by the VALMOD shift-add
``QT_{l+1}[j] = QT_l[j+1] + t[j]·t[n-l-1]``.  From each per-length
distance row of the *newest* subsequence the layer maintains:

* best-so-far VALMP entries (normalized distance / length / neighbor
  per position) merged exactly as Algorithm 2 does;
* per-length *discord upper bounds* ``U_l`` — the MAD machinery of
  :mod:`repro.core.discords_variable` flipped online: each position's
  nearest-neighbor distance only shrinks under appends, so the running
  ``max`` of observed row minima stays an admissible bound on the
  profile maximum.  Each bound remembers its earliest supporting
  neighbor; eviction past a support invalidates the bound (set to
  ``+inf``) instead of silently drifting;
* motif-improvement events (best-known pair per length).

**Materialization layer (on demand, version-cached).**  Exactness —
the *streaming-vs-batch differential wall* — is anchored here:

* :meth:`motifs` runs the real batch :class:`~repro.core.valmod.Valmod`
  driver on the current window, so the result is bitwise identical to
  ``valmod(window, ...)`` by construction.  (Engine profile values are
  *not* append-invariant — the FFT ``qt_first`` anchors and the
  re-anchor schedule depend on the series size — so any eagerly merged
  cell values would differ at the last bit from a fresh batch run;
  materializing through the batch code path is what makes the wall
  hold bitwise.)
* :meth:`discords` runs a warm-start pruned sweep: lengths whose
  maintained bound (inflated by :data:`STREAMING_UB_SLACK`) falls
  strictly below the running k-th threshold are skipped; every other
  length is recomputed on the current window with the same registered
  engine the batch driver uses.  By the certification argument of
  ``docs/DISCORDS.md`` the selection is bitwise identical to
  :func:`~repro.core.discords_variable.find_discords_pruned` — pruning
  with valid bounds affects cost, never output.  Cold starts seed the
  bounds from the same listDP store the batch driver builds.

Coordinates: positions in materialized results are window-relative
(identical to a batch run on :meth:`series`); :attr:`window_start`
maps them to absolute stream offsets.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.core.compute_mp import compute_matrix_profile
from repro.core.discords import (  # repro-lint: ignore[R009] - streaming engine composes motif+discord maintenance by design; the façade wraps it
    Discord,
    per_length_candidates,
    select_top_k,
)
from repro.core.discords_variable import length_upper_bound  # repro-lint: ignore[R009] - shares the MAD bound machinery with the batch driver
from repro.core.valmod import DEFAULT_P, Valmod, ValmodResult
from repro.distance.profile import distance_profile_from_qt
from repro.distance.znorm import as_series
from repro.exceptions import (
    InvalidParameterError,
    WindowTooSmallError,
)
from repro.kernels.context import SeriesContext
from repro.kernels.streaming_stats import StreamingSeriesStats
from repro.lint.contracts import (
    int_at_least,
    optional,
    positive_int,
    require,
    series_like,
)
from repro.matrixprofile.exclusion import exclusion_zone_half_width
from repro.matrixprofile.registry import DEFAULT_ENGINE, compute_with
from repro.types import FloatArray, IntArray

__all__ = ["StreamingValmod", "StreamEvent", "STREAMING_UB_SLACK"]

#: relative slack applied to the maintained discord bounds before the
#: strict pruning comparison.  Larger than the batch driver's
#: ``UB_RELATIVE_SLACK`` (1e-9) because the eagerly maintained bounds
#: ride a rolling QT recurrence between exact re-anchors and streaming
#: window statistics, both of which carry more float noise than the
#: batch listDP dot products.  Inflating only ever converts a prune
#: into a recompute — exactness never depends on this value.
STREAMING_UB_SLACK = 1e-6

#: recompute the trailing QT row exactly every this many appends.
_ANCHOR_EVERY = 64

#: a single appended value this many times larger than anything seen in
#: the window forces an immediate exact re-anchor (the recurrence's
#: cancellation error scales with the squared magnitude).
_MAGNITUDE_ANCHOR_FACTOR = 1e3

#: retained change events; the oldest are dropped (and counted) beyond.
_EVENT_QUEUE_MAX = 4096


@dataclass(frozen=True)
class StreamEvent:
    """One change event emitted by the streaming engine.

    ``kind`` is one of ``"motif-improved"`` (eager layer: the best-known
    pair at ``length`` got closer), ``"motifs-changed"`` /
    ``"discords-changed"`` (a materialization produced a different
    top result than the previous one), or ``"window-evicted"``.
    ``at_point`` is the absolute number of points ingested when the
    event fired.
    """

    kind: str
    at_point: int
    length: int
    detail: str


class StreamingValmod:
    """Online variable-length motif and discord maintenance.

    Usage::

        sv = StreamingValmod(seed_series, l_min=32, l_max=64,
                             max_points=4096)
        for value in feed:
            sv.append(value)
        motifs = sv.motifs()       # == valmod(sv.series(), ...) bitwise
        discords = sv.discords()   # == find_discords_pruned(...) bitwise

    ``append``/``extend`` are cheap (eager bound/event maintenance);
    :meth:`motifs` / :meth:`discords` materialize exact batch-identical
    results for the current window and are cached until the window
    changes.
    """

    @require(
        series=series_like(min_length=8),
        l_min=positive_int(),
        l_max=positive_int(),
        p=positive_int(),
        k_discords=positive_int(),
        track_top_k=int_at_least(0),
        max_points=optional(positive_int()),
    )
    def __init__(
        self,
        series: FloatArray,
        l_min: int,
        l_max: int,
        *,
        p: int = DEFAULT_P,
        k_discords: int = 3,
        engine: str = DEFAULT_ENGINE,
        n_jobs: Optional[int] = 1,
        track_top_k: int = 0,
        max_points: Optional[int] = None,
    ) -> None:
        t = as_series(series, min_length=8)
        if l_min < 2 or l_min > l_max:
            raise InvalidParameterError(
                f"need 2 <= l_min <= l_max, got l_min={l_min} l_max={l_max}"
            )
        if l_max > t.size // 2:
            raise InvalidParameterError(
                f"l_max {l_max} invalid for an initial series of {t.size} points"
            )
        if p <= 0:
            raise InvalidParameterError(f"p must be positive, got {p}")
        if k_discords <= 0:
            raise InvalidParameterError(
                f"k_discords must be positive, got {k_discords}"
            )
        self.l_min = int(l_min)
        self.l_max = int(l_max)
        self.p = int(p)
        self.k_discords = int(k_discords)
        self.track_top_k = int(track_top_k)
        self._engine = str(engine)
        self._n_jobs = n_jobs
        self._max_points = self._validated_max_points(max_points)

        self._stats = StreamingSeriesStats(t, self.l_min, self.l_max)
        self._start = 0
        self._total = t.size
        self._version = 0
        lengths = range(self.l_min, self.l_max + 1)
        self._zones: Dict[int, int] = {
            length: exclusion_zone_half_width(length) for length in lengths
        }
        self._sqrt: Dict[int, float] = {
            length: math.sqrt(length) for length in lengths
        }

        # trailing QT row at l_min (dots of the newest subsequence
        # against every window), extended by the STAMPI recurrence.
        self._last_qt = np.correlate(
            t, t[t.size - self.l_min :], mode="valid"
        ).astype(np.float64)
        self._since_anchor = 0
        self._scale = max(1.0, float(np.abs(t).max()))

        # per-length eager state (+inf == unknown / not prunable)
        self._discord_ub: Dict[int, float] = {length: math.inf for length in lengths}
        self._ub_support: Dict[int, int] = {length: -1 for length in lengths}
        self._motif_best: Dict[int, float] = {length: math.inf for length in lengths}
        self._motif_members: Dict[int, Optional[Tuple[int, int]]] = {
            length: None for length in lengths
        }

        # eager VALMP arrays (window-relative positions, absolute neighbors)
        count = t.size - self.l_min + 1
        self._vl_cap = 1
        while self._vl_cap < 2 * count:
            self._vl_cap *= 2
        self._vl_norm = np.full(self._vl_cap, np.inf, dtype=np.float64)
        self._vl_raw = np.full(self._vl_cap, np.inf, dtype=np.float64)
        self._vl_len = np.zeros(self._vl_cap, dtype=np.int64)
        self._vl_nbr = np.full(self._vl_cap, -1, dtype=np.int64)

        self._events: List[StreamEvent] = []
        self._motif_cache: Optional[Tuple[int, ValmodResult]] = None
        self._discord_cache: Optional[Tuple[int, List[Discord]]] = None
        self._window_cache: Optional[Tuple[int, FloatArray, SeriesContext]] = None
        self._last_motif_sig: Optional[Tuple] = None
        self._last_discord_sig: Optional[Tuple] = None
        self._warm_lengths: List[int] = []

        if self._max_points is not None and self._stats.n_points > self._max_points:
            self._evict(self._stats.n_points - self._max_points)
            self._version += 1

    # ------------------------------------------------------------------
    # window geometry

    def _validated_max_points(self, max_points: Optional[int]) -> Optional[int]:
        if max_points is None:
            return None
        max_points = int(max_points)
        if max_points < 2 * self.l_max:
            raise WindowTooSmallError(
                f"max_points={max_points} cannot hold two non-overlapping "
                f"subsequences of l_max={self.l_max} (need >= {2 * self.l_max})"
            )
        return max_points

    @property
    def max_points(self) -> Optional[int]:
        """Sliding-window capacity (None = unbounded)."""
        return self._max_points

    @property
    def window_start(self) -> int:
        """Absolute stream offset of the first retained point."""
        return self._start

    @property
    def total_points(self) -> int:
        """Points ingested over the stream's lifetime."""
        return self._total

    def __len__(self) -> int:
        return self._stats.n_points

    def series(self) -> FloatArray:
        """A copy of the current window."""
        return np.array(self._stats.series(), dtype=np.float64)

    def resize(self, max_points: Optional[int]) -> None:
        """Change the sliding-window capacity, evicting immediately.

        Raises :class:`~repro.exceptions.WindowTooSmallError` when the
        new capacity cannot hold two non-overlapping ``l_max`` windows.
        """
        self._max_points = self._validated_max_points(max_points)
        if self._max_points is not None and self._stats.n_points > self._max_points:
            self._evict(self._stats.n_points - self._max_points)
            self._version += 1

    # ------------------------------------------------------------------
    # ingestion

    def append(self, value: float) -> None:
        """Ingest one point: O(L·n) eager update, caches invalidated."""
        v = float(value)
        if not np.isfinite(v):
            raise InvalidParameterError(f"appended value must be finite, got {value}")
        with obs.span("streaming.append"):
            obs.add("streaming.appends")
            self._ingest(v)
            if (
                self._max_points is not None
                and self._stats.n_points > self._max_points
            ):
                self._evict(self._stats.n_points - self._max_points)
        self._version += 1

    def extend(self, values: Sequence[float]) -> None:
        """Append many points; ``extend([])`` is a strict no-op."""
        for value in values:
            self.append(value)

    def _ingest(self, value: float) -> None:
        force_anchor = abs(value) > _MAGNITUDE_ANCHOR_FACTOR * self._scale
        self._scale = max(self._scale, abs(value))
        self._stats.append(value)
        self._total += 1
        t = self._stats.series()
        n = t.size
        l_min = self.l_min
        n_subs = n - l_min + 1

        self._since_anchor += 1
        if force_anchor or self._since_anchor >= _ANCHOR_EVERY:
            qt = np.correlate(t, t[n - l_min :], mode="valid").astype(np.float64)
            obs.add("streaming.qt.reanchors")
            self._since_anchor = 0
        else:
            prev = self._last_qt
            new = n_subs - 1
            qt = np.empty(n_subs, dtype=np.float64)
            qt[1:] = (
                prev
                - t[: n_subs - 1] * t[new - 1]
                + t[l_min : l_min + n_subs - 1] * t[n - 1]
            )
            qt[0] = float(np.dot(t[:l_min], t[new:]))
        self._last_qt = qt

        self._grow_valmp(n_subs)
        # the new l_min position starts unknown
        self._vl_norm[n_subs - 1] = np.inf
        self._vl_raw[n_subs - 1] = np.inf
        self._vl_len[n_subs - 1] = 0
        self._vl_nbr[n_subs - 1] = -1

        qt_l = qt
        updated = 0
        for length in range(l_min, self.l_max + 1):
            if length > l_min:
                qt_l = qt_l[1:] + t[: n - length + 1] * t[n - length]
            owner = n - length  # newest subsequence of this length
            mu, sigma = self._stats.mean_std(length)
            row = distance_profile_from_qt(
                qt_l, length, float(mu[owner]), float(sigma[owner]), mu, sigma
            )
            lo = max(0, owner - self._zones[length] + 1)
            row[lo:] = np.inf
            updated += 1
            j = int(np.argmin(row))
            d = float(row[j])
            if not math.isfinite(d):
                # the new position has no non-trivial candidate: nothing
                # bounds it, so the whole length becomes non-prunable.
                self._discord_ub[length] = math.inf
                self._ub_support[length] = -1
                continue
            norm_d = d / self._sqrt[length]
            if math.isfinite(self._discord_ub[length]):
                if norm_d > self._discord_ub[length]:
                    self._discord_ub[length] = norm_d
                self._ub_support[length] = min(
                    self._ub_support[length], self._start + j
                )
            if d < self._motif_best[length]:
                had_baseline = math.isfinite(self._motif_best[length])
                self._motif_best[length] = d
                self._motif_members[length] = (
                    self._start + j,
                    self._start + owner,
                )
                if had_baseline:
                    self._emit(
                        "motif-improved",
                        length,
                        f"pair ({self._start + j}, {self._start + owner}) "
                        f"at normalized distance {norm_d:.6f}",
                    )
            # Algorithm 2 merge of this row into the eager VALMP
            norm_row = row * math.sqrt(1.0 / length)
            prefix = row.size
            improved = norm_row < self._vl_norm[:prefix]
            if improved.any():
                self._vl_norm[:prefix][improved] = norm_row[improved]
                self._vl_raw[:prefix][improved] = row[improved]
                self._vl_len[:prefix][improved] = length
                self._vl_nbr[:prefix][improved] = self._start + owner
            if norm_d < self._vl_norm[owner]:
                self._vl_norm[owner] = norm_d
                self._vl_raw[owner] = d
                self._vl_len[owner] = length
                self._vl_nbr[owner] = self._start + j
        obs.add("streaming.lengths.updated", updated)

    def _grow_valmp(self, count: int) -> None:
        if count <= self._vl_cap:
            return
        obs.add("streaming.buffer.regrows")
        new_cap = self._vl_cap
        while new_cap < count:
            new_cap *= 2
        for name in ("_vl_norm", "_vl_raw", "_vl_len", "_vl_nbr"):
            old = getattr(self, name)
            new = np.empty(new_cap, dtype=old.dtype)
            new[: self._vl_cap] = old
            setattr(self, name, new)
        self._vl_cap = new_cap

    def _evict(self, count: int) -> None:
        remaining = self._stats.n_points - count
        if remaining < 2 * self.l_max:
            raise WindowTooSmallError(
                f"evicting {count} points would leave {remaining} < "
                f"{2 * self.l_max} needed for l_max={self.l_max}"
            )
        obs.add("streaming.entries.evicted", count)
        self._stats.evict(count)
        self._start += count
        self._last_qt = self._last_qt[count:]
        vl_count = self._stats.n_points - self.l_min + 1
        for arr in (self._vl_norm, self._vl_raw, self._vl_len, self._vl_nbr):
            arr[:vl_count] = arr[count : count + vl_count]
        stale = self._vl_nbr[:vl_count] < self._start
        if stale.any():
            self._vl_norm[:vl_count][stale] = np.inf
            self._vl_raw[:vl_count][stale] = np.inf
            self._vl_len[:vl_count][stale] = 0
            self._vl_nbr[:vl_count][stale] = -1
        for length in range(self.l_min, self.l_max + 1):
            support = self._ub_support[length]
            if support >= 0 and support < self._start:
                self._discord_ub[length] = math.inf
                self._ub_support[length] = -1
            members = self._motif_members[length]
            if members is not None and min(members) < self._start:
                self._motif_best[length] = math.inf
                self._motif_members[length] = None
        self._scale = max(1.0, float(np.abs(self._stats.series()).max()))
        self._emit(
            "window-evicted",
            0,
            f"{count} points retired; window now starts at {self._start}",
        )

    # ------------------------------------------------------------------
    # events

    def _emit(self, kind: str, length: int, detail: str) -> None:
        if len(self._events) >= _EVENT_QUEUE_MAX:
            del self._events[0]
            obs.add("streaming.events.dropped")
        self._events.append(
            StreamEvent(kind=kind, at_point=self._total, length=length,
                        detail=detail)
        )

    def drain_events(self) -> List[StreamEvent]:
        """Return and clear the accumulated change events."""
        events = self._events
        self._events = []
        return events

    # ------------------------------------------------------------------
    # materialization

    def _window(self) -> Tuple[FloatArray, SeriesContext]:
        cache = self._window_cache
        if cache is not None and cache[0] == self._version:
            return cache[1], cache[2]
        arr = np.array(self._stats.series(), dtype=np.float64)
        ctx = SeriesContext(arr)
        self._window_cache = (self._version, arr, ctx)
        return arr, ctx

    def motifs(self) -> ValmodResult:
        """Exact VALMOD result for the current window (version-cached).

        Bitwise identical to ``valmod(self.series(), l_min, l_max, p=p,
        track_top_k=track_top_k)`` — the batch driver runs on the
        window, with the per-window context shared across
        materializations.
        """
        cache = self._motif_cache
        if cache is not None and cache[0] == self._version:
            return cache[1]
        arr, ctx = self._window()
        with obs.span("streaming.materialize.motifs"):
            result = Valmod(
                arr,
                self.l_min,
                self.l_max,
                p=self.p,
                track_top_k=self.track_top_k,
                n_jobs=self._n_jobs,
                context=ctx,
            ).run()
        self._motif_cache = (self._version, result)
        self._refresh_from_motifs(result)
        return result

    def motif_pairs(self) -> Dict[int, object]:
        """Per-length best pairs of the current window (materializes)."""
        return dict(self.motifs().motif_pairs)

    def _refresh_from_motifs(self, result: ValmodResult) -> None:
        for length, pair in result.motif_pairs.items():
            self._motif_best[length] = pair.distance
            self._motif_members[length] = (
                self._start + pair.a,
                self._start + pair.b,
            )
        valmp = result.valmp
        count = valmp.n_profiles
        self._grow_valmp(count)
        self._vl_norm[:count] = valmp.norm_distances
        self._vl_raw[:count] = valmp.distances
        self._vl_len[:count] = valmp.lengths
        known = valmp.indices >= 0
        nbr = np.where(known, valmp.indices + self._start, -1)
        self._vl_nbr[:count] = nbr
        best = result.best_motif_pair()
        sig = (best.length, self._start + best.a, self._start + best.b,
               best.distance)
        if self._last_motif_sig is not None and sig != self._last_motif_sig:
            self._emit(
                "motifs-changed",
                best.length,
                f"best motif now ({sig[1]}, {sig[2]}) length {best.length} "
                f"normalized {best.normalized_distance:.6f}",
            )
        self._last_motif_sig = sig

    def discords(self) -> List[Discord]:
        """Exact top-k variable-length discords (version-cached).

        Bitwise identical to ``find_discords_pruned(self.series(),
        l_min, l_max, k=k_discords, engine=engine, p=p)``: lengths the
        maintained bounds cannot rule out are recomputed on the current
        window with the same engine, and the greedy selection consumes
        pruned lengths' candidates only after it is already full (the
        certification argument of ``docs/DISCORDS.md``).
        """
        cache = self._discord_cache
        if cache is not None and cache[0] == self._version:
            return list(cache[1])
        arr, ctx = self._window()
        with obs.span("streaming.materialize.discords"):
            selection = self._materialize_discords(arr, ctx)
        self._discord_cache = (self._version, list(selection))
        sig = tuple(
            (d.length, self._start + d.start, d.normalized_distance)
            for d in selection
        )
        if self._last_discord_sig is not None and sig != self._last_discord_sig:
            top = selection[0] if selection else None
            detail = (
                f"top discord now start {self._start + top.start} "
                f"length {top.length} normalized "
                f"{top.normalized_distance:.6f}"
                if top is not None
                else "discord set emptied"
            )
            self._emit("discords-changed", top.length if top else 0, detail)
        self._last_discord_sig = sig
        return selection

    def _materialize_discords(
        self, t: FloatArray, ctx: SeriesContext
    ) -> List[Discord]:
        scan = list(range(self.l_min, self.l_max + 1))
        k = self.k_discords
        computed: Dict[int, List[Discord]] = {}

        def candidates_at(length: int) -> List[Discord]:
            with obs.span("discords.profile"):
                mp = compute_with(
                    self._engine, t, length, n_jobs=self._n_jobs, context=ctx
                )
            # exact refresh of the maintained bound for this window
            if np.isfinite(mp.profile).all() and (mp.index >= 0).all():
                self._discord_ub[length] = (
                    float(mp.profile.max()) / self._sqrt[length]
                )
                self._ub_support[length] = self._start + int(mp.index.min())
            else:
                self._discord_ub[length] = math.inf
                self._ub_support[length] = -1
            return per_length_candidates(mp.profile, length, k)

        def selection_of() -> List[Discord]:
            pool = [c for length in sorted(computed) for c in computed[length]]
            return select_top_k(pool, k)

        if all(math.isinf(self._discord_ub[length]) for length in scan):
            # Cold start: one base profile + the listDP pass, exactly
            # like the batch driver, recording the bounds it derives.
            base = scan[0]
            computed[base] = candidates_at(base)
            if len(scan) > 1:
                with obs.span("discords.listdp"):
                    _, store = compute_matrix_profile(
                        t, base, self.p, n_jobs=self._n_jobs, context=ctx
                    )
                for length in range(base + 1, scan[-1] + 1):
                    with obs.span("discords.advance"):
                        store.advance_to(length, t)
                    if length in computed:
                        continue
                    upper = length_upper_bound(
                        store.neighbor, store.qt, ctx, length
                    )
                    self._discord_ub[length] = upper
                    self._ub_support[length] = self._listdp_support(
                        store.neighbor, t.size, length, upper
                    )

        for length in sorted(set(self._warm_lengths) & set(scan)):
            if length not in computed:
                computed[length] = candidates_at(length)

        while True:
            selection = selection_of()
            if len(selection) == k:
                threshold = selection[k - 1].normalized_distance
                violating = sorted(
                    length
                    for length in scan
                    if length not in computed
                    and self._discord_ub[length] * (1.0 + STREAMING_UB_SLACK)
                    >= threshold
                )
            else:
                violating = sorted(
                    length for length in scan if length not in computed
                )
            if not violating:
                break
            for length in violating:
                computed[length] = candidates_at(length)

        selection = selection_of()
        if obs.enabled():
            obs.add("discords.lengths.swept", len(scan))
            obs.add("discords.profiles.recomputed", len(computed))
            obs.add("discords.profiles.pruned", len(scan) - len(computed))
            for length in computed:
                obs.add(f"discords.profiles.recomputed.l{length}")
            for length in scan:
                if length not in computed:
                    obs.add(f"discords.profiles.pruned.l{length}")
        self._warm_lengths = sorted({d.length for d in selection})
        return selection

    def _listdp_support(
        self, store_neighbor: IntArray, n: int, length: int, upper: float
    ) -> int:
        """Earliest absolute neighbor offset backing a listDP bound.

        Conservative superset: the minimum over every in-range stored
        neighbor (the true supports are the per-position argmin entries,
        a subset), so eviction invalidates no earlier than it must.
        """
        if not math.isfinite(upper):
            return -1
        n_dp = n - length + 1
        nb = store_neighbor[:n_dp]
        valid = nb[(nb >= 0) & (nb <= n - length)]
        if valid.size == 0:
            return -1
        return self._start + int(valid.min())

    # ------------------------------------------------------------------
    # eager snapshots (approximate, no materialization)

    def valmp_snapshot(self) -> Dict[str, np.ndarray]:
        """Best-known VALMP state without materializing a batch run.

        Entries are upper bounds on the exact VALMP of the current
        window (exact immediately after :meth:`motifs`); neighbors are
        window-relative, ``-1`` where unknown (e.g. after the neighbor
        was evicted).
        """
        count = self._stats.n_points - self.l_min + 1
        nbr = self._vl_nbr[:count].copy()
        known = nbr >= 0
        nbr[known] -= self._start
        return {
            "norm_distances": self._vl_norm[:count].copy(),
            "distances": self._vl_raw[:count].copy(),
            "lengths": self._vl_len[:count].copy(),
            "neighbors": nbr,
        }

    def discord_bounds(self) -> Dict[int, float]:
        """Maintained per-length normalized discord upper bounds."""
        return dict(self._discord_ub)
