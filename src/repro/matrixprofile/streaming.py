"""Incremental (streaming) matrix profile — STAMPI-style appends.

The matrix-profile line of work supports online maintenance: when a new
point arrives, one new subsequence appears, and the profile is updated
by (a) computing the new subsequence's distance profile and (b) letting
it improve existing entries.  Total cost per append is O(n) with the
incremental dot-product update — the same recurrence STOMP uses, rotated
90 degrees.

This engine exists because the paper's motivating deployments
(AspenTech's precursor search, EPG monitoring) are streaming settings;
it lets the examples and benches exercise motif discovery on growing
series without recomputation from scratch.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.distance.profile import distance_profile_from_qt
from repro.distance.znorm import as_series
from repro.kernels.context import ensure_context
from repro.exceptions import InvalidParameterError, NotComputedError
from repro.matrixprofile.exclusion import exclusion_zone_half_width
from repro.matrixprofile.index import MatrixProfile

__all__ = ["StreamingMatrixProfile"]


class StreamingMatrixProfile:
    """Maintains the matrix profile of a growing series.

    Usage::

        smp = StreamingMatrixProfile(initial_series, length=64)
        for value in feed:
            smp.append(value)
        motif = smp.matrix_profile().motif_pair()

    Appends are O(n) each; the result after any number of appends equals
    a from-scratch computation on the concatenated series (tested).
    """

    def __init__(self, series: np.ndarray, length: int) -> None:
        t = as_series(series, min_length=4)
        if length < 2 or length > t.size // 2:
            raise InvalidParameterError(
                f"length {length} invalid for an initial series of {t.size} points"
            )
        self.length = int(length)
        self._zone = exclusion_zone_half_width(self.length)
        self._values = list(t)
        # Dot products of the LAST subsequence against all others; the
        # append recurrence extends this vector in O(n).
        self._rebuild()

    def _rebuild(self) -> None:
        t = np.asarray(self._values, dtype=np.float64)
        n_subs = t.size - self.length + 1
        from repro.matrixprofile.stomp import stomp

        ctx = ensure_context(t)
        mp = stomp(t, self.length, context=ctx)
        self._profile = mp.profile.copy()
        self._index = mp.index.copy()
        self._last_qt = ctx.sliding_dot_product(t[n_subs - 1 :])

    def __len__(self) -> int:
        return len(self._values)

    @property
    def n_subsequences(self) -> int:
        return len(self._values) - self.length + 1

    def append(self, value: float) -> None:
        """Ingest one new point, updating the profile in O(n)."""
        if not np.isfinite(value):
            raise InvalidParameterError(f"appended value must be finite, got {value}")
        self._values.append(float(value))
        t = np.asarray(self._values, dtype=np.float64)
        n = t.size
        length = self.length
        n_subs = n - length + 1
        new = n_subs - 1  # offset of the subsequence that just appeared

        # Extend the trailing-QT vector: QT_new[j] relates to the
        # previous last subsequence's QT by the STOMP recurrence run
        # backwards along the new row.
        prev_qt = self._last_qt  # dots of subsequence new-1 at old time
        qt = np.empty(n_subs, dtype=np.float64)
        qt[1:] = (
            prev_qt
            - t[: n_subs - 1] * t[new - 1]
            + t[length : length + n_subs - 1] * t[n - 1]
        )
        qt[0] = float(np.dot(t[:length], t[new:]))
        self._last_qt = qt

        # Statistics for all windows (O(n); a ring of running sums would
        # make this O(1) amortized — out of scope for clarity).
        mu, sigma = ensure_context(t).moving_mean_std(length)
        row = distance_profile_from_qt(
            qt, length, float(mu[new]), float(sigma[new]), mu, sigma
        )
        lo = max(0, new - self._zone + 1)
        row[lo:] = np.inf

        profile = np.append(self._profile, np.inf)
        index = np.append(self._index, -1)
        j = int(np.argmin(row))
        if np.isfinite(row[j]):
            profile[new] = row[j]
            index[new] = j
        better = row < profile[:n_subs]
        profile[: n_subs][better] = row[better]
        index[: n_subs][better] = new
        self._profile = profile
        self._index = index

    def extend(self, values: Sequence[float]) -> None:
        """Append many points."""
        for value in values:
            self.append(value)

    def matrix_profile(self) -> MatrixProfile:
        """The current profile as an immutable snapshot."""
        if self._profile is None:
            raise NotComputedError("streaming profile not initialized")
        return MatrixProfile(
            profile=self._profile.copy(),
            index=self._index.copy(),
            length=self.length,
        )

    def series(self) -> np.ndarray:
        """A copy of the current series."""
        return np.asarray(self._values, dtype=np.float64)
