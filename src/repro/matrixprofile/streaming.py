"""Incremental (streaming) matrix profile — STAMPI-style appends.

The matrix-profile line of work supports online maintenance: when a new
point arrives, one new subsequence appears, and the profile is updated
by (a) computing the new subsequence's distance profile and (b) letting
it improve existing entries.  Total cost per append is O(n) with the
incremental dot-product update — the same recurrence STOMP uses, rotated
90 degrees.

All per-append state lives in hoisted, amortized-doubling scratch
buffers (series, window statistics, trailing QT, profile/index): an
append allocates nothing beyond the distance row, and the window
statistics are extended with one exact O(l) computation instead of a
per-append context rebuild.  The ``streaming.buffer.regrows`` counter
proves the amortization (log₂ growths over any run) and
``stats.cache.misses`` stays flat across appends.

With ``max_points=`` the engine keeps a sliding window: the oldest
points are retired after each append, surviving rows whose recorded
neighbor was evicted are repaired by an exact distance-row recompute
(``streaming.rows.repaired``), and the result equals a from-scratch
computation on the retained window.

This engine exists because the paper's motivating deployments
(AspenTech's precursor search, EPG monitoring) are streaming settings;
the variable-length generalization lives in
:mod:`repro.matrixprofile.streaming_valmod`.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np

from repro import obs
from repro.distance.profile import apply_exclusion_zone, distance_profile_from_qt
from repro.distance.znorm import as_series
from repro.kernels.context import ensure_context
from repro.exceptions import (
    InvalidParameterError,
    NotComputedError,
    WindowTooSmallError,
)
from repro.lint.contracts import optional, positive_int, require, series_like
from repro.matrixprofile.exclusion import exclusion_zone_half_width
from repro.matrixprofile.index import MatrixProfile

__all__ = ["StreamingMatrixProfile"]


class StreamingMatrixProfile:
    """Maintains the matrix profile of a growing (or sliding) series.

    Usage::

        smp = StreamingMatrixProfile(initial_series, length=64)
        for value in feed:
            smp.append(value)
        motif = smp.matrix_profile().motif_pair()

    Appends are O(n) each; the result after any number of appends equals
    a from-scratch computation on the concatenated series (tested).
    With ``max_points`` the window slides and the result equals a
    from-scratch computation on the retained window.
    """

    @require(
        series=series_like(min_length=4),
        length=positive_int(),
        max_points=optional(positive_int()),
    )
    def __init__(
        self,
        series: np.ndarray,
        length: int,
        *,
        max_points: Optional[int] = None,
    ) -> None:
        t = as_series(series, min_length=4)
        if length < 2 or length > t.size // 2:
            raise InvalidParameterError(
                f"length {length} invalid for an initial series of {t.size} points"
            )
        self.length = int(length)
        self._zone = exclusion_zone_half_width(self.length)
        if max_points is not None:
            max_points = int(max_points)
            if max_points < 2 * self.length:
                raise WindowTooSmallError(
                    f"max_points={max_points} cannot hold two non-overlapping "
                    f"subsequences of length {self.length} "
                    f"(need >= {2 * self.length})"
                )
        self._max_points = max_points
        self._start = 0
        self._n = t.size
        self._cap = 64
        while self._cap < 2 * t.size:
            self._cap *= 2
        self._buf = np.empty(self._cap, dtype=np.float64)
        self._buf[: t.size] = t
        self._mu = np.empty(self._cap, dtype=np.float64)
        self._sigma = np.empty(self._cap, dtype=np.float64)
        self._qt = np.empty(self._cap, dtype=np.float64)
        self._qt_tmp = np.empty(self._cap, dtype=np.float64)
        self._profile: Optional[np.ndarray] = None
        self._index: Optional[np.ndarray] = None
        self._rebuild()
        if self._max_points is not None and self._n > self._max_points:
            self._evict(self._n - self._max_points)

    def _rebuild(self) -> None:
        t = self._buf[: self._n]
        n_subs = self._n - self.length + 1
        from repro.matrixprofile.stomp import stomp

        ctx = ensure_context(t.copy())
        mp = stomp(ctx.series, self.length, context=ctx)
        profile = np.full(self._cap, np.inf, dtype=np.float64)
        index = np.full(self._cap, -1, dtype=np.int64)
        profile[:n_subs] = mp.profile
        index[:n_subs] = mp.index
        self._profile = profile
        self._index = index
        mu, sigma = ctx.moving_mean_std(self.length)
        self._mu[:n_subs] = mu
        self._sigma[:n_subs] = sigma
        # Dot products of the LAST subsequence against all others; the
        # append recurrence extends this vector in O(n).
        self._qt[:n_subs] = ctx.sliding_dot_product(ctx.series[n_subs - 1 :])

    def _grow(self) -> None:
        obs.add("streaming.buffer.regrows")
        new_cap = self._cap * 2
        for name in ("_buf", "_mu", "_sigma", "_qt", "_qt_tmp",
                     "_profile", "_index"):
            old = getattr(self, name)
            new = np.empty(new_cap, dtype=old.dtype)
            new[: self._cap] = old
            setattr(self, name, new)
        self._cap = new_cap

    def __len__(self) -> int:
        return self._n

    @property
    def n_subsequences(self) -> int:
        return self._n - self.length + 1

    @property
    def window_start(self) -> int:
        """Absolute stream offset of the first retained point."""
        return self._start

    @property
    def max_points(self) -> Optional[int]:
        """Sliding-window capacity (None = unbounded growth)."""
        return self._max_points

    def append(self, value: float) -> None:
        """Ingest one new point, updating the profile in O(n)."""
        if not np.isfinite(value):
            raise InvalidParameterError(f"appended value must be finite, got {value}")
        with obs.span("streaming.append"):
            obs.add("streaming.appends")
            self._append(float(value))
            if self._max_points is not None and self._n > self._max_points:
                self._evict(self._n - self._max_points)

    def _append(self, value: float) -> None:
        if self._n + 1 > self._cap:
            self._grow()
        self._buf[self._n] = value
        self._n += 1
        n = self._n
        length = self.length
        t = self._buf[:n]
        n_subs = n - length + 1
        new = n_subs - 1  # offset of the subsequence that just appeared

        # Window statistics: one exact O(l) computation for the newest
        # window — identical precision to the batch "suspicious window"
        # recompute path, so no per-append context rebuild is needed.
        window = t[n - length : n]
        mu_new = float(window.mean())
        sigma_new = math.sqrt(max(float(window.var()), 0.0))
        self._mu[new] = mu_new
        self._sigma[new] = sigma_new

        # Extend the trailing-QT vector: QT_new[j] relates to the
        # previous last subsequence's QT by the STOMP recurrence run
        # backwards along the new row.  Ping-pong between two hoisted
        # buffers (the recurrence reads all previous entries).
        prev_qt = self._qt[: n_subs - 1]
        qt = self._qt_tmp
        qt[1:n_subs] = (
            prev_qt
            - t[: n_subs - 1] * t[new - 1]
            + t[length : length + n_subs - 1] * t[n - 1]
        )
        qt[0] = float(np.dot(t[:length], t[new:]))
        self._qt, self._qt_tmp = self._qt_tmp, self._qt

        row = distance_profile_from_qt(
            qt[:n_subs], length, mu_new, sigma_new,
            self._mu[:n_subs], self._sigma[:n_subs],
        )
        lo = max(0, new - self._zone + 1)
        row[lo:] = np.inf

        profile = self._profile
        index = self._index
        profile[new] = np.inf
        index[new] = -1
        j = int(np.argmin(row))
        if np.isfinite(row[j]):
            profile[new] = row[j]
            index[new] = j
        better = row < profile[:n_subs]
        profile[:n_subs][better] = row[better]
        index[:n_subs][better] = new

    def _evict(self, count: int) -> None:
        """Retire the ``count`` oldest points and repair orphaned rows."""
        length = self.length
        remaining = self._n - count
        if remaining < 2 * length:
            raise WindowTooSmallError(
                f"evicting {count} points would leave {remaining} < "
                f"{2 * length} needed for length {length}"
            )
        obs.add("streaming.entries.evicted", count)
        n_subs_old = self._n - length + 1
        n_subs = n_subs_old - count
        self._buf[:remaining] = self._buf[count : self._n]
        self._n = remaining
        self._start += count
        for name in ("_mu", "_sigma", "_qt", "_profile", "_index"):
            arr = getattr(self, name)
            arr[:n_subs] = arr[count : count + n_subs]
        profile = self._profile
        index = self._index
        idx = index[:n_subs]
        had_neighbor = idx >= 0
        idx[had_neighbor] -= count
        # Rows whose recorded neighbor was evicted lost the witness of
        # their profile value (the minimum may now be larger): recompute
        # them exactly against the surviving window.  Rows whose
        # neighbor survives keep exact values — the old minimum is
        # attained by a survivor.
        stale = np.flatnonzero(had_neighbor & (idx < 0))
        if stale.size:
            obs.add("streaming.rows.repaired", int(stale.size))
            t = self._buf[: self._n]
            mu = self._mu[:n_subs]
            sigma = self._sigma[:n_subs]
            for j in stale:
                j = int(j)
                qt_row = np.correlate(t, t[j : j + length], mode="valid")
                row = distance_profile_from_qt(
                    qt_row, length, float(mu[j]), float(sigma[j]), mu, sigma
                )
                apply_exclusion_zone(row, j, self._zone)
                jj = int(np.argmin(row))
                if np.isfinite(row[jj]):
                    profile[j] = row[jj]
                    index[j] = jj
                else:
                    profile[j] = np.inf
                    index[j] = -1

    def extend(self, values: Sequence[float]) -> None:
        """Append many points."""
        for value in values:
            self.append(value)

    def matrix_profile(self) -> MatrixProfile:
        """The current profile as an immutable snapshot."""
        if self._profile is None or self._index is None:
            raise NotComputedError("streaming profile not initialized")
        n_subs = self.n_subsequences
        return MatrixProfile(
            profile=self._profile[:n_subs].copy(),
            index=self._index[:n_subs].copy(),
            length=self.length,
        )

    def series(self) -> np.ndarray:
        """A copy of the current series window."""
        return self._buf[: self._n].copy()
