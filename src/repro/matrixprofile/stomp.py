"""STOMP: the O(n^2) matrix-profile engine of Zhu et al. (2016).

STOMP exploits the overlap of consecutive queries: the sliding dot
products of query ``i`` derive from those of query ``i-1`` in O(1) per
entry (Algorithm 3, line 11 of the paper).  Only the first row needs an
FFT.

:func:`iterate_stomp_rows` exposes the per-row distance profiles (and raw
dot products) as a generator so VALMOD's Algorithm 3 — which is STOMP plus
lower-bound bookkeeping — can reuse the exact same inner loop.  The
``row_range`` parameter lets a caller replay the recurrence up to a start
row and only materialize distance profiles for a block of rows — the
primitive the parallel engines build on.

Numerical robustness
--------------------
The rolling update accumulates one rounding error per row.  For data in a
sane range the drift is harmless, but a high-magnitude flat segment (a
sensor stuck at a large constant) makes the update subtract and re-add
huge products, and the cancellation error can corrupt every later row.
:func:`stomp_reanchor_rows` pre-computes — deterministically, from the
series alone — the rows at which the accumulated drift bound crosses a
tolerance; at those rows the recurrence is re-anchored with an exactly
summed dot-product row.  The schedule is a pure function of the input so
the chunked parallel engine (:mod:`repro.matrixprofile.parallel`) can
reproduce the serial results bit for bit.
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

import numpy as np

from repro import obs
from repro.types import FloatArray, IntArray

from repro.distance.profile import apply_exclusion_zone, distance_profile_from_qt
from repro.distance.sliding import sliding_dot_product, validate_subsequence_length
from repro.distance.znorm import CONSTANT_EPS
from repro.exceptions import InvalidParameterError
from repro.kernels.context import SeriesContext
from repro.lint.contracts import (
    ensure,
    int_at_least,
    no_nan_profile,
    positive_int,
    require,
    series_like,
)
from repro.matrixprofile.exclusion import contributing_cells, exclusion_zone_half_width
from repro.matrixprofile.index import MatrixProfile

__all__ = [
    "stomp",
    "iterate_stomp_rows",
    "stomp_reanchor_rows",
    "exact_qt_row",
]

#: relative drift in the rolling dot products tolerated before the row is
#: recomputed exactly.  Expressed as a fraction of the ``l sigma^2`` scale
#: at which dot-product noise becomes visible in Eq. 3 correlations.
QT_DRIFT_TOL = 1e-9


@require(series=series_like(), start=int_at_least(0), length=positive_int())
def exact_qt_row(series: FloatArray, start: int, length: int) -> FloatArray:
    """Dot products of window ``start`` against every window, summed exactly.

    Direct correlation (no FFT) regardless of length: its error is local
    to each output — the property the re-anchoring fix relies on, since an
    FFT row spreads the magnitude of a flat shelf across every column.
    """
    return np.correlate(series, series[start : start + length], mode="valid")


@require(series=series_like(), length=positive_int())
def stomp_reanchor_rows(
    series: FloatArray, length: int, sigma: FloatArray
) -> IntArray:
    """Rows at which the STOMP recurrence must be re-anchored.

    Tracks an upper bound on the per-row cancellation drift of the rolling
    dot-product update — each row ``i`` touches the products
    ``t[i-1] * t[j-1]`` and ``t[i+l-1] * t[j+l-1]``, so the bound grows by
    ``eps * (t[i-1]^2 + t[i+l-1]^2)`` — and schedules an exact recompute
    whenever the accumulated bound crosses ``QT_DRIFT_TOL`` of the
    ``l sigma^2`` scale that Eq. 3 divides by.  For data without extreme
    magnitudes the schedule is empty and the fast path is untouched.

    Deterministic in the inputs: serial STOMP and every chunk of the
    parallel engine compute the same schedule, which keeps their outputs
    bitwise identical.
    """
    t = np.asarray(series, dtype=np.float64)
    n_subs = t.size - length + 1
    if n_subs <= 1:
        return np.empty(0, dtype=np.int64)
    live = sigma[sigma >= CONSTANT_EPS]
    if live.size == 0:
        return np.empty(0, dtype=np.int64)
    floor = float(np.median(live))
    budget = QT_DRIFT_TOL * length * floor * floor
    if budget <= 0.0 or not np.isfinite(budget):
        return np.empty(0, dtype=np.int64)
    eps = float(np.finfo(np.float64).eps)
    heads = t[: n_subs - 1]
    tails = t[length : length + n_subs - 1]
    steps = eps * (heads * heads + tails * tails)
    # drift[i] = accumulated bound through the update of row i
    drift = np.concatenate([[0.0], np.cumsum(steps)])
    anchors = []
    base = 0.0
    while True:
        nxt = int(np.searchsorted(drift, base + budget, side="right"))
        if nxt >= drift.size:
            break
        anchors.append(nxt)
        base = drift[nxt]
    return np.asarray(anchors, dtype=np.int64)


@require(series=series_like(), length=positive_int())
def iterate_stomp_rows(
    series: FloatArray,
    length: int,
    mu: FloatArray,
    sigma: FloatArray,
    apply_exclusion: bool = True,
    row_range: Optional[Tuple[int, int]] = None,
    context: Optional[SeriesContext] = None,
) -> Iterator[Tuple[int, FloatArray, FloatArray]]:
    """Yield ``(i, qt, distance_profile)`` for every query ``i``.

    ``qt`` is the vector of dot products of query ``i`` against all
    windows; the distance profile is Eq. 3 applied to it, with the
    exclusion zone already masked to ``inf`` when ``apply_exclusion``.

    ``row_range`` restricts the yielded rows to ``[start, stop)``: the
    dot-product recurrence is still replayed from row 0 (so every yielded
    row is bitwise identical to a full run), but the distance profiles of
    skipped rows are never materialized.  Workers of the parallel
    Algorithm-3 path use this to split rows across processes.

    The yielded arrays are reused across iterations — callers that keep
    them must copy.
    """
    t = series
    n_subs = t.size - length + 1
    start, stop = (0, n_subs) if row_range is None else row_range
    if not 0 <= start <= stop <= n_subs:
        raise InvalidParameterError(
            f"row_range {row_range!r} out of bounds for {n_subs} rows"
        )
    zone = exclusion_zone_half_width(length)
    if context is not None and context.matches(t):
        qt_first = context.sliding_dot_product(t[:length])
    else:
        qt_first = sliding_dot_product(t[:length], t)
    qt = qt_first.copy()
    anchors = stomp_reanchor_rows(t, length, sigma)
    anchor_pos = 0
    # Cached slices for the O(1) per-entry dot-product update:
    #   QT_i[j] = QT_{i-1}[j-1] - t[j-1] t[i-1] + t[j+l-1] t[i+l-1]
    heads = t[: n_subs - 1]
    tails = t[length : length + n_subs - 1]
    for i in range(stop):
        if i > 0:
            if anchor_pos < anchors.size and anchors[anchor_pos] == i:
                # Accumulated drift too large: recompute the row exactly.
                qt = exact_qt_row(t, i, length)
                anchor_pos += 1
            else:
                qt[1:] = qt[:-1] - heads * t[i - 1] + tails * t[i + length - 1]
            qt[0] = qt_first[i]
        if i < start:
            continue
        profile = distance_profile_from_qt(
            qt, length, float(mu[i]), float(sigma[i]), mu, sigma
        )
        if apply_exclusion:
            apply_exclusion_zone(profile, i, zone)
        yield i, qt, profile


@require(series=series_like(min_length=4), length=positive_int())
@ensure(no_nan_profile)
def stomp(
    series: FloatArray,
    length: int,
    context: Optional[SeriesContext] = None,
) -> MatrixProfile:
    """Compute the full matrix profile with STOMP.

    ``context`` optionally carries a :class:`SeriesContext` for this
    series; its cached window statistics and series FFT are then reused
    (results are identical either way).
    """
    ctx = SeriesContext.ensure(series, context, min_length=4)
    t = ctx.series
    n_subs = validate_subsequence_length(t.size, length)
    mu, sigma = ctx.moving_mean_std(length)
    if obs.enabled():
        anchors = stomp_reanchor_rows(t, length, sigma)
        obs.add("engine.rows", n_subs)
        obs.add(
            "engine.cells",
            contributing_cells(n_subs, exclusion_zone_half_width(length)),
        )
        obs.add("stomp.qt_reanchor_rows", int(anchors.size))
        obs.add("stomp.qt_rolling_rows", max(n_subs - 1 - int(anchors.size), 0))
    profile = np.empty(n_subs, dtype=np.float64)
    index = np.empty(n_subs, dtype=np.int64)
    with obs.span("engine.stomp"):
        for i, _, row in iterate_stomp_rows(t, length, mu, sigma, context=ctx):
            j = int(np.argmin(row))
            profile[i] = row[j]
            index[i] = j if np.isfinite(row[j]) else -1
    return MatrixProfile(profile=profile, index=index, length=length)
