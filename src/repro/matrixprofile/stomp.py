"""STOMP: the O(n^2) matrix-profile engine of Zhu et al. (2016).

STOMP exploits the overlap of consecutive queries: the sliding dot
products of query ``i`` derive from those of query ``i-1`` in O(1) per
entry (Algorithm 3, line 11 of the paper).  Only the first row needs an
FFT.

:func:`iterate_stomp_rows` exposes the per-row distance profiles (and raw
dot products) as a generator so VALMOD's Algorithm 3 — which is STOMP plus
lower-bound bookkeeping — can reuse the exact same inner loop.
"""

from __future__ import annotations

from typing import Iterator, Tuple

import numpy as np

from repro.distance.profile import apply_exclusion_zone, distance_profile_from_qt
from repro.distance.sliding import (
    moving_mean_std,
    sliding_dot_product,
    validate_subsequence_length,
)
from repro.distance.znorm import as_series
from repro.matrixprofile.exclusion import exclusion_zone_half_width
from repro.matrixprofile.index import MatrixProfile

__all__ = ["stomp", "iterate_stomp_rows"]


def iterate_stomp_rows(
    series: np.ndarray,
    length: int,
    mu: np.ndarray,
    sigma: np.ndarray,
    apply_exclusion: bool = True,
) -> Iterator[Tuple[int, np.ndarray, np.ndarray]]:
    """Yield ``(i, qt, distance_profile)`` for every query ``i``.

    ``qt`` is the vector of dot products of query ``i`` against all
    windows; the distance profile is Eq. 3 applied to it, with the
    exclusion zone already masked to ``inf`` when ``apply_exclusion``.

    The yielded arrays are reused across iterations — callers that keep
    them must copy.
    """
    t = series
    n_subs = t.size - length + 1
    zone = exclusion_zone_half_width(length)
    qt_first = sliding_dot_product(t[:length], t)
    qt = qt_first.copy()
    # Cached slices for the O(1) per-entry dot-product update:
    #   QT_i[j] = QT_{i-1}[j-1] - t[j-1] t[i-1] + t[j+l-1] t[i+l-1]
    heads = t[: n_subs - 1]
    tails = t[length : length + n_subs - 1]
    for i in range(n_subs):
        if i > 0:
            qt[1:] = qt[:-1] - heads * t[i - 1] + tails * t[i + length - 1]
            qt[0] = qt_first[i]
        profile = distance_profile_from_qt(
            qt, length, float(mu[i]), float(sigma[i]), mu, sigma
        )
        if apply_exclusion:
            apply_exclusion_zone(profile, i, zone)
        yield i, qt, profile


def stomp(series: np.ndarray, length: int) -> MatrixProfile:
    """Compute the full matrix profile with STOMP."""
    t = as_series(series, min_length=4)
    n_subs = validate_subsequence_length(t.size, length)
    mu, sigma = moving_mean_std(t, length)
    profile = np.empty(n_subs, dtype=np.float64)
    index = np.empty(n_subs, dtype=np.int64)
    for i, _, row in iterate_stomp_rows(t, length, mu, sigma):
        j = int(np.argmin(row))
        profile[i] = row[j]
        index[i] = j if np.isfinite(row[j]) else -1
    return MatrixProfile(profile=profile, index=index, length=length)
