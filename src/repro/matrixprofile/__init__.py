"""Matrix-profile engines (the STOMP/STAMP substrate of the paper).

A matrix profile (Definition 2.5) stores, for every subsequence of a
series, the z-normalized Euclidean distance to its nearest non-trivial
neighbor, plus that neighbor's offset.  The motif pair of a length is the
smallest matrix-profile entry.

Engines
-------
:func:`repro.matrixprofile.brute.brute_force_matrix_profile`
    O(n^2 l) reference implementation used as ground truth.
:func:`repro.matrixprofile.stomp.stomp`
    The O(n^2) incremental-dot-product algorithm of Zhu et al. (2016),
    which Algorithm 3 of the paper extends.
:func:`repro.matrixprofile.stamp.stamp`
    MASS-based engine; supports anytime (random-order, early-stop) runs.
:func:`repro.matrixprofile.parallel.parallel_stomp`
    Diagonal-chunked STOMP across worker processes; bitwise identical to
    the serial engine for every worker count.

The :mod:`repro.matrixprofile.registry` module maps engine names
(``"stomp" | "stamp" | "scrimp" | "brute" | "parallel-stomp"``) to
implementations so callers can dispatch by string.
"""

from repro.matrixprofile.exclusion import exclusion_zone_half_width, is_trivial_match
from repro.matrixprofile.index import MatrixProfile
from repro.matrixprofile.brute import brute_force_matrix_profile
from repro.matrixprofile.stomp import stomp
from repro.matrixprofile.stamp import stamp
from repro.matrixprofile.scrimp import pre_scrimp, scrimp
from repro.matrixprofile.parallel import parallel_stomp
from repro.matrixprofile.registry import (
    EngineSpec,
    compute_with,
    engine_names,
    get_engine,
    register_engine,
)
from repro.matrixprofile.streaming import StreamingMatrixProfile
from repro.matrixprofile.leftright import LeftRightProfiles, stomp_left_right
from repro.matrixprofile.join import ab_join_motif, stomp_ab_join
from repro.matrixprofile.mpdist import mpdist

# StreamingValmod composes the repro.core drivers, and this package
# initializes *while* repro.core is still importing (core modules pull
# in the exclusion-zone helpers above), so the streaming engine must be
# resolved lazily (PEP 562) to avoid a circular import.
_LAZY = {"StreamingValmod", "StreamEvent"}


def __getattr__(name: str):
    if name in _LAZY:
        from repro.matrixprofile import streaming_valmod

        return getattr(streaming_valmod, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "MatrixProfile",
    "exclusion_zone_half_width",
    "is_trivial_match",
    "brute_force_matrix_profile",
    "stomp",
    "stamp",
    "scrimp",
    "pre_scrimp",
    "parallel_stomp",
    "EngineSpec",
    "register_engine",
    "get_engine",
    "engine_names",
    "compute_with",
    "StreamingMatrixProfile",
    "StreamingValmod",
    "StreamEvent",
    "LeftRightProfiles",
    "stomp_left_right",
    "ab_join_motif",
    "stomp_ab_join",
    "mpdist",
]
