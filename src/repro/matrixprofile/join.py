"""AB-join matrix profiles: similarity join between two series.

The original Matrix Profile paper frames everything as a special case
of the *all-pairs similarity join*: for every window of series A, the
nearest window of series B (no exclusion zone — the series are
different).  The self-join is the ordinary matrix profile.

The AB-join powers the cross-series tools: MPdist
(:mod:`repro.matrixprofile.mpdist`), consensus motifs
(:mod:`repro.multiseries.consensus`), and "have we seen this behaviour
in that other recording?" queries.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.distance.profile import distance_profile_from_qt
from repro.distance.znorm import as_series
from repro.exceptions import InvalidParameterError
from repro.kernels.context import ensure_context
from repro.matrixprofile.index import MatrixProfile
from repro.types import MotifPair
from repro.lint.contracts import ensure, no_nan_profile, positive_int, require, series_like

__all__ = ["stomp_ab_join", "ab_join_motif"]


@require(series_a=series_like(), series_b=series_like(), length=positive_int())
@ensure(no_nan_profile)
def stomp_ab_join(
    series_a: np.ndarray, series_b: np.ndarray, length: int
) -> MatrixProfile:
    """For every window of A, the distance/offset of its NN in B.

    O(|A| |B|) via the STOMP recurrence run across series: consecutive
    A-queries share their dot products against B.  No exclusion zone
    (different series cannot trivially match).  The returned object's
    ``index`` refers to offsets in B.
    """
    a = as_series(series_a, min_length=4)
    b = as_series(series_b, min_length=4)
    if length < 2 or length > min(a.size, b.size):
        raise InvalidParameterError(
            f"length {length} invalid for series of {a.size} and {b.size} points"
        )
    n_a = a.size - length + 1
    n_b = b.size - length + 1
    ctx_b = ensure_context(b)
    mu_a, sigma_a = ensure_context(a).moving_mean_std(length)
    mu_b, sigma_b = ctx_b.moving_mean_std(length)

    profile = np.empty(n_a, dtype=np.float64)
    index = np.empty(n_a, dtype=np.int64)
    qt_first = ctx_b.sliding_dot_product(a[:length])
    qt = qt_first.copy()
    heads = b[: n_b - 1]
    tails = b[length : length + n_b - 1]
    for i in range(n_a):
        if i > 0:
            qt[1:] = qt[:-1] - heads * a[i - 1] + tails * a[i + length - 1]
            qt[0] = float(np.dot(a[i : i + length], b[:length]))
        row = distance_profile_from_qt(
            qt, length, float(mu_a[i]), float(sigma_a[i]), mu_b, sigma_b
        )
        j = int(np.argmin(row))
        profile[i] = row[j]
        index[i] = j
    return MatrixProfile(profile=profile, index=index, length=length)


@require(series_a=series_like(), series_b=series_like(), length=positive_int())
def ab_join_motif(
    series_a: np.ndarray, series_b: np.ndarray, length: int
) -> Tuple[MotifPair, MatrixProfile]:
    """The closest cross-series pair.

    Unlike the self-join case, ``pair.a`` is an offset in A and
    ``pair.b`` an offset in B — the fields are NOT reordered.
    """
    join = stomp_ab_join(series_a, series_b, length)
    i = int(np.argmin(join.profile))
    distance = float(join.profile[i])
    from repro.types import length_normalized

    pair = MotifPair(
        normalized_distance=length_normalized(distance, length),
        distance=distance,
        length=length,
        a=i,
        b=int(join.index[i]),
    )
    return pair, join
