"""Left/right matrix profiles — the substrate for time-series chains.

The *left* matrix profile stores, per subsequence, the nearest neighbor
that occurs strictly earlier in time; the *right* profile the nearest
later one.  Both fall out of the same STOMP sweep at no extra asymptotic
cost, and they power directional analyses: time-series chains
(:mod:`repro.core.chains`) and online discord tracking.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.distance.sliding import validate_subsequence_length
from repro.kernels.context import SeriesContext
from repro.matrixprofile.exclusion import exclusion_zone_half_width
from repro.matrixprofile.index import MatrixProfile
from repro.matrixprofile.stomp import iterate_stomp_rows
from repro.lint.contracts import positive_int, require, series_like

__all__ = ["LeftRightProfiles", "stomp_left_right"]


@dataclass
class LeftRightProfiles:
    """Joint (full, left, right) matrix profiles of one length."""

    length: int
    profile: np.ndarray
    index: np.ndarray
    left_profile: np.ndarray
    left_index: np.ndarray
    right_profile: np.ndarray
    right_index: np.ndarray

    def full(self) -> MatrixProfile:
        return MatrixProfile(
            profile=self.profile.copy(), index=self.index.copy(), length=self.length
        )

    def left(self) -> MatrixProfile:
        return MatrixProfile(
            profile=self.left_profile.copy(),
            index=self.left_index.copy(),
            length=self.length,
        )

    def right(self) -> MatrixProfile:
        return MatrixProfile(
            profile=self.right_profile.copy(),
            index=self.right_index.copy(),
            length=self.length,
        )


@require(series=series_like(), length=positive_int())
def stomp_left_right(
    series: np.ndarray, length: int, context: "SeriesContext | None" = None
) -> LeftRightProfiles:
    """One STOMP sweep producing the full, left, and right profiles."""
    ctx = SeriesContext.ensure(series, context, min_length=4)
    t = ctx.series
    n_subs = validate_subsequence_length(t.size, length)
    mu, sigma = ctx.moving_mean_std(length)
    zone = exclusion_zone_half_width(length)

    profile = np.full(n_subs, np.inf, dtype=np.float64)
    index = np.full(n_subs, -1, dtype=np.int64)
    left_profile = np.full(n_subs, np.inf, dtype=np.float64)
    left_index = np.full(n_subs, -1, dtype=np.int64)
    right_profile = np.full(n_subs, np.inf, dtype=np.float64)
    right_index = np.full(n_subs, -1, dtype=np.int64)

    for i, _, row in iterate_stomp_rows(t, length, mu, sigma, context=ctx):
        j = int(np.argmin(row))
        if np.isfinite(row[j]):
            profile[i] = row[j]
            index[i] = j
        # Left: neighbors strictly before the zone.
        left_hi = max(0, i - zone + 1)
        if left_hi > 0:
            lj = int(np.argmin(row[:left_hi]))
            if np.isfinite(row[lj]):
                left_profile[i] = row[lj]
                left_index[i] = lj
        # Right: neighbors strictly after the zone.
        right_lo = min(n_subs, i + zone)
        if right_lo < n_subs:
            rj = right_lo + int(np.argmin(row[right_lo:]))
            if np.isfinite(row[rj]):
                right_profile[i] = row[rj]
                right_index[i] = rj

    return LeftRightProfiles(
        length=length,
        profile=profile,
        index=index,
        left_profile=left_profile,
        left_index=left_index,
        right_profile=right_profile,
        right_index=right_index,
    )
