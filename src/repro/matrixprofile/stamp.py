"""STAMP: MASS-based matrix profile with anytime semantics.

STAMP computes one MASS distance profile per query.  Because rows are
independent, they can be visited in random order and the run stopped
early; the paper cites this anytime property (Section 2) as one of the
mitigations for the O(n^2) cost.  :func:`stamp` supports both the full
run and the anytime variant via ``max_rows`` / ``rng``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro import obs
from repro.types import FloatArray

from repro.distance.mass import mass_with_stats
from repro.distance.profile import apply_exclusion_zone
from repro.distance.sliding import validate_subsequence_length
from repro.exceptions import InvalidParameterError
from repro.kernels.context import SeriesContext
from repro.lint.contracts import (
    ensure,
    no_nan_profile,
    optional,
    positive_int,
    require,
    series_like,
)
from repro.matrixprofile.exclusion import exclusion_zone_half_width
from repro.matrixprofile.index import MatrixProfile

__all__ = ["stamp"]


@require(
    series=series_like(min_length=4),
    length=positive_int(),
    max_rows=optional(positive_int()),
)
@ensure(no_nan_profile)
def stamp(
    series: FloatArray,
    length: int,
    max_rows: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
    context: Optional[SeriesContext] = None,
) -> MatrixProfile:
    """Compute the matrix profile with STAMP.

    Parameters
    ----------
    series, length:
        The data series and subsequence length.
    max_rows:
        Anytime budget: stop after this many distance profiles.  ``None``
        computes all rows (exact result).
    rng:
        Row visiting order for anytime runs; sequential when ``None``.

    With ``max_rows`` set, the result is an *upper-bound approximation* of
    the true matrix profile: every computed entry is exact, every
    untouched entry stays at ``inf``.  Because each MASS profile updates
    both the query row and all its matches, convergence is fast in
    practice — the property the paper leans on.
    """
    ctx = SeriesContext.ensure(series, context, min_length=4)
    t = ctx.series
    n_subs = validate_subsequence_length(t.size, length)
    mu, sigma = ctx.moving_mean_std(length)
    zone = exclusion_zone_half_width(length)
    profile = np.full(n_subs, np.inf, dtype=np.float64)
    index = np.full(n_subs, -1, dtype=np.int64)

    order = np.arange(n_subs)
    if rng is not None:
        order = rng.permutation(n_subs)
    if max_rows is not None:
        if max_rows <= 0:
            raise InvalidParameterError(
                f"max_rows must be positive, got {max_rows}"
            )
        order = order[:max_rows]

    if obs.enabled():
        # Cells this run will touch: for each visited row, every column
        # outside its exclusion-zone window.  Over a full run this sums
        # to the same k(k+1) closed form every exact engine reports.
        visited = np.asarray(order, dtype=np.int64)
        lo = np.maximum(visited - zone + 1, 0)
        hi = np.minimum(visited + zone, n_subs)
        obs.add("engine.rows", int(visited.size))
        obs.add("engine.cells", int((n_subs - (hi - lo)).sum()))
        obs.add("stamp.mass_rows", int(visited.size))
    with obs.span("engine.stamp"):
        for i in order:
            row = mass_with_stats(t, int(i), length, mu, sigma, context=ctx)
            apply_exclusion_zone(row, int(i), zone)
            # Update the query row ...
            j = int(np.argmin(row))
            if row[j] < profile[i]:
                profile[i] = row[j]
                index[i] = j
            # ... and every row this profile improves (the anytime trick).
            better = row < profile
            profile[better] = row[better]
            index[better] = int(i)
    return MatrixProfile(profile=profile, index=index, length=length)
