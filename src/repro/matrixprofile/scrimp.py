"""SCRIMP: the diagonal-order matrix-profile engine (Zhu et al. 2018).

STOMP computes the distance matrix row by row; SCRIMP computes it
*diagonal by diagonal*.  Along a diagonal ``d`` (pairs ``(i, i + d)``)
the dot product obeys::

    QT(i, i+d) = QT(i-1, i-1+d) - t[i-1] t[i-1+d] + t[i+l-1] t[i+d+l-1]

so one vectorized prefix expression evaluates a whole diagonal at once.
Two properties make SCRIMP valuable here:

* **Anytime-exactness**: diagonals can be visited in random order and
  the run stopped early; unlike STAMP's row order, every *pair* touched
  is final, and convergence is uniform across the profile.
* **PRE-SCRIMP**: an O(n^2 / s) approximate warm-up that samples every
  s-th row and refines neighbors locally; we implement it as the
  optional first phase, as in the published algorithm.

Both the full run and the anytime run are tested against brute force.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro import obs
from repro.types import FloatArray

from repro.distance.mass import mass_with_stats
from repro.distance.profile import apply_exclusion_zone
from repro.distance.sliding import validate_subsequence_length
from repro.distance.znorm import CONSTANT_EPS
from repro.exceptions import InvalidParameterError
from repro.kernels.context import SeriesContext
from repro.lint.contracts import (
    ensure,
    no_nan_profile,
    number_in,
    optional,
    positive_int,
    require,
    series_like,
)
from repro.matrixprofile.exclusion import exclusion_zone_half_width
from repro.matrixprofile.index import MatrixProfile

__all__ = ["scrimp", "pre_scrimp"]


def _diagonal_distances(
    t: FloatArray,
    diag: int,
    length: int,
    mu: FloatArray,
    sigma: FloatArray,
) -> FloatArray:
    """Exact distances of every pair along diagonal ``diag`` (vectorized)."""
    n_subs = t.size - length + 1
    m = n_subs - diag  # number of pairs (i, i + diag)
    # QT(i, i+diag) = dot(t[i:i+l], t[i+diag:i+diag+l]): express the
    # window dot product as a difference of running cross-products.
    qt0 = float(np.dot(t[:length], t[diag : diag + length]))
    cross = t[: m + length - 1] * t[diag : diag + m + length - 1]
    cross_sums = np.concatenate([[0.0], np.cumsum(cross)])
    qt = qt0 + (cross_sums[length : length + m] - cross_sums[:m]) - (
        cross_sums[length] - cross_sums[0]
    )
    qt[0] = qt0
    sig_i = np.maximum(sigma[:m], CONSTANT_EPS)
    sig_j = np.maximum(sigma[diag : diag + m], CONSTANT_EPS)
    corr = (qt - length * mu[:m] * mu[diag : diag + m]) / (length * sig_i * sig_j)
    np.clip(corr, -1.0, 1.0, out=corr)
    dist = np.sqrt(np.maximum(2.0 * length * (1.0 - corr), 0.0))
    i_const = sigma[:m] < CONSTANT_EPS
    j_const = sigma[diag : diag + m] < CONSTANT_EPS
    dist = np.where(i_const ^ j_const, np.sqrt(length), dist)
    return np.where(i_const & j_const, 0.0, dist)


@require(
    series=series_like(min_length=4),
    length=positive_int(),
    fraction=number_in(0.0, 1.0, open_low=True),
)
@ensure(no_nan_profile)
def scrimp(
    series: FloatArray,
    length: int,
    fraction: float = 1.0,
    rng: Optional[np.random.Generator] = None,
    context: Optional[SeriesContext] = None,
) -> MatrixProfile:
    """Matrix profile by diagonal traversal.

    Parameters
    ----------
    fraction:
        Anytime budget: the fraction of diagonals to visit (1.0 = exact).
        Visited pairs produce exact entries; unvisited pairs may leave
        entries above their true value.
    rng:
        Diagonal visiting order for anytime runs; nearest-first when None.
    """
    ctx = SeriesContext.ensure(series, context, min_length=4)
    t = ctx.series
    n_subs = validate_subsequence_length(t.size, length)
    if not 0.0 < fraction <= 1.0:
        raise InvalidParameterError(f"fraction must be in (0, 1], got {fraction}")
    mu, sigma = ctx.moving_mean_std(length)
    zone = exclusion_zone_half_width(length)
    profile = np.full(n_subs, np.inf, dtype=np.float64)
    index = np.full(n_subs, -1, dtype=np.int64)

    diagonals = np.arange(zone, n_subs)
    if rng is not None:
        diagonals = rng.permutation(diagonals)
    budget = max(1, int(round(fraction * diagonals.size)))
    if obs.enabled():
        # Each visited diagonal d holds n_subs - d pairs, seen from both
        # sides; a full run sums to the shared k(k+1) cell count.
        visited = diagonals[:budget].astype(np.int64)
        obs.add("engine.rows", n_subs)
        obs.add("engine.cells", int((2 * (n_subs - visited)).sum()))
        obs.add("scrimp.diagonals", int(visited.size))
    with obs.span("engine.scrimp"):
        for diag in diagonals[:budget]:
            diag = int(diag)
            dist = _diagonal_distances(t, diag, length, mu, sigma)
            m = dist.size
            rows = np.arange(m)
            cols = rows + diag
            better_row = dist < profile[:m]
            profile[rows[better_row]] = dist[better_row]
            index[rows[better_row]] = cols[better_row]
            better_col = dist < profile[diag:]
            profile[cols[better_col]] = dist[better_col]
            index[cols[better_col]] = rows[better_col]
    return MatrixProfile(profile=profile, index=index, length=length)


@require(
    series=series_like(min_length=4),
    length=positive_int(),
    stride=optional(positive_int()),
)
@ensure(no_nan_profile)
def pre_scrimp(
    series: FloatArray,
    length: int,
    stride: Optional[int] = None,
    context: Optional[SeriesContext] = None,
) -> MatrixProfile:
    """PRE-SCRIMP: the O(n^2 / s) approximate warm-up phase.

    Computes a full MASS distance profile for every ``stride``-th
    subsequence and propagates each discovered neighbor to the positions
    in between (shifting both windows together keeps them similar) — the
    published algorithm's "anytime seed".  Entries are upper bounds.
    """
    ctx = SeriesContext.ensure(series, context, min_length=4)
    t = ctx.series
    n_subs = validate_subsequence_length(t.size, length)
    if stride is None:
        # PRE-SCRIMP's published sampling stride happens to be l/2 but it
        # is a row-sampling rate, not a trivial-match zone.
        stride = max(1, length // 2)  # repro-lint: ignore[R004]
    if stride <= 0:
        raise InvalidParameterError(f"stride must be positive, got {stride}")
    mu, sigma = ctx.moving_mean_std(length)
    zone = exclusion_zone_half_width(length)
    profile = np.full(n_subs, np.inf, dtype=np.float64)
    index = np.full(n_subs, -1, dtype=np.int64)

    for anchor in range(0, n_subs, stride):
        row = mass_with_stats(t, anchor, length, mu, sigma, context=ctx)
        apply_exclusion_zone(row, anchor, zone)
        j = int(np.argmin(row))
        if not np.isfinite(row[j]):
            continue
        if row[j] < profile[anchor]:
            profile[anchor] = row[j]
            index[anchor] = j
        if row[j] < profile[j]:
            profile[j] = row[j]
            index[j] = anchor
        # Propagate the (anchor, j) match to neighboring offsets.
        for shift in range(1, stride):
            a, b = anchor + shift, j + shift
            if a >= n_subs or b >= n_subs:
                break
            d = float(
                np.sqrt(
                    max(
                        0.0,
                        np.sum(
                            (
                                (t[a : a + length] - mu[a])
                                / max(sigma[a], CONSTANT_EPS)
                                - (t[b : b + length] - mu[b])
                                / max(sigma[b], CONSTANT_EPS)
                            )
                            ** 2
                        ),
                    )
                )
            )
            if d < profile[a]:
                profile[a] = d
                index[a] = b
            if d < profile[b]:
                profile[b] = d
                index[b] = a
    return MatrixProfile(profile=profile, index=index, length=length)
