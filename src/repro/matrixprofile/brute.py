"""Brute-force matrix profile: the ground truth every engine is tested on.

O(n^2 l): z-normalizes every subsequence explicitly and compares all
pairs.  Deliberately written with no shared state with the fast kernels so
an error in the optimized code cannot hide here.
"""

from __future__ import annotations

import numpy as np

from repro.types import FloatArray

from repro.distance.znorm import as_series, znormalized_distance
from repro.distance.sliding import validate_subsequence_length
from repro.matrixprofile.exclusion import exclusion_zone_half_width
from repro.matrixprofile.index import MatrixProfile
from repro.lint.contracts import ensure, no_nan_profile, positive_int, require, series_like

__all__ = ["brute_force_matrix_profile"]


@require(series=series_like(), length=positive_int())
@ensure(no_nan_profile)
def brute_force_matrix_profile(series: FloatArray, length: int) -> MatrixProfile:
    """Compute the matrix profile by exhaustive pairwise comparison."""
    t = as_series(series, min_length=4)
    n_subs = validate_subsequence_length(t.size, length)
    zone = exclusion_zone_half_width(length)
    profile = np.full(n_subs, np.inf, dtype=np.float64)
    index = np.full(n_subs, -1, dtype=np.int64)
    for i in range(n_subs):
        for j in range(i + zone, n_subs):
            d = znormalized_distance(t[i : i + length], t[j : j + length])
            if d < profile[i]:
                profile[i] = d
                index[i] = j
            if d < profile[j]:
                profile[j] = d
                index[j] = i
    return MatrixProfile(profile=profile, index=index, length=length)
