"""MPdist: a distance *between whole series* built from joins.

Matrix Profile XII's measure: two series are similar when they share
many similar subsequences, regardless of where they occur.  Concretely,
concatenate the AB-join and BA-join profiles and take the k-th smallest
value, with ``k = ceil(threshold * (|A| + |B|))`` (threshold 0.05 in
the original).  MPdist tolerates spikes, dropouts and misalignment that
break whole-series Euclidean distance, which makes it the right measure
for clustering recordings — see
:func:`repro.multiseries.consensus.mpdist_matrix`.

Properties (tested): non-negative, symmetric, zero for identical
series; NOT a metric (the triangle inequality may fail — by design).
"""

from __future__ import annotations

import math

import numpy as np

from repro.distance.znorm import as_series
from repro.exceptions import InvalidParameterError
from repro.matrixprofile.join import stomp_ab_join
from repro.lint.contracts import number_in, positive_int, require, series_like

__all__ = ["mpdist"]


@require(
    series_a=series_like(),
    series_b=series_like(),
    length=positive_int(),
    threshold=number_in(0.0, 1.0, open_low=True),
)
def mpdist(
    series_a: np.ndarray,
    series_b: np.ndarray,
    length: int,
    threshold: float = 0.05,
) -> float:
    """The MPdist between two series at one subsequence length."""
    a = as_series(series_a, min_length=4)
    b = as_series(series_b, min_length=4)
    if not 0.0 < threshold <= 1.0:
        raise InvalidParameterError(
            f"threshold must be in (0, 1], got {threshold}"
        )
    ab = stomp_ab_join(a, b, length).profile
    ba = stomp_ab_join(b, a, length).profile
    joined = np.concatenate([ab, ba])
    joined = joined[np.isfinite(joined)]
    if joined.size == 0:
        raise InvalidParameterError("no finite join distances")
    k = min(joined.size - 1, int(math.ceil(threshold * (a.size + b.size))))
    return float(np.partition(joined, k)[k])
