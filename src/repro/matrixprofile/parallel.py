"""Parallel tiled STOMP: diagonal chunks across worker processes.

The distance matrix of a series is symmetric, so the full matrix profile
is the min-reduction of the *upper-triangle* diagonals ``d >= zone`` (the
exclusion zone removes the band ``|i - j| < zone`` entirely).  This module
splits those diagonals into contiguous chunks, evaluates every chunk with
a vectorized kernel (rows sequential, diagonals vectorized — the SCRIMP
orientation driven by the STOMP recurrence), and merges the per-chunk
min-profiles with an exclusion-zone-correct, tie-break-stable reduction.

Chunks are independent, so they parallelize across processes.  The series
and window statistics travel through ``multiprocessing.shared_memory``
buffers — workers map them zero-copy — and each worker writes its chunk's
min-profile into a shared output slab that the parent merges in
deterministic chunk order.

Bitwise parity with serial STOMP
--------------------------------
The kernel is constructed so that ``parallel_stomp`` returns profiles and
indices *bitwise identical* to :func:`repro.matrixprofile.stomp.stomp`,
for any chunking and any worker count:

* Along a diagonal ``d``, the serial rolling update visits the same
  products in the same order as the per-row update does, because IEEE-754
  multiplication is commutative and the expression groups identically:
  ``(qt - t[i-1] t[j-1]) + t[i+l-1] t[j+l-1]``.  Each chain starts at the
  same FFT value ``qt_first[d]`` the serial row 0 produced.
* Serial STOMP computes every pair twice — row ``i`` sees column ``j``
  with ``i``'s statistics as the query, row ``j`` sees column ``i`` with
  ``j``'s — and the two floating-point results differ in ulps.  The
  kernel therefore evaluates *both* perspectives of every pair, mirroring
  :func:`repro.distance.profile.distance_profile_from_qt` operation by
  operation.
* When :func:`repro.matrixprofile.stomp.stomp_reanchor_rows` schedules
  exact recomputes, the restart pattern differs between the two
  perspectives (row ``i``'s chain restarts when a chain row is an anchor;
  row ``j``'s when *chain row + d* is), so the kernel carries two QT
  chains per chunk.  On data without extreme magnitudes the schedule is
  empty and the chains are identical.
* Serial ``argmin`` breaks ties toward the smallest column.  The merge
  reduces with ``(value, neighbor index)`` lexicographic order, which
  reproduces serial indices exactly, not just serial values.
"""

from __future__ import annotations

import os
import warnings
from concurrent.futures import ProcessPoolExecutor
from multiprocessing import get_context, shared_memory
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.types import FloatArray, IntArray

from repro.distance.sliding import validate_subsequence_length
from repro.distance.znorm import CONSTANT_EPS
from repro.exceptions import InvalidParameterError
from repro.kernels.context import SeriesContext
from repro.lint.contracts import (
    ensure,
    instance_of,
    int_at_least,
    no_nan_profile,
    optional,
    positive_int,
    require,
    series_like,
)
from repro.matrixprofile.exclusion import contributing_cells, exclusion_zone_half_width
from repro.matrixprofile.index import MatrixProfile
from repro.matrixprofile.stomp import exact_qt_row, stomp_reanchor_rows

__all__ = [
    "parallel_stomp",
    "resolve_n_jobs",
    "split_diagonals",
    "diagonal_chunk_min_profile",
    "merge_profiles",
]


@require(n_jobs=optional(instance_of(int)))
def resolve_n_jobs(n_jobs: Optional[int]) -> int:
    """Normalize an ``n_jobs`` request to a positive worker count.

    ``None`` and ``0`` mean "let the library decide" (all visible CPUs);
    negative values follow the joblib convention ``cpus + 1 + n_jobs``
    (so ``-1`` is all CPUs, ``-2`` all but one).
    """
    cpus = os.cpu_count() or 1
    if n_jobs is None or n_jobs == 0:
        return cpus
    if n_jobs < 0:
        return max(1, cpus + 1 + n_jobs)
    return int(n_jobs)


@require(n_subs=positive_int(), zone=int_at_least(0), n_chunks=positive_int())
def split_diagonals(
    n_subs: int, zone: int, n_chunks: int
) -> List[Tuple[int, int]]:
    """Partition diagonals ``[zone, n_subs)`` into area-balanced ranges.

    Diagonal ``d`` holds ``n_subs - d`` pairs, so near diagonals are much
    heavier than far ones; balancing by pair count (not diagonal count)
    keeps workers evenly loaded.  Returns ``[(d_lo, d_hi), ...]`` covering
    the range exactly once; fewer than ``n_chunks`` ranges come back when
    there are not enough diagonals to split.
    """
    if n_chunks <= 0:
        raise InvalidParameterError(f"n_chunks must be positive, got {n_chunks}")
    diagonals = np.arange(zone, n_subs)
    if diagonals.size == 0:
        return []
    n_chunks = min(n_chunks, diagonals.size)
    areas = (n_subs - diagonals).astype(np.float64)
    cum = np.cumsum(areas)
    targets = cum[-1] * (np.arange(1, n_chunks) / n_chunks)
    cuts = np.searchsorted(cum, targets, side="left") + 1
    bounds = np.concatenate([[0], cuts, [diagonals.size]])
    bounds = np.unique(bounds)
    return [
        (int(zone + bounds[k]), int(zone + bounds[k + 1]))
        for k in range(bounds.size - 1)
    ]


def _both_side_distances(
    qt_i: FloatArray,
    qt_j: FloatArray,
    length: int,
    mu_i: float,
    sigma_i: float,
    mu_j: FloatArray,
    sigma_j: FloatArray,
    sqrt_l: float,
) -> Tuple[FloatArray, FloatArray]:
    """Eq. 3 for one row of a chunk, from both pair perspectives.

    Mirrors ``distance_profile_from_qt`` operation by operation so each
    result is bitwise identical to the corresponding serial row entry:
    ``d_ik`` is the distance as seen from row ``i`` (scalar query ``i``,
    vector windows ``j``), ``d_jk`` as seen from the rows ``j`` (vector
    queries ``j``, scalar window ``i``).
    """
    i_const = sigma_i < CONSTANT_EPS
    j_const = sigma_j < CONSTANT_EPS

    # Row-i perspective: query statistics are scalars.
    sq_i = max(sigma_i, CONSTANT_EPS)
    with np.errstate(divide="ignore", invalid="ignore"):
        corr = (qt_i - length * mu_i * mu_j) / (length * sq_i * sigma_j)
    corr[~np.isfinite(corr)] = 0.0
    np.clip(corr, -1.0, 1.0, out=corr)
    dist_sq = 2.0 * length * (1.0 - corr)
    np.maximum(dist_sq, 0.0, out=dist_sq)
    d_ik = np.sqrt(dist_sq)
    if i_const:
        d_ik = np.where(j_const, 0.0, sqrt_l)
    else:
        d_ik[j_const] = sqrt_l

    # Row-j perspective: query statistics are the vectors.
    sq_j = np.maximum(sigma_j, CONSTANT_EPS)
    with np.errstate(divide="ignore", invalid="ignore"):
        corr = (qt_j - length * mu_j * mu_i) / (length * sq_j * sigma_i)
    corr[~np.isfinite(corr)] = 0.0
    np.clip(corr, -1.0, 1.0, out=corr)
    dist_sq = 2.0 * length * (1.0 - corr)
    np.maximum(dist_sq, 0.0, out=dist_sq)
    d_jk = np.sqrt(dist_sq)
    if i_const:
        d_jk[j_const] = 0.0
        d_jk[~j_const] = sqrt_l
    else:
        d_jk[j_const] = sqrt_l

    return d_ik, d_jk


@require(length=positive_int(), d_lo=int_at_least(0), d_hi=int_at_least(0))
def diagonal_chunk_min_profile(
    t: FloatArray,
    length: int,
    mu: FloatArray,
    sigma: FloatArray,
    qt_first: FloatArray,
    anchors: IntArray,
    d_lo: int,
    d_hi: int,
) -> Tuple[FloatArray, IntArray]:
    """Min-profile contribution of diagonals ``[d_lo, d_hi)``.

    Returns ``(profile, index)`` of full length ``n_subs``: positions the
    chunk never touches stay at ``(inf, -1)``.  Every touched entry holds
    the bitwise-exact serial value of the best pair within the chunk, with
    serial tie-breaking (smallest neighbor index wins).
    """
    n_subs = t.size - length + 1
    if not 0 < d_lo <= d_hi <= n_subs:
        raise InvalidParameterError(
            f"diagonal range [{d_lo}, {d_hi}) out of bounds for {n_subs} rows"
        )
    profile = np.full(n_subs, np.inf, dtype=np.float64)
    index = np.full(n_subs, -1, dtype=np.int64)
    if d_lo == d_hi:
        return profile, index
    sqrt_l = float(np.sqrt(length))
    # Two QT chains per chunk (see module docstring): qv_i feeds the
    # row-i-perspective distances, qv_j the row-j-perspective ones.  They
    # coincide bit for bit whenever the re-anchor schedule is empty.
    width = min(d_hi, n_subs) - d_lo
    qv_i = qt_first[d_lo : d_lo + width].copy()
    qv_j = qv_i.copy()
    anchor_rows = set(int(a) for a in anchors)
    exact_rows: dict = {}

    def exact_row(a: int) -> FloatArray:
        row = exact_rows.get(a)
        if row is None:
            row = exact_qt_row(t, a, length)
            exact_rows[a] = row
        return row

    n_rows = n_subs - d_lo
    for i in range(n_rows):
        m = min(d_hi, n_subs - i) - d_lo
        if i > 0:
            qv_i = qv_i[:m]
            qv_j = qv_j[:m]
            heads = t[i - 1 + d_lo : i - 1 + d_lo + m]
            tails = t[i + length - 1 + d_lo : i + length - 1 + d_lo + m]
            if i in anchor_rows:
                # Serial row i was recomputed exactly; both entries
                # (i, i+d) of the i-chain restart from that row.
                qv_i = exact_row(i)[i + d_lo : i + d_lo + m]
            else:
                qv_i = qv_i - heads * t[i - 1] + tails * t[i + length - 1]
            qv_j = qv_j - heads * t[i - 1] + tails * t[i + length - 1]
            if anchors.size:
                # Serial row a = i + d was recomputed exactly; the
                # j-chain of diagonal d restarts from its column i.
                lo = int(np.searchsorted(anchors, i + d_lo, side="left"))
                hi = int(np.searchsorted(anchors, i + d_lo + m, side="left"))
                for a in anchors[lo:hi]:
                    a = int(a)
                    qv_j[a - i - d_lo] = exact_row(a)[i]
        cols = slice(i + d_lo, i + d_lo + m)
        d_ik, d_jk = _both_side_distances(
            qv_i,
            qv_j,
            length,
            float(mu[i]),
            float(sigma[i]),
            mu[cols],
            sigma[cols],
            sqrt_l,
        )
        # Row-i side: one candidate — the chunk-local argmin, which is
        # the smallest column among ties, exactly like serial argmin.
        jloc = int(np.argmin(d_ik))
        v = d_ik[jloc]
        j_abs = i + d_lo + jloc
        if v < profile[i] or (v == profile[i] and j_abs < index[i]):
            profile[i] = v
            index[i] = j_abs
        # Row-j side: vectorized update of all columns this row touches.
        # Strict ``<`` plus the smaller-neighbor tie rule keeps the first
        # minimum, matching serial argmin over the full row.
        ps = profile[cols]
        isl = index[cols]
        better = (d_jk < ps) | ((d_jk == ps) & (isl >= 0) & (i < isl))
        ps[better] = d_jk[better]
        isl[better] = i
    return profile, index


def merge_profiles(  # repro-lint: ignore[R013] - pairwise reduction of worker outputs
    profiles: Sequence[FloatArray], indices: Sequence[IntArray]
) -> Tuple[FloatArray, IntArray]:
    """Reduce per-chunk min-profiles into one profile.

    Lexicographic ``(value, neighbor index)`` minimum per position: ties
    between chunks resolve toward the smallest neighbor index, which is
    what serial STOMP's first-occurrence ``argmin`` produces.  ``-1``
    indices mark untouched positions and never win a tie.
    """
    if not profiles or len(profiles) != len(indices):
        raise InvalidParameterError("profiles and indices must pair up, non-empty")
    profile = profiles[0].copy()
    index = indices[0].copy()
    for prof, idx in zip(profiles[1:], indices[1:]):
        better = (prof < profile) | (
            (prof == profile) & (idx >= 0) & ((index < 0) | (idx < index))
        )
        profile[better] = prof[better]
        index[better] = idx[better]
    return profile, index


# ---------------------------------------------------------------------------
# Shared-memory plumbing
# ---------------------------------------------------------------------------


def _create_shared(arr: FloatArray) -> Tuple[shared_memory.SharedMemory, FloatArray]:
    """Copy ``arr`` into a fresh shared-memory block; returns (shm, view)."""
    shm = shared_memory.SharedMemory(create=True, size=max(1, arr.nbytes))
    view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=shm.buf)
    view[...] = arr
    return shm, view


def _attach(name: str, shape: Tuple[int, ...], dtype: str, untrack: bool):
    """Attach to an existing block, optionally without tracking it.

    Under a *spawn* start method every worker runs its own resource
    tracker, which would unlink the block when the first worker exits —
    yanking it out from under its siblings and the parent (who owns the
    lifetime and unlinks in its ``finally``).  Those workers must
    unregister after attaching.  Under *fork* the tracker is shared with
    the parent, and unregistering here would instead drop the parent's
    own registration — so they must not.
    """
    shm = shared_memory.SharedMemory(name=name)
    if untrack:
        try:  # pragma: no cover - depends on multiprocessing internals
            from multiprocessing import resource_tracker

            resource_tracker.unregister(shm._name, "shared_memory")
        except (ImportError, AttributeError, KeyError, ValueError) as err:
            # Tracker layout differs across Python patch releases; a failed
            # unregister only risks a spurious cleanup warning, so log and
            # continue.  Anything else (e.g. a corrupted tracker pipe) is a
            # real failure and propagates.
            warnings.warn(
                f"could not unregister shared-memory block {shm._name!r} "
                f"from the worker resource tracker: {err!r}",
                RuntimeWarning,
                stacklevel=2,
            )
    return shm, np.ndarray(shape, dtype=np.dtype(dtype), buffer=shm.buf)


def _chunk_worker(task):
    """Evaluate one diagonal chunk against shared-memory inputs.

    Runs in a worker process.  Writes the chunk's min-profile into slot
    ``slot`` of the shared output slabs and returns ``(slot, trace)``
    where ``trace`` is the worker's tracer snapshot (None when tracing
    is off — see :func:`repro.obs.worker_begin`).
    """
    (
        slot,
        d_lo,
        d_hi,
        length,
        names,
        n,
        n_subs,
        n_anchors,
        n_slots,
        untrack,
        trace,
    ) = task
    obs.worker_begin(trace)
    blocks = []
    try:
        shm_t, t = _attach(names["t"], (n,), "float64", untrack)
        blocks.append(shm_t)
        shm_mu, mu = _attach(names["mu"], (n_subs,), "float64", untrack)
        blocks.append(shm_mu)
        shm_sig, sigma = _attach(names["sigma"], (n_subs,), "float64", untrack)
        blocks.append(shm_sig)
        shm_qt, qt_first = _attach(names["qt_first"], (n_subs,), "float64", untrack)
        blocks.append(shm_qt)
        shm_anc, anchors = _attach(names["anchors"], (n_anchors,), "int64", untrack)
        blocks.append(shm_anc)
        shm_p, out_profile = _attach(
            names["profile"], (n_slots, n_subs), "float64", untrack
        )
        blocks.append(shm_p)
        shm_i, out_index = _attach(
            names["index"], (n_slots, n_subs), "int64", untrack
        )
        blocks.append(shm_i)
        with obs.span("engine.parallel-stomp/chunk"):
            prof, idx = diagonal_chunk_min_profile(
                t, length, mu, sigma, qt_first, anchors, d_lo, d_hi
            )
        out_profile[slot] = prof
        out_index[slot] = idx
        return slot, obs.worker_snapshot()
    finally:
        for shm in blocks:
            shm.close()


def _preferred_context():
    """Fork where available (zero-copy page sharing), else the default."""
    try:
        return get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return get_context()


@require(
    series=series_like(min_length=4),
    length=positive_int(),
    n_jobs=optional(instance_of(int)),
    n_chunks=optional(positive_int()),
)
@ensure(no_nan_profile)
def parallel_stomp(
    series: FloatArray,
    length: int,
    n_jobs: Optional[int] = None,
    n_chunks: Optional[int] = None,
    context: Optional[SeriesContext] = None,
) -> MatrixProfile:
    """Matrix profile via diagonal chunks across worker processes.

    Bitwise identical to :func:`repro.matrixprofile.stomp.stomp` — values
    *and* indices — for every ``n_jobs`` / ``n_chunks`` combination.

    Parameters
    ----------
    series, length:
        The data series and subsequence length.
    n_jobs:
        Worker processes.  ``None``/``0`` uses all visible CPUs, negative
        follows the joblib convention, ``1`` runs in-process without
        spawning anything.
    n_chunks:
        Number of diagonal chunks (defaults to the worker count).  More
        chunks than workers simply queue; results never depend on it.
    """
    ctx = SeriesContext.ensure(series, context, min_length=4)
    t = ctx.series
    n_subs = validate_subsequence_length(t.size, length)
    jobs = resolve_n_jobs(n_jobs)
    if n_chunks is None:
        n_chunks = jobs
    zone = exclusion_zone_half_width(length)
    mu, sigma = ctx.moving_mean_std(length)
    qt_first = ctx.sliding_dot_product(t[:length])
    anchors = stomp_reanchor_rows(t, length, sigma)
    ranges = split_diagonals(n_subs, zone, n_chunks)
    if not ranges:
        return MatrixProfile(
            profile=np.full(n_subs, np.inf, dtype=np.float64),
            index=np.full(n_subs, -1, dtype=np.int64),
            length=length,
        )

    if obs.enabled():
        obs.add("engine.rows", n_subs)
        obs.add("engine.cells", contributing_cells(n_subs, zone))
        obs.add("parallel.chunks", len(ranges))
        obs.add("parallel.qt_reanchor_rows", int(anchors.size))

    if jobs == 1 or len(ranges) == 1:
        with obs.span("engine.parallel-stomp"):
            parts = []
            for d_lo, d_hi in ranges:
                with obs.span("chunk"):
                    parts.append(
                        diagonal_chunk_min_profile(
                            t, length, mu, sigma, qt_first, anchors, d_lo, d_hi
                        )
                    )
            profile, index = merge_profiles(
                [p for p, _ in parts], [i for _, i in parts]
            )
        return MatrixProfile(profile=profile, index=index, length=length)

    n_slots = len(ranges)
    shms: List[shared_memory.SharedMemory] = []
    try:
        shm_t, _ = _create_shared(t)
        shms.append(shm_t)
        shm_mu, _ = _create_shared(mu)
        shms.append(shm_mu)
        shm_sig, _ = _create_shared(sigma)
        shms.append(shm_sig)
        shm_qt, _ = _create_shared(qt_first)
        shms.append(shm_qt)
        shm_anc, _ = _create_shared(anchors)
        shms.append(shm_anc)
        out_p = shared_memory.SharedMemory(
            create=True, size=n_slots * n_subs * 8
        )
        shms.append(out_p)
        out_i = shared_memory.SharedMemory(
            create=True, size=n_slots * n_subs * 8
        )
        shms.append(out_i)
        names = {
            "t": shm_t.name,
            "mu": shm_mu.name,
            "sigma": shm_sig.name,
            "qt_first": shm_qt.name,
            "anchors": shm_anc.name,
            "profile": out_p.name,
            "index": out_i.name,
        }
        ctx = _preferred_context()
        untrack = ctx.get_start_method() != "fork"
        tasks = [
            (
                slot,
                d_lo,
                d_hi,
                length,
                names,
                t.size,
                n_subs,
                anchors.size,
                n_slots,
                untrack,
                obs.enabled(),
            )
            for slot, (d_lo, d_hi) in enumerate(ranges)
        ]
        with obs.span("engine.parallel-stomp"):
            with ProcessPoolExecutor(
                max_workers=min(jobs, n_slots), mp_context=ctx
            ) as pool:
                done = []
                for slot, trace in pool.map(_chunk_worker, tasks):
                    done.append(slot)
                    obs.merge(trace)
            if sorted(done) != list(range(n_slots)):  # pragma: no cover
                raise RuntimeError("parallel chunk workers did not all complete")
            slab_p = np.ndarray(
                (n_slots, n_subs), dtype=np.float64, buffer=out_p.buf
            )
            slab_i = np.ndarray((n_slots, n_subs), dtype=np.int64, buffer=out_i.buf)
            # Merge in deterministic chunk order, copying out of shared memory
            # before the blocks are torn down.
            profile, index = merge_profiles(
                [slab_p[k].copy() for k in range(n_slots)],
                [slab_i[k].copy() for k in range(n_slots)],
            )
    finally:
        for shm in shms:
            shm.close()
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover
                pass
    return MatrixProfile(profile=profile, index=index, length=length)
