"""Exclusion-zone (trivial match) policy.

The paper follows the matrix-profile convention: a match between windows
``i`` and ``j`` is *trivial* when ``|i - j| < l / 2`` — a subsequence
matched against itself or a heavily overlapping copy (Section 2).  The
half-width is centralized here so every engine, baseline, and test uses
the same rule.
"""

from __future__ import annotations

import math

from repro.exceptions import InvalidParameterError

__all__ = ["exclusion_zone_half_width", "is_trivial_match"]


def exclusion_zone_half_width(length: int) -> int:
    """Half-width of the trivial-match zone for subsequence length ``l``.

    The paper sets the zone heuristically to ``l/2``; we round up so the
    zone never vanishes and so odd lengths behave like the reference
    implementations.
    """
    if length <= 0:
        raise InvalidParameterError(f"length must be positive, got {length}")
    return max(1, int(math.ceil(length / 2.0)))


def is_trivial_match(i: int, j: int, length: int) -> bool:
    """True when windows ``i`` and ``j`` of length ``l`` trivially match."""
    return abs(i - j) < exclusion_zone_half_width(length)
