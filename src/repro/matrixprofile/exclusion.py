"""Exclusion-zone (trivial match) policy.

The paper follows the matrix-profile convention: a match between windows
``i`` and ``j`` is *trivial* when ``|i - j| < l / 2`` — a subsequence
matched against itself or a heavily overlapping copy (Section 2).  The
half-width is centralized here so every engine, baseline, and test uses
the same rule.
"""

from __future__ import annotations

import math

from repro.exceptions import InvalidParameterError
from repro.lint.contracts import int_at_least, positive_int, require

__all__ = ["contributing_cells", "exclusion_zone_half_width", "is_trivial_match"]


@require(length=positive_int())
def exclusion_zone_half_width(length: int) -> int:
    """Half-width of the trivial-match zone for subsequence length ``l``.

    The paper sets the zone heuristically to ``l/2``; we round up so the
    zone never vanishes and so odd lengths behave like the reference
    implementations.
    """
    if length <= 0:
        raise InvalidParameterError(f"length must be positive, got {length}")
    return max(1, int(math.ceil(length / 2.0)))


@require(i=int_at_least(0), j=int_at_least(0), length=positive_int())
def is_trivial_match(i: int, j: int, length: int) -> bool:
    """True when windows ``i`` and ``j`` of length ``l`` trivially match."""
    return abs(i - j) < exclusion_zone_half_width(length)


@require(n_subs=positive_int(), zone=int_at_least(0))
def contributing_cells(n_subs: int, zone: int) -> int:
    """Number of ordered pairs ``(i, j)`` with ``|i - j| >= zone``.

    The engine-independent work measure behind the ``engine.cells``
    trace counter: every exact full-profile engine — row-order STOMP,
    MASS-per-row STAMP, diagonal-order SCRIMP, chunked parallel STOMP —
    evaluates exactly these cells of the distance matrix, so the counter
    is comparable across engines by construction.  Closed form
    ``k (k + 1)`` with ``k = n_subs - zone`` (each of the ``k`` upper
    diagonals ``d in [zone, n_subs)`` holds ``n_subs - d`` pairs, seen
    from both sides).
    """
    if n_subs < 0:
        raise InvalidParameterError(f"n_subs must be non-negative, got {n_subs}")
    if zone <= 0:
        raise InvalidParameterError(f"zone must be positive, got {zone}")
    k = n_subs - zone
    return k * (k + 1) if k > 0 else 0
