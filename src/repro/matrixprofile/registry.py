"""Engine registry: one place that maps engine names to implementations.

Every consumer that lets a caller pick a matrix-profile engine — the CLI,
the harness runner, the discord scanner — goes through this registry, so
adding an engine is one :func:`register_engine` call and every entry
point picks it up.

Engines differ in how they use ``n_jobs``: serial engines ignore it (and
the registry warns when a caller passes one anyway), parallel engines fan
out.  The ``parallel`` flag on the spec records which is which so callers
can warn or route accordingly.

Engines also differ in whether they can exploit a shared
:class:`~repro.kernels.SeriesContext`.  Specs registered with a
``compute_ctx`` entry point receive the caller's context (stats + FFT
cache) and reuse it; the rest fall back to their plain ``compute``
callable, so passing a context is always safe.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Set, Tuple

from repro.types import FloatArray

from repro import obs
from repro.exceptions import InvalidParameterError
from repro.kernels.blocked import blocked_stomp
from repro.kernels.context import SeriesContext
from repro.lint.contracts import instance_of, positive_int, require, series_like
from repro.matrixprofile.brute import brute_force_matrix_profile
from repro.matrixprofile.index import MatrixProfile
from repro.matrixprofile.parallel import parallel_stomp
from repro.matrixprofile.scrimp import scrimp
from repro.matrixprofile.stamp import stamp
from repro.matrixprofile.stomp import stomp

__all__ = [
    "EngineSpec",
    "register_engine",
    "get_engine",
    "engine_names",
    "compute_with",
    "DEFAULT_ENGINE",
]

DEFAULT_ENGINE = "stomp"

ComputeFn = Callable[[FloatArray, int, Optional[int]], MatrixProfile]
ComputeCtxFn = Callable[
    [FloatArray, int, Optional[int], Optional[SeriesContext]], MatrixProfile
]


@dataclass(frozen=True)
class EngineSpec:
    """A registered matrix-profile engine.

    ``compute`` takes ``(series, length, n_jobs)`` and returns a
    :class:`MatrixProfile`; serial engines receive ``n_jobs`` and ignore
    it.  ``parallel`` marks engines that actually honor ``n_jobs``.
    ``compute_ctx``, when present, takes ``(series, length, n_jobs,
    context)`` and threads a shared :class:`SeriesContext` into the
    engine; results are identical with or without it.
    """

    name: str
    compute: ComputeFn
    parallel: bool
    description: str
    compute_ctx: Optional[ComputeCtxFn] = None


_REGISTRY: Dict[str, EngineSpec] = {}

#: engine names that already emitted the ignored-``n_jobs`` warning this
#: process — the warning fires once per engine, the obs counter always.
_N_JOBS_WARNED: Set[str] = set()


@require(name=instance_of(str))
def register_engine(
    name: str,
    compute: ComputeFn,
    parallel: bool = False,
    description: str = "",
    compute_ctx: Optional[ComputeCtxFn] = None,
) -> EngineSpec:
    """Register (or replace) an engine under ``name``."""
    if not name:
        raise InvalidParameterError("engine name must be non-empty")
    spec = EngineSpec(
        name=name,
        compute=compute,
        parallel=parallel,
        description=description,
        compute_ctx=compute_ctx,
    )
    _REGISTRY[name] = spec
    return spec


def engine_names() -> Tuple[str, ...]:  # repro-lint: ignore[R013] - zero-argument accessor
    """Registered engine names, in registration order."""
    return tuple(_REGISTRY)


@require(name=instance_of(str))
def get_engine(name: str) -> EngineSpec:
    """Look up an engine; raises with the valid choices on a miss."""
    spec = _REGISTRY.get(name)
    if spec is None:
        choices = ", ".join(sorted(_REGISTRY))
        raise InvalidParameterError(
            f"unknown engine {name!r}; choose one of: {choices}"
        )
    return spec


@require(
    name=instance_of(str),
    series=series_like(min_length=4),
    length=positive_int(),
)
def compute_with(
    name: str,
    series: FloatArray,
    length: int,
    n_jobs: Optional[int] = None,
    context: Optional[SeriesContext] = None,
) -> MatrixProfile:
    """Compute a matrix profile with the engine registered under ``name``.

    ``context`` optionally carries a shared :class:`SeriesContext`;
    context-aware engines reuse its cached statistics and series FFT,
    other engines silently ignore it (results are identical either way).
    Passing ``n_jobs`` other than ``1`` to a serial engine warns once per
    engine and bumps the ``engine.n_jobs_ignored`` counter every time.
    """
    spec = get_engine(name)
    if not spec.parallel and n_jobs is not None and n_jobs != 1:
        obs.add("engine.n_jobs_ignored")
        if spec.name not in _N_JOBS_WARNED:
            _N_JOBS_WARNED.add(spec.name)
            warnings.warn(
                f"engine {spec.name!r} is serial; n_jobs={n_jobs} is ignored",
                RuntimeWarning,
                stacklevel=2,
            )
    if spec.compute_ctx is not None:
        return spec.compute_ctx(series, length, n_jobs, context)
    return spec.compute(series, length, n_jobs)


register_engine(
    "stomp",
    lambda series, length, n_jobs=None: stomp(series, length),
    parallel=False,
    description="serial O(n^2) rolling-dot-product engine (default)",
    compute_ctx=lambda series, length, n_jobs, context: stomp(
        series, length, context=context
    ),
)
register_engine(
    "stamp",
    lambda series, length, n_jobs=None: stamp(series, length),
    parallel=False,
    description="MASS-per-row anytime engine",
    compute_ctx=lambda series, length, n_jobs, context: stamp(
        series, length, context=context
    ),
)
register_engine(
    "scrimp",
    lambda series, length, n_jobs=None: scrimp(series, length),
    parallel=False,
    description="diagonal-order anytime engine",
    compute_ctx=lambda series, length, n_jobs, context: scrimp(
        series, length, context=context
    ),
)
register_engine(
    "brute",
    lambda series, length, n_jobs=None: brute_force_matrix_profile(series, length),
    parallel=False,
    description="O(n^2 l) reference oracle",
)
register_engine(
    "parallel-stomp",
    lambda series, length, n_jobs=None: parallel_stomp(series, length, n_jobs=n_jobs),
    parallel=True,
    description="diagonal-chunked STOMP across worker processes",
    compute_ctx=lambda series, length, n_jobs, context: parallel_stomp(
        series, length, n_jobs=n_jobs, context=context
    ),
)
register_engine(
    "blocked-stomp",
    lambda series, length, n_jobs=None: blocked_stomp(series, length),
    parallel=False,
    description="cache-blocked diagonal STOMP kernel (float64)",
    compute_ctx=lambda series, length, n_jobs, context: blocked_stomp(
        series, length, context=context
    ),
)
register_engine(
    "blocked-stomp-f32",
    lambda series, length, n_jobs=None: blocked_stomp(
        series, length, precision="float32"
    ),
    parallel=False,
    description="blocked STOMP with float32 scoring + float64 verification",
    compute_ctx=lambda series, length, n_jobs, context: blocked_stomp(
        series, length, precision="float32", context=context
    ),
)
