"""Engine registry: one place that maps engine names to implementations.

Every consumer that lets a caller pick a matrix-profile engine — the CLI,
the harness runner, the discord scanner — goes through this registry, so
adding an engine is one :func:`register_engine` call and every entry
point picks it up.

Engines differ in how they use ``n_jobs``: serial engines ignore it (and
the registry does not pretend otherwise), parallel engines fan out.  The
``parallel`` flag on the spec records which is which so callers can warn
or route accordingly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.types import FloatArray

from repro.exceptions import InvalidParameterError
from repro.lint.contracts import instance_of, positive_int, require, series_like
from repro.matrixprofile.brute import brute_force_matrix_profile
from repro.matrixprofile.index import MatrixProfile
from repro.matrixprofile.parallel import parallel_stomp
from repro.matrixprofile.scrimp import scrimp
from repro.matrixprofile.stamp import stamp
from repro.matrixprofile.stomp import stomp

__all__ = [
    "EngineSpec",
    "register_engine",
    "get_engine",
    "engine_names",
    "compute_with",
    "DEFAULT_ENGINE",
]

DEFAULT_ENGINE = "stomp"


@dataclass(frozen=True)
class EngineSpec:
    """A registered matrix-profile engine.

    ``compute`` takes ``(series, length, n_jobs)`` and returns a
    :class:`MatrixProfile`; serial engines receive ``n_jobs`` and ignore
    it.  ``parallel`` marks engines that actually honor ``n_jobs``.
    """

    name: str
    compute: Callable[[FloatArray, int, Optional[int]], MatrixProfile]
    parallel: bool
    description: str


_REGISTRY: Dict[str, EngineSpec] = {}


def register_engine(
    name: str,
    compute: Callable[[FloatArray, int, Optional[int]], MatrixProfile],
    parallel: bool = False,
    description: str = "",
) -> EngineSpec:
    """Register (or replace) an engine under ``name``."""
    if not name:
        raise InvalidParameterError("engine name must be non-empty")
    spec = EngineSpec(
        name=name, compute=compute, parallel=parallel, description=description
    )
    _REGISTRY[name] = spec
    return spec


def engine_names() -> Tuple[str, ...]:
    """Registered engine names, in registration order."""
    return tuple(_REGISTRY)


def get_engine(name: str) -> EngineSpec:
    """Look up an engine; raises with the valid choices on a miss."""
    spec = _REGISTRY.get(name)
    if spec is None:
        choices = ", ".join(sorted(_REGISTRY))
        raise InvalidParameterError(
            f"unknown engine {name!r}; choose one of: {choices}"
        )
    return spec


@require(
    name=instance_of(str),
    series=series_like(min_length=4),
    length=positive_int(),
)
def compute_with(
    name: str,
    series: FloatArray,
    length: int,
    n_jobs: Optional[int] = None,
) -> MatrixProfile:
    """Compute a matrix profile with the engine registered under ``name``."""
    return get_engine(name).compute(series, length, n_jobs)


register_engine(
    "stomp",
    lambda series, length, n_jobs=None: stomp(series, length),
    parallel=False,
    description="serial O(n^2) rolling-dot-product engine (default)",
)
register_engine(
    "stamp",
    lambda series, length, n_jobs=None: stamp(series, length),
    parallel=False,
    description="MASS-per-row anytime engine",
)
register_engine(
    "scrimp",
    lambda series, length, n_jobs=None: scrimp(series, length),
    parallel=False,
    description="diagonal-order anytime engine",
)
register_engine(
    "brute",
    lambda series, length, n_jobs=None: brute_force_matrix_profile(series, length),
    parallel=False,
    description="O(n^2 l) reference oracle",
)
register_engine(
    "parallel-stomp",
    lambda series, length, n_jobs=None: parallel_stomp(series, length, n_jobs=n_jobs),
    parallel=True,
    description="diagonal-chunked STOMP across worker processes",
)
