"""The :class:`MatrixProfile` result object.

Bundles the profile vector, the profile index (nearest-neighbor offsets),
and the subsequence length, and offers the queries the paper derives from
them: the motif pair (the minimum), a ranked list of top-k non-overlapping
motif pairs, and discords (the maxima — mentioned by the paper as the
natural companion application).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.exceptions import InvalidParameterError, NotComputedError
from repro.matrixprofile.exclusion import exclusion_zone_half_width
from repro.types import FloatArray, IntArray, MotifPair

__all__ = ["MatrixProfile"]


@dataclass
class MatrixProfile:
    """Matrix profile + index for one subsequence length.

    Attributes
    ----------
    profile:
        ``profile[i]`` is the z-normalized Euclidean distance between
        subsequence ``i`` and its nearest non-trivial neighbor.
    index:
        ``index[i]`` is that neighbor's offset (-1 when undefined).
    length:
        The subsequence length ``l``.
    """

    profile: FloatArray
    index: IntArray
    length: int

    def __post_init__(self) -> None:
        self.profile = np.asarray(self.profile, dtype=np.float64)
        self.index = np.asarray(self.index, dtype=np.int64)
        if self.profile.shape != self.index.shape:
            raise InvalidParameterError(
                "profile and index must have the same shape, got "
                f"{self.profile.shape} vs {self.index.shape}"
            )
        if self.length < 2:
            raise InvalidParameterError(
                f"subsequence length must be at least 2, got {self.length}"
            )

    def __len__(self) -> int:
        return self.profile.size

    @property
    def exclusion(self) -> int:
        """Trivial-match half-width for this length."""
        return exclusion_zone_half_width(self.length)

    def motif_pair(self) -> MotifPair:
        """The motif pair: the two subsequences realizing the profile minimum."""
        finite = np.isfinite(self.profile)
        if not finite.any():
            raise NotComputedError("matrix profile has no finite entries")
        a = int(np.argmin(np.where(finite, self.profile, np.inf)))
        b = int(self.index[a])
        if b < 0:
            raise NotComputedError(f"profile index undefined at position {a}")
        return MotifPair.build(a, b, self.length, float(self.profile[a]))

    def top_k_pairs(self, k: int) -> List[MotifPair]:
        """Top-k motif pairs with mutually non-overlapping occurrences.

        Repeatedly takes the profile minimum and masks the exclusion zone
        around both members, producing the ranked list of Definition 2.3's
        note ("if we remove the motif pair ... the second smallest becomes
        the new motif pair").
        """
        if k <= 0:
            raise InvalidParameterError(f"k must be positive, got {k}")
        working = self.profile.copy()
        working[~np.isfinite(working)] = np.inf
        pairs: List[MotifPair] = []
        occupied: List[int] = []
        zone = self.exclusion
        while len(pairs) < k:
            a = int(np.argmin(working))
            if not np.isfinite(working[a]):
                break
            b = int(self.index[a])
            # Skip entries whose stored neighbor falls into a previous
            # pair's zone: the matrix profile only remembers the first
            # nearest neighbor, so such entries cannot contribute a
            # disjoint pair.
            if b < 0 or any(abs(b - o) < zone for o in occupied):
                working[a] = np.inf
                continue
            pairs.append(MotifPair.build(a, b, self.length, float(working[a])))
            for center in (a, b):
                occupied.append(center)
                lo = max(0, center - zone + 1)
                hi = min(working.size, center + zone)
                working[lo:hi] = np.inf
        return pairs

    def discords(self, k: int = 1) -> List[int]:
        """Offsets of the k most anomalous subsequences (profile maxima)."""
        if k <= 0:
            raise InvalidParameterError(f"k must be positive, got {k}")
        working = np.where(np.isfinite(self.profile), self.profile, -np.inf)
        zone = self.exclusion
        result: List[int] = []
        while len(result) < k:
            a = int(np.argmax(working))
            if not np.isfinite(working[a]) or working[a] == -np.inf:
                break
            result.append(a)
            lo = max(0, a - zone + 1)
            hi = min(working.size, a + zone)
            working[lo:hi] = -np.inf
        return result

    def allclose(self, other: "MatrixProfile", atol: float = 1e-6) -> bool:
        """Profile equality within tolerance (indices may differ on ties)."""
        return (
            self.length == other.length
            and self.profile.shape == other.profile.shape
            and bool(np.allclose(self.profile, other.profile, atol=atol))
        )
