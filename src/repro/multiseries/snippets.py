"""Snippets: the most representative subsequences of a long series.

Matrix Profile XIII's question: "show me the k patterns that best
summarize this recording".  Following the published algorithm, the
similarity between a candidate snippet and a region of the series is an
MPdist-style measure over *sub*-windows of half the snippet length:
each region scores the average of its subwindows' distances to the
candidate's nearest subwindow.  The subwindow aggregation is what makes
the summary phase-invariant — a region full of sine cycles matches a
sine snippet regardless of phase alignment.

Snippets are then chosen greedily to maximize coverage (the candidate
that most reduces the series-wide area under the elementwise-minimum
region-distance curve), and every region is assigned to its nearest
snippet.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.distance.mass import mass_with_stats
from repro.distance.znorm import as_series
from repro.exceptions import InvalidParameterError
from repro.kernels.context import SeriesContext, ensure_context

__all__ = ["Snippet", "find_snippets"]


@dataclass(frozen=True)
class Snippet:
    """One representative subsequence and the region it covers."""

    start: int
    length: int
    coverage_fraction: float


def _region_distance_curve(
    t: np.ndarray,
    candidate_start: int,
    length: int,
    sub: int,
    mu: np.ndarray,
    sigma: np.ndarray,
    context: SeriesContext = None,
) -> np.ndarray:
    """D(candidate, j) for every region start j (vectorized).

    ``prof[p]`` is the distance of the series subwindow at ``p`` to the
    *nearest* subwindow of the candidate; the region score is the mean
    of ``prof`` over the region's subwindow positions.
    """
    n_sub = t.size - sub + 1
    prof = np.full(n_sub, np.inf, dtype=np.float64)
    for offset in range(length - sub + 1):
        row = mass_with_stats(
            t, candidate_start + offset, sub, mu, sigma, context=context
        )
        np.minimum(prof, row, out=prof)
    # Sliding mean of prof over each region's subwindow span.
    span = length - sub + 1
    cumulative = np.concatenate([[0.0], np.cumsum(prof)])
    n_regions = t.size - length + 1
    return (cumulative[span : span + n_regions] - cumulative[:n_regions]) / span


def find_snippets(
    series: np.ndarray,
    length: int,
    k: int = 2,
    stride: int = None,
) -> Tuple[List[Snippet], np.ndarray]:
    """Greedy top-k snippets plus the per-region assignment.

    Returns ``(snippets, assignment)`` where ``assignment[j]`` is the
    index (into the snippet list) of the snippet whose region distance
    at ``j`` is smallest.  Coverage fractions sum to 1.
    """
    t = as_series(series, min_length=8)
    if length < 4 or length > t.size // 2:
        raise InvalidParameterError(
            f"length {length} invalid for a series of {t.size} points"
        )
    if k <= 0:
        raise InvalidParameterError(f"k must be positive, got {k}")
    if stride is None:
        stride = length
    if stride <= 0:
        raise InvalidParameterError(f"stride must be positive, got {stride}")

    sub = max(2, length // 2)
    ctx = ensure_context(t)
    mu, sigma = ctx.moving_mean_std(sub)
    n_regions = t.size - length + 1
    candidates = list(range(0, n_regions, stride))
    curves = np.empty((len(candidates), n_regions), dtype=np.float64)
    for row, start in enumerate(candidates):
        curves[row] = _region_distance_curve(
            t, start, length, sub, mu, sigma, context=ctx
        )

    chosen: List[int] = []
    covered = np.full(n_regions, np.inf, dtype=np.float64)
    for _ in range(min(k, len(candidates))):
        gains = np.minimum(curves, covered[None, :]).sum(axis=1)
        gains[chosen] = np.inf
        pick = int(np.argmin(gains))
        chosen.append(pick)
        covered = np.minimum(covered, curves[pick])

    assignment = np.argmin(curves[chosen], axis=0)
    snippets = []
    for rank, row in enumerate(chosen):
        fraction = float((assignment == rank).mean())
        snippets.append(
            Snippet(
                start=candidates[row],
                length=length,
                coverage_fraction=fraction,
            )
        )
    return snippets, assignment
