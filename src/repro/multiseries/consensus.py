"""Consensus motifs (Ostinato) and MPdist matrices over collections.

The consensus motif of a collection is the subsequence with the
smallest *radius*: the pattern whose worst-case nearest-neighbor
distance across every OTHER series in the collection is minimal — "the
behaviour every recording exhibits".  The Ostinato algorithm evaluates
each candidate subsequence's radius via AB-joins, pruning with the
best-so-far radius (Matrix Profile XV).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.distance.profile import distance_profile_from_qt
from repro.distance.znorm import as_series
from repro.exceptions import InvalidParameterError
from repro.kernels.context import SeriesContext, ensure_context
from repro.matrixprofile.mpdist import mpdist

__all__ = ["ConsensusMotif", "consensus_motif", "mpdist_matrix"]


@dataclass(frozen=True)
class ConsensusMotif:
    """The collection-wide conserved pattern."""

    series_index: int
    start: int
    length: int
    radius: float
    neighbor_starts: Tuple[int, ...]  # best match per series (self = start)


def _min_distance_to(
    query: np.ndarray, target_ctx: SeriesContext, length: int, stats
) -> Tuple[float, int]:
    """Smallest z-normalized distance of one query within a target series."""
    mu, sigma = stats
    qt = target_ctx.sliding_dot_product(query)
    row = distance_profile_from_qt(
        qt, length, float(query.mean()), float(query.std()), mu, sigma
    )
    j = int(np.argmin(row))
    return float(row[j]), j


def consensus_motif(
    series_list: Sequence[np.ndarray], length: int
) -> ConsensusMotif:
    """The radius-minimizing subsequence across the collection.

    For every candidate window of every series, the radius is the max
    over other series of the best-match distance; candidates are
    abandoned as soon as a partial max exceeds the best-so-far radius
    (Ostinato's pruning).
    """
    if len(series_list) < 2:
        raise InvalidParameterError("need at least two series for a consensus")
    data = [as_series(s, min_length=4) for s in series_list]
    for s in data:
        if length < 2 or length > s.size // 2:
            raise InvalidParameterError(
                f"length {length} invalid for a series of {s.size} points"
            )
    contexts = [ensure_context(s) for s in data]
    all_stats = [ctx.moving_mean_std(length) for ctx in contexts]

    best_radius = np.inf
    best: ConsensusMotif = None
    for source, series in enumerate(data):
        n_subs = series.size - length + 1
        for start in range(n_subs):
            query = series[start : start + length]
            radius = 0.0
            neighbors = [0] * len(data)
            neighbors[source] = start
            abandoned = False
            for other in range(len(data)):
                if other == source:
                    continue
                d, j = _min_distance_to(
                    query, contexts[other], length, all_stats[other]
                )
                neighbors[other] = j
                if d > radius:
                    radius = d
                if radius >= best_radius:
                    abandoned = True
                    break
            if not abandoned and radius < best_radius:
                best_radius = radius
                best = ConsensusMotif(
                    series_index=source,
                    start=start,
                    length=length,
                    radius=radius,
                    neighbor_starts=tuple(neighbors),
                )
    return best


def mpdist_matrix(
    series_list: Sequence[np.ndarray], length: int, threshold: float = 0.05
) -> np.ndarray:
    """Symmetric pairwise MPdist matrix of a collection."""
    if len(series_list) < 2:
        raise InvalidParameterError("need at least two series")
    k = len(series_list)
    out = np.zeros((k, k), dtype=np.float64)
    for i in range(k):
        for j in range(i + 1, k):
            d = mpdist(series_list[i], series_list[j], length, threshold)
            out[i, j] = d
            out[j, i] = d
    return out
