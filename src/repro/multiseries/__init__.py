"""Cross-series tools: consensus motifs, MPdist matrices, snippets.

The paper's workloads often come as *collections* of recordings (many
insects, many drivers, many days of power data).  These tools answer
the collection-level questions:

* :func:`repro.multiseries.consensus.consensus_motif` — the pattern
  conserved across ALL series (Ostinato / Matrix Profile XV).
* :func:`repro.multiseries.consensus.mpdist_matrix` — pairwise MPdist
  for clustering recordings.
* :func:`repro.multiseries.snippets.find_snippets` — the most
  representative subsequences of one long series (Matrix Profile XIII).
"""

from repro.multiseries.consensus import (
    ConsensusMotif,
    consensus_motif,
    mpdist_matrix,
)
from repro.multiseries.snippets import Snippet, find_snippets

__all__ = [
    "ConsensusMotif",
    "consensus_motif",
    "mpdist_matrix",
    "Snippet",
    "find_snippets",
]
