"""Terminal visualization: sparklines and profile renderings.

Matplotlib-free plotting for examples, the CLI, and quick exploration:
unicode sparklines for series and profiles, and an annotated motif view
that marks discovered occurrences on the series.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

import numpy as np

from repro.exceptions import InvalidParameterError

__all__ = ["sparkline", "profile_view", "motif_view"]

_BARS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], width: int = 80) -> str:
    """One-line unicode rendering of a series (downsampled to ``width``)."""
    data = np.asarray(list(values), dtype=np.float64)
    data = data[np.isfinite(data)]
    if data.size == 0:
        raise InvalidParameterError("nothing to render")
    if width <= 0:
        raise InvalidParameterError(f"width must be positive, got {width}")
    if data.size > width:
        # bucket means preserve the envelope better than striding
        edges = np.linspace(0, data.size, width + 1).astype(int)
        data = np.array(
            [data[a:b].mean() if b > a else data[min(a, data.size - 1)]
             for a, b in zip(edges, edges[1:])]
        )
    lo, hi = float(data.min()), float(data.max())
    if hi - lo < 1e-12:
        return _BARS[0] * data.size
    scaled = (data - lo) / (hi - lo) * (len(_BARS) - 1)
    return "".join(_BARS[int(round(v))] for v in scaled)


def profile_view(
    profile: Sequence[float], width: int = 80, label: str = "profile"
) -> str:
    """Sparkline of a (matrix) profile plus its min/max annotations."""
    data = np.asarray(list(profile), dtype=np.float64)
    finite = data[np.isfinite(data)]
    if finite.size == 0:
        raise InvalidParameterError("profile has no finite entries")
    line = sparkline(np.where(np.isfinite(data), data, finite.max()), width)
    return (
        f"{label}: {line}\n"
        f"{'':{len(label)}}  min={finite.min():.3f} "
        f"max={finite.max():.3f} n={data.size}"
    )


def motif_view(
    series: Sequence[float],
    occurrences: Iterable[int],
    length: int,
    width: int = 80,
) -> str:
    """Series sparkline with a marker row underneath the occurrences."""
    data = np.asarray(list(series), dtype=np.float64)
    if length <= 0 or length > data.size:
        raise InvalidParameterError(f"bad motif length {length}")
    line = sparkline(data, width)
    rendered = min(width, data.size)
    markers: List[str] = [" "] * rendered
    scale = rendered / data.size
    for start in occurrences:
        if not 0 <= start <= data.size - length:
            raise InvalidParameterError(f"occurrence {start} out of range")
        lo = int(start * scale)
        hi = max(lo + 1, int((start + length) * scale))
        for i in range(lo, min(hi, rendered)):
            markers[i] = "^"
    return line + "\n" + "".join(markers)
