"""Shared result types for motif discovery.

These dataclasses are the vocabulary of the public API: a
:class:`MotifPair` is the paper's Definition 2.3 (the closest pair of
subsequences of one length), a :class:`MotifSet` is Definition 2.6 (a pair
extended by all subsequences within a radius), and :class:`Motif` is a
single located subsequence.

All offsets are 0-based positions into the analyzed series (the paper uses
1-based offsets in its figures; conversion is purely presentational).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Sequence, Tuple, Union

import numpy as np
from numpy.typing import NDArray

from repro.exceptions import InvalidParameterError

__all__ = [
    "Motif",
    "MotifPair",
    "MotifSet",
    "length_normalized",
    "FloatArray",
    "IntArray",
    "BoolArray",
    "ComplexArray",
    "SeriesLike",
]

#: 1-D float64 buffer — the dtype every kernel is calibrated for (R006).
FloatArray = NDArray[np.float64]
#: int64 index buffer (profile indices, neighbor offsets).
IntArray = NDArray[np.int64]
#: complex128 spectrum buffer (cached ``rfft`` plans of a series).
ComplexArray = NDArray[np.complex128]
#: boolean mask over subsequence positions.
BoolArray = NDArray[np.bool_]
#: anything the public API accepts as a data series; the central
#: validators convert it to a :data:`FloatArray`.
SeriesLike = Union[FloatArray, Sequence[float]]


def length_normalized(distance: float, length: int) -> float:
    """Apply the paper's ``sqrt(1/l)`` length correction (Section 3).

    The correction makes motif distances comparable across subsequence
    lengths: for a pattern injected at several speeds, the corrected
    distance between two instances is approximately invariant to length,
    unlike the raw distance (biased short) or ``distance / l`` (biased
    long); see Figure 2 of the paper.
    """
    if length <= 0:
        raise InvalidParameterError(f"length must be positive, got {length}")
    return distance * math.sqrt(1.0 / length)


@dataclass(frozen=True)
class Motif:
    """One located subsequence: ``series[start : start + length]``."""

    start: int
    length: int

    @property
    def end(self) -> int:
        """Exclusive end position."""
        return self.start + self.length

    def overlaps(self, other: "Motif") -> bool:
        """True when the two windows share at least one point."""
        return self.start < other.end and other.start < self.end


@dataclass(frozen=True, order=True)
class MotifPair:
    """The paper's motif pair: two subsequences of equal length.

    Ordering compares by ``normalized_distance`` first, which is exactly
    the cross-length ranking VALMOD uses (Section 3): sorting a list of
    :class:`MotifPair` yields the paper's variable-length motif ranking.
    """

    normalized_distance: float
    distance: float = field(compare=False)
    length: int = field(compare=False)
    a: int = field(compare=False)
    b: int = field(compare=False)

    @staticmethod
    def build(a: int, b: int, length: int, distance: float) -> "MotifPair":
        """Create a pair with canonical offset order and derived fields."""
        lo, hi = (a, b) if a <= b else (b, a)
        return MotifPair(
            normalized_distance=length_normalized(distance, length),
            distance=float(distance),
            length=int(length),
            a=int(lo),
            b=int(hi),
        )

    @property
    def motifs(self) -> Tuple[Motif, Motif]:
        """The two member subsequences as :class:`Motif` objects."""
        return (Motif(self.a, self.length), Motif(self.b, self.length))

    def is_trivial(self, exclusion: int) -> bool:
        """True when the pair violates the exclusion zone ``|a-b| < exclusion``."""
        return abs(self.a - self.b) < exclusion


@dataclass(frozen=True)
class MotifSet:
    """Definition 2.6: a motif pair extended by neighbors within radius r.

    ``members`` contains the offsets of every subsequence in the set,
    including the two seed offsets; ``radius`` is the actual radius used
    (``D * pair.distance`` for radius factor D).
    """

    pair: MotifPair
    radius: float
    members: Tuple[int, ...]

    @property
    def frequency(self) -> int:
        """Cardinality of the motif set (the paper calls this frequency)."""
        return len(self.members)

    @property
    def length(self) -> int:
        """Subsequence length shared by all members."""
        return self.pair.length

    def member_motifs(self) -> List[Motif]:
        """Members as :class:`Motif` windows."""
        return [Motif(start, self.pair.length) for start in self.members]
