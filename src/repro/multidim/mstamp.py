"""mSTAMP: the k-dimensional matrix profile for every k at once.

Algorithm (Yeh et al. 2017): for every query position, compute one
z-normalized distance profile *per dimension*, sort the per-position
distances across dimensions ascending, and prefix-average them.  The
k-th row of the result is the best achievable average distance using
the k best-agreeing dimensions — so row k's minimum is the k-dimensional
motif, and the argsorted dimension ids say *which* dimensions
participate.

Cost: O(d n^2) time via per-dimension MASS profiles, O(d n) memory per
query row.  Exactness is inherited from MASS (tested against a naive
implementation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.distance.mass import mass_with_stats
from repro.distance.profile import apply_exclusion_zone
from repro.exceptions import InvalidParameterError, InvalidSeriesError
from repro.kernels.context import ensure_context
from repro.matrixprofile.exclusion import exclusion_zone_half_width

__all__ = ["MultidimMatrixProfile", "MultidimMotif", "mstamp", "multidim_motifs"]


@dataclass(frozen=True)
class MultidimMotif:
    """The k-dimensional motif: a pair plus its participating dimensions."""

    k: int
    a: int
    b: int
    distance: float  # mean per-dimension z-normalized distance
    dimensions: Tuple[int, ...]

    @property
    def normalized_distance(self) -> float:
        return self.distance  # already an average of same-length distances


@dataclass
class MultidimMatrixProfile:
    """The (d, n_subs) multidimensional matrix profile.

    ``profile[k-1, i]`` is the smallest mean distance between window
    ``i`` and any non-trivial window, using the best k dimensions;
    ``index[k-1, i]`` that neighbor's offset.
    """

    length: int
    profile: np.ndarray
    index: np.ndarray

    @property
    def n_dimensions(self) -> int:
        return self.profile.shape[0]

    def motif(self, k: int, series: np.ndarray = None) -> MultidimMotif:
        """The k-dimensional motif (1-based k).

        Passing the original ``series`` recovers the participating
        dimensions (the k best-agreeing ones at the motif location).
        """
        if not 1 <= k <= self.n_dimensions:
            raise InvalidParameterError(
                f"k must be in [1, {self.n_dimensions}], got {k}"
            )
        row = self.profile[k - 1]
        finite = np.isfinite(row)
        if not finite.any():
            raise InvalidParameterError(f"no {k}-dimensional motif exists")
        a = int(np.argmin(np.where(finite, row, np.inf)))
        b = int(self.index[k - 1, a])
        dims: Tuple[int, ...] = tuple()
        if series is not None:
            dims = _participating_dimensions(series, self.length, a, b, k)
        return MultidimMotif(
            k=k, a=min(a, b), b=max(a, b), distance=float(row[a]), dimensions=dims
        )


def _validate_multidim(series: np.ndarray) -> np.ndarray:
    data = np.asarray(series, dtype=np.float64)
    if data.ndim != 2:
        raise InvalidSeriesError(
            f"multidimensional series must be (d, n), got ndim={data.ndim}"
        )
    if data.shape[0] < 1 or data.shape[0] > data.shape[1]:
        raise InvalidSeriesError(
            f"expected (d, n) with d <= n, got shape {data.shape}"
        )
    if not np.isfinite(data).all():
        raise InvalidSeriesError("series contains NaN or infinite values")
    return data


def _participating_dimensions(
    series: np.ndarray, length: int, a: int, b: int, k: int
) -> Tuple[int, ...]:
    """The k dimensions with the smallest pairwise distances at (a, b)."""
    from repro.distance.znorm import znormalized_distance

    data = _validate_multidim(series)
    distances = np.array(
        [
            znormalized_distance(
                data[dim, a : a + length], data[dim, b : b + length]
            )
            for dim in range(data.shape[0])
        ]
    )
    return tuple(int(d) for d in np.argsort(distances, kind="stable")[:k])


def mstamp(series: np.ndarray, length: int) -> MultidimMatrixProfile:
    """Compute the multidimensional matrix profile of a (d, n) series."""
    data = _validate_multidim(series)
    d, n = data.shape
    n_subs = n - length + 1
    if n_subs < 2 or length < 2 or length > n // 2:
        raise InvalidParameterError(
            f"length {length} invalid for a series of {n} points"
        )
    zone = exclusion_zone_half_width(length)
    # One context per dimension: each caches its stats and series FFT for
    # the whole query loop below.
    contexts = [ensure_context(data[dim]) for dim in range(d)]
    stats = [ctx.moving_mean_std(length) for ctx in contexts]

    profile = np.full((d, n_subs), np.inf, dtype=np.float64)
    index = np.full((d, n_subs), -1, dtype=np.int64)
    per_dim = np.empty((d, n_subs), dtype=np.float64)

    for i in range(n_subs):
        for dim in range(d):
            mu, sigma = stats[dim]
            per_dim[dim] = mass_with_stats(
                data[dim], i, length, mu, sigma, context=contexts[dim]
            )
        # Sort distances across dimensions per candidate position, then
        # prefix-average: row k-1 = best-k-dimensions mean distance.
        ordered = np.sort(per_dim, axis=0)
        cumulative = np.cumsum(ordered, axis=0)
        cumulative /= np.arange(1, d + 1)[:, None]
        for k_row in range(d):
            row = cumulative[k_row]
            masked = row.copy()
            apply_exclusion_zone(masked, i, zone)
            j = int(np.argmin(masked))
            if np.isfinite(masked[j]) and masked[j] < profile[k_row, i]:
                profile[k_row, i] = masked[j]
                index[k_row, i] = j
    return MultidimMatrixProfile(length=length, profile=profile, index=index)


def multidim_motifs(series: np.ndarray, length: int) -> List[MultidimMotif]:
    """The k-dimensional motif for every k = 1..d, with dimensions."""
    data = _validate_multidim(series)
    mp = mstamp(data, length)
    return [
        mp.motif(k, series=data) for k in range(1, mp.n_dimensions + 1)
    ]
