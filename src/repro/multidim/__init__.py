"""Multidimensional motif discovery (mSTAMP, Matrix Profile VI).

Real deployments of the paper's motivating domains (driving-stress
physiology: ECG + EMG + respiration; power: per-phase consumption)
record *several* aligned series.  A k-dimensional motif is a pattern
that repeats in some subset of k dimensions simultaneously — and the
right k is rarely known, so mSTAMP (Yeh, Kavantzas, Keogh 2017) returns
the motif for *every* k at once, the same all-answers philosophy VALMOD
applies to lengths.

API: :func:`repro.multidim.mstamp.mstamp` and
:func:`repro.multidim.mstamp.multidim_motifs`.
"""

from repro.multidim.mstamp import (
    MultidimMatrixProfile,
    MultidimMotif,
    mstamp,
    multidim_motifs,
)

__all__ = [
    "MultidimMatrixProfile",
    "MultidimMotif",
    "mstamp",
    "multidim_motifs",
]
