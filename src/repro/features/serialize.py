"""Exact JSON round-trip for :class:`~repro.features.result.SeriesFeatures`.

JSON floats serialize via ``repr`` and parse back to the identical
double, so a features object survives ``features_to_dict`` →
``json.dumps`` → ``json.loads`` → ``features_from_dict`` *bitwise*
unchanged — the property the store's warm path is tested against.
Derived fields (``normalized_distance``) are serialized rather than
recomputed on load, so fidelity never depends on how a value was
originally produced.

``features_from_dict`` validates shape defensively and raises
:class:`~repro.exceptions.InvalidParameterError` on malformed payloads;
the store treats that as a cache miss, never a crash.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Mapping, Optional

from repro.core.chains import Chain
from repro.core.discords import Discord
from repro.exceptions import InvalidParameterError
from repro.features.result import AnnotationSummary, SeriesFeatures
from repro.types import MotifPair, MotifSet
from repro.lint.contracts import instance_of, require

__all__ = ["features_from_dict", "features_to_dict", "save_features_json"]


def _pair_to_dict(pair: MotifPair) -> Dict[str, Any]:
    return {
        "a": pair.a,
        "b": pair.b,
        "length": pair.length,
        "distance": pair.distance,
        "normalized_distance": pair.normalized_distance,
    }


def _pair_from_dict(data: Mapping[str, Any]) -> MotifPair:
    return MotifPair(
        normalized_distance=float(data["normalized_distance"]),
        distance=float(data["distance"]),
        length=int(data["length"]),
        a=int(data["a"]),
        b=int(data["b"]),
    )


@require(features=instance_of(SeriesFeatures))
def features_to_dict(features: SeriesFeatures) -> Dict[str, Any]:
    """Flatten a features object into a JSON-serializable dict."""
    return {
        "n_points": features.n_points,
        "l_min": features.l_min,
        "l_max": features.l_max,
        "p": features.p,
        "engine": features.engine,
        "include": list(features.include),
        # Keyed by stringified length: the shape ``repro.io`` exports and
        # the CLI's ``--export`` consumers already parse.
        "motif_pairs": {
            str(pair.length): _pair_to_dict(pair)
            for pair in features.motif_pairs
        },
        "top_motifs": [_pair_to_dict(pair) for pair in features.top_motifs],
        "motif_sets": [
            {
                "pair": _pair_to_dict(motif_set.pair),
                "radius": motif_set.radius,
                "members": list(motif_set.members),
            }
            for motif_set in features.motif_sets
        ],
        "discords": [
            {
                "start": discord.start,
                "length": discord.length,
                "distance": discord.distance,
                "normalized_distance": discord.normalized_distance,
            }
            for discord in features.discords
        ],
        "discords_variable": [
            {
                "start": discord.start,
                "length": discord.length,
                "distance": discord.distance,
                "normalized_distance": discord.normalized_distance,
            }
            for discord in features.discords_variable
        ],
        "chain": (
            None
            if features.chain is None
            else {
                "members": list(features.chain.members),
                "length": features.chain.length,
                "total_link_distance": features.chain.total_link_distance,
            }
        ),
        "regime_boundaries": (
            None
            if features.regime_boundaries is None
            else list(features.regime_boundaries)
        ),
        "regime_cac": (
            None if features.regime_cac is None else list(features.regime_cac)
        ),
        "cac_min": features.cac_min,
        "annotation": (
            None
            if features.annotation is None
            else {
                "length": features.annotation.length,
                "mean": features.annotation.mean,
                "flat_fraction": features.annotation.flat_fraction,
            }
        ),
    }


@require(data=instance_of(dict))
def features_from_dict(data: Mapping[str, Any]) -> SeriesFeatures:
    """Rebuild a features object; raises on malformed payloads."""
    try:
        chain_data = data["chain"]
        chain: Optional[Chain] = None
        if chain_data is not None:
            chain = Chain(
                members=tuple(int(m) for m in chain_data["members"]),
                length=int(chain_data["length"]),
                total_link_distance=float(chain_data["total_link_distance"]),
            )
        annotation_data = data["annotation"]
        annotation: Optional[AnnotationSummary] = None
        if annotation_data is not None:
            annotation = AnnotationSummary(
                length=int(annotation_data["length"]),
                mean=float(annotation_data["mean"]),
                flat_fraction=float(annotation_data["flat_fraction"]),
            )
        boundaries = data["regime_boundaries"]
        regime_cac = data["regime_cac"]
        return SeriesFeatures(
            n_points=int(data["n_points"]),
            l_min=int(data["l_min"]),
            l_max=int(data["l_max"]),
            p=int(data["p"]),
            engine=str(data["engine"]),
            include=tuple(str(name) for name in data["include"]),
            motif_pairs=tuple(
                _pair_from_dict(data["motif_pairs"][key])
                for key in sorted(data["motif_pairs"], key=int)
            ),
            top_motifs=tuple(
                _pair_from_dict(item) for item in data["top_motifs"]
            ),
            motif_sets=tuple(
                MotifSet(
                    pair=_pair_from_dict(item["pair"]),
                    radius=float(item["radius"]),
                    members=tuple(int(m) for m in item["members"]),
                )
                for item in data["motif_sets"]
            ),
            discords=tuple(
                Discord(
                    normalized_distance=float(item["normalized_distance"]),
                    distance=float(item["distance"]),
                    length=int(item["length"]),
                    start=int(item["start"]),
                )
                for item in data["discords"]
            ),
            # Absent in pre-v2 payloads (user-exported JSON): default to
            # the empty tuple rather than rejecting the whole payload.
            discords_variable=tuple(
                Discord(
                    normalized_distance=float(item["normalized_distance"]),
                    distance=float(item["distance"]),
                    length=int(item["length"]),
                    start=int(item["start"]),
                )
                for item in data.get("discords_variable", ())
            ),
            chain=chain,
            regime_boundaries=(
                None
                if boundaries is None
                else tuple(int(b) for b in boundaries)
            ),
            regime_cac=(
                None
                if regime_cac is None
                else tuple(float(value) for value in regime_cac)
            ),
            cac_min=None if data["cac_min"] is None else float(data["cac_min"]),
            annotation=annotation,
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise InvalidParameterError(
            f"malformed features payload: {exc!r}"
        ) from exc


@require(path=instance_of(str), features=instance_of(SeriesFeatures))
def save_features_json(path: str, features: SeriesFeatures) -> None:
    """Write a features object to ``path`` as indented JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(features_to_dict(features), handle, indent=2, sort_keys=True)
        handle.write("\n")
