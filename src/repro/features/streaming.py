"""Streaming mode of the features façade: ``StreamingFeatures``.

Wraps :class:`repro.matrixprofile.streaming_valmod.StreamingValmod`
behind the same vocabulary as :func:`repro.features.extract_features`:
feed points with :meth:`StreamingFeatures.append` / ``extend``, read
change events with :meth:`drain_events`, and call :meth:`snapshot` for a
full :class:`~repro.features.result.SeriesFeatures` of the current
window.

Snapshots are *resumable through the store*: ``snapshot()`` routes the
current window through ``extract_features(..., store=...)``, whose
content-addressed key covers the exact window bytes and parameters.  A
process that restarts mid-stream and replays the feed therefore serves
every previously-snapshotted window from disk (``features.cache.hits``)
and only computes windows it has never seen — the streaming analogue of
the batch façade's warm path.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.core.valmod import DEFAULT_P, ValmodResult
from repro.core.discords import Discord
from repro.features.facade import DEFAULT_INCLUDE, StoreLike, extract_features
from repro.features.result import SeriesFeatures
from repro.lint.contracts import (
    optional,
    positive_int,
    require,
    series_like,
)
from repro.matrixprofile.registry import DEFAULT_ENGINE
from repro.matrixprofile.streaming_valmod import StreamEvent, StreamingValmod
from repro.types import FloatArray

__all__ = ["StreamingFeatures"]


class StreamingFeatures:
    """Online variable-length feature maintenance over a point stream.

    Usage::

        sf = StreamingFeatures(seed_points, l_min=64, l_max=96)
        for value in feed:
            sf.append(value)
            for event in sf.drain_events():
                ...                      # motif/discord change alerts
        features = sf.snapshot()         # exact SeriesFeatures of window

    ``motifs()`` / ``discords()`` materialize just those families (warm,
    version-cached); ``snapshot()`` produces the full façade result and
    is what the ``store=`` argument makes resumable across restarts.
    """

    @require(
        series=series_like(min_length=8),
        l_min=positive_int(),
        l_max=positive_int(),
        p=positive_int(),
        top_k=positive_int(),
        motif_set_k=positive_int(),
        k_discords=positive_int(),
        max_points=optional(positive_int()),
    )
    def __init__(
        self,
        series: FloatArray,
        l_min: int,
        l_max: int,
        *,
        p: int = DEFAULT_P,
        top_k: int = 5,
        include: Iterable[str] = DEFAULT_INCLUDE,
        motif_set_k: int = 10,
        radius_factor: float = 3.0,
        k_discords: int = 3,
        engine: str = DEFAULT_ENGINE,
        n_jobs: Optional[int] = 1,
        max_points: Optional[int] = None,
        store: StoreLike = None,
    ) -> None:
        self._stream = StreamingValmod(
            series,
            l_min,
            l_max,
            p=p,
            k_discords=k_discords,
            engine=engine,
            n_jobs=n_jobs,
            max_points=max_points,
        )
        self.l_min = int(l_min)
        self.l_max = int(l_max)
        self._snapshot_kwargs = dict(
            p=p,
            top_k=top_k,
            include=tuple(include),
            motif_set_k=motif_set_k,
            radius_factor=radius_factor,
            k_discords=k_discords,
            engine=engine,
            n_jobs=n_jobs,
        )
        self._store = store

    # -- stream ingestion --------------------------------------------

    def append(self, value: float) -> None:
        """Ingest one point (eager per-length bound/event maintenance)."""
        self._stream.append(value)

    def extend(self, values: Sequence[float]) -> None:
        """Ingest many points; ``extend([])`` is a strict no-op."""
        self._stream.extend(values)

    def drain_events(self) -> List[StreamEvent]:
        """Return and clear the pending change events."""
        return self._stream.drain_events()

    # -- window inspection -------------------------------------------

    @property
    def window_start(self) -> int:
        """Absolute stream offset of the first retained point."""
        return self._stream.window_start

    @property
    def total_points(self) -> int:
        """Total points ever ingested (including evicted ones)."""
        return self._stream.total_points

    @property
    def max_points(self) -> Optional[int]:
        """Sliding-window capacity (None = unbounded growth)."""
        return self._stream.max_points

    def __len__(self) -> int:
        return len(self._stream)

    def series(self) -> np.ndarray:
        """A copy of the currently retained window."""
        return self._stream.series()

    # -- materialization ---------------------------------------------

    def motifs(self) -> ValmodResult:
        """Exact VALMOD result on the current window (version-cached)."""
        return self._stream.motifs()

    def motif_pairs(self) -> Dict[int, object]:
        """Exact per-length motif pairs on the current window."""
        return self._stream.motif_pairs()

    def discords(self) -> List[Discord]:
        """Exact top-k variable-length discords (warm-start pruned)."""
        return self._stream.discords()

    def snapshot(self) -> SeriesFeatures:
        """Full façade result for the current window.

        Routed through :func:`extract_features` with this wrapper's
        ``store``, so a replayed stream resumes from disk: any window
        snapshotted before is a ``features.cache.hits`` lookup, bitwise
        identical to the original computation.
        """
        return extract_features(
            self._stream.series(),
            self.l_min,
            self.l_max,
            store=self._store,
            **self._snapshot_kwargs,
        )
