"""Content-addressed on-disk store for extracted series features.

The cache key is a SHA-256 over everything that determines the result
bits: the raw series buffer and dtype, every extraction parameter, the
engine name, the package version, the kernel schema version
(:data:`repro.kernels.KERNEL_SCHEMA_VERSION`), and this store's own
schema version.  Equal key therefore implies bitwise-equal features, so
a hit may skip the kernels entirely (``engine.cells == 0`` on the warm
path).

Entries are one JSON file per key with a self-describing envelope
(schema, key, payload checksum).  Writes use the tempfile +
``os.replace`` pattern of ``benchmarks/_common.py`` so concurrent
readers never observe a half-written file; any unreadable, truncated,
tampered or alien file is counted (``features.cache.corrupt``) and
treated as a miss, never an error.  Layering: only :mod:`repro.features`
may import this module (lint rule R009).
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Union

import numpy as np

from repro import obs
from repro.exceptions import InvalidParameterError
from repro.lint.contracts import instance_of, optional, positive_int, require
from repro.kernels import KERNEL_SCHEMA_VERSION

__all__ = [
    "DEFAULT_MAX_ENTRIES",
    "FeatureStore",
    "STORE_ENV",
    "STORE_SCHEMA_VERSION",
    "feature_cache_key",
    "resolve_store",
]

#: bump when the envelope or payload layout changes: old entries then
#: miss (their keys differ) instead of being misread.
STORE_SCHEMA_VERSION = 2

#: environment variable naming the default store directory.
STORE_ENV = "REPRO_FEATURES_STORE"

#: eviction threshold: oldest entries beyond this count are dropped.
DEFAULT_MAX_ENTRIES = 4096


def _package_version() -> str:
    # Imported lazily: repro/__init__ imports this package, so a
    # module-level ``from repro import __version__`` would run against a
    # partially-initialized package during interpreter start.
    from repro import __version__

    return __version__


def _canonical_json(value: Any) -> str:
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def feature_cache_key(series: Any, params: Mapping[str, Any]) -> str:  # repro-lint: ignore[R013] - hashes arbitrary series-like input
    """Content address of one ``extract_features`` query.

    ``series`` is hashed as its raw buffer plus dtype and shape, so a
    float32 view of the same values keys differently from the float64
    original (their kernel results differ at the bit level).  ``params``
    must be a JSON-serializable mapping of every extraction parameter.
    """
    arr = np.ascontiguousarray(np.asarray(series))
    digest = hashlib.sha256()
    for part in (
        b"repro.features",
        str(arr.dtype).encode(),
        str(arr.shape).encode(),
        arr.tobytes(),
        _canonical_json(dict(params)).encode(),
        _package_version().encode(),
        str(KERNEL_SCHEMA_VERSION).encode(),
        str(STORE_SCHEMA_VERSION).encode(),
    ):
        digest.update(part)
        digest.update(b"\x00")
    return digest.hexdigest()


def _payload_checksum(payload: Mapping[str, Any]) -> str:
    return hashlib.sha256(_canonical_json(dict(payload)).encode()).hexdigest()


class FeatureStore:
    """A directory of content-addressed feature entries.

    Parameters
    ----------
    root:
        Directory holding the entries (created lazily on first write).
    max_entries:
        Eviction threshold; ``None`` reads ``REPRO_FEATURES_STORE_MAX``
        or falls back to :data:`DEFAULT_MAX_ENTRIES`.  When a write
        pushes the entry count above the threshold, the oldest entries
        (by modification time) are unlinked and counted as
        ``features.cache.evictions``.
    """

    @require(
        root=instance_of(str, Path),
        max_entries=optional(positive_int()),
    )
    def __init__(
        self,
        root: Union[str, Path],
        max_entries: Optional[int] = None,
    ) -> None:
        self.root = Path(root)
        if max_entries is None:
            env = os.environ.get("REPRO_FEATURES_STORE_MAX", "")
            max_entries = int(env) if env.isdigit() else DEFAULT_MAX_ENTRIES
        if max_entries <= 0:
            raise InvalidParameterError(
                f"max_entries must be positive, got {max_entries}"
            )
        self.max_entries = int(max_entries)

    # -- paths -------------------------------------------------------------

    def path_for(self, key: str) -> Path:
        """The entry file a key addresses."""
        return self.root / f"{key}.json"

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*.json"))

    # -- read --------------------------------------------------------------

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The stored payload for ``key``, or ``None`` on miss.

        Every failure mode of an on-disk cache — unreadable file,
        truncated JSON, checksum mismatch, foreign schema, key mismatch
        after a manual rename — degrades to a miss.
        """
        with obs.span("features.store"):
            path = self.path_for(key)
            try:
                text = path.read_text(encoding="utf-8")
            except FileNotFoundError:
                return None
            except (OSError, UnicodeDecodeError):
                obs.add("features.cache.corrupt")
                return None
            try:
                envelope = json.loads(text)
            except (json.JSONDecodeError, UnicodeDecodeError):
                obs.add("features.cache.corrupt")
                return None
            if (
                not isinstance(envelope, dict)
                or envelope.get("schema") != STORE_SCHEMA_VERSION
                or envelope.get("key") != key
                or not isinstance(envelope.get("payload"), dict)
            ):
                obs.add("features.cache.corrupt")
                return None
            payload: Dict[str, Any] = envelope["payload"]
            if envelope.get("checksum") != _payload_checksum(payload):
                obs.add("features.cache.corrupt")
                return None
            return payload

    # -- write -------------------------------------------------------------

    def put(self, key: str, payload: Mapping[str, Any]) -> Path:
        """Atomically persist ``payload`` under ``key``; evicts if full."""
        with obs.span("features.store"):
            envelope = {
                "schema": STORE_SCHEMA_VERSION,
                "key": key,
                "checksum": _payload_checksum(payload),
                "payload": dict(payload),
            }
            path = self.path_for(key)
            self._atomic_write(path, json.dumps(envelope, sort_keys=True))
            self._evict()
            return path

    @staticmethod
    def _atomic_write(path: Path, text: str) -> None:
        # The benchmarks/_common.py pattern: mkdir tolerates concurrent
        # creation, tempfile + os.replace means readers never observe a
        # half-written entry.
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=f".{path.name}.")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(text)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def _evict(self) -> None:
        entries = sorted(
            self.root.glob("*.json"),
            key=lambda p: (p.stat().st_mtime, p.name),
        )
        excess = len(entries) - self.max_entries
        for path in entries[:excess]:
            try:
                path.unlink()
            except OSError:
                continue
            obs.add("features.cache.evictions")

    def clear(self) -> int:
        """Remove every entry; returns the number removed."""
        removed = 0
        for path in self.root.glob("*.json"):
            try:
                path.unlink()
            except OSError:
                continue
            removed += 1
        return removed


def resolve_store(  # repro-lint: ignore[R013] - pure dispatch over a union type
    store: Union[FeatureStore, str, Path, bool, None],
) -> Optional[FeatureStore]:
    """Normalize the façade's ``store`` argument.

    ``None`` consults :data:`STORE_ENV` (no store when unset);
    ``False`` disables caching unconditionally; a path opens a store
    there; an existing :class:`FeatureStore` passes through.
    """
    if store is False:
        return None
    if isinstance(store, FeatureStore):
        return store
    if isinstance(store, (str, Path)):
        return FeatureStore(store)
    if store is None:
        root = os.environ.get(STORE_ENV, "")
        return FeatureStore(root) if root else None
    raise InvalidParameterError(
        f"store must be a FeatureStore, path, False or None, got {store!r}"
    )
