"""One entry point for per-series VALMOD analysis: ``extract_features``.

The paper's pitch is that variable-length motif/discord discovery is a
single practical call; this module makes the reproduction read the same
way.  ``extract_features`` owns the per-series
:class:`~repro.kernels.SeriesContext`, selects the engine via the
registry, runs the VALMP/listDP plumbing once, and fans the result into
every requested feature family — so callers never compose
``repro.core`` modules by hand (lint rule R009 enforces that this
module is the only place such wholesale composition happens).

Results are deterministic and free of timing state, which lets the
content-addressed store (:mod:`repro.features.store`) serve a repeat
query without touching a kernel: the warm path shows
``features.cache.hits == 1`` and ``engine.cells == 0`` in a trace, and
returns a bitwise-identical :class:`SeriesFeatures`.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro import obs
from repro.core.annotation import variance_annotation
from repro.core.chains import Chain, unanchored_chain
from repro.core.discords import Discord, find_discords
from repro.core.discords_variable import find_discords_pruned
from repro.core.motif_sets import compute_motif_sets
from repro.core.ranking import top_motifs_across_lengths
from repro.core.segmentation import boundaries_from_cac, fluss
from repro.core.valmod import DEFAULT_P, Valmod
from repro.distance.znorm import as_series
from repro.exceptions import InvalidParameterError
from repro.features.result import AnnotationSummary, SeriesFeatures
from repro.features.serialize import features_from_dict, features_to_dict
from repro.features.store import FeatureStore, feature_cache_key, resolve_store
from repro.kernels.context import SeriesContext
from repro.lint.contracts import (
    instance_of,
    int_at_least,
    number_in,
    positive_int,
    require,
    series_like,
)
from repro.matrixprofile.registry import DEFAULT_ENGINE, engine_names
from repro.types import MotifSet, SeriesLike

__all__ = [
    "DEFAULT_INCLUDE",
    "DEFAULT_P",
    "INCLUDE_OPTIONS",
    "extract_features",
    "extract_features_batch",
]

#: every optional feature family, in canonical order.
INCLUDE_OPTIONS: Tuple[str, ...] = (
    "motif_sets",
    "discords",
    "discords_variable",
    "chains",
    "segmentation",
    "annotation",
)

#: what ``extract_features`` computes unless told otherwise.
DEFAULT_INCLUDE: Tuple[str, ...] = ("motif_sets", "discords")

StoreLike = Union[FeatureStore, str, bool, None]


def _canonical_include(include: Iterable[str]) -> Tuple[str, ...]:
    requested = list(include)
    unknown = sorted(set(requested) - set(INCLUDE_OPTIONS))
    if unknown:
        raise InvalidParameterError(
            f"unknown include option(s) {', '.join(unknown)}; "
            f"choose from {', '.join(INCLUDE_OPTIONS)}"
        )
    return tuple(name for name in INCLUDE_OPTIONS if name in requested)


@require(
    series=series_like(min_length=8),
    l_min=positive_int(),
    l_max=positive_int(),
    p=positive_int(),
    top_k=positive_int(),
    motif_set_k=positive_int(),
    radius_factor=number_in(0.0, float("inf"), open_low=True),
    k_discords=positive_int(),
    n_regimes=int_at_least(2),
    engine=instance_of(str),
)
def extract_features(
    series: SeriesLike,
    l_min: int,
    l_max: int,
    *,
    p: int = DEFAULT_P,
    top_k: int = 5,
    include: Iterable[str] = DEFAULT_INCLUDE,
    motif_set_k: int = 10,
    radius_factor: float = 3.0,
    k_discords: int = 3,
    discord_lengths: Optional[Sequence[int]] = None,
    n_regimes: int = 2,
    engine: str = DEFAULT_ENGINE,
    n_jobs: Optional[int] = 1,
    stats_cache: bool = True,
    store: StoreLike = None,
    trace: Optional[bool] = None,
) -> SeriesFeatures:
    """Extract every requested feature family of one series, in one call.

    Runs VALMOD over ``[l_min, l_max]`` (always: the exact per-length
    motif pairs and the cross-length ``top_k`` ranking are the baseline
    output), then the families named by ``include`` — ``motif_sets``
    (Algorithms 5-6, parameters ``motif_set_k``/``radius_factor``),
    ``discords`` (``k_discords`` anomalies; ``discord_lengths``
    restricts the scan to specific lengths), ``discords_variable``
    (the same anomalies via the MAD-style lower-bound-pruned driver —
    identical output, far fewer full profiles on wide ranges; ``p``
    sizes its bound store), ``chains``,
    ``segmentation`` (FLUSS at ``l_min``, splitting into ``n_regimes``),
    and ``annotation`` (variance-annotation summary).  One shared
    :class:`~repro.kernels.SeriesContext` serves all of them, so window
    statistics and FFT plans are computed once per series.

    ``store`` enables the content-addressed cache: a
    :class:`~repro.features.FeatureStore`, a directory path, ``None``
    (consult ``REPRO_FEATURES_STORE``; disabled when unset) or ``False``
    (never cache).  A repeat call with bit-identical series and
    parameters returns a bitwise-identical result without running any
    kernel.  ``trace`` toggles the :mod:`repro.obs` tracer for this call
    (``None`` leaves the global state untouched); ``stats_cache`` and
    ``n_jobs`` never change the result bits and are excluded from the
    cache key.
    """
    if trace is None:
        return _extract(
            series, l_min, l_max, p, top_k, include, motif_set_k,
            radius_factor, k_discords, discord_lengths, n_regimes, engine,
            n_jobs, stats_cache, store,
        )
    with obs.tracing(trace):
        return _extract(
            series, l_min, l_max, p, top_k, include, motif_set_k,
            radius_factor, k_discords, discord_lengths, n_regimes, engine,
            n_jobs, stats_cache, store,
        )


def _extract(
    series: SeriesLike,
    l_min: int,
    l_max: int,
    p: int,
    top_k: int,
    include: Iterable[str],
    motif_set_k: int,
    radius_factor: float,
    k_discords: int,
    discord_lengths: Optional[Sequence[int]],
    n_regimes: int,
    engine: str,
    n_jobs: Optional[int],
    stats_cache: bool,
    store: StoreLike,
) -> SeriesFeatures:
    t = as_series(series, min_length=8)
    if l_min > l_max:
        raise InvalidParameterError(
            f"l_min ({l_min}) must not exceed l_max ({l_max})"
        )
    if top_k <= 0:
        raise InvalidParameterError(f"top_k must be positive, got {top_k}")
    if engine not in engine_names():
        raise InvalidParameterError(
            f"unknown engine {engine!r}; choose from {', '.join(engine_names())}"
        )
    included = _canonical_include(include)
    scan_lengths = (
        None
        if discord_lengths is None
        else tuple(sorted({int(length) for length in discord_lengths}))
    )

    with obs.span("features.extract"):
        resolved = resolve_store(store)
        key = ""
        if resolved is not None:
            # Key the *raw* input: a float32 view of the same values is
            # a different query than the float64 original.
            key = feature_cache_key(
                np.asarray(series),
                {
                    "l_min": int(l_min),
                    "l_max": int(l_max),
                    "p": int(p),
                    "top_k": int(top_k),
                    "include": list(included),
                    "motif_set_k": int(motif_set_k),
                    "radius_factor": float(radius_factor),
                    "k_discords": int(k_discords),
                    "discord_lengths": (
                        None if scan_lengths is None else list(scan_lengths)
                    ),
                    "n_regimes": int(n_regimes),
                    "engine": engine,
                },
            )
            payload = resolved.get(key)
            if payload is not None:
                try:
                    cached = features_from_dict(payload)
                except InvalidParameterError:
                    obs.add("features.cache.corrupt")
                else:
                    obs.add("features.cache.hits")
                    return cached
            obs.add("features.cache.misses")
        features = _compute(
            t, l_min, l_max, p, top_k, included, motif_set_k, radius_factor,
            k_discords, scan_lengths, n_regimes, engine, n_jobs, stats_cache,
        )
        if resolved is not None:
            resolved.put(key, features_to_dict(features))
        return features


def _compute(
    t: np.ndarray,
    l_min: int,
    l_max: int,
    p: int,
    top_k: int,
    included: Tuple[str, ...],
    motif_set_k: int,
    radius_factor: float,
    k_discords: int,
    scan_lengths: Optional[Tuple[int, ...]],
    n_regimes: int,
    engine: str,
    n_jobs: Optional[int],
    stats_cache: bool,
) -> SeriesFeatures:
    context = SeriesContext(t) if stats_cache else None
    track = motif_set_k if "motif_sets" in included else 0
    with obs.span("features.valmod"):
        run = Valmod(
            t, l_min, l_max, p=p, track_top_k=track, n_jobs=n_jobs,
            stats_cache=stats_cache, context=context,
        ).run()
    motif_pairs = tuple(
        run.motif_pairs[length] for length in sorted(run.motif_pairs)
    )
    top_motifs = tuple(top_motifs_across_lengths(run.motif_pairs, top_k))

    motif_sets: Tuple[MotifSet, ...] = ()
    if "motif_sets" in included:
        with obs.span("features.motif_sets"):
            motif_sets = tuple(
                compute_motif_sets(t, run.best_k_pairs(), radius_factor)
            )

    discords: Tuple[Discord, ...] = ()
    if "discords" in included:
        with obs.span("features.discords"):
            discords = tuple(
                find_discords(
                    t, l_min, l_max, k=k_discords, engine=engine,
                    n_jobs=n_jobs, lengths=scan_lengths, context=context,
                )
            )

    discords_variable: Tuple[Discord, ...] = ()
    if "discords_variable" in included:
        with obs.span("features.discords_variable"):
            discords_variable = tuple(
                find_discords_pruned(
                    t, l_min, l_max, k=k_discords, engine=engine,
                    n_jobs=n_jobs, lengths=scan_lengths, context=context,
                    p=p,
                )
            )

    chain: Optional[Chain] = None
    if "chains" in included:
        with obs.span("features.chains"):
            try:
                chain = unanchored_chain(t, l_min)
            except InvalidParameterError:
                chain = None  # degenerate series: no chain exists

    boundaries = regime_cac = cac_min = None
    if "segmentation" in included:
        with obs.span("features.segmentation"):
            cac = fluss(t, l_min)
            positions = boundaries_from_cac(cac, l_min, n_regimes)
            boundaries = tuple(int(pos) for pos in positions)
            regime_cac = tuple(float(cac[pos]) for pos in positions)
            cac_min = float(cac.min())

    annotation: Optional[AnnotationSummary] = None
    if "annotation" in included:
        with obs.span("features.annotation"):
            av = variance_annotation(t, l_min)
            annotation = AnnotationSummary(
                length=int(l_min),
                mean=float(av.mean()),
                flat_fraction=float(np.mean(av < 0.1)),
            )

    return SeriesFeatures(
        n_points=int(t.size),
        l_min=int(l_min),
        l_max=int(l_max),
        p=int(p),
        engine=engine,
        include=included,
        motif_pairs=motif_pairs,
        top_motifs=top_motifs,
        motif_sets=motif_sets,
        discords=discords,
        discords_variable=discords_variable,
        chain=chain,
        regime_boundaries=boundaries,
        regime_cac=regime_cac,
        cac_min=cac_min,
        annotation=annotation,
    )


@require(l_min=positive_int(), l_max=positive_int())
def extract_features_batch(
    series_list: Sequence[SeriesLike],
    l_min: int,
    l_max: int,
    *,
    store: StoreLike = None,
    **kwargs,
) -> List[SeriesFeatures]:
    """:func:`extract_features` over many series, sharing one store.

    The store argument is resolved once, so every series of the batch
    reads and writes the same cache directory; all other keyword
    arguments are forwarded unchanged.  Returns one
    :class:`SeriesFeatures` per input series, in order.
    """
    resolved = resolve_store(store)
    shared: StoreLike = resolved if resolved is not None else False
    return [
        extract_features(series, l_min, l_max, store=shared, **kwargs)
        for series in series_list
    ]
