"""The façade's result vocabulary: one frozen object per analyzed series.

:class:`SeriesFeatures` is what downstream consumers of the VALMOD
reproduction actually read (the shape follows the feature-object idiom
of the matrix-profile ecosystem): the exact per-length motif pairs, the
length-normalized cross-length ranking, and — when requested — motif
sets, discords, the unanchored chain, FLUSS regime boundaries, and an
annotation summary.  Everything is a plain frozen dataclass of plain
values, so two runs over identical inputs produce *bitwise identical*
objects — the property the content-addressed store
(:mod:`repro.features.store`) relies on.  Deliberately absent: timings,
run statistics, or anything else that varies between identical runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.core.chains import Chain
from repro.core.discords import Discord
from repro.types import MotifPair, MotifSet

__all__ = ["AnnotationSummary", "SeriesFeatures"]


@dataclass(frozen=True)
class AnnotationSummary:
    """Condensed view of the variance annotation vector at one length.

    ``mean`` is the average interestingness over all subsequences;
    ``flat_fraction`` is the share of windows whose annotation falls
    below 0.1 — a quick "how much of this series is dead air" signal.
    """

    length: int
    mean: float
    flat_fraction: float


@dataclass(frozen=True)
class SeriesFeatures:
    """Everything :func:`repro.features.extract_features` discovers.

    Attributes
    ----------
    n_points:
        Length of the analyzed series.
    l_min, l_max, p:
        The VALMOD parameters the features were computed under.
    engine:
        Registered matrix-profile engine used for full-profile passes.
    include:
        The optional feature families that were computed, in canonical
        order (subset of ``motif_sets``/``discords``/``chains``/
        ``segmentation``/``annotation``).
    motif_pairs:
        The exact motif pair of *every* length in ``[l_min, l_max]``,
        ascending by length — VALMOD's headline output.
    top_motifs:
        Cross-length ranking: the best pairs by length-normalized
        distance, deduplicated across length-shifted rediscoveries.
    motif_sets:
        Algorithm 5-6 motif sets (empty unless ``motif_sets`` included).
    discords:
        Top anomalies, best first (empty unless ``discords`` included),
        from the full-profile-per-length driver.
    discords_variable:
        Top anomalies from the MAD-style lower-bound-pruned driver
        (empty unless ``discords_variable`` included).  Bitwise
        identical to what ``discords`` would hold under the same
        parameters — the two fields exist so the ablation pair can be
        cached and compared side by side.
    chain:
        The unanchored time-series chain at ``l_min``, or ``None`` when
        not included or when no chain exists.
    regime_boundaries:
        FLUSS boundary positions (``None`` unless ``segmentation``
        included), with ``regime_cac`` holding the CAC value at each
        boundary and ``cac_min`` the curve's global minimum.
    annotation:
        Variance-annotation summary at ``l_min`` (``None`` unless
        ``annotation`` included).
    """

    n_points: int
    l_min: int
    l_max: int
    p: int
    engine: str
    include: Tuple[str, ...]
    motif_pairs: Tuple[MotifPair, ...]
    top_motifs: Tuple[MotifPair, ...]
    motif_sets: Tuple[MotifSet, ...] = ()
    discords: Tuple[Discord, ...] = ()
    discords_variable: Tuple[Discord, ...] = ()
    chain: Optional[Chain] = None
    regime_boundaries: Optional[Tuple[int, ...]] = None
    regime_cac: Optional[Tuple[float, ...]] = None
    cac_min: Optional[float] = None
    annotation: Optional[AnnotationSummary] = None

    @property
    def best_motif(self) -> MotifPair:
        """The single best variable-length motif (normalized distance)."""
        if self.top_motifs:
            return self.top_motifs[0]
        return min(self.motif_pairs)

    @property
    def primary_motif_distance(self) -> float:
        """Normalized distance of the best motif (stumpy-style shortcut)."""
        return self.best_motif.normalized_distance

    @property
    def motif_set_counts(self) -> Tuple[int, ...]:
        """Cardinality (the paper's *frequency*) of each motif set."""
        return tuple(motif_set.frequency for motif_set in self.motif_sets)

    @property
    def discord_distance(self) -> Optional[float]:
        """Normalized distance of the top discord, ``None`` if absent.

        Reads whichever discord family was computed (the two drivers
        return identical lists, so the preference is immaterial).
        """
        pool = self.discords or self.discords_variable
        if not pool:
            return None
        return pool[0].normalized_distance

    def pairs_by_length(self) -> Dict[int, MotifPair]:
        """The per-length exact pairs as a ``length -> pair`` mapping."""
        return {pair.length: pair for pair in self.motif_pairs}
