"""``repro.features`` — the one-call analysis façade and its store.

Public surface (see ``docs/FEATURES.md``):

:func:`extract_features` / :func:`extract_features_batch`
    One typed, contract-checked entry point per series (or batch): runs
    VALMOD once, fans out into motif sets, discords, chains,
    segmentation and annotation on demand, and returns a frozen
    :class:`SeriesFeatures`.
:class:`FeatureStore` / :func:`feature_cache_key`
    The content-addressed on-disk cache behind the façade's ``store``
    argument — key = hash of (series bytes, dtype, params, engine,
    package version, kernel schema version), so a repeat query provably
    skips the kernels.
:func:`features_to_dict` / :func:`features_from_dict` /
:func:`save_features_json`
    Exact (bitwise) JSON round-trip of a features object.

Layering (lint rule R009): this package is the only place allowed to
compose the ``repro.core`` workload modules wholesale, and
:mod:`repro.features.store` may not be imported from anywhere else.
"""

from repro.core.motif_sets import motif_set_summary
from repro.features.facade import (
    DEFAULT_INCLUDE,
    DEFAULT_P,
    INCLUDE_OPTIONS,
    extract_features,
    extract_features_batch,
)
from repro.features.result import AnnotationSummary, SeriesFeatures
from repro.features.serialize import (
    features_from_dict,
    features_to_dict,
    save_features_json,
)
from repro.features.store import (
    DEFAULT_MAX_ENTRIES,
    STORE_ENV,
    STORE_SCHEMA_VERSION,
    FeatureStore,
    feature_cache_key,
    resolve_store,
)
from repro.features.streaming import StreamingFeatures

__all__ = [
    "AnnotationSummary",
    "DEFAULT_INCLUDE",
    "DEFAULT_MAX_ENTRIES",
    "DEFAULT_P",
    "FeatureStore",
    "INCLUDE_OPTIONS",
    "STORE_ENV",
    "STORE_SCHEMA_VERSION",
    "SeriesFeatures",
    "StreamingFeatures",
    "extract_features",
    "extract_features_batch",
    "feature_cache_key",
    "features_from_dict",
    "features_to_dict",
    "motif_set_summary",
    "resolve_store",
    "save_features_json",
]
