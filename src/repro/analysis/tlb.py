"""Tightness of the lower bound (TLB) — Figure 10.

``TLB = LB(t1, t2) / dist(t1, t2)`` in [0, 1]; higher is tighter.  The
paper plots the average TLB of each (partial) distance profile for a
short and a long subsequence length on the ECG and EMG datasets: EMG's
TLB collapses at large lengths (explaining VALMOD's one weak spot in
Figure 8) while ECG's stays flat.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.lower_bound import lower_bound_profile, tightness_of_lower_bound
from repro.distance.mass import mass
from repro.distance.znorm import as_series
from repro.exceptions import InvalidParameterError
from repro.matrixprofile.exclusion import exclusion_zone_half_width

__all__ = ["average_tlb_per_profile"]


def average_tlb_per_profile(
    series: np.ndarray,
    base_length: int,
    target_length: int,
    n_profiles: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
    top_p: Optional[int] = None,
) -> np.ndarray:
    """Average TLB of each distance profile, base length -> target length.

    For every sampled profile owner ``j``, computes the Eq.-2 lower bound
    from ``base_length`` statistics against the exact distances at
    ``target_length`` and averages the per-entry TLB over all non-trivial
    candidates.  ``n_profiles`` subsamples owners (evenly, or randomly
    with ``rng``) to keep the cost linear in the sample size.

    ``top_p`` restricts the average to the ``p`` candidates with the
    smallest lower bound — exactly the entries VALMOD's ``listDP``
    stores, and therefore the ones whose tightness decides whether
    ComputeSubMP can prune (the "partial distance profile" of Figure 10).
    """
    t = as_series(series, min_length=16)
    if target_length < base_length:
        raise InvalidParameterError(
            f"target length {target_length} must be >= base length {base_length}"
        )
    n_target = t.size - target_length + 1
    if n_target < 2:
        raise InvalidParameterError(
            f"target length {target_length} leaves fewer than two subsequences"
        )
    if n_profiles is None or n_profiles >= n_target:
        owners = np.arange(n_target)
    elif rng is not None:
        owners = np.sort(rng.choice(n_target, size=n_profiles, replace=False))
    else:
        owners = np.linspace(0, n_target - 1, n_profiles).astype(np.int64)

    zone = exclusion_zone_half_width(target_length)
    k = target_length - base_length
    averages = np.empty(owners.size, dtype=np.float64)
    candidates = np.arange(n_target)
    for out_idx, owner in enumerate(owners):
        owner = int(owner)
        lb = lower_bound_profile(t, owner, base_length, k)
        true = mass(t, owner, target_length)
        keep = np.abs(candidates - owner) >= zone
        lb_kept = lb[keep]
        true_kept = true[keep]
        if top_p is not None and top_p < lb_kept.size:
            picked = np.argpartition(lb_kept, top_p - 1)[:top_p]
            lb_kept = lb_kept[picked]
            true_kept = true_kept[picked]
        tlb = tightness_of_lower_bound(lb_kept, true_kept)
        averages[out_idx] = float(np.mean(tlb)) if tlb.size else np.nan
    return averages
