"""Pruning margins (maxLB - minDist) per distance profile — Figure 9.

A positive margin for a profile means ComputeSubMP's validity condition
(Algorithm 4, line 16) holds: the profile's minimum is certified from
the p stored entries alone, no recomputation needed.  The paper plots
this per-profile margin for a short and a long subsequence length on
the ECG and EMG datasets.
"""

from __future__ import annotations

import numpy as np

from repro.core.compute_mp import compute_matrix_profile
from repro.core.compute_submp import compute_submp
from repro.distance.znorm import as_series
from repro.exceptions import InvalidParameterError

__all__ = ["pruning_margins"]


def pruning_margins(
    series: np.ndarray,
    base_length: int,
    target_length: int,
    p: int = 50,
) -> np.ndarray:
    """Per-profile ``maxLB - minDist`` after advancing base -> target.

    Builds the listDP store at ``base_length`` (Algorithm 3), advances it
    one length at a time to ``target_length`` with Algorithm 4, and
    returns the final step's margins.  Values > 0 correspond to valid
    (pruned) profiles.
    """
    t = as_series(series, min_length=16)
    if target_length <= base_length:
        raise InvalidParameterError(
            f"target length {target_length} must exceed base length {base_length}"
        )
    _, store = compute_matrix_profile(t, base_length, p)
    result = None
    for length in range(base_length + 1, target_length + 1):
        result = compute_submp(t, store, length)
    margins = result.max_lb - result.min_dist
    # Profiles where both sides are infinite carry no signal; report 0.
    margins[~np.isfinite(margins)] = 0.0
    return margins
