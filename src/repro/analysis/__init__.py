"""Analysis instruments behind the paper's explanatory figures.

* :mod:`repro.analysis.stats` — dataset characteristics (Table 1)
* :mod:`repro.analysis.normalization_study` — distance corrections vs
  pattern length (Figure 2)
* :mod:`repro.analysis.ranking_study` — (non-)preservation of distance
  profile rankings across lengths (Figures 3-4)
* :mod:`repro.analysis.pruning` — maxLB - minDist pruning margins
  (Figure 9)
* :mod:`repro.analysis.tlb` — tightness of the lower bound (Figure 10)
* :mod:`repro.analysis.distances` — pairwise-distance distributions
  (Figure 11)
"""

from repro.analysis.stats import dataset_statistics, SeriesStatistics
from repro.analysis.tlb import average_tlb_per_profile
from repro.analysis.pruning import pruning_margins
from repro.analysis.distances import pairwise_distance_sample, distance_histogram
from repro.analysis.normalization_study import normalization_comparison
from repro.analysis.ranking_study import (
    distance_rank_agreement,
    lower_bound_rank_agreement,
)

__all__ = [
    "dataset_statistics",
    "SeriesStatistics",
    "average_tlb_per_profile",
    "pruning_margins",
    "pairwise_distance_sample",
    "distance_histogram",
    "normalization_comparison",
    "distance_rank_agreement",
    "lower_bound_rank_agreement",
]
