"""Length-normalization comparison — Figure 2.

Renders the same prototype-pattern pair at a sweep of lengths (the
paper's TRACE down-sampling protocol) and compares three candidate
corrections of the z-normalized Euclidean distance:

* ``none``            — raw distance, biased toward *short* patterns;
* ``divide-by-l``     — biased toward *long* patterns;
* ``sqrt(1/l)``       — the paper's correction, approximately invariant.

The figure of merit is the relative spread (max/min ratio) of each
corrected distance across the length sweep: the flatter, the better.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.distance.znorm import znormalized_distance
from repro.exceptions import InvalidParameterError

__all__ = ["NormalizationRow", "normalization_comparison", "correction_spreads"]


@dataclass(frozen=True)
class NormalizationRow:
    """Distances between one pattern pair at one length."""

    length: int
    raw: float
    divided_by_length: float
    sqrt_corrected: float


def normalization_comparison(
    pattern_pairs: Sequence[Tuple[np.ndarray, np.ndarray]],
) -> List[NormalizationRow]:
    """One row per (pattern, pattern) pair; pairs must share a length."""
    rows: List[NormalizationRow] = []
    for a, b in pattern_pairs:
        if len(a) != len(b):
            raise InvalidParameterError(
                f"pattern pair lengths differ: {len(a)} vs {len(b)}"
            )
        length = len(a)
        raw = znormalized_distance(a, b)
        rows.append(
            NormalizationRow(
                length=length,
                raw=raw,
                divided_by_length=raw / length,
                sqrt_corrected=raw * math.sqrt(1.0 / length),
            )
        )
    return rows


def correction_spreads(rows: Sequence[NormalizationRow]) -> Dict[str, float]:
    """Max/min ratio of each correction over the sweep (1.0 = invariant)."""
    if not rows:
        raise InvalidParameterError("no rows to summarize")

    def spread(values: List[float]) -> float:
        finite = [v for v in values if v > 0]
        if not finite:
            return float("inf")
        return max(finite) / min(finite)

    return {
        "none": spread([r.raw for r in rows]),
        "divide-by-l": spread([r.divided_by_length for r in rows]),
        "sqrt(1/l)": spread([r.sqrt_corrected for r in rows]),
    }
