"""Pairwise-distance distributions — Figure 11.

The paper explains VALMOD's dataset sensitivity through the distribution
of pairwise subsequence distances: on EMG the distribution grows a heavy
right tail as the length increases (hurting the lower bound), on ECG it
stays comparatively uniform.  These helpers sample that distribution and
histogram it.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.distance.mass import mass
from repro.distance.znorm import as_series
from repro.exceptions import InvalidParameterError
from repro.matrixprofile.exclusion import exclusion_zone_half_width

__all__ = ["pairwise_distance_sample", "distance_histogram"]


def pairwise_distance_sample(
    series: np.ndarray,
    length: int,
    n_profiles: int = 64,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Sample of non-trivial pairwise distances at one length.

    Computes full distance profiles for ``n_profiles`` owners (evenly
    spaced, or random with ``rng``) and pools all non-trivial entries —
    raw distances, not length-normalized, matching the paper ("we plot
    the Euclidean distance without length normalization").
    """
    t = as_series(series, min_length=16)
    n_subs = t.size - length + 1
    if n_subs < 2:
        raise InvalidParameterError(f"length {length} leaves fewer than two windows")
    if rng is not None:
        owners = np.sort(rng.choice(n_subs, size=min(n_profiles, n_subs), replace=False))
    else:
        owners = np.unique(np.linspace(0, n_subs - 1, min(n_profiles, n_subs)).astype(np.int64))
    zone = exclusion_zone_half_width(length)
    candidates = np.arange(n_subs)
    chunks = []
    for owner in owners:
        owner = int(owner)
        profile = mass(t, owner, length)
        keep = np.abs(candidates - owner) >= zone
        chunks.append(profile[keep])
    return np.concatenate(chunks) if chunks else np.empty(0)


def distance_histogram(
    distances: np.ndarray, n_bins: int = 20
) -> Tuple[np.ndarray, np.ndarray]:
    """Histogram (counts, bin_edges) of a distance sample."""
    d = np.asarray(distances, dtype=np.float64)
    d = d[np.isfinite(d)]
    if d.size == 0:
        raise InvalidParameterError("no finite distances to histogram")
    return np.histogram(d, bins=n_bins)
