"""Distance-profile ranking stability — Figures 3 and 4.

The observation motivating VALMOD's lower bound: the ranking of a
*distance* profile can change as the subsequence length grows (Figure 4
top: the nearest neighbor of T[33] flips from T[97] to T[1] at length
19), while the ranking of the *lower-bound* profile provably cannot
(Figure 4 bottom).  These helpers quantify both claims.
"""

from __future__ import annotations

import numpy as np

from repro.core.lower_bound import lower_bound_profile
from repro.distance.mass import mass
from repro.distance.znorm import as_series
from repro.exceptions import InvalidParameterError
from repro.matrixprofile.exclusion import exclusion_zone_half_width

__all__ = ["distance_rank_agreement", "lower_bound_rank_agreement"]


def _top_set(values: np.ndarray, owner: int, length: int, top: int) -> set:
    """Offsets of the ``top`` smallest non-trivial entries."""
    zone = exclusion_zone_half_width(length)
    masked = values.copy()
    lo = max(0, owner - zone + 1)
    hi = min(masked.size, owner + zone)
    masked[lo:hi] = np.inf
    order = np.argsort(masked, kind="stable")
    return set(int(i) for i in order[:top])


def distance_rank_agreement(
    series: np.ndarray, owner: int, length: int, k: int, top: int = 10
) -> float:
    """Overlap of the top entries of the true profiles at l and l+k.

    1.0 means the nearest-neighbor ranking survived the length change
    intact; values below 1 are the rank churn of Figure 4 (top).
    """
    t = as_series(series, min_length=16)
    if k <= 0:
        raise InvalidParameterError(f"k must be positive, got {k}")
    n_target = t.size - (length + k) + 1
    if owner >= n_target:
        raise InvalidParameterError("owner has no subsequence at the target length")
    short = mass(t, owner, length)[:n_target]
    long_ = mass(t, owner, length + k)
    set_short = _top_set(short, owner, length + k, top)
    set_long = _top_set(long_, owner, length + k, top)
    return len(set_short & set_long) / float(top)


def lower_bound_rank_agreement(
    series: np.ndarray, owner: int, length: int, k1: int, k2: int, top: int = 10
) -> float:
    """Overlap of the top LB-profile entries at two different horizons.

    By the rank-preservation property this is exactly 1.0 for any
    ``k1, k2`` — the property test in ``tests/test_lower_bound.py``
    asserts it, and Figure 4 (bottom) illustrates it.
    """
    t = as_series(series, min_length=16)
    if min(k1, k2) < 0:
        raise InvalidParameterError("horizons must be non-negative")
    far = max(k1, k2)
    n_target = t.size - (length + far) + 1
    if owner >= n_target:
        raise InvalidParameterError("owner has no subsequence at the far horizon")
    lb1 = lower_bound_profile(t, owner, length, k1)[:n_target]
    lb2 = lower_bound_profile(t, owner, length, k2)[:n_target]
    set1 = _top_set(lb1, owner, length + far, top)
    set2 = _top_set(lb2, owner, length + far, top)
    return len(set1 & set2) / float(top)
