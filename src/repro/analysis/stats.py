"""Series statistics — the columns of Table 1."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.distance.znorm import as_series

__all__ = ["SeriesStatistics", "dataset_statistics"]


@dataclass(frozen=True)
class SeriesStatistics:
    """min / max / mean / std / number of points of one series."""

    minimum: float
    maximum: float
    mean: float
    std: float
    n_points: int

    def row(self) -> str:
        """Render as a Table-1-style row."""
        return (
            f"{self.minimum:>12.5g} {self.maximum:>12.5g} "
            f"{self.mean:>12.5g} {self.std:>12.5g} {self.n_points:>12d}"
        )


def dataset_statistics(series: np.ndarray) -> SeriesStatistics:
    """Compute the Table-1 statistics of a series."""
    t = as_series(series, min_length=2)
    return SeriesStatistics(
        minimum=float(t.min()),
        maximum=float(t.max()),
        mean=float(t.mean()),
        std=float(t.std()),
        n_points=int(t.size),
    )
