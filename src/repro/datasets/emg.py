"""EMG-like generator (stand-in for the driving-stress EMG dataset).

Structure class: burst noise — a quiet baseline interrupted by muscle
activations of random onset, duration, and intensity, each a burst of
band-limited noise under a smooth envelope.  This is the paper's *hard*
dataset: nearest neighbors are unstable under length growth, the
pairwise-distance distribution grows a heavy right tail at large lengths
(Figure 11), TLB collapses (Figure 10), and VALMOD's pruning degrades at
the largest length range (Figure 8, bottom).

Table-1 targets: min -0.694, max 0.773, mean -0.005, std 0.041.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.generators import affine_to, require_length, smooth, white_noise

__all__ = ["generate_emg"]


def generate_emg(
    n: int,
    seed: int = 0,
    burst_rate: float = 1.0 / 600.0,
    mean_burst_length: int = 220,
    burst_gain: float = 8.0,
) -> np.ndarray:
    """EMG-like series of ``n`` points, Table-1 statistics applied.

    ``burst_rate`` is the expected number of activation onsets per
    sample; bursts draw geometric-ish durations around
    ``mean_burst_length`` and multiply the baseline noise variance by up
    to ``burst_gain`` under a raised-cosine envelope.
    """
    n = require_length(n)
    rng = np.random.default_rng(seed)
    baseline = white_noise(n, rng, 1.0)
    envelope = np.ones(n, dtype=np.float64)
    n_bursts = max(1, rng.poisson(burst_rate * n))
    for _ in range(n_bursts):
        length = max(20, int(rng.exponential(mean_burst_length)))
        start = int(rng.integers(0, max(1, n - length)))
        gain = 1.0 + (burst_gain - 1.0) * rng.random()
        window = 0.5 * (1.0 - np.cos(2.0 * np.pi * np.arange(length) / length))
        end = min(start + length, n)
        envelope[start:end] = np.maximum(
            envelope[start:end], 1.0 + (gain - 1.0) * window[: end - start]
        )
    # Band-limit the carrier slightly so bursts have EMG-like texture.
    carrier = baseline - smooth(baseline, 9)
    out = carrier * envelope
    return affine_to(out, mean=-0.005, std=0.041)
