"""ECG-like generator (stand-in for the stress-recognition ECG dataset).

Structure class: highly regular quasi-periodic beats.  Each beat is a
PQRST-like sum of Gaussian waves (a static variant of the McSharry ECG
model) with small period/amplitude jitter, plus slow baseline wander and
measurement noise.  This regularity is what makes ECG the *easy* dataset
of the paper: nearest neighbors barely move as the subsequence length
grows, TLB stays high (Figure 10), and every algorithm prunes well.

Table-1 targets: min -2.182, max 1.543, mean 0.006, std 0.24.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.generators import affine_to, require_length, white_noise

__all__ = ["generate_ecg", "ecg_beat"]

#: (center, width, amplitude) of the P, Q, R, S, T waves in beat phase.
_WAVES = (
    (0.18, 0.035, 0.12),   # P
    (0.355, 0.012, -0.18),  # Q
    (0.40, 0.016, 1.0),    # R
    (0.445, 0.012, -0.28),  # S
    (0.62, 0.06, 0.25),    # T
)


def ecg_beat(length: int, amplitude_jitter: np.ndarray = None) -> np.ndarray:
    """One synthetic PQRST beat of ``length`` samples.

    ``amplitude_jitter`` optionally scales the five waves individually
    (shape (5,)); the default is the clean prototype.
    """
    phase = np.linspace(0.0, 1.0, require_length(length, 8), endpoint=False)
    beat = np.zeros(length, dtype=np.float64)
    for k, (center, width, amp) in enumerate(_WAVES):
        scale = 1.0 if amplitude_jitter is None else float(amplitude_jitter[k])
        beat += amp * scale * np.exp(-0.5 * ((phase - center) / width) ** 2)
    return beat


def generate_ecg(
    n: int,
    seed: int = 0,
    beat_length: int = 180,
    period_jitter: float = 0.04,
    noise_scale: float = 0.04,
) -> np.ndarray:
    """ECG-like series of ``n`` points, Table-1 statistics applied.

    ``beat_length`` is the nominal beat period in samples (≈ 72 bpm at
    250 Hz in the original data's terms); beat-to-beat periods and wave
    amplitudes jitter by a few percent like real sinus rhythm.
    """
    n = require_length(n)
    rng = np.random.default_rng(seed)
    out = np.zeros(n, dtype=np.float64)
    pos = 0
    while pos < n:
        length = max(8, int(round(beat_length * (1.0 + period_jitter * rng.standard_normal()))))
        jitter = 1.0 + 0.05 * rng.standard_normal(5)
        beat = ecg_beat(length, amplitude_jitter=jitter)
        end = min(pos + length, n)
        out[pos:end] = beat[: end - pos]
        pos = end
    # slow baseline wander (respiration) + sensor noise
    wander_x = np.linspace(0, 2 * np.pi * n / (beat_length * 12.0), n)
    out += 0.08 * np.sin(wander_x) + white_noise(n, rng, noise_scale)
    return affine_to(out, mean=0.006, std=0.24)
