"""Dataset registry: uniform access to the five evaluation families.

``load_dataset(name, n, seed)`` dispatches to the family generators and
is what the benchmark harness uses.  Each :class:`DatasetSpec` carries
the paper's Table-1 statistics so the Table-1 bench can print
paper-target vs measured side by side.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Tuple

import numpy as np

from repro.datasets.astro import generate_astro
from repro.datasets.ecg import generate_ecg
from repro.datasets.eeg import generate_eeg
from repro.datasets.emg import generate_emg
from repro.datasets.power import generate_gap
from repro.exceptions import InvalidParameterError

__all__ = ["DatasetSpec", "DATASET_NAMES", "dataset_spec", "load_dataset"]


@dataclass(frozen=True)
class DatasetSpec:
    """One evaluation dataset family and its Table-1 target statistics."""

    name: str
    generator: Callable[..., np.ndarray]
    paper_min: float
    paper_max: float
    paper_mean: float
    paper_std: float
    paper_points: int  # the paper's full size (we scale down by default)
    description: str


_REGISTRY: Dict[str, DatasetSpec] = {
    spec.name: spec
    for spec in (
        DatasetSpec(
            "ECG",
            generate_ecg,
            -2.182,
            1.543,
            0.006,
            0.24,
            1_000_000,
            "quasi-periodic heartbeats (easy, stable neighbors)",
        ),
        DatasetSpec(
            "GAP",
            generate_gap,
            0.08,
            10.67,
            1.10,
            1.15,
            2_000_000,
            "household power: daily cycles + appliance spikes",
        ),
        DatasetSpec(
            "ASTRO",
            generate_astro,
            -0.00867,
            0.00447,
            0.00003,
            0.00031,
            2_000_000,
            "AGN X-ray: red noise + flares",
        ),
        DatasetSpec(
            "EMG",
            generate_emg,
            -0.694,
            0.773,
            -0.005,
            0.041,
            1_000_000,
            "muscle activity: burst noise (hard, unstable neighbors)",
        ),
        DatasetSpec(
            "EEG",
            generate_eeg,
            -966.0,
            920.0,
            3.34,
            41.36,
            500_000,
            "NREM sleep: cyclic alternating pattern bursts",
        ),
    )
}

DATASET_NAMES: Tuple[str, ...] = tuple(_REGISTRY)


def dataset_spec(name: str) -> DatasetSpec:
    """Look up a dataset family by (case-insensitive) name."""
    key = name.upper()
    if key not in _REGISTRY:
        raise InvalidParameterError(
            f"unknown dataset {name!r}; choose from {', '.join(DATASET_NAMES)}"
        )
    return _REGISTRY[key]


def load_dataset(name: str, n: int, seed: int = 0, **kwargs) -> np.ndarray:
    """Generate ``n`` points of the named family with the given seed.

    Extra keyword arguments are forwarded to the family generator (e.g.
    ``beat_length`` for ECG) — the benchmark harness uses this to match
    each family's feature scale to its scaled-down window lengths, the
    same ratio the paper's full-size data has.
    """
    return dataset_spec(name).generator(n, seed=seed, **kwargs)
