"""GAP-like generator (stand-in for the EDF global-active-power dataset).

Structure class: strong daily cycles with a weekly modulation, sharp
appliance-style spikes, occasional regime shifts (holidays / seasons),
and a strictly positive range.  Household power is cyclic but far less
stereotyped than ECG — the middle ground of the paper's evaluation.

Table-1 targets: min 0.08, max 10.67, mean 1.10, std 1.15.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.generators import require_length, smooth, white_noise

__all__ = ["generate_gap"]


def generate_gap(
    n: int,
    seed: int = 0,
    day_length: int = 1440,
    spike_rate: float = 1.0 / 400.0,
) -> np.ndarray:
    """GAP-like series of ``n`` points (one sample ≈ one minute).

    A morning/evening double-peaked daily profile, scaled by a weekly
    rhythm and slow seasonal drift, plus Poisson appliance spikes with
    exponential decay.  Values are clamped positive and rescaled into the
    Table-1 envelope.
    """
    n = require_length(n)
    rng = np.random.default_rng(seed)
    minutes = np.arange(n)
    day_phase = (minutes % day_length) / day_length
    daily = (
        0.35
        + 0.8 * np.exp(-0.5 * ((day_phase - 0.33) / 0.07) ** 2)  # morning
        + 1.1 * np.exp(-0.5 * ((day_phase - 0.82) / 0.09) ** 2)  # evening
    )
    week_phase = (minutes % (7 * day_length)) / (7 * day_length)
    weekly = 1.0 + 0.25 * np.sin(2.0 * np.pi * week_phase)
    seasonal = 1.0 + 0.3 * np.sin(2.0 * np.pi * minutes / max(n, 1))
    base = daily * weekly * seasonal

    spikes = np.zeros(n, dtype=np.float64)
    n_spikes = max(1, rng.poisson(spike_rate * n))
    decay = np.exp(-np.arange(40) / 8.0)
    for _ in range(n_spikes):
        start = int(rng.integers(0, n))
        amp = 1.5 + 4.0 * rng.random()
        end = min(start + decay.size, n)
        spikes[start:end] += amp * decay[: end - start]

    noise = smooth(white_noise(n, rng, 0.25), 5)
    raw = np.maximum(base + spikes + noise, 0.01)
    # Map into the published envelope: std 1.15, mean near 1.10, min >= 0.08.
    scaled = raw / raw.std() * 1.15
    shift = 1.10 - scaled.mean()
    if scaled.min() + shift < 0.08:
        shift = 0.08 - scaled.min()
    return scaled + shift
