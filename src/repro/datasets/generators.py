"""Shared signal-generation building blocks.

Small, composable primitives the five dataset families are assembled
from.  Every generator takes an explicit ``numpy.random.Generator`` so
all datasets are reproducible from a seed.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.exceptions import InvalidParameterError

__all__ = [
    "require_length",
    "white_noise",
    "random_walk",
    "sine_mixture",
    "gaussian_pulse",
    "exponential_flare",
    "resample",
    "affine_to",
    "smooth",
]


def require_length(n: int, minimum: int = 16) -> int:
    """Validate a requested series length."""
    if n < minimum:
        raise InvalidParameterError(f"series length must be >= {minimum}, got {n}")
    return int(n)


def white_noise(n: int, rng: np.random.Generator, scale: float = 1.0) -> np.ndarray:
    """IID Gaussian noise."""
    return scale * rng.standard_normal(require_length(n, 1))


def random_walk(n: int, rng: np.random.Generator, scale: float = 1.0) -> np.ndarray:
    """Cumulative sum of Gaussian steps (Brownian-ish drift)."""
    return np.cumsum(white_noise(n, rng, scale))


def sine_mixture(
    n: int,
    frequencies: Sequence[float],
    amplitudes: Optional[Sequence[float]] = None,
    phases: Optional[Sequence[float]] = None,
) -> np.ndarray:
    """Sum of sinusoids; frequencies are cycles over the whole series."""
    n = require_length(n, 2)
    x = np.linspace(0.0, 2.0 * np.pi, n, endpoint=False)
    if amplitudes is None:
        amplitudes = [1.0] * len(frequencies)
    if phases is None:
        phases = [0.0] * len(frequencies)
    if not (len(frequencies) == len(amplitudes) == len(phases)):
        raise InvalidParameterError(
            "frequencies, amplitudes and phases must have equal lengths"
        )
    out = np.zeros(n, dtype=np.float64)
    for freq, amp, phase in zip(frequencies, amplitudes, phases):
        out += amp * np.sin(freq * x + phase)
    return out


def gaussian_pulse(length: int, center: float, width: float, amplitude: float = 1.0) -> np.ndarray:
    """A Gaussian bump evaluated on ``length`` unit-spaced points.

    ``center`` and ``width`` are in *phase* units (0..1 across the
    pulse), which makes the shape invariant to resampling — the property
    the TRACE experiments rely on.
    """
    phase = np.linspace(0.0, 1.0, require_length(length, 2))
    return amplitude * np.exp(-0.5 * ((phase - center) / width) ** 2)


def exponential_flare(length: int, rise_fraction: float = 0.15) -> np.ndarray:
    """Fast-rise / slow-decay flare profile on [0, 1] phase (ASTRO bursts)."""
    length = require_length(length, 4)
    rise_len = max(1, int(length * rise_fraction))
    rise = np.linspace(0.0, 1.0, rise_len, endpoint=False)
    decay = np.exp(-np.linspace(0.0, 5.0, length - rise_len))
    return np.concatenate([rise, decay])


def resample(signal: np.ndarray, new_length: int) -> np.ndarray:
    """Linear-interpolation resampling to ``new_length`` points.

    Used to express one prototype pattern at several speeds (the paper's
    Figure 2 downsampling protocol).
    """
    x = np.asarray(signal, dtype=np.float64)
    if x.size < 2:
        raise InvalidParameterError("cannot resample a signal shorter than 2 points")
    new_length = require_length(new_length, 2)
    old_grid = np.linspace(0.0, 1.0, x.size)
    new_grid = np.linspace(0.0, 1.0, new_length)
    return np.interp(new_grid, old_grid, x)


def affine_to(signal: np.ndarray, mean: float, std: float) -> np.ndarray:
    """Affinely rescale a signal to an exact target mean and std.

    This is how the dataset families hit their Table-1 statistics without
    altering their z-normalization-invariant structure (z-normalized
    distances are unchanged by any affine map with positive scale).
    """
    x = np.asarray(signal, dtype=np.float64)
    current_std = x.std()
    if current_std <= 0:
        raise InvalidParameterError("cannot rescale a constant signal")
    if std <= 0:
        raise InvalidParameterError(f"target std must be positive, got {std}")
    return (x - x.mean()) / current_std * std + mean


def smooth(signal: np.ndarray, window: int) -> np.ndarray:
    """Centered moving-average smoothing (reflect padding)."""
    if window <= 1:
        return np.asarray(signal, dtype=np.float64)
    x = np.asarray(signal, dtype=np.float64)
    pad = window // 2
    padded = np.pad(x, pad, mode="reflect")
    kernel = np.ones(window) / window
    out = np.convolve(padded, kernel, mode="same")
    return out[pad : pad + x.size]
