"""EPG-like generator for the entomology case study (Section 9.1).

The paper's case study records an Electrical Penetration Graph of an
Asian citrus psyllid feeding for 5.5 hours and finds that the top motif
*changes meaning* across lengths: around 10 s it is a complex probing
pattern, around 12 s a simple repetitive xylem-ingestion wave
(Figure 1).

This generator reproduces that situation synthetically: a baseline
voltage with two planted behaviour classes —

* ``probing``: a multi-phase pattern (drops, oscillation burst, ramp)
  planted at the *shorter* duration;
* ``ingestion``: a plain sawtooth-like sucking rhythm planted at the
  *longer* duration;

each repeated several times with small amplitude jitter.  Searching the
length range spanning both durations should yield different top motifs
at the two scales — the case-study claim the example script verifies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.datasets.generators import require_length, smooth, white_noise

__all__ = ["generate_epg", "EPGGroundTruth"]


@dataclass(frozen=True)
class EPGGroundTruth:
    """Where the behaviours were planted, for verification."""

    probing_positions: Tuple[int, ...]
    probing_length: int
    ingestion_positions: Tuple[int, ...]
    ingestion_length: int


def _probing_pattern(length: int, rng: np.random.Generator) -> np.ndarray:
    """Complex probing waveform: two sharp drops, a burst, a recovery ramp.

    Copies are near-identical (tiny amplitude jitter): at the probing
    duration this is the best match in the series.
    """
    phase = np.linspace(0.0, 1.0, length)
    out = np.zeros(length, dtype=np.float64)
    for center in (0.12, 0.38):
        out -= 1.6 * np.exp(-0.5 * ((phase - center) / 0.025) ** 2)
    burst_zone = (phase > 0.5) & (phase < 0.78)
    out[burst_zone] += 0.7 * np.sin(2.0 * np.pi * 14.0 * phase[burst_zone])
    ramp_zone = phase >= 0.78
    out[ramp_zone] += np.linspace(0.0, 0.9, int(ramp_zone.sum()))
    return out * (1.0 + 0.01 * rng.standard_normal())


def _ingestion_pattern(length: int, rng: np.random.Generator) -> np.ndarray:
    """Simple repetitive sucking rhythm: a smoothed sawtooth.

    Copies carry moderate per-point jitter: a decent — not perfect —
    match over the *full* ingestion duration, so it only becomes the top
    motif once the probing windows are forced to include the turbulent
    repositioning that follows each probe.
    """
    cycles = 6.0
    phase = np.linspace(0.0, cycles, length) % 1.0
    saw = 2.0 * phase - 1.0
    body = smooth(saw, max(3, length // 60))
    jitter = smooth(rng.standard_normal(length), 7)
    return (body + 0.22 * jitter) * (1.0 + 0.02 * rng.standard_normal())


def generate_epg(
    n: int = 20_500,
    seed: int = 0,
    probing_length: int = 200,
    ingestion_length: int = 240,
    occurrences: int = 4,
) -> Tuple[np.ndarray, EPGGroundTruth]:
    """EPG-like series plus the planted-behaviour ground truth.

    Default sizes are a 1:10 scaling of the case study's 205,000 points
    (10 s ≈ 200 samples); pass larger ``n`` to scale up.
    """
    n = require_length(n, 64 * occurrences)
    rng = np.random.default_rng(seed)
    out = 0.15 * smooth(white_noise(n, rng, 1.0), 21)
    out += 0.06 * white_noise(n, rng, 1.0)

    slots = occurrences * 2
    slot_width = n // slots
    order = rng.permutation(slots)
    probing_positions: List[int] = []
    ingestion_positions: List[int] = []
    for rank, slot in enumerate(order):
        margin = max(ingestion_length, probing_length) + 10
        lo = slot * slot_width
        hi = min((slot + 1) * slot_width, n) - margin
        if hi <= lo:
            continue
        start = int(rng.integers(lo, hi))
        if rank % 2 == 0 and len(probing_positions) < occurrences:
            out[start : start + probing_length] += _probing_pattern(
                probing_length, rng
            )
            # Each probe is bracketed by the insect repositioning:
            # strong, occurrence-specific turbulence immediately before
            # and after the pattern.  This is what makes the *extended*
            # probing windows diverge (in either direction) and hands the
            # longer-length motif to the ingestion rhythm.
            turb_len = max(32, probing_length // 3)
            tail = 1.1 * smooth(rng.standard_normal(turb_len), 3)
            tail_end = min(start + probing_length + turb_len, n)
            out[start + probing_length : tail_end] += tail[
                : tail_end - start - probing_length
            ]
            head = 1.1 * smooth(rng.standard_normal(turb_len), 3)
            head_start = max(0, start - turb_len)
            out[head_start:start] += head[turb_len - (start - head_start) :]
            probing_positions.append(start)
        elif len(ingestion_positions) < occurrences:
            out[start : start + ingestion_length] += 1.2 * _ingestion_pattern(
                ingestion_length, rng
            )
            ingestion_positions.append(start)
    truth = EPGGroundTruth(
        probing_positions=tuple(sorted(probing_positions)),
        probing_length=probing_length,
        ingestion_positions=tuple(sorted(ingestion_positions)),
        ingestion_length=ingestion_length,
    )
    return out, truth
