"""Synthetic stand-ins for the paper's five evaluation datasets.

The paper evaluates on five real datasets (Table 1): ECG and EMG from the
stress-recognition driving study, GAP (French global active power), ASTRO
(AGN X-ray variability), and EEG (cyclic alternating pattern sleep
recordings).  None are redistributable offline, so each module here
generates a seeded synthetic series of the same *structure class* and
matching Table-1 statistics; DESIGN.md documents why structure (not
provenance) is what the algorithms are sensitive to.

Use :func:`repro.datasets.registry.load_dataset` for uniform access, or
the per-family generators directly.
"""

from repro.datasets.generators import (
    affine_to,
    random_walk,
    resample,
    sine_mixture,
    white_noise,
)
from repro.datasets.motif_planting import plant_motifs
from repro.datasets.registry import (
    DATASET_NAMES,
    DatasetSpec,
    dataset_spec,
    load_dataset,
)
from repro.datasets.ecg import generate_ecg
from repro.datasets.emg import generate_emg
from repro.datasets.power import generate_gap
from repro.datasets.astro import generate_astro
from repro.datasets.eeg import generate_eeg
from repro.datasets.epg import generate_epg
from repro.datasets.trace import trace_signature, trace_pair_at_lengths

__all__ = [
    "affine_to",
    "random_walk",
    "resample",
    "sine_mixture",
    "white_noise",
    "plant_motifs",
    "DATASET_NAMES",
    "DatasetSpec",
    "dataset_spec",
    "load_dataset",
    "generate_ecg",
    "generate_emg",
    "generate_gap",
    "generate_astro",
    "generate_eeg",
    "generate_epg",
    "trace_signature",
    "trace_pair_at_lengths",
]
