"""EEG-like generator (stand-in for the CAP sleep EEG dataset).

Structure class: ongoing band-limited oscillation interrupted by the
cyclic alternating pattern (CAP) of NREM sleep — recurring "A phases"
(bursts of high-amplitude slow activity) alternating with quieter "B
phases" on a 20-40 second rhythm.  The A-phase bursts are the recurring
structure motif discovery latches onto.

Table-1 targets: min -966, max 920, mean 3.34, std 41.36.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.generators import affine_to, require_length, smooth, white_noise

__all__ = ["generate_eeg"]


def generate_eeg(
    n: int,
    seed: int = 0,
    cycle_length: int = 900,
    a_phase_fraction: float = 0.35,
) -> np.ndarray:
    """EEG-like series of ``n`` points, Table-1 statistics applied.

    ``cycle_length`` is the CAP period in samples; the first
    ``a_phase_fraction`` of each cycle carries the high-amplitude
    slow-wave burst, the rest the low-amplitude background.
    """
    n = require_length(n)
    rng = np.random.default_rng(seed)
    x = np.arange(n, dtype=np.float64)
    # Background: alpha-like oscillation with wandering frequency.
    freq_wander = 1.0 + 0.1 * smooth(white_noise(n, rng, 1.0), 301)
    background = np.sin(2.0 * np.pi * np.cumsum(freq_wander) / 24.0)
    background += 0.4 * white_noise(n, rng, 1.0)

    # CAP A phases: slow high-amplitude bursts with jittered onsets.
    envelope = np.full(n, 0.35, dtype=np.float64)
    pos = 0
    while pos < n:
        cycle = max(64, int(cycle_length * (1.0 + 0.15 * rng.standard_normal())))
        a_len = max(32, int(cycle * a_phase_fraction))
        burst = 0.5 * (1.0 - np.cos(2.0 * np.pi * np.arange(a_len) / a_len))
        end = min(pos + a_len, n)
        envelope[pos:end] += 2.2 * burst[: end - pos]
        pos += cycle
    slow = np.sin(2.0 * np.pi * x / 90.0 + 0.5 * smooth(white_noise(n, rng, 1.0), 201))
    out = background * envelope + 1.6 * slow * (envelope - 0.35)
    # Rare high-voltage artifacts give the published extreme min/max.
    n_artifacts = max(1, n // 100_000)
    for _ in range(n_artifacts):
        start = int(rng.integers(0, max(1, n - 40)))
        out[start : start + 40] += 18.0 * np.sign(rng.standard_normal())
    return affine_to(out, mean=3.34, std=41.36)
