"""ASTRO-like generator (stand-in for the AGN hard-X-ray light curves).

Structure class: smooth long-memory variability (red noise) with
occasional fast-rise / slow-decay flares, at a tiny absolute amplitude.
AGN light curves are dominated by low-frequency power, which makes
nearby subsequences similar and the motif landscape smooth.

Table-1 targets: min -0.00867, max 0.00447, mean 0.00003, std 0.00031.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.generators import (
    affine_to,
    exponential_flare,
    require_length,
    smooth,
    white_noise,
)

__all__ = ["generate_astro"]


def generate_astro(
    n: int,
    seed: int = 0,
    flare_rate: float = 1.0 / 4000.0,
    memory: int = 101,
) -> np.ndarray:
    """ASTRO-like series of ``n`` points, Table-1 statistics applied.

    Red noise is produced by heavily smoothing a random walk (``memory``
    controls the smoothing window, i.e. how long the memory is); flares
    arrive as a Poisson process with random amplitude and duration.
    """
    n = require_length(n)
    rng = np.random.default_rng(seed)
    red = smooth(np.cumsum(white_noise(n, rng, 1.0)), memory)
    red = red - smooth(red, memory * 8 + 1)  # remove the slowest drift

    flares = np.zeros(n, dtype=np.float64)
    n_flares = max(1, rng.poisson(flare_rate * n))
    for _ in range(n_flares):
        length = int(80 + rng.exponential(300))
        start = int(rng.integers(0, max(1, n - length)))
        amp = (0.5 + 2.0 * rng.random()) * red.std()
        profile = exponential_flare(length)
        end = min(start + length, n)
        flares[start:end] += amp * profile[: end - start]

    out = red + flares + white_noise(n, rng, 0.05 * red.std())
    return affine_to(out, mean=0.00003, std=0.00031)
