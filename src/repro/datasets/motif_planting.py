"""Planting known motifs into background series.

Integration tests and examples need series whose true motifs are known.
:func:`plant_motifs` injects copies of a pattern at non-overlapping
positions (with controllable amplitude jitter and additive noise), so the
discovered motif pair can be checked against ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import InvalidParameterError

__all__ = ["plant_motifs", "PlantedMotifs"]


@dataclass(frozen=True)
class PlantedMotifs:
    """A background series with pattern copies planted into it."""

    series: np.ndarray
    positions: Tuple[int, ...]
    length: int

    def nearest_planted(self, offset: int) -> int:
        """The planted position closest to ``offset`` (for assertions)."""
        return min(self.positions, key=lambda pos: abs(pos - offset))

    def hit(self, offset: int, tolerance: Optional[int] = None) -> bool:
        """True when ``offset`` falls within ``tolerance`` of a planted copy.

        Default tolerance is a quarter of the pattern length, matching
        the slack motif discovery has in phase-aligning the copies.
        """
        if tolerance is None:
            tolerance = max(1, self.length // 4)
        return abs(self.nearest_planted(offset) - offset) <= tolerance


def plant_motifs(
    background: np.ndarray,
    pattern: np.ndarray,
    positions: Optional[Sequence[int]] = None,
    count: int = 2,
    scale: float = 1.0,
    amplitude_jitter: float = 0.0,
    rng: Optional[np.random.Generator] = None,
) -> PlantedMotifs:
    """Add copies of ``pattern`` to ``background`` at known offsets.

    Positions are drawn uniformly without overlap when not given.  The
    pattern is *added* (not substituted), so the background's texture
    stays continuous at the seams.
    """
    base = np.asarray(background, dtype=np.float64).copy()
    pat = np.asarray(pattern, dtype=np.float64)
    if pat.size < 4:
        raise InvalidParameterError("pattern must have at least 4 points")
    if pat.size * 2 > base.size:
        raise InvalidParameterError(
            f"pattern of {pat.size} points does not fit twice in "
            f"{base.size}-point background"
        )
    if rng is None:
        rng = np.random.default_rng(0)

    if positions is None:
        if count < 2:
            raise InvalidParameterError(f"count must be >= 2, got {count}")
        chosen: List[int] = []
        attempts = 0
        while len(chosen) < count:
            attempts += 1
            if attempts > 10_000:
                raise InvalidParameterError(
                    f"could not place {count} non-overlapping copies of a "
                    f"{pat.size}-point pattern in {base.size} points"
                )
            cand = int(rng.integers(0, base.size - pat.size + 1))
            if all(abs(cand - other) >= pat.size for other in chosen):
                chosen.append(cand)
        positions = sorted(chosen)
    else:
        positions = sorted(int(p) for p in positions)
        for a, b in zip(positions, positions[1:]):
            if b - a < pat.size:
                raise InvalidParameterError(
                    f"planted positions {a} and {b} overlap for pattern "
                    f"length {pat.size}"
                )
        if positions[0] < 0 or positions[-1] + pat.size > base.size:
            raise InvalidParameterError("planted positions fall outside the series")

    for pos in positions:
        jitter = 1.0 + amplitude_jitter * float(rng.standard_normal())
        base[pos : pos + pat.size] += scale * jitter * pat
    return PlantedMotifs(series=base, positions=tuple(positions), length=pat.size)
