"""TRACE-like signature for the length-normalization study (Figure 2).

The paper uses two series from the TRACE dataset as proxies for a
"washing machine" signature expressed at different speeds: the same
prototype pattern down-sampled to a range of lengths.  A correct
length-ranking correction should give the pair approximately the *same*
distance at every length.

:func:`trace_signature` is a parametric prototype — a ramp, a plateau
with superimposed oscillation, a spike, and a decay — evaluated directly
at any requested length (phase-parameterized, so it *is* its own
down-sampled version), with an optional per-instance perturbation.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.datasets.generators import require_length

__all__ = ["trace_signature", "trace_pair_at_lengths"]


def trace_signature(length: int, variant_seed: int = None) -> np.ndarray:
    """The prototype signature at ``length`` samples.

    ``variant_seed`` adds a small reproducible perturbation so two
    variants are similar-but-not-identical, as in the paper's two TRACE
    series.
    """
    phase = np.linspace(0.0, 1.0, require_length(length, 16))
    out = np.zeros(length, dtype=np.float64)
    ramp = phase < 0.2
    out[ramp] = phase[ramp] / 0.2
    plateau = (phase >= 0.2) & (phase < 0.62)
    out[plateau] = 1.0 + 0.15 * np.sin(2.0 * np.pi * 9.0 * phase[plateau])
    out += 1.4 * np.exp(-0.5 * ((phase - 0.7) / 0.015) ** 2)  # spike
    decay = phase >= 0.72
    out[decay] = out[decay] * 0.0 + np.exp(-(phase[decay] - 0.72) / 0.07)
    if variant_seed is not None:
        rng = np.random.default_rng(variant_seed)
        bumps = np.zeros(length)
        for _ in range(3):
            center = rng.random()
            bumps += 0.06 * rng.standard_normal() * np.exp(
                -0.5 * ((phase - center) / 0.05) ** 2
            )
        out = out + bumps
    return out


def trace_pair_at_lengths(
    lengths: List[int], seed_a: int = 11, seed_b: int = 23
) -> List[Tuple[np.ndarray, np.ndarray]]:
    """The two signature variants rendered at each requested length.

    This is the Figure-2 protocol: the same pattern pair expressed at a
    sweep of speeds, ready to feed a distance-vs-length study.
    """
    return [
        (trace_signature(length, seed_a), trace_signature(length, seed_b))
        for length in lengths
    ]
