"""MAD ablation driver: pruned vs full-profile discord discovery.

Lives apart from :mod:`repro.harness.experiments` because it composes
only the *discords* workload family (lint rule R009: one family per
module outside the façade) — both drivers, timed head to head on the
same input, with the pruning counters recorded and the outputs
asserted identical.  This is the harness-level counterpart of the
differential wall in ``tests/test_discords_variable.py``; see
``docs/DISCORDS.md`` for the pruning-power interpretation.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence

from repro import obs
from repro.core.discords import find_discords
from repro.core.discords_variable import find_discords_pruned
from repro.datasets.registry import DATASET_NAMES, load_dataset
from repro.harness.config import BenchmarkGrid, default_grid

__all__ = ["sweep_discord_drivers"]


def sweep_discord_drivers(
    datasets: Sequence[str] = DATASET_NAMES,
    grid: Optional[BenchmarkGrid] = None,
    seed: int = 0,
    k: int = 3,
    loader=load_dataset,
) -> List[Dict[str, object]]:
    """Time both discord drivers per dataset and range width.

    Each row reports the two wall-clock timings, the obs pruning
    counters (``lengths_swept`` = ``profiles_recomputed`` +
    ``profiles_pruned``), the derived ``pruning_power``, and an
    ``identical`` flag that must always be ``True``.
    """
    grid = grid or default_grid()
    rows: List[Dict[str, object]] = []
    for dataset in datasets:
        series = loader(dataset, grid.default_size, seed=seed)
        for rng_ in grid.motif_ranges:
            l_min = grid.default_length
            l_max = l_min + rng_
            start = time.perf_counter()
            full = find_discords(
                series, l_min, l_max, k=k, n_jobs=grid.n_jobs
            )
            full_seconds = time.perf_counter() - start
            with obs.tracing(True):
                before = dict(obs.get_tracer().counters())
                start = time.perf_counter()
                pruned = find_discords_pruned(
                    series, l_min, l_max, k=k, p=grid.default_p,
                    n_jobs=grid.n_jobs,
                )
                pruned_seconds = time.perf_counter() - start
                after = dict(obs.get_tracer().counters())
            counters = {
                name: value - before.get(name, 0)
                for name, value in after.items()
                if value != before.get(name, 0)
            }
            swept = counters.get("discords.lengths.swept", 0)
            n_pruned = counters.get("discords.profiles.pruned", 0)
            rows.append(
                {
                    "dataset": dataset,
                    "range": rng_,
                    "identical": full == pruned,
                    "full_seconds": full_seconds,
                    "pruned_seconds": pruned_seconds,
                    "lengths_swept": swept,
                    "profiles_recomputed": counters.get(
                        "discords.profiles.recomputed", 0
                    ),
                    "profiles_pruned": n_pruned,
                    "pruning_power": (n_pruned / swept) if swept else 0.0,
                }
            )
    return rows
