"""Plain-text rendering of benchmark tables and distributions.

The benches print the same rows/series the paper's figures plot; these
helpers keep the formatting consistent (aligned columns, ASCII
histograms for the distribution figures).
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

__all__ = ["format_table", "format_histogram", "format_series"]


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Align a list of rows under headers."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[col]) for row in cells) for col in range(len(headers))]
    lines: List[str] = []
    for idx, row in enumerate(cells):
        lines.append("  ".join(cell.rjust(width) for cell, width in zip(row, widths)))
        if idx == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def format_histogram(
    counts: np.ndarray, edges: np.ndarray, width: int = 40
) -> str:
    """ASCII histogram: one bar per bin."""
    counts = np.asarray(counts)
    peak = counts.max() if counts.size else 1
    lines = []
    for i, count in enumerate(counts):
        bar = "#" * int(round(width * count / peak)) if peak else ""
        lines.append(f"[{edges[i]:8.3f}, {edges[i + 1]:8.3f})  {count:>8d}  {bar}")
    return "\n".join(lines)


def format_series(label: str, values: Sequence[float], fmt: str = "{:.3f}") -> str:
    """One labeled row of values (a plotted line, as text)."""
    return f"{label:>16}: " + "  ".join(fmt.format(v) for v in values)
