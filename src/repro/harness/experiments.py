"""Experiment drivers for the scalability figures (8, 12, 13, 14, 15).

Each driver sweeps one dimension of Table 2 with the other dimensions at
their defaults, over the requested datasets and algorithms, and returns
rows ready for :func:`repro.harness.reporting.format_table`.  The bench
modules under ``benchmarks/`` are thin wrappers over these drivers.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.motif_sets import compute_motif_sets
from repro.core.valmod import Valmod
from repro.datasets.registry import DATASET_NAMES, load_dataset
from repro.harness.config import BenchmarkGrid, default_grid
from repro.harness.runner import ALGORITHMS, RunOutcome, run_algorithm

__all__ = [
    "SweepResult",
    "sweep_motif_length",
    "sweep_motif_range",
    "sweep_series_size",
    "sweep_parameter_p",
    "sweep_motif_sets",
]


@dataclass
class SweepResult:
    """Rows of one sweep: one row per (dataset, x-value), one column per algorithm."""

    x_name: str
    algorithms: List[str]
    rows: List[Dict[str, object]] = field(default_factory=list)

    def headers(self) -> List[str]:
        return ["dataset", self.x_name] + list(self.algorithms)

    def table_rows(self) -> List[List[object]]:
        out = []
        for row in self.rows:
            cells: List[object] = [row["dataset"], row["x"]]
            for name in self.algorithms:
                outcome: Optional[RunOutcome] = row.get(name)
                cells.append(outcome.cell() if outcome is not None else "-")
            out.append(cells)
        return out

    def speedup_vs(self, baseline: str, target: str = "VALMOD") -> List[float]:
        """Per-row speedup of ``target`` over ``baseline`` (DNF rows skipped)."""
        speedups = []
        for row in self.rows:
            b, v = row.get(baseline), row.get(target)
            if b is None or v is None or b.dnf or v.dnf or v.seconds == 0:
                continue
            speedups.append(b.seconds / v.seconds)
        return speedups


def _sweep(
    x_name: str,
    x_values: Sequence[int],
    make_params,
    datasets: Sequence[str],
    algorithms: Sequence[str],
    grid: BenchmarkGrid,
    seed: int,
    loader=load_dataset,
) -> SweepResult:
    result = SweepResult(x_name=x_name, algorithms=list(algorithms))
    for dataset in datasets:
        for x in x_values:
            n, l_min, l_max = make_params(x)
            series = loader(dataset, n, seed=seed)
            row: Dict[str, object] = {"dataset": dataset, "x": x}
            for name in algorithms:
                row[name] = run_algorithm(
                    name,
                    series,
                    l_min,
                    l_max,
                    p=grid.default_p,
                    timeout_seconds=grid.timeout_seconds,
                    n_jobs=grid.n_jobs,
                )
            result.rows.append(row)
    return result


def sweep_motif_length(
    datasets: Sequence[str] = DATASET_NAMES,
    algorithms: Sequence[str] = tuple(ALGORITHMS),
    grid: Optional[BenchmarkGrid] = None,
    seed: int = 0,
    loader=load_dataset,
) -> SweepResult:
    """Figure 8: runtime vs l_min at the default range and size."""
    grid = grid or default_grid()
    return _sweep(
        "l_min",
        grid.motif_lengths,
        lambda length: (grid.default_size, length, length + grid.default_range),
        datasets,
        algorithms,
        grid,
        seed,
        loader=loader,
    )


def sweep_motif_range(
    datasets: Sequence[str] = DATASET_NAMES,
    algorithms: Sequence[str] = tuple(ALGORITHMS),
    grid: Optional[BenchmarkGrid] = None,
    seed: int = 0,
    loader=load_dataset,
) -> SweepResult:
    """Figure 12: runtime vs range width at the default length and size."""
    grid = grid or default_grid()
    return _sweep(
        "range",
        grid.motif_ranges,
        lambda rng_: (grid.default_size, grid.default_length, grid.default_length + rng_),
        datasets,
        algorithms,
        grid,
        seed,
        loader=loader,
    )


def sweep_series_size(
    datasets: Sequence[str] = DATASET_NAMES,
    algorithms: Sequence[str] = tuple(ALGORITHMS),
    grid: Optional[BenchmarkGrid] = None,
    seed: int = 0,
    loader=load_dataset,
) -> SweepResult:
    """Figure 13: runtime vs series size at the default length and range."""
    grid = grid or default_grid()
    return _sweep(
        "n",
        grid.series_sizes,
        lambda n: (n, grid.default_length, grid.default_length + grid.default_range),
        datasets,
        algorithms,
        grid,
        seed,
        loader=loader,
    )


def sweep_parameter_p(
    datasets: Sequence[str] = DATASET_NAMES,
    grid: Optional[BenchmarkGrid] = None,
    seed: int = 0,
    loader=load_dataset,
) -> List[Dict[str, object]]:
    """Figure 14: VALMOD runtime and |subMP| trajectory per p value."""
    grid = grid or default_grid()
    rows: List[Dict[str, object]] = []
    for dataset in datasets:
        series = loader(dataset, grid.default_size, seed=seed)
        for p in grid.p_values:
            start = time.perf_counter()
            run = Valmod(
                series,
                grid.default_length,
                grid.default_length + grid.default_range,
                p=p,
            ).run()
            elapsed = time.perf_counter() - start
            rows.append(
                {
                    "dataset": dataset,
                    "p": p,
                    "seconds": elapsed,
                    "submp_sizes": run.stats.submp_sizes(),
                    "fast_lengths": run.stats.n_fast_lengths,
                    "full_recomputes": run.stats.n_full_recomputes,
                }
            )
    return rows


def sweep_motif_sets(
    datasets: Sequence[str] = DATASET_NAMES,
    grid: Optional[BenchmarkGrid] = None,
    seed: int = 0,
    loader=load_dataset,
) -> List[Dict[str, object]]:
    """Figure 15: motif-set extraction time vs K and vs D.

    Reports the VALMP build time once per dataset and the (much smaller)
    set-extraction time per parameter value, mirroring the paper's table
    layout.
    """
    grid = grid or default_grid()
    rows: List[Dict[str, object]] = []
    k_max = max(grid.k_values + [grid.default_k])
    for dataset in datasets:
        series = loader(dataset, grid.default_size, seed=seed)
        start = time.perf_counter()
        run = Valmod(
            series,
            grid.default_length,
            grid.default_length + grid.default_range,
            p=grid.default_p,
            track_top_k=k_max,
        ).run()
        valmp_seconds = time.perf_counter() - start
        pairs = run.best_k_pairs()
        for k in grid.k_values:
            start = time.perf_counter()
            sets = compute_motif_sets(series, pairs[:k], float(grid.default_d))
            rows.append(
                {
                    "dataset": dataset,
                    "vary": "K",
                    "value": k,
                    "seconds": time.perf_counter() - start,
                    "valmp_seconds": valmp_seconds,
                    "n_sets": len(sets),
                }
            )
        for d in grid.d_values:
            start = time.perf_counter()
            sets = compute_motif_sets(series, pairs[: grid.default_k], float(d))
            rows.append(
                {
                    "dataset": dataset,
                    "vary": "D",
                    "value": d,
                    "seconds": time.perf_counter() - start,
                    "valmp_seconds": valmp_seconds,
                    "n_sets": len(sets),
                }
            )
    return rows
