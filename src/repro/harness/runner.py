"""Timed, deadline-bounded execution of the four competing algorithms.

``run_algorithm`` gives every competitor the same interface the paper's
benchmark used: a series, a length range, and a wall-clock budget.  Runs
that exceed the budget are reported as DNF ("did not finish") rather
than crashing the sweep — the paper's plots contain exactly such
truncated bars.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional

import numpy as np

from repro import obs
from repro.baselines.moen import moen
from repro.baselines.quick_motif import quick_motif
from repro.baselines.stomp_range import stomp_range
from repro.exceptions import BudgetExceededError, InvalidParameterError
from repro.features import extract_features
from repro.types import MotifPair

__all__ = ["ALGORITHMS", "RunOutcome", "run_algorithm"]


@dataclass
class RunOutcome:
    """Result of one timed run."""

    algorithm: str
    seconds: float
    dnf: bool
    motif_pairs: Optional[Dict[int, MotifPair]] = None
    #: per-run counter deltas from :mod:`repro.obs` (None when tracing is
    #: off) — the counters this run added, not the process totals.
    trace: Optional[Dict[str, Any]] = None

    def cell(self) -> str:
        """Render as a benchmark table cell."""
        return "DNF" if self.dnf else f"{self.seconds:.2f}s"


def _counter_delta(
    before: Dict[str, int], after: Dict[str, int]
) -> Dict[str, int]:
    """Counters added between two snapshots (new keys appear whole)."""
    return {
        name: value - before.get(name, 0)
        for name, value in after.items()
        if value != before.get(name, 0)
    }


def _run_valmod(
    series: np.ndarray,
    l_min: int,
    l_max: int,
    p: int,
    deadline: float,
    n_jobs: Optional[int] = 1,
    stats_cache: bool = True,
):
    # VALMOD has no internal deadline: it is the fast competitor and its
    # worst case is bounded by the STOMP fallback it already contains.
    # Routed through the façade (motifs only, store off) so the harness
    # exercises the same entry point users call.
    return extract_features(
        series, l_min, l_max, p=p, include=(), n_jobs=n_jobs,
        stats_cache=stats_cache, store=False,
    ).pairs_by_length()


def _run_stomp(
    series: np.ndarray,
    l_min: int,
    l_max: int,
    p: int,
    deadline: float,
    n_jobs: Optional[int] = 1,
    stats_cache: bool = True,
):
    return stomp_range(series, l_min, l_max, deadline=deadline, n_jobs=n_jobs)


def _run_moen(
    series: np.ndarray,
    l_min: int,
    l_max: int,
    p: int,
    deadline: float,
    n_jobs: Optional[int] = 1,
    stats_cache: bool = True,
):
    return moen(series, l_min, l_max, deadline=deadline)


def _run_quick_motif(
    series: np.ndarray,
    l_min: int,
    l_max: int,
    p: int,
    deadline: float,
    n_jobs: Optional[int] = 1,
    stats_cache: bool = True,
):
    return quick_motif(series, l_min, l_max, deadline=deadline)


ALGORITHMS: Dict[str, Callable] = {
    "VALMOD": _run_valmod,
    "STOMP": _run_stomp,
    "QUICKMOTIF": _run_quick_motif,
    "MOEN": _run_moen,
}


def run_algorithm(
    name: str,
    series: np.ndarray,
    l_min: int,
    l_max: int,
    p: int = 50,
    timeout_seconds: float = 120.0,
    n_jobs: Optional[int] = 1,
    stats_cache: bool = True,
) -> RunOutcome:
    """Run one competitor under a wall-clock budget.

    The budget is enforced cooperatively (the baselines check a deadline
    between units of work), so a DNF is reported slightly *after* the
    budget passes — the same semantics as killing a C process.
    ``n_jobs`` reaches the competitors that parallelize (VALMOD's full
    matrix-profile passes and STOMP-per-length); serial-only baselines
    ignore it.  ``stats_cache=False`` disables VALMOD's shared series
    stats/FFT cache (ablation; identical results, different timings).
    """
    if name not in ALGORITHMS:
        raise InvalidParameterError(
            f"unknown algorithm {name!r}; choose from {', '.join(ALGORITHMS)}"
        )
    tracing = obs.enabled()
    before = obs.get_tracer().counters() if tracing else {}
    start = time.perf_counter()
    deadline = start + timeout_seconds

    def _trace() -> Optional[Dict[str, Any]]:
        if not tracing:
            return None
        return _counter_delta(before, obs.get_tracer().counters())

    try:
        pairs = ALGORITHMS[name](
            series, l_min, l_max, p, deadline, n_jobs=n_jobs,
            stats_cache=stats_cache,
        )
    except BudgetExceededError:
        return RunOutcome(
            algorithm=name,
            seconds=time.perf_counter() - start,
            dnf=True,
            trace=_trace(),
        )
    return RunOutcome(
        algorithm=name,
        seconds=time.perf_counter() - start,
        dnf=False,
        motif_pairs=pairs,
        trace=_trace(),
    )
