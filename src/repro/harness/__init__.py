"""Benchmark harness: parameter grids, timed runners, report formatting.

The harness reproduces the paper's evaluation protocol (Section 6.1,
Table 2) at a laptop scale: every grid keeps the paper's *ratios*
(range/length, series/length) while shrinking absolute sizes — see
DESIGN.md for the substitution rationale.  Scale everything back up with
the ``REPRO_BENCH_SCALE`` environment variable or the ``scale`` argument.
"""

from repro.harness.config import BenchmarkGrid, default_grid
from repro.harness.runner import ALGORITHMS, RunOutcome, run_algorithm
from repro.harness.reporting import format_table, format_histogram
from repro.harness.discord_ablation import sweep_discord_drivers
from repro.harness.experiments import (
    SweepResult,
    sweep_motif_length,
    sweep_motif_range,
    sweep_motif_sets,
    sweep_parameter_p,
    sweep_series_size,
)

__all__ = [
    "sweep_discord_drivers",
    "BenchmarkGrid",
    "default_grid",
    "ALGORITHMS",
    "RunOutcome",
    "run_algorithm",
    "format_table",
    "format_histogram",
    "SweepResult",
    "sweep_motif_length",
    "sweep_motif_range",
    "sweep_motif_sets",
    "sweep_parameter_p",
    "sweep_series_size",
]
