"""Benchmark parameter grids — Table 2, scaled.

The paper's grid (defaults in bold there):

=====================  ==============================
motif length l_min     256, 512, 1024, 2048, 4096
motif range            100, 150, 200, 400, 600
series size            0.1M, 0.2M, 0.5M, 0.8M, 1M
p                      5, 10, 15, 20, **50**, 100, 150
=====================  ==============================

Pure-Python engines are ~two orders of magnitude slower per operation
than the paper's C, so the default grid divides lengths by 16 and sizes
by ~125 while keeping every ratio; ``scale`` (or the REPRO_BENCH_SCALE
environment variable) multiplies sizes back up for bigger machines.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import List

from repro.exceptions import InvalidParameterError

__all__ = ["BenchmarkGrid", "default_grid", "env_scale", "env_jobs"]

#: the paper's Table 2, verbatim, for reference and reporting.
PAPER_GRID = {
    "motif_length": [256, 512, 1024, 2048, 4096],
    "motif_range": [100, 150, 200, 400, 600],
    "series_size": [100_000, 200_000, 500_000, 800_000, 1_000_000],
    "p": [5, 10, 15, 20, 50, 100, 150],
    "defaults": {"motif_length": 1024, "motif_range": 200, "series_size": 500_000, "p": 50},
}


@dataclass(frozen=True)
class BenchmarkGrid:
    """One concrete (possibly scaled) instantiation of Table 2."""

    motif_lengths: List[int] = field(
        default_factory=lambda: [16, 32, 64, 128, 256]
    )
    motif_ranges: List[int] = field(default_factory=lambda: [6, 9, 12, 25, 38])
    series_sizes: List[int] = field(
        default_factory=lambda: [1000, 2000, 4000, 6500, 8000]
    )
    p_values: List[int] = field(default_factory=lambda: [5, 10, 15, 20, 50, 100, 150])
    default_length: int = 64
    default_range: int = 12
    default_size: int = 4000
    default_p: int = 50
    #: per-(algorithm, configuration) wall-clock budget before a DNF.
    timeout_seconds: float = 120.0
    #: K / D grids of the motif-set experiment (Figure 15), as published.
    k_values: List[int] = field(default_factory=lambda: [10, 20, 40, 60, 80])
    d_values: List[int] = field(default_factory=lambda: [2, 3, 4, 5, 6])
    default_k: int = 40
    default_d: int = 4
    #: worker processes handed to algorithms that parallelize (1 = serial).
    n_jobs: int = 1


def env_jobs() -> int:
    """The REPRO_BENCH_JOBS environment variable (default 1)."""
    raw = os.environ.get("REPRO_BENCH_JOBS", "1")
    try:
        jobs = int(raw)
    except ValueError as exc:
        raise InvalidParameterError(
            f"REPRO_BENCH_JOBS must be an integer, got {raw!r}"
        ) from exc
    if jobs < 0:
        raise InvalidParameterError(
            f"REPRO_BENCH_JOBS must be non-negative, got {jobs}"
        )
    return jobs


def env_scale() -> float:
    """The REPRO_BENCH_SCALE environment variable (default 1.0)."""
    raw = os.environ.get("REPRO_BENCH_SCALE", "1")
    try:
        scale = float(raw)
    except ValueError as exc:
        raise InvalidParameterError(
            f"REPRO_BENCH_SCALE must be a number, got {raw!r}"
        ) from exc
    if scale <= 0:
        raise InvalidParameterError(f"REPRO_BENCH_SCALE must be positive, got {scale}")
    return scale


def default_grid(scale: float = None) -> BenchmarkGrid:
    """The scaled Table-2 grid; ``scale`` multiplies lengths and sizes.

    ``REPRO_BENCH_JOBS`` sets the grid's worker count without touching
    the shape of the grid itself.
    """
    if scale is None:
        scale = env_scale()
    jobs = env_jobs()
    if scale == 1.0:
        return BenchmarkGrid(n_jobs=jobs)
    base = BenchmarkGrid()

    def stretch(values: List[int], lo: int) -> List[int]:
        return [max(lo, int(round(v * scale))) for v in values]

    return BenchmarkGrid(
        motif_lengths=stretch(base.motif_lengths, 8),
        motif_ranges=stretch(base.motif_ranges, 2),
        series_sizes=stretch(base.series_sizes, 512),
        p_values=list(base.p_values),
        default_length=max(8, int(round(base.default_length * scale))),
        default_range=max(2, int(round(base.default_range * scale))),
        default_size=max(512, int(round(base.default_size * scale))),
        default_p=base.default_p,
        timeout_seconds=base.timeout_seconds * max(1.0, scale),
        k_values=list(base.k_values),
        d_values=list(base.d_values),
        default_k=base.default_k,
        default_d=base.default_d,
        n_jobs=jobs,
    )
