"""Tests for the MOEN baseline — exactness and its cross-length bound."""

import time

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.moen import MoenStats, moen, moen_step_factor
from repro.baselines.stomp_range import stomp_range
from repro.distance.sliding import moving_mean_std
from repro.distance.znorm import znormalized_distance
from repro.exceptions import BudgetExceededError, InvalidParameterError
from repro.matrixprofile import stomp


def assert_same_motifs(mine, reference, atol=1e-6):
    assert set(mine) == set(reference)
    for length in reference:
        assert mine[length].distance == pytest.approx(
            reference[length].distance, abs=atol
        )


class TestExactness:
    def test_noise(self, noise_series):
        assert_same_motifs(
            moen(noise_series, 16, 24), stomp_range(noise_series, 16, 24)
        )

    def test_structured(self, structured_series):
        assert_same_motifs(
            moen(structured_series, 40, 52), stomp_range(structured_series, 40, 52)
        )

    def test_planted(self, planted):
        assert_same_motifs(
            moen(planted.series, 36, 44), stomp_range(planted.series, 36, 44)
        )

    def test_no_refresh_fallback_still_exact(self, noise_series):
        """refresh_fraction=1.0 never falls back to full STOMP: the
        row-by-row path alone must stay exact."""
        assert_same_motifs(
            moen(noise_series, 16, 20, refresh_fraction=1.0),
            stomp_range(noise_series, 16, 20),
        )

    def test_always_refresh_still_exact(self, noise_series):
        assert_same_motifs(
            moen(noise_series, 16, 20, refresh_fraction=0.0),
            stomp_range(noise_series, 16, 20),
        )


class TestStepFactorBound:
    @given(st.integers(0, 2**31 - 1), st.integers(8, 24))
    @settings(max_examples=40, deadline=None)
    def test_bound_is_admissible_for_matrix_profile(self, seed, length):
        """mp(l+1)[i] >= factor[i] * mp(l)[i]: the per-row carry-forward
        MOEN relies on."""
        rng = np.random.default_rng(seed)
        t = rng.standard_normal(length * 6)
        mp_l = stomp(t, length).profile
        mp_next = stomp(t, length + 1).profile
        _, sig_l = moving_mean_std(t, length)
        _, sig_next = moving_mean_std(t, length + 1)
        factors = moen_step_factor(sig_l, sig_next, mp_next.size)
        bound = factors * mp_l[: mp_next.size]
        ok = mp_next >= bound - 1e-7
        assert ok.all(), (
            f"MOEN bound violated at rows {np.where(~ok)[0][:5]}"
        )

    def test_pairwise_bound_derivation(self, rng):
        """d(l+1)^2 >= l (a-b)^2 + a b d(l)^2 for explicit windows."""
        t = rng.standard_normal(120)
        length = 20
        for i, j in [(0, 40), (10, 70), (25, 90)]:
            d_l = znormalized_distance(t[i : i + length], t[j : j + length])
            d_next = znormalized_distance(
                t[i : i + length + 1], t[j : j + length + 1]
            )
            a = t[i : i + length].std() / t[i : i + length + 1].std()
            b = t[j : j + length].std() / t[j : j + length + 1].std()
            bound = np.sqrt(length * (a - b) ** 2 + a * b * d_l**2)
            assert d_next >= bound - 1e-7


class TestBehaviour:
    def test_stats_recorded(self, noise_series):
        stats = MoenStats()
        moen(noise_series, 16, 20, stats=stats)
        assert stats.lengths == list(range(17, 21))
        assert len(stats.candidate_counts) == 4
        assert stats.elapsed_seconds > 0

    def test_deadline_raises(self, structured_series):
        with pytest.raises(BudgetExceededError):
            moen(structured_series, 40, 80, deadline=time.perf_counter() - 1.0)

    def test_reversed_range_rejected(self, noise_series):
        with pytest.raises(InvalidParameterError):
            moen(noise_series, 24, 16)
