"""Tests for the VALMP structure (Algorithm 2) and pair tracking (Alg. 5)."""

import math

import numpy as np
import pytest

from repro.core.valmp import VALMP, PartialProfile
from repro.exceptions import InvalidParameterError, NotComputedError


def snapshot_stub(offset, length):
    return PartialProfile(
        owner=offset,
        length=length,
        neighbors=np.array([0], dtype=np.int64),
        distances=np.array([1.0]),
        max_lb=2.0,
    )


class TestConstruction:
    def test_initial_state(self):
        v = VALMP(5)
        assert np.isinf(v.norm_distances).all()
        assert (v.indices == -1).all()
        assert not v.updated.any()

    def test_invalid_sizes(self):
        with pytest.raises(InvalidParameterError):
            VALMP(0)
        with pytest.raises(InvalidParameterError):
            VALMP(5, track_top_k=-1)

    def test_motif_pair_before_update(self):
        with pytest.raises(NotComputedError):
            VALMP(5).motif_pair()


class TestUpdate:
    def test_first_update_takes_everything(self):
        v = VALMP(4)
        improved = v.update(np.array([2.0, 1.0, 3.0, 4.0]), np.array([1, 0, 1, 2]), 4)
        assert improved.all()
        np.testing.assert_allclose(v.norm_distances, np.array([2, 1, 3, 4.0]) / 2.0)
        assert (v.lengths == 4).all()

    def test_keeps_smaller_normalized_distance(self):
        v = VALMP(2)
        v.update(np.array([2.0, 2.0]), np.array([1, 0]), 4)    # norm = 1.0
        improved = v.update(np.array([2.0, 3.5]), np.array([1, 0]), 16)  # norm 0.5, 0.875
        assert improved.all()
        np.testing.assert_allclose(v.norm_distances, [0.5, 0.875])
        assert (v.lengths == 16).all()

    def test_worse_normalized_distance_ignored(self):
        v = VALMP(2)
        v.update(np.array([1.0, 1.0]), np.array([1, 0]), 16)   # norm 0.25
        improved = v.update(np.array([1.0, 1.0]), np.array([1, 0]), 4)  # norm 0.5
        assert not improved.any()
        assert (v.lengths == 16).all()

    def test_nan_entries_skipped(self):
        v = VALMP(3)
        improved = v.update(
            np.array([1.0, np.nan, 2.0]), np.array([1, -1, 0]), 4
        )
        np.testing.assert_array_equal(improved, [True, False, True])
        assert not v.updated[1]

    def test_negative_index_skipped(self):
        v = VALMP(2)
        improved = v.update(np.array([1.0, 1.0]), np.array([-1, 0]), 4)
        np.testing.assert_array_equal(improved, [False, True])

    def test_shorter_profile_allowed(self):
        v = VALMP(5)
        improved = v.update(np.array([1.0, 2.0]), np.array([1, 0]), 4)
        assert improved.shape == (2,)
        assert not v.updated[2:].any()

    def test_oversized_profile_rejected(self):
        v = VALMP(2)
        with pytest.raises(InvalidParameterError):
            v.update(np.zeros(3), np.zeros(3, dtype=np.int64), 4)

    def test_motif_pair_normalization(self):
        v = VALMP(2)
        v.update(np.array([3.0, 4.0]), np.array([1, 0]), 9)
        pair = v.motif_pair()
        assert pair.distance == 3.0
        assert pair.normalized_distance == pytest.approx(3.0 * math.sqrt(1 / 9))
        assert pair.length == 9


class TestPairTracking:
    def test_disabled_by_default(self):
        v = VALMP(4)
        improved = v.update(np.array([1.0] * 4), np.array([1, 0, 3, 2]), 4)
        v.record_pairs(improved, 4, snapshot_stub)
        assert v.best_k_pairs() == []

    def test_heap_bounded_by_k(self):
        v = VALMP(20, track_top_k=3)
        values = np.linspace(1.0, 3.0, 20)
        idx = np.roll(np.arange(20), 1)
        improved = v.update(values, idx, 4)
        v.record_pairs(improved, 4, snapshot_stub)
        pairs = v.best_k_pairs()
        assert len(pairs) == 3
        norms = [p.normalized_distance for p in pairs]
        assert norms == sorted(norms)
        assert norms[0] == pytest.approx(0.5)  # 1.0 / sqrt(4)

    def test_symmetric_duplicates_collapsed(self):
        v = VALMP(4, track_top_k=10)
        # positions 0 and 1 point at each other: one canonical pair only
        improved = v.update(
            np.array([1.0, 1.0, 5.0, 5.0]), np.array([1, 0, 3, 2], dtype=np.int64), 4
        )
        v.record_pairs(improved, 4, snapshot_stub)
        keys = {(p.a, p.b) if p.a < p.b else (p.b, p.a) for p in v.best_k_pairs()}
        assert len(keys) == len(v.best_k_pairs())

    def test_snapshots_attached(self):
        v = VALMP(4, track_top_k=2)
        improved = v.update(
            np.array([1.0, 1.0, 5.0, 5.0]), np.array([1, 0, 3, 2], dtype=np.int64), 4
        )
        v.record_pairs(improved, 4, snapshot_stub)
        for pair in v.best_k_pairs():
            assert pair.profile_a is not None
            assert pair.profile_b is not None

    def test_better_pairs_evict_worse(self):
        v = VALMP(4, track_top_k=1)
        improved = v.update(
            np.array([4.0, 4.0, 6.0, 6.0]), np.array([1, 0, 3, 2], dtype=np.int64), 4
        )
        v.record_pairs(improved, 4, snapshot_stub)
        improved = v.update(
            np.array([np.nan, np.nan, 1.0, 1.0]), np.array([-1, -1, 3, 2], dtype=np.int64), 5
        )
        v.record_pairs(improved, 5, snapshot_stub)
        pairs = v.best_k_pairs()
        assert len(pairs) == 1
        assert {pairs[0].a, pairs[0].b} == {2, 3}
