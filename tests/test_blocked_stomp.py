"""Differential tests for the blocked diagonal STOMP kernel.

The blocked backend (``repro.kernels.blocked``) restates the QT
recurrence as a sheared block cumulative sum; these tests pin it to the
brute-force oracle across the full block-size spectrum — ``B=1`` (the
rowwise degenerate), interior sizes, the default, and ``B`` larger than
the number of subsequences (one giant block) — and pin the float32
scoring path to the float64 one via the candidate-verify contract.
"""

import numpy as np
import pytest

from repro import obs
from repro.distance.znorm import znormalized_distance
from repro.exceptions import InvalidParameterError
from repro.kernels import DEFAULT_BLOCK_ROWS, SeriesContext, blocked_stomp
from repro.matrixprofile.brute import brute_force_matrix_profile
from repro.matrixprofile.stomp import stomp, stomp_reanchor_rows

ATOL = 1e-8


def _random_walk():
    rng = np.random.default_rng(42)
    return rng.standard_normal(500).cumsum(), 32


def _planted_motif():
    rng = np.random.default_rng(7)
    series = rng.standard_normal(500) * 0.3
    pattern = np.sin(np.linspace(0.0, 4.0 * np.pi, 40))
    series[70:110] += pattern * 3.0
    series[300:340] += pattern * 3.0
    return series, 24


def _constant_segment():
    rng = np.random.default_rng(13)
    series = rng.standard_normal(400).cumsum()
    series[150:210] = series[150]
    return series, 20


def _short_series():
    rng = np.random.default_rng(5)
    return rng.standard_normal(20), 10


FIXTURES = {
    "random-walk": _random_walk,
    "planted-motif": _planted_motif,
    "constant-segment": _constant_segment,
    "short": _short_series,
}

#: B=1 degenerates to rowwise, 7 is coprime with every anchor spacing,
#: 64 is the default, 10_000 exceeds n_subs of every fixture.
BLOCK_SIZES = (1, 7, DEFAULT_BLOCK_ROWS, 10_000)


@pytest.fixture(scope="module")
def oracles():
    cache = {}
    for name, make in FIXTURES.items():
        series, length = make()
        cache[name] = (series, length, brute_force_matrix_profile(series, length))
    return cache


def _assert_matches_oracle(series, length, mp, reference):
    finite = np.isfinite(reference.profile)
    assert np.array_equal(np.isfinite(mp.profile), finite)
    np.testing.assert_allclose(
        mp.profile[finite], reference.profile[finite], atol=ATOL, rtol=0.0
    )
    # Indices may differ from brute only at ties: the reported neighbor
    # must realize the reported distance.
    for i, j in enumerate(mp.index):
        if j < 0:
            assert not np.isfinite(mp.profile[i])
            continue
        d = znormalized_distance(series[i : i + length], series[j : j + length])
        assert d == pytest.approx(float(reference.profile[i]), abs=1e-6)


class TestBlockedVsBrute:
    @pytest.mark.parametrize("fixture", sorted(FIXTURES))
    @pytest.mark.parametrize("block_rows", BLOCK_SIZES)
    def test_every_block_size_matches_brute(self, fixture, block_rows, oracles):
        series, length, reference = oracles[fixture]
        mp = blocked_stomp(series, length, block_rows=block_rows)
        _assert_matches_oracle(series, length, mp, reference)

    @pytest.mark.parametrize("fixture", sorted(FIXTURES))
    def test_block_size_invariance(self, fixture, oracles):
        """All block schedules agree with each other, not just the oracle."""
        series, length, _ = oracles[fixture]
        baseline = blocked_stomp(series, length, block_rows=1)
        for block_rows in BLOCK_SIZES[1:]:
            mp = blocked_stomp(series, length, block_rows=block_rows)
            np.testing.assert_allclose(
                mp.profile, baseline.profile, atol=ATOL, rtol=0.0,
                err_msg=f"B={block_rows} diverges from B=1 on {fixture}",
            )

    def test_reanchor_schedule_is_exercised(self):
        """On a drifting series the kernel re-anchors mid-profile and the
        anchored rows land on exact QT values (still oracle-exact)."""
        rng = np.random.default_rng(3)
        # Large DC offset: per-row drift of the QT update is O(eps * t^2),
        # which crosses QT_DRIFT_TOL of the l*sigma^2 scale mid-series.
        series = rng.standard_normal(1500).cumsum() + 5e3
        length = 64
        _, sigma = SeriesContext(series).moving_mean_std(length)
        anchors = stomp_reanchor_rows(series, length, sigma)
        assert len(anchors) > 1, "fixture must actually trigger reanchoring"
        reference = brute_force_matrix_profile(series, length)
        mp = blocked_stomp(series, length)
        # The DC offset limits what any O(n^2) scheme can resolve; the
        # reanchor schedule keeps the drift at the tolerance scale (~1e-7
        # in distance units here) instead of letting it accumulate.
        np.testing.assert_allclose(
            mp.profile, reference.profile, atol=1e-6, rtol=0.0
        )
        # Rowwise STOMP shares the same drift schedule; the accumulation
        # orders differ (sheared cumsum vs sequential), so agreement is at
        # the drift-tolerance scale, not bitwise.
        rowwise = stomp(series, length)
        np.testing.assert_allclose(
            mp.profile, rowwise.profile, atol=1e-6, rtol=0.0
        )
        np.testing.assert_array_equal(mp.index, rowwise.index)


class TestFloat32Path:
    @pytest.mark.parametrize("fixture", sorted(FIXTURES))
    def test_f32_with_verify_matches_f64(self, fixture, oracles):
        """float32 scoring + float64 candidate verify: the *returned*
        profile is float64-accurate even though scores were f32."""
        series, length, reference = oracles[fixture]
        f64 = blocked_stomp(series, length)
        f32 = blocked_stomp(series, length, precision="float32")
        np.testing.assert_allclose(
            f32.profile, f64.profile, atol=ATOL, rtol=0.0,
            err_msg=f"f32+verify diverges from f64 on {fixture}",
        )
        _assert_matches_oracle(series, length, f32, reference)

    def test_f32_verify_counter_records_work(self):
        series, length = _random_walk()
        with obs.tracing(True):
            obs.reset()
            blocked_stomp(series, length, precision="float32")
            counters = obs.snapshot()["counters"]
        obs.reset()
        obs.disable()
        assert counters.get("kernel.f32.verified_cells", 0) > 0


class TestContextIntegration:
    def test_shared_context_is_bitwise_neutral(self):
        series, length = _planted_motif()
        ctx = SeriesContext(series)
        with_ctx = blocked_stomp(series, length, context=ctx)
        without = blocked_stomp(series, length)
        np.testing.assert_array_equal(with_ctx.profile, without.profile)
        np.testing.assert_array_equal(with_ctx.index, without.index)
        assert length in ctx.cached_stat_lengths

    def test_obs_counters(self):
        series, length = _random_walk()
        with obs.tracing(True):
            obs.reset()
            blocked_stomp(series, length, block_rows=32)
            snap = obs.snapshot()
        obs.reset()
        obs.disable()
        counters = snap["counters"]
        n_subs = series.size - length + 1
        assert counters["engine.rows"] == n_subs
        assert counters["kernel.blocks"] >= n_subs // 32
        assert snap["gauges"]["kernel.block_rows"] == 32


class TestValidation:
    def test_block_rows_must_be_positive(self):
        series, length = _short_series()
        with pytest.raises(InvalidParameterError, match="block_rows"):
            blocked_stomp(series, length, block_rows=0)

    def test_unknown_precision_rejected(self):
        series, length = _short_series()
        with pytest.raises(InvalidParameterError, match="precision"):
            blocked_stomp(series, length, precision="float16")
