"""End-to-end integration tests across the whole library.

These are the repository-level guarantees: all four algorithms agree on
every dataset family, the motif-set pipeline recovers planted structure,
and the case-study behaviour (motif meaning changes with length)
reproduces.
"""

import numpy as np
import pytest

from repro import Valmod, find_motif_sets
from repro.baselines import moen, quick_motif, stomp_range
from repro.datasets import generate_epg, load_dataset, plant_motifs


@pytest.mark.parametrize("name", ["ECG", "GAP", "ASTRO", "EMG", "EEG"])
def test_all_algorithms_agree_on_every_dataset_family(name):
    series = load_dataset(name, 1200, seed=4)
    l_min, l_max = 24, 30
    reference = stomp_range(series, l_min, l_max)
    valmod_pairs = Valmod(series, l_min, l_max, p=10).run().motif_pairs
    moen_pairs = moen(series, l_min, l_max)
    qm_pairs = quick_motif(series, l_min, l_max)
    for length in reference:
        expected = reference[length].distance
        assert valmod_pairs[length].distance == pytest.approx(expected, abs=1e-6)
        assert moen_pairs[length].distance == pytest.approx(expected, abs=1e-6)
        assert qm_pairs[length].distance == pytest.approx(expected, abs=1e-6)


def test_motif_sets_recover_planted_occurrences():
    rng = np.random.default_rng(31)
    pattern = np.sin(np.linspace(0, 6 * np.pi, 60)) * np.hanning(60)
    planted = plant_motifs(
        rng.standard_normal(1600),
        pattern,
        positions=[100, 400, 700, 1000, 1300],
        scale=5.0,
        amplitude_jitter=0.03,
        rng=rng,
    )
    sets = find_motif_sets(planted.series, 54, 64, k=4, radius_factor=3.0, p=20)
    assert sets
    best = max(sets, key=lambda s: s.frequency)
    recovered = sum(
        1
        for pos in planted.positions
        if any(abs(member - pos) <= 20 for member in best.members)
    )
    assert recovered >= 4


def test_epg_case_study_motif_changes_meaning_with_length():
    series, truth = generate_epg(
        n=6000, seed=7, probing_length=100, ingestion_length=125
    )
    run = Valmod(series, 95, 130, p=50).run()

    def near(offset, positions, tol=35):
        return any(abs(offset - pos) <= tol for pos in positions)

    short = run.motif_pairs[truth.probing_length]
    long_ = run.motif_pairs[truth.ingestion_length]
    assert near(short.a, truth.probing_positions)
    assert near(short.b, truth.probing_positions)
    assert near(long_.a, truth.ingestion_positions)
    assert near(long_.b, truth.ingestion_positions)


def test_valmp_best_pair_equals_best_per_length_pair():
    series = load_dataset("EEG", 1500, seed=9)
    run = Valmod(series, 30, 40, p=20).run()
    from_valmp = run.valmp.motif_pair()
    from_lengths = run.best_motif_pair()
    assert from_valmp.normalized_distance == pytest.approx(
        from_lengths.normalized_distance, abs=1e-9
    )


def test_runs_are_deterministic():
    series = load_dataset("GAP", 1200, seed=2)
    a = Valmod(series, 24, 30, p=10).run()
    b = Valmod(series, 24, 30, p=10).run()
    for length in a.motif_pairs:
        assert a.motif_pairs[length] == b.motif_pairs[length]
        assert a.motif_pairs[length].a == b.motif_pairs[length].a
