"""Tests for consensus motifs, MPdist matrices, snippets, and MK."""

import numpy as np
import pytest

from repro.baselines.mk import mk_motif
from repro.distance.znorm import znormalized_distance
from repro.exceptions import InvalidParameterError
from repro.matrixprofile import stomp
from repro.multiseries import consensus_motif, find_snippets, mpdist_matrix


@pytest.fixture(scope="module")
def collection():
    """Three noisy series all containing the same conserved pattern."""
    pattern = np.sin(np.linspace(0, 4 * np.pi, 40)) * np.hanning(40)
    out = []
    positions = []
    for s in range(3):
        gen = np.random.default_rng(s + 5)
        t = gen.standard_normal(400)
        pos = 50 + s * 30
        t[pos : pos + 40] += 5 * pattern
        out.append(t)
        positions.append(pos)
    return out, positions, 40


class TestConsensusMotif:
    def test_finds_conserved_pattern(self, collection):
        series_list, positions, length = collection
        cm = consensus_motif(series_list, length)
        assert abs(cm.start - positions[cm.series_index]) <= 10

    def test_neighbors_land_on_planted_copies(self, collection):
        series_list, positions, length = collection
        cm = consensus_motif(series_list, length)
        for idx, neighbor in enumerate(cm.neighbor_starts):
            assert abs(neighbor - positions[idx]) <= 10

    def test_radius_is_max_neighbor_distance(self, collection):
        series_list, positions, length = collection
        cm = consensus_motif(series_list, length)
        query = series_list[cm.series_index][cm.start : cm.start + length]
        distances = [
            znormalized_distance(
                query, series_list[i][n : n + length]
            )
            for i, n in enumerate(cm.neighbor_starts)
            if i != cm.series_index
        ]
        assert cm.radius == pytest.approx(max(distances), abs=1e-6)

    def test_needs_two_series(self, collection):
        series_list, _, length = collection
        with pytest.raises(InvalidParameterError):
            consensus_motif(series_list[:1], length)

    def test_length_validation(self, collection):
        series_list, _, _ = collection
        with pytest.raises(InvalidParameterError):
            consensus_motif(series_list, 300)


class TestMpdistMatrix:
    def test_shape_and_symmetry(self, collection):
        series_list, _, length = collection
        matrix = mpdist_matrix(series_list, length)
        assert matrix.shape == (3, 3)
        np.testing.assert_allclose(matrix, matrix.T)
        np.testing.assert_allclose(np.diag(matrix), 0.0)

    def test_clusters_by_structure(self):
        """Two sine-family series vs one square-family: the in-family
        distance must be smaller."""
        gen = np.random.default_rng(8)
        x = np.linspace(0, 20 * np.pi, 500)
        sine_a = np.sin(x) + 0.1 * gen.standard_normal(500)
        sine_b = np.sin(x + 1.0) + 0.1 * gen.standard_normal(500)
        square = np.sign(np.sin(x)) + 0.1 * gen.standard_normal(500)
        matrix = mpdist_matrix([sine_a, sine_b, square], 40)
        assert matrix[0, 1] < matrix[0, 2]
        assert matrix[0, 1] < matrix[1, 2]


class TestSnippets:
    @pytest.fixture(scope="class")
    def two_regime(self):
        gen = np.random.default_rng(2)
        x = np.linspace(0, 20 * np.pi, 500)
        return np.concatenate(
            [np.sin(x), np.sign(np.sin(x))]
        ) + 0.05 * gen.standard_normal(1000)

    def test_one_snippet_per_regime(self, two_regime):
        snippets, _ = find_snippets(two_regime, 50, k=2)
        assert len(snippets) == 2
        starts = sorted(s.start for s in snippets)
        assert starts[0] < 500 <= starts[1]

    def test_coverage_fractions_sum_to_one(self, two_regime):
        snippets, _ = find_snippets(two_regime, 50, k=2)
        assert sum(s.coverage_fraction for s in snippets) == pytest.approx(1.0)

    def test_assignment_respects_regimes(self, two_regime):
        snippets, assignment = find_snippets(two_regime, 50, k=2)
        first_half = assignment[:400]
        second_half = assignment[550:]
        # each half should be dominated by one snippet
        assert np.bincount(first_half).max() > 0.8 * first_half.size
        assert np.bincount(second_half).max() > 0.8 * second_half.size

    def test_k_one(self, two_regime):
        snippets, assignment = find_snippets(two_regime, 50, k=1)
        assert len(snippets) == 1
        assert (assignment == 0).all()

    def test_validation(self, two_regime):
        with pytest.raises(InvalidParameterError):
            find_snippets(two_regime, 50, k=0)
        with pytest.raises(InvalidParameterError):
            find_snippets(two_regime, 600)
        with pytest.raises(InvalidParameterError):
            find_snippets(two_regime, 50, stride=0)


class TestMK:
    @pytest.mark.parametrize("length", [16, 24])
    def test_exact_on_noise(self, noise_series, length):
        reference = stomp(noise_series, length).motif_pair()
        pair = mk_motif(noise_series, length)
        assert pair.distance == pytest.approx(reference.distance, abs=1e-6)

    def test_exact_on_structured(self, structured_series):
        reference = stomp(structured_series, 40).motif_pair()
        pair = mk_motif(structured_series, 40)
        assert pair.distance == pytest.approx(reference.distance, abs=1e-6)

    def test_exact_on_planted(self, planted):
        reference = stomp(planted.series, planted.length).motif_pair()
        pair = mk_motif(planted.series, planted.length)
        assert pair.distance == pytest.approx(reference.distance, abs=1e-6)

    def test_single_reference_still_exact(self, noise_series):
        reference = stomp(noise_series, 16).motif_pair()
        pair = mk_motif(noise_series, 16, n_references=1)
        assert pair.distance == pytest.approx(reference.distance, abs=1e-6)

    def test_validation(self, noise_series):
        with pytest.raises(InvalidParameterError):
            mk_motif(noise_series, 16, n_references=0)
        with pytest.raises(InvalidParameterError):
            mk_motif(noise_series, 300)
