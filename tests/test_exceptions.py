"""Tests for the exception hierarchy contract."""

import pytest

from repro.exceptions import (
    BudgetExceededError,
    InvalidParameterError,
    InvalidSeriesError,
    NotComputedError,
    ReproError,
)


def test_all_derive_from_repro_error():
    for exc in (
        InvalidSeriesError,
        InvalidParameterError,
        NotComputedError,
        BudgetExceededError,
    ):
        assert issubclass(exc, ReproError)


def test_value_error_compatibility():
    assert issubclass(InvalidSeriesError, ValueError)
    assert issubclass(InvalidParameterError, ValueError)


def test_runtime_error_compatibility():
    assert issubclass(NotComputedError, RuntimeError)
    assert issubclass(BudgetExceededError, RuntimeError)


def test_catchable_as_base():
    with pytest.raises(ReproError):
        raise InvalidParameterError("boom")
