"""Tests for MASS (one distance profile in O(n log n))."""

import numpy as np
import pytest

from repro.distance.mass import mass, mass_pair, mass_with_stats
from repro.distance.profile import naive_distance_profile
from repro.distance.sliding import moving_mean_std, sliding_dot_product
from repro.distance.znorm import znormalized_distance
from repro.exceptions import InvalidParameterError


class TestMass:
    def test_matches_naive(self, rng):
        t = rng.standard_normal(200)
        np.testing.assert_allclose(
            mass(t, 40, 25), naive_distance_profile(t, 40, 25), atol=1e-6
        )

    def test_structured_series(self, structured_series):
        t = structured_series
        np.testing.assert_allclose(
            mass(t, 100, 50), naive_distance_profile(t, 100, 50), atol=1e-6
        )

    def test_out_of_range_start(self, rng):
        t = rng.standard_normal(50)
        with pytest.raises(InvalidParameterError):
            mass(t, 45, 10)

    def test_with_precomputed_qt(self, rng):
        t = rng.standard_normal(120)
        mu, sigma = moving_mean_std(t, 15)
        qt = sliding_dot_product(t[33 : 33 + 15], t)
        np.testing.assert_allclose(
            mass_with_stats(t, 33, 15, mu, sigma, qt=qt),
            mass(t, 33, 15),
            atol=1e-10,
        )

    def test_length_leaves_no_subsequences(self, rng):
        t = rng.standard_normal(20)
        mu = sigma = np.ones(1)
        with pytest.raises(InvalidParameterError):
            mass_with_stats(t, 0, 25, mu, sigma)


class TestMassPair:
    def test_matches_naive_distance(self, rng):
        t = rng.standard_normal(100)
        d, corr = mass_pair(t, 20, 5, 60)
        assert d == pytest.approx(
            znormalized_distance(t[5:25], t[60:80]), abs=1e-8
        )
        assert -1.0 <= corr <= 1.0

    def test_identical_windows(self, rng):
        t = rng.standard_normal(60)
        d, corr = mass_pair(t, 15, 10, 10)
        assert d == pytest.approx(0.0, abs=1e-6)
        assert corr == pytest.approx(1.0, abs=1e-9)

    def test_constant_window(self):
        t = np.concatenate([np.full(20, 1.0), np.random.default_rng(0).standard_normal(40)])
        d, _ = mass_pair(t, 10, 0, 30)
        assert d == pytest.approx(np.sqrt(10))
