"""The repro.features façade: one entry point, same bits as the parts.

The façade must be a pure composition: every family it returns has to
match what the underlying module produces when called directly with the
same parameters — bit for bit, since the content-addressed store relies
on determinism.  Plus parameter validation, batch semantics, and the
exact JSON round-trip.
"""

import json

import numpy as np
import pytest

import repro
from repro.core.discords import find_discords
from repro.core.motif_sets import find_motif_sets
from repro.core.ranking import top_motifs_across_lengths
from repro.core.segmentation import fluss, regime_boundaries
from repro.core.valmod import Valmod
from repro.exceptions import InvalidParameterError
from repro.features import (
    AnnotationSummary,
    SeriesFeatures,
    extract_features,
    extract_features_batch,
    features_from_dict,
    features_to_dict,
)

ALL_FAMILIES = (
    "motif_sets",
    "discords",
    "discords_variable",
    "chains",
    "segmentation",
    "annotation",
)


def pair_bits(pair):
    return (pair.a, pair.b, pair.length, pair.distance, pair.normalized_distance)


class TestFacadeMatchesParts:
    def test_motif_pairs_match_valmod_exactly(self, noise_series):
        features = extract_features(
            noise_series, 16, 20, p=10, include=(), store=False
        )
        run = Valmod(noise_series, 16, 20, p=10).run()
        assert [pair_bits(p) for p in features.motif_pairs] == [
            pair_bits(run.motif_pairs[length]) for length in range(16, 21)
        ]
        assert features.pairs_by_length().keys() == run.motif_pairs.keys()

    def test_top_motifs_match_ranking_helper(self, noise_series):
        features = extract_features(
            noise_series, 16, 20, p=10, top_k=3, include=(), store=False
        )
        run = Valmod(noise_series, 16, 20, p=10).run()
        expected = top_motifs_across_lengths(run.motif_pairs, 3)
        assert [pair_bits(p) for p in features.top_motifs] == [
            pair_bits(p) for p in expected
        ]
        assert pair_bits(features.best_motif) == pair_bits(expected[0])
        assert (
            features.primary_motif_distance == expected[0].normalized_distance
        )

    def test_discords_match_direct_call(self, noise_series):
        features = extract_features(
            noise_series, 16, 18, p=10, include=("discords",),
            k_discords=2, store=False,
        )
        expected = find_discords(noise_series, 16, 18, k=2)
        assert [
            (d.start, d.length, d.distance, d.normalized_distance)
            for d in features.discords
        ] == [
            (d.start, d.length, d.distance, d.normalized_distance)
            for d in expected
        ]
        assert features.discord_distance == expected[0].normalized_distance

    def test_discords_variable_matches_both_drivers(self, noise_series):
        pruned = extract_features(
            noise_series, 16, 18, p=10, include=("discords_variable",),
            k_discords=2, store=False,
        )
        full = extract_features(
            noise_series, 16, 18, p=10, include=("discords",),
            k_discords=2, store=False,
        )
        assert pruned.discords == ()
        assert full.discords_variable == ()
        # Same anomalies through either family, and through the direct
        # oracle call.
        assert pruned.discords_variable == full.discords
        assert pruned.discords_variable == tuple(
            find_discords(noise_series, 16, 18, k=2)
        )
        assert pruned.discord_distance == full.discord_distance

    def test_discord_lengths_restrict_the_scan(self, noise_series):
        features = extract_features(
            noise_series, 16, 20, p=10, include=("discords",),
            discord_lengths=(17,), store=False,
        )
        assert features.discords
        assert {d.length for d in features.discords} == {17}
        expected = find_discords(noise_series, 16, 20, lengths=(17,))
        assert [d.start for d in features.discords] == [
            d.start for d in expected
        ]

    def test_motif_sets_match_direct_pipeline(self, noise_series):
        features = extract_features(
            noise_series, 16, 18, p=10, include=("motif_sets",),
            motif_set_k=4, radius_factor=3.0, store=False,
        )
        expected = find_motif_sets(
            noise_series, 16, 18, k=4, radius_factor=3.0, p=10
        )
        assert [
            (pair_bits(s.pair), s.radius, s.members) for s in features.motif_sets
        ] == [
            (pair_bits(s.pair), s.radius, s.members) for s in expected
        ]
        assert features.motif_set_counts == tuple(
            s.frequency for s in expected
        )

    def test_segmentation_matches_fluss(self, structured_series):
        features = extract_features(
            structured_series, 16, 16, include=("segmentation",),
            n_regimes=2, store=False,
        )
        cac = fluss(structured_series, 16)
        assert features.cac_min == float(cac.min())
        assert features.regime_boundaries == tuple(
            regime_boundaries(structured_series, 16, n_regimes=2)
        )
        assert features.regime_cac == tuple(
            float(cac[b]) for b in features.regime_boundaries
        )

    def test_chains_and_annotation_populate(self, structured_series):
        features = extract_features(
            structured_series, 16, 16, include=("chains", "annotation"),
            store=False,
        )
        # A chain may legitimately be absent on some inputs; when present
        # it must be time-ordered.
        if features.chain is not None:
            members = features.chain.members
            assert list(members) == sorted(members)
            assert features.chain.length == 16
        assert isinstance(features.annotation, AnnotationSummary)
        assert features.annotation.length == 16
        assert 0.0 <= features.annotation.mean <= 1.0
        assert 0.0 <= features.annotation.flat_fraction <= 1.0

    def test_planted_motif_is_found(self, planted):
        length = planted.length
        features = extract_features(
            planted.series, length - 2, length + 2, p=10, include=(),
            store=False,
        )
        best = features.best_motif
        starts = sorted(planted.positions)
        assert abs(best.a - starts[0]) <= length // 2
        assert abs(best.b - starts[1]) <= length // 2

    def test_include_order_is_canonical(self, noise_series):
        features = extract_features(
            noise_series, 16, 17, p=10,
            include=("discords", "motif_sets"), store=False,
        )
        assert features.include == ("motif_sets", "discords")

    def test_stats_cache_off_is_bitwise_identical(self, noise_series):
        on = extract_features(
            noise_series, 16, 18, p=10, include=ALL_FAMILIES, store=False
        )
        off = extract_features(
            noise_series, 16, 18, p=10, include=ALL_FAMILIES, store=False,
            stats_cache=False,
        )
        assert features_to_dict(on) == features_to_dict(off)


class TestValidation:
    def test_inverted_range_raises(self, noise_series):
        with pytest.raises(InvalidParameterError):
            extract_features(noise_series, 20, 16, store=False)

    def test_unknown_engine_raises(self, noise_series):
        with pytest.raises(InvalidParameterError):
            extract_features(noise_series, 16, 18, engine="nope", store=False)

    def test_unknown_include_raises(self, noise_series):
        with pytest.raises(InvalidParameterError):
            extract_features(
                noise_series, 16, 18, include=("motifs_sets",), store=False
            )

    def test_bad_top_k_raises(self, noise_series):
        with pytest.raises(InvalidParameterError):
            extract_features(noise_series, 16, 18, top_k=0, store=False)

    def test_discord_length_outside_range_raises(self, noise_series):
        with pytest.raises(InvalidParameterError):
            extract_features(
                noise_series, 16, 18, include=("discords",),
                discord_lengths=(40,), store=False,
            )

    def test_bad_store_type_raises(self, noise_series):
        with pytest.raises(InvalidParameterError):
            extract_features(noise_series, 16, 18, store=3.14)

    def test_short_series_raises(self):
        with pytest.raises(Exception):
            extract_features(np.zeros(4), 2, 3, store=False)


class TestBatch:
    def test_batch_matches_individual_calls(self):
        rng = np.random.default_rng(11)
        many = [rng.standard_normal(300) for _ in range(3)]
        batch = extract_features_batch(
            many, 16, 17, p=10, include=("discords",), store=False
        )
        assert len(batch) == 3
        for series, features in zip(many, batch):
            single = extract_features(
                series, 16, 17, p=10, include=("discords",), store=False
            )
            assert features_to_dict(features) == features_to_dict(single)

    def test_batch_shares_one_store(self, tmp_path):
        rng = np.random.default_rng(12)
        series = rng.standard_normal(300)
        store = tmp_path / "cache"
        with repro.obs.tracing(True):
            repro.obs.reset()
            batch = extract_features_batch(
                [series, series], 16, 17, p=10, include=(), store=str(store)
            )
            counters = repro.obs.get_tracer().counters()
        assert counters.get("features.cache.misses", 0) == 1
        assert counters.get("features.cache.hits", 0) == 1
        assert features_to_dict(batch[0]) == features_to_dict(batch[1])


class TestSerialization:
    def test_round_trip_is_exact(self, structured_series):
        features = extract_features(
            structured_series, 16, 18, p=10, include=ALL_FAMILIES, store=False
        )
        payload = features_to_dict(features)
        wire = json.loads(json.dumps(payload))
        rebuilt = features_from_dict(wire)
        assert isinstance(rebuilt, SeriesFeatures)
        assert features_to_dict(rebuilt) == payload
        assert rebuilt == features  # frozen dataclasses: field equality

    def test_export_shape_matches_io_contract(self, noise_series):
        # The CLI --export consumers key motif_pairs by str(length).
        features = extract_features(
            noise_series, 16, 18, p=10, include=(), store=False
        )
        payload = features_to_dict(features)
        assert set(payload["motif_pairs"]) == {"16", "17", "18"}
        assert payload["l_min"] == 16

    def test_malformed_payload_raises_invalid_parameter(self):
        with pytest.raises(InvalidParameterError):
            features_from_dict({"n_points": 10})
        with pytest.raises(InvalidParameterError):
            features_from_dict(
                {
                    "n_points": "not-a-number-at-all",
                    "l_min": {},
                    "l_max": 2,
                    "p": 1,
                }
            )


class TestTraceToggle:
    def test_trace_true_records_and_restores(self, noise_series):
        was_enabled = repro.obs.enabled()
        features = extract_features(
            noise_series, 16, 16, p=10, include=(), store=False, trace=True
        )
        assert features.motif_pairs
        assert repro.obs.enabled() == was_enabled
