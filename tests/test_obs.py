"""Unit tests for the :mod:`repro.obs` observability layer.

Covers the tracer primitives (spans, counters, gauges, reset), the
multiprocess aggregation protocol (worker snapshots merged into the
parent), the no-op guarantees when tracing is disabled, and the report
serialization round-trip.
"""

import json
import sys
import threading

import numpy as np
import pytest

from repro import obs
from repro.core.compute_mp import compute_matrix_profile
from repro.exceptions import InvalidParameterError
from repro.harness.runner import run_algorithm
from repro.matrixprofile.parallel import parallel_stomp
from repro.matrixprofile.stomp import stomp
from repro.obs import (
    Tracer,
    build_report,
    derived_metrics,
    format_report,
    report_from_json,
    report_to_json,
)
from repro.obs.tracer import _NULL_SPAN


@pytest.fixture(autouse=True)
def clean_tracer():
    """Every test starts and ends with a disabled, empty global tracer."""
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


def _series(n=400, seed=0):
    return np.random.default_rng(seed).standard_normal(n)


class TestTracerPrimitives:
    def test_counters_accumulate(self):
        t = Tracer(enabled=True)
        t.add("a")
        t.add("a", 4)
        t.add("b", 0)
        assert t.counter("a") == 5
        assert t.counter("b") == 0
        assert t.counter("missing") == 0
        assert t.counters() == {"a": 5, "b": 0}

    def test_gauges_keep_last_value(self):
        t = Tracer(enabled=True)
        t.gauge("x", 1.5)
        t.gauge("x", 0.25)
        assert t.gauges() == {"x": 0.25}

    def test_span_nesting_builds_paths(self):
        t = Tracer(enabled=True)
        with t.span("a"):
            with t.span("b"):
                pass
        with t.span("a"):
            pass
        spans = t.spans()
        assert spans["a"]["count"] == 2
        assert spans["a/b"]["count"] == 1
        assert spans["a"]["seconds"] >= 0.0

    def test_reset_clears_everything(self):
        t = Tracer(enabled=True)
        t.add("a")
        t.gauge("g", 1.0)
        with t.span("s"):
            pass
        t.reset()
        assert t.counters() == {}
        assert t.gauges() == {}
        assert t.spans() == {}

    def test_reset_mid_span_drops_the_sample(self):
        t = Tracer(enabled=True)
        span = t.span("open")
        span.__enter__()
        t.reset()
        span.__exit__(None, None, None)  # must not raise
        assert t.spans() == {}

    def test_thread_safety_of_counters(self):
        t = Tracer(enabled=True)

        def work():
            for _ in range(1000):
                t.add("hits")

        threads = [threading.Thread(target=work) for _ in range(8)]
        for th in threads:
            th.start()
        for th in threads:
            th.join()
        assert t.counter("hits") == 8000

    def test_span_paths_are_per_thread(self):
        t = Tracer(enabled=True)
        done = threading.Event()

        def inner():
            with t.span("inner"):
                pass
            done.set()

        with t.span("outer"):
            th = threading.Thread(target=inner)
            th.start()
            th.join()
        assert done.is_set()
        # the other thread's span must NOT nest under this thread's stack
        assert "inner" in t.spans()
        assert "outer/inner" not in t.spans()


class TestDisabledNoOp:
    def test_disabled_records_nothing(self):
        t = Tracer(enabled=False)
        t.add("a")
        t.gauge("g", 1.0)
        with t.span("s"):
            pass
        assert t.counters() == {}
        assert t.gauges() == {}
        assert t.spans() == {}

    def test_disabled_span_is_the_singleton(self):
        t = Tracer(enabled=False)
        assert t.span("a") is _NULL_SPAN
        assert t.span("b") is _NULL_SPAN

    @pytest.mark.skipif(
        not hasattr(sys, "getallocatedblocks"),
        reason="CPython-only allocation counter",
    )
    def test_disabled_calls_do_not_allocate(self):
        t = Tracer(enabled=False)
        # warm up any lazily-created internals
        for _ in range(4):
            t.add("warm")
            with t.span("warm"):
                pass
        before = sys.getallocatedblocks()
        for _ in range(100):
            t.add("hot", 3)
            with t.span("hot"):
                pass
        after = sys.getallocatedblocks()
        # zero allocations modulo interpreter noise from unrelated threads
        assert after - before < 16

    def test_tracing_context_restores_state(self):
        assert not obs.enabled()
        with obs.tracing(True):
            assert obs.enabled()
            with obs.tracing(False):
                assert not obs.enabled()
            assert obs.enabled()
        assert not obs.enabled()


class TestMergeProtocol:
    def test_merge_sums_counters_and_spans(self):
        t = Tracer(enabled=True)
        t.add("a", 2)
        with t.span("s"):
            pass
        snap = {
            "pids": [99999],
            "counters": {"a": 3, "b": 1},
            "gauges": {"g": 2.0},
            "spans": {"s": [2, 0.5]},
        }
        t.merge(snap)
        assert t.counter("a") == 5
        assert t.counter("b") == 1
        assert t.spans()["s"]["count"] == 3
        assert 99999 in t.snapshot()["pids"]

    def test_merge_takes_gauge_maximum(self):
        t = Tracer(enabled=True)
        t.gauge("g", 5.0)
        t.merge({"pids": [], "counters": {}, "gauges": {"g": 3.0}, "spans": {}})
        assert t.gauges()["g"] == 5.0
        t.merge({"pids": [], "counters": {}, "gauges": {"g": 7.0}, "spans": {}})
        assert t.gauges()["g"] == 7.0

    def test_merge_none_is_noop(self):
        t = Tracer(enabled=True)
        t.add("a")
        t.merge(None)
        assert t.counters() == {"a": 1}

    def test_snapshot_round_trips_through_merge(self):
        src = Tracer(enabled=True)
        src.add("a", 4)
        src.gauge("g", 1.25)
        with src.span("s"):
            pass
        dst = Tracer(enabled=True)
        dst.merge(src.snapshot())
        assert dst.counters() == src.counters()
        assert dst.gauges() == src.gauges()
        assert dst.spans()["s"]["count"] == 1

    def test_worker_snapshot_none_when_disabled(self):
        obs.disable()
        assert obs.worker_snapshot() is None


class TestMultiprocessAggregation:
    def test_compute_mp_counters_invariant_across_n_jobs(self):
        """listDP work is identical however the rows are chunked.

        Only ``listdp.*`` and ``compute_mp.rows`` are compared: the
        parallel path replays the dot-product recurrence per block, so
        ``mass.*`` call counts legitimately vary with the chunking.
        """
        series = _series(500, seed=1)

        def counters(n_jobs):
            with obs.tracing(True):
                obs.reset()
                compute_matrix_profile(series, 24, 8, n_jobs=n_jobs)
                snap = obs.snapshot()
            return {
                k: v
                for k, v in snap["counters"].items()
                if k.startswith("listdp.") or k == "compute_mp.rows"
            }, snap["pids"]

        serial, serial_pids = counters(1)
        parallel, parallel_pids = counters(2)
        assert serial == parallel
        assert serial["compute_mp.rows"] == 500 - 24 + 1
        assert len(serial_pids) == 1
        assert len(parallel_pids) >= 2

    def test_parallel_stomp_counters_match_serial_stomp(self):
        series = _series(450, seed=2)

        def engine_counters(fn):
            with obs.tracing(True):
                obs.reset()
                fn()
                snap = obs.snapshot()
            return {
                k: v
                for k, v in snap["counters"].items()
                if k.startswith(("engine.", "mass."))
            }

        serial = engine_counters(lambda: stomp(series, 20))
        pooled = engine_counters(
            lambda: parallel_stomp(series, 20, n_jobs=2, n_chunks=4)
        )
        assert serial["engine.rows"] == pooled["engine.rows"]
        assert serial["engine.cells"] == pooled["engine.cells"]
        assert serial == pooled


class TestReport:
    def test_report_json_round_trip(self):
        with obs.tracing(True):
            obs.reset()
            obs.add("submp.profiles.total", 10)
            obs.add("submp.profiles.valid", 7)
            obs.gauge("g", 1.5)
            with obs.span("stage"):
                pass
            report = build_report()
        again = report_from_json(report_to_json(report))
        assert again == report
        assert again["counters"]["submp.profiles.total"] == 10
        assert again["derived"]["pruning_power"] == 0.7
        assert again["n_processes"] == 1

    def test_report_from_json_rejects_garbage(self):
        with pytest.raises(InvalidParameterError):
            report_from_json("not json at all {")
        with pytest.raises(InvalidParameterError):
            report_from_json(json.dumps({"no": "counters"}))
        with pytest.raises(InvalidParameterError):
            report_from_json(json.dumps(["a", "list"]))

    def test_derived_metrics(self):
        derived = derived_metrics(
            {
                "submp.profiles.total": 100,
                "submp.profiles.valid": 80,
                "submp.profiles.total.l25": 50,
                "submp.profiles.valid.l25": 10,
                "listdp.lookups": 200,
                "listdp.hits": 150,
            }
        )
        assert derived["pruning_power"] == 0.8
        assert derived["pruning_power.l25"] == 0.2
        assert derived["listdp_hit_rate"] == 0.75

    def test_derived_metrics_empty_counters(self):
        assert derived_metrics({}) == {}

    def test_format_report_mentions_all_sections(self):
        with obs.tracing(True):
            obs.reset()
            obs.add("c", 3)
            obs.gauge("g", 2.0)
            with obs.span("s"):
                pass
            text = format_report(build_report())
        for fragment in ("counters", "gauges", "spans", "c", "g", "s"):
            assert fragment in text


class TestHarnessIntegration:
    def test_run_outcome_carries_trace_delta(self):
        series = _series(420, seed=3)
        with obs.tracing(True):
            obs.reset()
            first = run_algorithm("VALMOD", series, 20, 22, p=16)
            second = run_algorithm("STOMP", series, 20, 22, p=16)
        assert first.trace is not None
        assert first.trace["compute_mp.rows"] == 420 - 20 + 1
        assert "submp.profiles.total" in first.trace
        # the second outcome's delta excludes the first run's counters
        assert second.trace is not None
        assert "submp.profiles.total" not in second.trace
        assert second.trace["engine.rows"] > 0

    def test_run_outcome_trace_none_when_disabled(self):
        series = _series(300, seed=4)
        outcome = run_algorithm("VALMOD", series, 20, 21, p=16)
        assert outcome.trace is None
        assert not outcome.dnf
