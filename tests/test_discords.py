"""Tests for variable-length discord discovery."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.compute_mp import compute_matrix_profile
from repro.core.discords import (
    Discord,
    find_discords,
    per_length_candidates,
    select_top_k,
)
from repro.core.discords_variable import length_upper_bound
from repro.exceptions import InvalidParameterError
from repro.kernels.context import SeriesContext
from repro.matrixprofile.exclusion import exclusion_zone_half_width
from repro.matrixprofile.stomp import stomp


@pytest.fixture(scope="module")
def anomalous_series():
    """Periodic series with one injected anomaly of a known width."""
    x = np.linspace(0, 40 * np.pi, 1000)
    t = np.sin(x) + 0.05 * np.random.default_rng(5).standard_normal(1000)
    t[500:530] += 4.0 * np.hanning(30)
    return t, 500, 30


class TestDiscovery:
    def test_finds_injected_anomaly(self, anomalous_series):
        t, pos, width = anomalous_series
        discords = find_discords(t, 24, 36, k=1)
        assert len(discords) == 1
        assert abs(discords[0].start - pos) <= 40

    def test_ranked_by_normalized_distance(self, anomalous_series):
        t, _, _ = anomalous_series
        discords = find_discords(t, 24, 30, k=4)
        norms = [d.normalized_distance for d in discords]
        assert norms == sorted(norms, reverse=True)

    def test_non_overlapping(self, anomalous_series):
        t, _, _ = anomalous_series
        discords = find_discords(t, 24, 30, k=5)
        for i, a in enumerate(discords):
            for b in discords[i + 1 :]:
                zone = max(
                    exclusion_zone_half_width(a.length),
                    exclusion_zone_half_width(b.length),
                )
                assert abs(a.start - b.start) >= zone

    def test_lengths_within_range(self, anomalous_series):
        t, _, _ = anomalous_series
        for d in find_discords(t, 24, 30, k=3):
            assert 24 <= d.length <= 30

    def test_variable_length_beats_wrong_fixed_length(self):
        """The extension's point: a short glitch scanned only at a long
        length scores lower than at its natural length."""
        x = np.linspace(0, 40 * np.pi, 1000)
        t = np.sin(x) + 0.05 * np.random.default_rng(8).standard_normal(1000)
        t[400:412] += 5.0 * np.hanning(12)  # a 12-point glitch
        short = find_discords(t, 10, 14, k=1)[0]
        long_ = find_discords(t, 48, 52, k=1)[0]
        assert short.normalized_distance > long_.normalized_distance


class TestValidation:
    def test_reversed_range(self, anomalous_series):
        t, _, _ = anomalous_series
        with pytest.raises(InvalidParameterError):
            find_discords(t, 30, 24)

    def test_bad_k(self, anomalous_series):
        t, _, _ = anomalous_series
        with pytest.raises(InvalidParameterError):
            find_discords(t, 24, 30, k=0)

    def test_end_property(self):
        d = Discord(normalized_distance=1.0, distance=2.0, length=10, start=5)
        assert d.end == 15


class TestEdgeCases:
    def test_constant_series(self):
        # Every window is identical: nearest-neighbor distance 0
        # everywhere, so the "discords" score 0 but the scan must not
        # crash or return overlapping windows.
        discords = find_discords(np.zeros(300), 16, 24, k=2)
        for d in discords:
            assert d.distance == 0.0
        for i, a in enumerate(discords):
            for b in discords[i + 1 :]:
                zone = max(
                    exclusion_zone_half_width(a.length),
                    exclusion_zone_half_width(b.length),
                )
                assert abs(a.start - b.start) >= zone

    def test_k_exceeding_non_overlapping_discords(self):
        # A 200-point series cannot host 50 mutually non-overlapping
        # 16..40-point windows; the result is simply shorter than k.
        t = np.sin(np.linspace(0, 8 * np.pi, 200))
        discords = find_discords(t, 16, 40, k=50)
        assert 0 < len(discords) < 50


class TestProperties:
    """Hypothesis properties behind the pruned driver's exactness."""

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=8, deadline=None)
    def test_lb_upper_bound_admissible(self, seed):
        # Discord-side admissibility: at every advanced length, the
        # listDP-derived bound U_l dominates the true normalized profile
        # maximum — so a length pruned by U_l < threshold really cannot
        # host a top-k discord.
        rng = np.random.default_rng(seed)
        t = rng.standard_normal(240)
        ctx = SeriesContext(t)
        base = 12
        _, store = compute_matrix_profile(t, base, p=8, context=ctx)
        for length in range(base + 1, base + 8):
            store.advance_to(length, t)
            upper = length_upper_bound(store.neighbor, store.qt, ctx, length)
            profile = stomp(t, length, context=ctx).profile
            true_max = float(
                np.nanmax(np.where(np.isfinite(profile), profile, np.nan))
            ) / math.sqrt(length)
            assert upper >= true_max - 1e-9

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=8, deadline=None)
    def test_per_length_candidates_dominate_rest_of_profile(self, seed):
        # The k extracted candidates must be the k largest
        # non-overlapping values: nothing outside their exclusion zones
        # may exceed the weakest candidate.
        rng = np.random.default_rng(seed)
        t = rng.standard_normal(200)
        profile = stomp(t, 16, context=SeriesContext(t)).profile
        candidates = per_length_candidates(profile, 16, 3)
        assert candidates
        zone = exclusion_zone_half_width(16)
        weakest = min(c.distance for c in candidates)
        covered = np.zeros(profile.size, dtype=bool)
        for c in candidates:
            lo = max(0, c.start - zone + 1)
            covered[lo : c.start + zone] = True
        outside = np.isfinite(profile) & ~covered
        if outside.any():
            assert profile[outside].max() <= weakest

    def test_equal_distance_tie_break_is_deterministic(self):
        # Equal normalized distances: stable sort keeps pool order, and
        # both drivers build the pool in ascending length, so the
        # shorter length (then the earlier per-length rank) wins.
        tie = [
            Discord(normalized_distance=1.0, distance=4.0, length=16, start=0),
            Discord(normalized_distance=1.0, distance=4.2, length=18, start=200),
            Discord(normalized_distance=1.0, distance=4.4, length=20, start=400),
        ]
        chosen = select_top_k(tie, 2)
        assert [d.length for d in chosen] == [16, 18]
        assert select_top_k(list(tie), 2) == chosen

    def test_tied_overlapping_candidates_resolve_to_pool_order(self):
        # An overlapping equal-score rival must lose to the earlier
        # pool entry, never evict it.
        tie = [
            Discord(normalized_distance=1.0, distance=4.0, length=16, start=100),
            Discord(normalized_distance=1.0, distance=4.0, length=16, start=101),
        ]
        chosen = select_top_k(tie, 2)
        assert chosen == [tie[0]]
