"""Tests for variable-length discord discovery."""

import numpy as np
import pytest

from repro.core.discords import Discord, find_discords
from repro.exceptions import InvalidParameterError
from repro.matrixprofile.exclusion import exclusion_zone_half_width


@pytest.fixture(scope="module")
def anomalous_series():
    """Periodic series with one injected anomaly of a known width."""
    x = np.linspace(0, 40 * np.pi, 1000)
    t = np.sin(x) + 0.05 * np.random.default_rng(5).standard_normal(1000)
    t[500:530] += 4.0 * np.hanning(30)
    return t, 500, 30


class TestDiscovery:
    def test_finds_injected_anomaly(self, anomalous_series):
        t, pos, width = anomalous_series
        discords = find_discords(t, 24, 36, k=1)
        assert len(discords) == 1
        assert abs(discords[0].start - pos) <= 40

    def test_ranked_by_normalized_distance(self, anomalous_series):
        t, _, _ = anomalous_series
        discords = find_discords(t, 24, 30, k=4)
        norms = [d.normalized_distance for d in discords]
        assert norms == sorted(norms, reverse=True)

    def test_non_overlapping(self, anomalous_series):
        t, _, _ = anomalous_series
        discords = find_discords(t, 24, 30, k=5)
        for i, a in enumerate(discords):
            for b in discords[i + 1 :]:
                zone = max(
                    exclusion_zone_half_width(a.length),
                    exclusion_zone_half_width(b.length),
                )
                assert abs(a.start - b.start) >= zone

    def test_lengths_within_range(self, anomalous_series):
        t, _, _ = anomalous_series
        for d in find_discords(t, 24, 30, k=3):
            assert 24 <= d.length <= 30

    def test_variable_length_beats_wrong_fixed_length(self):
        """The extension's point: a short glitch scanned only at a long
        length scores lower than at its natural length."""
        x = np.linspace(0, 40 * np.pi, 1000)
        t = np.sin(x) + 0.05 * np.random.default_rng(8).standard_normal(1000)
        t[400:412] += 5.0 * np.hanning(12)  # a 12-point glitch
        short = find_discords(t, 10, 14, k=1)[0]
        long_ = find_discords(t, 48, 52, k=1)[0]
        assert short.normalized_distance > long_.normalized_distance


class TestValidation:
    def test_reversed_range(self, anomalous_series):
        t, _, _ = anomalous_series
        with pytest.raises(InvalidParameterError):
            find_discords(t, 30, 24)

    def test_bad_k(self, anomalous_series):
        t, _, _ = anomalous_series
        with pytest.raises(InvalidParameterError):
            find_discords(t, 24, 30, k=0)

    def test_end_property(self):
        d = Discord(normalized_distance=1.0, distance=2.0, length=10, start=5)
        assert d.end == 15
