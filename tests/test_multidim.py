"""Tests for mSTAMP multidimensional motif discovery."""

import numpy as np
import pytest

from repro.distance.znorm import znormalized_distance
from repro.exceptions import InvalidParameterError, InvalidSeriesError
from repro.matrixprofile import stomp
from repro.multidim import mstamp, multidim_motifs


@pytest.fixture(scope="module")
def planted_2of3():
    """3-dim series with a motif planted in dimensions 0 and 2 only."""
    rng = np.random.default_rng(13)
    d, n, length = 3, 500, 40
    data = rng.standard_normal((d, n))
    pattern = 4 * np.sin(np.linspace(0, 4 * np.pi, length)) * np.hanning(length)
    for dim in (0, 2):
        data[dim, 100 : 100 + length] += pattern
        data[dim, 350 : 350 + length] += pattern
    return data, length, (100, 350), (0, 2)


class TestMstamp:
    def test_shapes(self, planted_2of3):
        data, length, _, _ = planted_2of3
        mp = mstamp(data, length)
        n_subs = data.shape[1] - length + 1
        assert mp.profile.shape == (3, n_subs)
        assert mp.index.shape == (3, n_subs)
        assert mp.n_dimensions == 3

    def test_one_dim_profile_is_min_over_dims(self, planted_2of3):
        """Row k=1 must equal the pointwise minimum of the per-dimension
        single-series matrix profiles (modulo trivial-match handling)."""
        data, length, _, _ = planted_2of3
        mp = mstamp(data, length)
        singles = np.array(
            [stomp(data[dim], length).profile for dim in range(3)]
        )
        expected = singles.min(axis=0)
        finite = np.isfinite(expected)
        np.testing.assert_allclose(
            mp.profile[0][finite], expected[finite], atol=1e-6
        )

    def test_profiles_monotone_in_k(self, planted_2of3):
        """Averaging over more (sorted ascending) dimensions can only
        increase the value: profile rows are monotone in k."""
        data, length, _, _ = planted_2of3
        mp = mstamp(data, length)
        finite = np.isfinite(mp.profile).all(axis=0)
        for k in range(1, 3):
            assert np.all(
                mp.profile[k][finite] >= mp.profile[k - 1][finite] - 1e-9
            )

    def test_finds_2dim_motif_with_correct_dimensions(self, planted_2of3):
        data, length, positions, dims = planted_2of3
        motif = mstamp(data, length).motif(2, series=data)
        assert abs(motif.a - positions[0]) <= 10
        assert abs(motif.b - positions[1]) <= 10
        assert set(motif.dimensions) == set(dims)

    def test_k2_motif_distance_is_mean_of_dim_distances(self, planted_2of3):
        data, length, _, _ = planted_2of3
        motif = mstamp(data, length).motif(2, series=data)
        per_dim = sorted(
            znormalized_distance(
                data[dim, motif.a : motif.a + length],
                data[dim, motif.b : motif.b + length],
            )
            for dim in range(3)
        )
        assert motif.distance == pytest.approx(
            (per_dim[0] + per_dim[1]) / 2.0, abs=1e-6
        )

    def test_3dim_motif_not_the_planted_pair_necessarily(self, planted_2of3):
        """With the motif in only 2 of 3 dims, the k=3 average includes
        a noise dimension: its distance must exceed the k=2 motif's."""
        data, length, _, _ = planted_2of3
        mp = mstamp(data, length)
        assert mp.motif(3).distance > mp.motif(2).distance


class TestMultidimMotifs:
    def test_returns_all_k(self, planted_2of3):
        data, length, _, _ = planted_2of3
        motifs = multidim_motifs(data, length)
        assert [m.k for m in motifs] == [1, 2, 3]
        assert all(len(m.dimensions) == m.k for m in motifs)

    def test_non_trivial_pairs(self, planted_2of3):
        from repro.matrixprofile.exclusion import exclusion_zone_half_width

        data, length, _, _ = planted_2of3
        for motif in multidim_motifs(data, length):
            assert abs(motif.a - motif.b) >= exclusion_zone_half_width(length)


class TestValidation:
    def test_rejects_1d(self, rng):
        with pytest.raises(InvalidSeriesError):
            mstamp(rng.standard_normal(100), 10)

    def test_rejects_nan(self, rng):
        data = rng.standard_normal((2, 100))
        data[0, 5] = np.nan
        with pytest.raises(InvalidSeriesError):
            mstamp(data, 10)

    def test_rejects_bad_length(self, rng):
        data = rng.standard_normal((2, 100))
        with pytest.raises(InvalidParameterError):
            mstamp(data, 60)

    def test_motif_k_validation(self, planted_2of3):
        data, length, _, _ = planted_2of3
        mp = mstamp(data, length)
        with pytest.raises(InvalidParameterError):
            mp.motif(0)
        with pytest.raises(InvalidParameterError):
            mp.motif(4)
