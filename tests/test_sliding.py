"""Tests for sliding dot products and running window statistics."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.distance.sliding import (
    moving_mean_std,
    prefix_sums,
    sliding_dot_product,
    validate_subsequence_length,
    window_mean_std_at,
    window_sums_at,
)
from repro.exceptions import InvalidParameterError


def naive_sliding_dot(query, series):
    m, n = len(query), len(series)
    return np.array(
        [float(np.dot(query, series[j : j + m])) for j in range(n - m + 1)]
    )


class TestSlidingDotProduct:
    def test_matches_naive_short_query(self, rng):
        t = rng.standard_normal(100)
        q = t[10:20]
        np.testing.assert_allclose(
            sliding_dot_product(q, t), naive_sliding_dot(q, t), atol=1e-9
        )

    def test_matches_naive_long_query_fft_path(self, rng):
        t = rng.standard_normal(400)
        q = t[50:150]  # length 100 > 64 -> FFT path
        np.testing.assert_allclose(
            sliding_dot_product(q, t), naive_sliding_dot(q, t), atol=1e-7
        )

    def test_query_equals_series(self, rng):
        t = rng.standard_normal(32)
        out = sliding_dot_product(t, t)
        assert out.shape == (1,)
        assert out[0] == pytest.approx(float(np.dot(t, t)))

    def test_empty_query_raises(self):
        with pytest.raises(InvalidParameterError):
            sliding_dot_product(np.array([]), np.zeros(10))

    def test_query_longer_than_series_raises(self):
        with pytest.raises(InvalidParameterError):
            sliding_dot_product(np.zeros(11), np.zeros(10))

    @given(
        st.integers(min_value=2, max_value=150),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=30, deadline=None)
    def test_fft_and_direct_agree_property(self, m, seed):
        rng = np.random.default_rng(seed)
        n = m + int(rng.integers(1, 100))
        t = rng.standard_normal(n)
        q = rng.standard_normal(m)
        np.testing.assert_allclose(
            sliding_dot_product(q, t), naive_sliding_dot(q, t), atol=1e-6
        )


class TestMovingMeanStd:
    def test_matches_naive(self, rng):
        t = rng.standard_normal(200) * 3 + 1
        mu, sigma = moving_mean_std(t, 17)
        for i in range(t.size - 17 + 1):
            window = t[i : i + 17]
            assert mu[i] == pytest.approx(window.mean(), abs=1e-9)
            assert sigma[i] == pytest.approx(window.std(), abs=1e-9)

    def test_window_one(self):
        t = np.array([1.0, 2.0, 3.0])
        mu, sigma = moving_mean_std(t, 1)
        np.testing.assert_allclose(mu, t)
        np.testing.assert_allclose(sigma, 0.0)

    def test_window_equal_to_series(self, rng):
        t = rng.standard_normal(20)
        mu, sigma = moving_mean_std(t, 20)
        assert mu.shape == (1,)
        assert mu[0] == pytest.approx(t.mean())

    def test_invalid_windows(self):
        with pytest.raises(InvalidParameterError):
            moving_mean_std(np.zeros(10), 0)
        with pytest.raises(InvalidParameterError):
            moving_mean_std(np.zeros(10), 11)

    def test_constant_series_zero_std(self):
        mu, sigma = moving_mean_std(np.full(50, 3.0), 8)
        np.testing.assert_allclose(mu, 3.0)
        np.testing.assert_allclose(sigma, 0.0, atol=1e-12)


class TestPrefixSums:
    def test_window_sums(self, rng):
        t = rng.standard_normal(64)
        c, c2 = prefix_sums(t)
        s, ss = window_sums_at(c, c2, 5, 12)
        window = t[5:17]
        assert s == pytest.approx(window.sum())
        assert ss == pytest.approx((window**2).sum())

    def test_window_mean_std_at_matches_moving(self, rng):
        t = rng.standard_normal(64)
        c, c2 = prefix_sums(t)
        mu, sigma = moving_mean_std(t, 9)
        for i in (0, 7, 30, 55):
            m, s = window_mean_std_at(c, c2, i, 9)
            assert m == pytest.approx(mu[i], abs=1e-9)
            assert s == pytest.approx(sigma[i], abs=1e-9)

    def test_full_series_window(self, rng):
        t = rng.standard_normal(30)
        c, c2 = prefix_sums(t)
        m, s = window_mean_std_at(c, c2, 0, 30)
        assert m == pytest.approx(t.mean())
        assert s == pytest.approx(t.std(), abs=1e-9)


class TestValidateSubsequenceLength:
    def test_valid(self):
        assert validate_subsequence_length(100, 10) == 91

    def test_too_small(self):
        with pytest.raises(InvalidParameterError):
            validate_subsequence_length(100, 1)

    def test_too_large(self):
        with pytest.raises(InvalidParameterError):
            validate_subsequence_length(100, 51)

    def test_exactly_half(self):
        assert validate_subsequence_length(100, 50) == 51
