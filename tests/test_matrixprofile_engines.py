"""Cross-engine equality: brute force == STOMP == STAMP (invariant 5)."""

import numpy as np
import pytest

from repro.matrixprofile import (
    brute_force_matrix_profile,
    stamp,
    stomp,
)
from repro.matrixprofile.stomp import iterate_stomp_rows
from repro.distance.profile import naive_distance_profile
from repro.distance.sliding import moving_mean_std
from tests.conftest import assert_profiles_close


ENGINES = [stomp, stamp, brute_force_matrix_profile]


@pytest.mark.parametrize("length", [8, 16, 33])
def test_engines_agree_on_noise(noise_series, length):
    reference = brute_force_matrix_profile(noise_series, length)
    for engine in (stomp, stamp):
        result = engine(noise_series, length)
        assert_profiles_close(result.profile, reference.profile, atol=1e-6)


@pytest.mark.parametrize("length", [20, 50])
def test_engines_agree_on_structure(structured_series, length):
    reference = brute_force_matrix_profile(structured_series, length)
    for engine in (stomp, stamp):
        result = engine(structured_series, length)
        assert_profiles_close(result.profile, reference.profile, atol=1e-6)


def test_engines_agree_with_constant_segments():
    rng = np.random.default_rng(9)
    t = rng.standard_normal(200)
    t[50:80] = 2.5  # a flat shelf: exercises the degenerate-window paths
    reference = brute_force_matrix_profile(t, 12)
    for engine in (stomp, stamp):
        assert_profiles_close(engine(t, 12).profile, reference.profile, atol=1e-6)


def test_planted_motif_is_found(planted):
    mp = stomp(planted.series, planted.length)
    pair = mp.motif_pair()
    assert planted.hit(pair.a) and planted.hit(pair.b)


def test_index_points_to_nearest_neighbor(noise_series):
    mp = stomp(noise_series, 16)
    # spot-check a few positions against explicitly computed profiles
    for i in (0, 50, 200):
        row = naive_distance_profile(noise_series, i, 16)
        zone = mp.exclusion
        lo, hi = max(0, i - zone + 1), min(row.size, i + zone)
        row[lo:hi] = np.inf
        assert mp.profile[i] == pytest.approx(row.min(), abs=1e-6)


def test_stomp_rows_generator_matches_mass(noise_series):
    t = noise_series
    length = 16
    mu, sigma = moving_mean_std(t, length)
    for i, _, row in iterate_stomp_rows(t, length, mu, sigma, apply_exclusion=False):
        if i in (0, 77, 250):
            np.testing.assert_allclose(
                row, naive_distance_profile(t, i, length), atol=1e-6
            )


class TestStampAnytime:
    def test_partial_run_is_upper_bound(self, noise_series):
        exact = stomp(noise_series, 16)
        partial = stamp(
            noise_series,
            16,
            max_rows=40,
            rng=np.random.default_rng(0),
        )
        finite = np.isfinite(partial.profile)
        assert finite.any()
        assert np.all(
            partial.profile[finite] >= exact.profile[finite] - 1e-9
        )

    def test_full_random_order_is_exact(self, noise_series):
        exact = stomp(noise_series, 16)
        shuffled = stamp(noise_series, 16, rng=np.random.default_rng(3))
        assert_profiles_close(shuffled.profile, exact.profile, atol=1e-6)

    def test_invalid_max_rows(self, noise_series):
        with pytest.raises(ValueError):
            stamp(noise_series, 16, max_rows=0)

    def test_anytime_converges_quickly(self, structured_series):
        """The paper's anytime claim: a fraction of rows already yields
        the true motif on structured data."""
        exact_pair = stomp(structured_series, 40).motif_pair()
        partial = stamp(
            structured_series,
            40,
            max_rows=len(structured_series) // 4,
            rng=np.random.default_rng(1),
        )
        pair = partial.motif_pair()
        # Anytime runs give upper bounds that converge from above: after a
        # quarter of the rows the best-so-far is already near the truth.
        assert pair.distance >= exact_pair.distance - 1e-9
        assert pair.distance <= 2.0 * exact_pair.distance + 1e-9


class TestFlatSegmentNumerics:
    """Regression: zero-variance and high-magnitude shelves.

    Two historical failure modes live here.  First, a flat (zero
    variance) window that spans a parallel chunk seam used to risk
    NaN/inf leaking through the merged profile.  Second, prefix-sum
    mean/variance cancellation downstream of a high-magnitude shelf
    (plus QT recurrence drift) inflated STOMP's error to O(1); the
    noise-floor recompute in ``moving_mean_std`` and the re-anchoring
    schedule in ``stomp`` keep it bounded now.
    """

    @staticmethod
    def _shelf_series(magnitude):
        rng = np.random.default_rng(11)
        t = rng.standard_normal(300).cumsum()
        t[120:170] = magnitude
        return t

    def test_flat_window_spanning_chunk_seam_has_no_nan(self):
        from repro.matrixprofile.parallel import parallel_stomp

        rng = np.random.default_rng(9)
        t = rng.standard_normal(200)
        # Flat segment centered on the series midpoint so every chunking
        # of the diagonals puts a seam through its zero-variance windows.
        t[90:130] = -3.0
        serial = stomp(t, 20)
        for n_chunks in (2, 3, 5):
            mp = parallel_stomp(t, 20, n_jobs=1, n_chunks=n_chunks)
            assert not np.isnan(mp.profile).any()
            assert not np.isinf(mp.profile).any()
            np.testing.assert_array_equal(mp.profile, serial.profile)
            np.testing.assert_array_equal(mp.index, serial.index)

    @pytest.mark.parametrize(
        "magnitude, tolerance",
        [(1e3, 1e-8), (1e6, 1e-6), (1e8, 1e-4)],
    )
    def test_high_magnitude_shelf_stays_accurate(self, magnitude, tolerance):
        """STOMP vs brute on a cumsum walk interrupted by a huge shelf.

        Before the noise-floor recompute + QT re-anchoring, the 1e8 case
        erred by ~4.0 absolute; it now holds 1e-6-ish.  Tolerances leave
        two orders of magnitude of headroom per decade of shelf height.
        """
        t = self._shelf_series(magnitude)
        reference = brute_force_matrix_profile(t, 16)
        result = stomp(t, 16)
        finite = np.isfinite(reference.profile)
        assert np.array_equal(np.isfinite(result.profile), finite)
        error = np.max(np.abs(result.profile[finite] - reference.profile[finite]))
        assert error < tolerance

    def test_high_magnitude_shelf_parallel_bitwise(self):
        """The shelf activates the re-anchoring schedule; the parallel
        engine must mirror it exactly (the two-chain design)."""
        from repro.distance.sliding import moving_mean_std
        from repro.matrixprofile.parallel import parallel_stomp
        from repro.matrixprofile.stomp import stomp_reanchor_rows

        t = self._shelf_series(1e8)
        _, sigma = moving_mean_std(t, 16)
        assert stomp_reanchor_rows(t, 16, sigma).size > 0
        serial = stomp(t, 16)
        for n_chunks in (2, 5):
            mp = parallel_stomp(t, 16, n_jobs=1, n_chunks=n_chunks)
            np.testing.assert_array_equal(mp.profile, serial.profile)
            np.testing.assert_array_equal(mp.index, serial.index)
