"""Tests for the repro.lint static analyzer.

Each rule has a bad/good fixture pair under ``tests/lint_fixtures/``;
kernel-scoped rules live in a ``matrixprofile/`` subdirectory so the
path-based module classification kicks in.  The suite also self-checks
that the shipped source tree lints clean — the same gate CI runs.
"""

import json
import shutil
import subprocess
import sys
from pathlib import Path

import pytest

from repro.exceptions import InvalidParameterError
from repro.lint import all_rules, lint_paths, lint_source
from repro.lint.cli import format_rule_table, main

FIXTURES = Path(__file__).parent / "lint_fixtures"
SRC = Path(__file__).parent.parent / "src" / "repro"

RULE_IDS = (
    "R001",
    "R002",
    "R003",
    "R004",
    "R005",
    "R006",
    "R007",
    "R008",
    "R009",
    "R010",
    "R011",
    "R012",
    "R013",
)

# rule id -> fixture path relative to FIXTURES, expected violation count
BAD_FIXTURES = {
    "R001": ("matrixprofile/r001_bad.py", 1),
    "R002": ("matrixprofile/r002_bad.py", 1),
    "R003": ("r003_bad.py", 2),
    "R004": ("matrixprofile/r004_bad.py", 1),
    "R005": ("matrixprofile/r005_bad.py", 2),
    "R006": ("matrixprofile/r006_bad.py", 2),
    "R007": ("obs/r007_bad.py", 2),
    "R008": ("r008_bad.py", 2),
    "R009": ("r009_bad.py", 2),
    "R010": ("r010_bad.py", 2),
    "R011": ("r011_bad.py", 2),
    "R012": ("kernels/r012_bad.py", 3),
    "R013": ("kernels/r013_bad.py", 2),
}
GOOD_FIXTURES = {
    "R001": "matrixprofile/r001_good.py",
    "R002": "matrixprofile/r002_good.py",
    "R003": "r003_good.py",
    "R004": "matrixprofile/r004_good.py",
    "R005": "matrixprofile/r005_good.py",
    "R006": "matrixprofile/r006_good.py",
    "R007": "obs/r007_good.py",
    "R008": "r008_good.py",
    "R009": "r009_good.py",
    "R010": "r010_good.py",
    "R011": "matrixprofile/r011_good.py",
    "R012": "kernels/r012_good.py",
    "R013": "kernels/r013_good.py",
}


def rule_ids(diagnostics):
    return [diag.rule_id for diag in diagnostics]


class TestRuleRegistry:
    def test_all_rules_registered(self):
        assert tuple(rule.rule_id for rule in all_rules()) == RULE_IDS

    def test_rules_carry_documentation(self):
        for rule in all_rules():
            assert rule.name, rule.rule_id
            assert rule.summary, rule.rule_id
            assert rule.rationale, rule.rule_id


class TestBadFixtures:
    @pytest.mark.parametrize("rule_id", RULE_IDS)
    def test_bad_fixture_flags_expected_rule(self, rule_id):
        rel, expected = BAD_FIXTURES[rule_id]
        diagnostics = lint_paths([FIXTURES / rel])
        assert rule_ids(diagnostics) == [rule_id] * expected

    @pytest.mark.parametrize("rule_id", RULE_IDS)
    def test_diagnostic_format_has_location_and_id(self, rule_id):
        rel, _ = BAD_FIXTURES[rule_id]
        diag = lint_paths([FIXTURES / rel])[0]
        rendered = diag.format()
        assert rule_id in rendered
        assert Path(rel).name in rendered
        # path:line:col: prefix
        assert f":{diag.line}:{diag.col}:" in rendered


class TestGoodFixtures:
    @pytest.mark.parametrize("rule_id", RULE_IDS)
    def test_good_fixture_is_clean(self, rule_id):
        diagnostics = lint_paths([FIXTURES / GOOD_FIXTURES[rule_id]])
        assert diagnostics == []

    def test_whole_fixture_tree_flags_only_bad_files(self):
        diagnostics = lint_paths([FIXTURES])
        assert all("_bad" in diag.path for diag in diagnostics)
        assert sorted(set(rule_ids(diagnostics))) == sorted(RULE_IDS)


class TestSelfCheck:
    def test_shipped_source_tree_is_clean(self):
        # The repo-wide gate: the analyzer must pass on its own codebase.
        assert lint_paths([SRC]) == []


class TestSelection:
    def test_select_restricts_rules(self):
        rel, _ = BAD_FIXTURES["R003"]
        assert rule_ids(lint_paths([FIXTURES / rel], select=["R003"])) == [
            "R003",
            "R003",
        ]
        assert lint_paths([FIXTURES / rel], select=["R001"]) == []

    def test_unknown_rule_id_raises(self):
        with pytest.raises(InvalidParameterError):
            lint_paths([FIXTURES], select=["R999"])


class TestPragmas:
    def test_line_pragma_suppresses_one_rule(self):
        source = (
            "def zone(length):\n"
            "    return length // 2  # repro-lint: ignore[R004]\n"
        )
        assert lint_source(source, path="matrixprofile/fake.py") == []

    def test_line_pragma_is_rule_specific(self):
        source = (
            "def zone(length):\n"
            "    return length // 2  # repro-lint: ignore[R001]\n"
        )
        # The R004 diagnostic still fires (the pragma names a different
        # rule), and the R001 pragma — having suppressed nothing — is
        # itself reported stale by R011.
        assert sorted(rule_ids(lint_source(source, path="matrixprofile/fake.py"))) == [
            "R004",
            "R011",
        ]

    def test_skip_file_pragma(self):
        source = (
            "# repro-lint: skip-file\n"
            "def zone(length):\n"
            "    return length // 2\n"
        )
        assert lint_source(source, path="matrixprofile/fake.py") == []


class TestObsLayering:
    def test_foundation_module_may_not_import_obs(self):
        source = "from repro.obs import tracer\n"
        assert rule_ids(lint_source(source, path="src/repro/types.py")) == [
            "R007"
        ]

    def test_from_repro_import_obs_alias_is_seen(self):
        # the alias form must not hide the layering violation
        source = "from repro import obs\n"
        assert rule_ids(lint_source(source, path="src/repro/exceptions.py")) == [
            "R007"
        ]

    def test_foundation_rule_ignores_other_imports(self):
        source = "import numpy as np\nfrom repro.exceptions import ReproError\n"
        assert lint_source(source, path="src/repro/types.py") == []

    def test_non_foundation_non_obs_module_is_out_of_scope(self):
        # kernels importing obs is the intended direction
        source = "from repro import obs\nfrom repro.matrixprofile import stomp\n"
        assert lint_source(source, path="src/repro/core/whatever.py") == []


class TestFeaturesLayering:
    def test_store_import_outside_facade_is_flagged(self):
        source = "from repro.features.store import FeatureStore\n"
        assert rule_ids(lint_source(source, path="src/repro/cli.py")) == [
            "R009"
        ]

    def test_store_import_inside_facade_is_allowed(self):
        source = "from repro.features.store import FeatureStore\n"
        assert (
            lint_source(source, path="src/repro/features/facade.py") == []
        )

    def test_two_workload_families_flagged_once_per_extra_family(self):
        source = (
            "from repro.core.valmod import Valmod\n"
            "from repro.core.discords import find_discords\n"
            "from repro.core.segmentation import fluss\n"
        )
        assert rule_ids(lint_source(source, path="src/repro/tool.py")) == [
            "R009",
            "R009",
        ]

    def test_one_family_spread_over_modules_is_allowed(self):
        # valmod + motif_sets + ranking are one family (motifs): staged
        # timing of VALMP build vs set extraction is legitimate.
        source = (
            "from repro.core.valmod import Valmod\n"
            "from repro.core.motif_sets import compute_motif_sets\n"
            "from repro.core.ranking import top_motifs_across_lengths\n"
        )
        assert lint_source(source, path="src/repro/harness/tool.py") == []

    def test_init_modules_may_reexport_everything(self):
        source = (
            "from repro.core.valmod import Valmod\n"
            "from repro.core.discords import find_discords\n"
            "from repro.multiseries import find_snippets\n"
        )
        assert lint_source(source, path="src/repro/__init__.py") == []

    def test_facade_composes_freely(self):
        source = (
            "from repro.core.valmod import Valmod\n"
            "from repro.core.discords import find_discords\n"
            "from repro.core.chains import unanchored_chain\n"
        )
        assert (
            lint_source(source, path="src/repro/features/facade.py") == []
        )

    def test_aliased_from_import_is_seen(self):
        # ``from repro.core import X`` prefix-matches the core package.
        source = (
            "from repro.core import Valmod\n"
            "from repro.multiseries import find_snippets\n"
        )
        assert rule_ids(lint_source(source, path="src/repro/tool.py")) == [
            "R009"
        ]


class TestScoping:
    def test_kernel_rules_ignore_non_kernel_paths(self):
        source = "def zone(length):\n    return length // 2\n"
        # Same code outside a kernel package: R004 does not apply.
        assert lint_source(source, path="analysis/fake.py") == []

    def test_syntax_error_becomes_diagnostic(self, tmp_path):
        broken = tmp_path / "broken.py"
        broken.write_text("def oops(:\n")
        diagnostics = lint_paths([broken])
        assert rule_ids(diagnostics) == ["E000"]


class TestCli:
    def test_main_exit_zero_on_clean_path(self, capsys):
        assert main([str(FIXTURES / GOOD_FIXTURES["R001"])]) == 0

    def test_main_exit_one_with_diagnostics(self, capsys):
        rel, _ = BAD_FIXTURES["R001"]
        assert main([str(FIXTURES / rel)]) == 1
        out = capsys.readouterr().out
        assert "R001" in out
        assert "r001_bad.py" in out

    def test_main_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in RULE_IDS:
            assert rule_id in out

    def test_main_usage_error_on_unknown_rule(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["--select", "R999", str(FIXTURES)])
        assert excinfo.value.code == 2

    def test_format_rule_table_has_header(self):
        table = format_rule_table()
        assert table.splitlines()[0].startswith("ID")

    def test_module_entry_point(self):
        # the exact invocation CI uses: python -m repro.lint <path>
        proc = subprocess.run(
            [sys.executable, "-m", "repro.lint", str(FIXTURES / "r003_bad.py")],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 1
        assert "R003" in proc.stdout
        assert "violation(s) found" in proc.stderr


class TestJsonFormat:
    def test_json_envelope_on_bad_fixture(self, capsys):
        rel, expected = BAD_FIXTURES["R003"]
        assert main(["--format", "json", str(FIXTURES / rel)]) == 1
        captured = capsys.readouterr()
        payload = json.loads(captured.out)
        assert payload["version"] == 1
        assert payload["count"] == expected == len(payload["diagnostics"])
        assert payload["rules"] == list(RULE_IDS)
        diag = payload["diagnostics"][0]
        assert set(diag) == {"path", "line", "col", "rule_id", "message"}
        assert diag["rule_id"] == "R003"
        # json mode keeps stderr silent: the envelope is the whole report
        assert captured.err == ""

    def test_json_envelope_on_clean_path(self, capsys):
        path = str(FIXTURES / GOOD_FIXTURES["R001"])
        assert main(["--format", "json", path]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["count"] == 0
        assert payload["diagnostics"] == []

    def test_json_rules_reflect_selection(self, capsys):
        rel, _ = BAD_FIXTURES["R003"]
        args = ["--format", "json", "--select", "R010,R003", str(FIXTURES / rel)]
        assert main(args) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["rules"] == ["R003", "R010"]


class TestRunnerEdgeCases:
    def test_unreadable_file_becomes_diagnostic(self, tmp_path):
        bogus = tmp_path / "bogus.py"
        bogus.write_bytes(b"\xff\xfe not utf-8 \xff\n")
        assert rule_ids(lint_paths([bogus])) == ["E001"]

    def test_pycache_and_non_python_files_skipped(self, tmp_path):
        cache = tmp_path / "__pycache__"
        cache.mkdir()
        (cache / "mod.py").write_text("def oops(:\n")
        (tmp_path / "notes.txt").write_text("not python (\n")
        (tmp_path / "data.json").write_text("{]\n")
        assert lint_paths([tmp_path]) == []

    def test_pragma_on_last_line_of_multiline_statement(self):
        source = (
            "def zone(length):\n"
            "    return (\n"
            "        length // 2\n"
            "    )  # repro-lint: ignore[R004]\n"
        )
        assert lint_source(source, path="matrixprofile/fake.py") == []

    def test_skip_file_pragma_below_line_one(self):
        source = (
            '"""Docstring first, pragma second."""\n'
            "# repro-lint: skip-file\n"
            "def zone(length):\n"
            "    return length // 2\n"
        )
        assert lint_source(source, path="matrixprofile/fake.py") == []

    def test_ordering_is_deterministic(self):
        paths = [
            FIXTURES / BAD_FIXTURES["R008"][0],
            FIXTURES / BAD_FIXTURES["R003"][0],
        ]
        forward = lint_paths(paths)
        assert forward == lint_paths(list(reversed(paths)))
        assert forward == sorted(
            forward,
            key=lambda d: (d.path, d.line, d.col, d.rule_id, d.message),
        )

    def test_empty_select_entry_raises(self):
        with pytest.raises(InvalidParameterError):
            lint_paths([FIXTURES], select=[""])

    def test_cli_empty_select_is_usage_error(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["--select", "", str(FIXTURES)])
        assert excinfo.value.code == 2


class TestObsRegistryCanary:
    def test_seeded_typo_fails_both_directions(self, tmp_path):
        # The CI canary contract: misspell one literal emission site in a
        # copy of the shipped tree and R010 must report the unknown name
        # at the emission site AND the now-orphaned registry declaration.
        copy = tmp_path / "repro"
        shutil.copytree(SRC, copy, ignore=shutil.ignore_patterns("__pycache__"))
        target = copy / "core" / "compute_submp.py"
        text = target.read_text()
        assert 'obs.add("submp.profiles.total"' in text
        target.write_text(
            text.replace(
                'obs.add("submp.profiles.total"',
                'obs.add("submp.profiles.totall"',
                1,
            )
        )
        diagnostics = lint_paths([copy], select=["R010"])
        assert diagnostics and {d.rule_id for d in diagnostics} == {"R010"}
        messages = [d.message for d in diagnostics]
        assert any("submp.profiles.totall" in m for m in messages)
        assert any("never emitted" in m for m in messages)

    def test_unseeded_copy_is_clean(self, tmp_path):
        copy = tmp_path / "repro"
        shutil.copytree(SRC, copy, ignore=shutil.ignore_patterns("__pycache__"))
        assert lint_paths([copy], select=["R010"]) == []


class TestStalePragma:
    def test_stale_pragma_is_flagged(self):
        source = "x = 1  # repro-lint: ignore[R004]\n"
        diags = lint_source(source, path="matrixprofile/fake.py")
        assert rule_ids(diags) == ["R011"]
        assert "stale" in diags[0].message

    def test_unknown_rule_id_in_pragma_is_flagged(self):
        source = "x = 1  # repro-lint: ignore[R999]\n"
        diags = lint_source(source, path="matrixprofile/fake.py")
        assert rule_ids(diags) == ["R011"]
        assert "R999" in diags[0].message

    def test_used_pragma_is_not_stale(self):
        source = (
            "def zone(length):\n"
            "    return length // 2  # repro-lint: ignore[R004]\n"
        )
        assert lint_source(source, path="matrixprofile/fake.py") == []

    def test_pragma_for_inactive_rule_is_not_stale(self):
        # When R004 is not in the active set it never had the chance to
        # fire, so its pragma cannot be proven stale.
        active = [r for r in all_rules() if r.rule_id == "R011"]
        source = "x = 1  # repro-lint: ignore[R004]\n"
        assert lint_source(source, path="matrixprofile/fake.py", rules=active) == []


class TestF32Escape:
    def test_rule_scoped_to_kernel_package(self):
        source = (
            "import numpy as np\n"
            "def f(series):\n"
            "    x = series.astype(np.float32)\n"
            "    return x\n"
        )
        assert rule_ids(lint_source(source, path="kernels/fake.py")) == ["R012"]
        assert lint_source(source, path="analysis/fake.py") == []

    def test_rebinding_kills_taint(self):
        source = (
            "import numpy as np\n"
            "def f(series):\n"
            "    x = series.astype(np.float32)\n"
            "    x = series * 1.0\n"
            "    return x\n"
        )
        assert lint_source(source, path="kernels/fake.py") == []

    def test_index_sanitizer_allows_verified_escape(self):
        source = (
            "import numpy as np\n"
            "def f(series):\n"
            "    x = series.astype(np.float32)\n"
            "    j = int(np.argmax(x))\n"
            "    return float(series[j])\n"
        )
        assert lint_source(source, path="kernels/fake.py") == []

    def test_float_cast_is_not_a_sanitizer(self):
        # float() changes the Python type but not the demoted precision.
        source = (
            "import numpy as np\n"
            "def f(series):\n"
            "    x = series.astype(np.float32)\n"
            "    return float(x[0])\n"
        )
        assert rule_ids(lint_source(source, path="kernels/fake.py")) == ["R012"]


class TestContractCoverage:
    def test_public_uncontracted_function_flagged(self):
        source = '__all__ = ["f"]\n\n\ndef f(x):\n    return x\n'
        diags = lint_source(source, path="core/fake.py")
        assert rule_ids(diags) == ["R013"]
        assert "f" in diags[0].message

    def test_contracted_function_clean(self):
        source = (
            "from repro.lint.contracts import positive_int, require\n"
            '__all__ = ["f"]\n'
            "@require(x=positive_int())\n"
            "def f(x):\n"
            "    return x\n"
        )
        assert lint_source(source, path="core/fake.py") == []

    def test_rule_scoped_to_entry_packages(self):
        source = '__all__ = ["f"]\n\n\ndef f(x):\n    return x\n'
        assert lint_source(source, path="obs/fake.py") == []

    def test_non_exported_functions_exempt(self):
        source = (
            '__all__ = ["f"]\n\n\ndef f(x):\n    return x\n\n\n'
            "def helper(x):\n    return x\n"
        )
        assert rule_ids(lint_source(source, path="core/fake.py")) == ["R013"]

    def test_exported_class_init_flagged(self):
        source = (
            '__all__ = ["State"]\n\n\n'
            "class State:\n"
            "    def __init__(self, series):\n"
            "        self.series = series\n"
        )
        diags = lint_source(source, path="matrixprofile/fake.py")
        assert rule_ids(diags) == ["R013"]
        assert "State.__init__" in diags[0].message

    def test_exported_class_with_contracted_init_clean(self):
        source = (
            "from repro.lint.contracts import positive_int, require\n"
            '__all__ = ["State"]\n'
            "class State:\n"
            "    @require(length=positive_int())\n"
            "    def __init__(self, length):\n"
            "        self.length = length\n"
        )
        assert lint_source(source, path="matrixprofile/fake.py") == []

    def test_exported_class_without_explicit_init_exempt(self):
        source = (
            '__all__ = ["Record"]\n\n\n'
            "class Record:\n"
            "    kind = 'plain'\n"
        )
        assert lint_source(source, path="matrixprofile/fake.py") == []

    def test_non_exported_class_init_exempt(self):
        source = (
            "from repro.lint.contracts import positive_int, require\n"
            '__all__ = ["f"]\n'
            "@require(x=positive_int())\n"
            "def f(x):\n"
            "    return x\n"
            "class _Helper:\n"
            "    def __init__(self, x):\n"
            "        self.x = x\n"
        )
        assert lint_source(source, path="matrixprofile/fake.py") == []
