"""Differential harness: every registered engine against the brute oracle.

One parameterized sweep proves all engines agree on the same fixtures:
profile values within 1e-8 of ``brute``, and neighbor indices that agree
up to tie-breaking (the reported neighbor must realize the reported
distance).  The parallel engine additionally runs at several worker
counts, where it must be *bitwise* identical to serial STOMP.
"""

import pathlib
import subprocess
import sys

import numpy as np
import pytest

from repro import obs
from repro.distance.znorm import znormalized_distance
from repro.exceptions import InvalidParameterError
from repro.matrixprofile.brute import brute_force_matrix_profile
from repro.matrixprofile.parallel import parallel_stomp
from repro.matrixprofile.registry import (
    compute_with,
    engine_names,
    get_engine,
)
from repro.matrixprofile.stomp import stomp

ATOL = 1e-8


def _random_walk():
    rng = np.random.default_rng(42)
    return rng.standard_normal(500).cumsum(), 32


def _planted_motif():
    rng = np.random.default_rng(7)
    series = rng.standard_normal(500) * 0.3
    pattern = np.sin(np.linspace(0.0, 4.0 * np.pi, 40))
    series[70:110] += pattern * 3.0
    series[300:340] += pattern * 3.0
    return series, 24


def _constant_segment():
    rng = np.random.default_rng(13)
    series = rng.standard_normal(400).cumsum()
    series[150:210] = series[150]
    return series, 20


def _short_series():
    rng = np.random.default_rng(5)
    return rng.standard_normal(20), 10


FIXTURES = {
    "random-walk": _random_walk,
    "planted-motif": _planted_motif,
    "constant-segment": _constant_segment,
    "short": _short_series,
}


@pytest.fixture(scope="module")
def oracles():
    """Brute-force profiles of every fixture, computed once."""
    cache = {}
    for name, make in FIXTURES.items():
        series, length = make()
        cache[name] = (series, length, brute_force_matrix_profile(series, length))
    return cache


def _check_indices_realize_distances(series, length, mp, reference, atol):
    """Indices may differ from brute only where distances tie.

    The engine's reported neighbor must reproduce the engine's reported
    distance (and hence the oracle's, already checked) when the pair is
    re-measured from scratch.
    """
    for i, j in enumerate(mp.index):
        if j < 0:
            assert not np.isfinite(mp.profile[i])
            continue
        d = znormalized_distance(
            series[i : i + length], series[j : j + length]
        )
        assert d == pytest.approx(float(reference.profile[i]), abs=atol), (
            f"index {j} of position {i} does not realize the oracle distance"
        )


@pytest.mark.parametrize("fixture", sorted(FIXTURES))
@pytest.mark.parametrize("engine", sorted(engine_names()))
def test_engine_matches_brute(engine, fixture, oracles):
    series, length, reference = oracles[fixture]
    mp = compute_with(engine, series, length, n_jobs=1)
    finite = np.isfinite(reference.profile)
    assert np.array_equal(np.isfinite(mp.profile), finite)
    np.testing.assert_allclose(
        mp.profile[finite],
        reference.profile[finite],
        atol=ATOL,
        rtol=0.0,
        err_msg=f"{engine} diverges from brute on {fixture}",
    )
    _check_indices_realize_distances(series, length, mp, reference, 1e-6)


@pytest.mark.parametrize("fixture", sorted(FIXTURES))
@pytest.mark.parametrize("n_jobs", [1, 2, 4])
def test_parallel_engine_bitwise_vs_serial(n_jobs, fixture, oracles):
    series, length, _ = oracles[fixture]
    serial = stomp(series, length)
    mp = parallel_stomp(series, length, n_jobs=n_jobs)
    np.testing.assert_array_equal(
        mp.profile, serial.profile,
        err_msg=f"parallel-stomp n_jobs={n_jobs} not bitwise on {fixture}",
    )
    np.testing.assert_array_equal(mp.index, serial.index)


@pytest.mark.parametrize("fixture", sorted(FIXTURES))
@pytest.mark.parametrize("engine", sorted(engine_names()))
def test_tracing_does_not_change_results(engine, fixture, oracles):
    """Observability is read-only: traced output is bitwise untraced."""
    series, length, _ = oracles[fixture]
    with obs.tracing(False):
        plain = compute_with(engine, series, length, n_jobs=1)
    with obs.tracing(True):
        obs.reset()
        traced = compute_with(engine, series, length, n_jobs=1)
        recorded = obs.snapshot()["counters"]
    obs.reset()
    np.testing.assert_array_equal(
        traced.profile, plain.profile,
        err_msg=f"{engine} profile changed under tracing on {fixture}",
    )
    np.testing.assert_array_equal(traced.index, plain.index)
    if engine != "brute":  # brute is deliberately uninstrumented
        assert recorded, f"{engine} recorded no counters while traced"


def test_tracing_does_not_change_parallel_workers(oracles):
    series, length, _ = oracles["random-walk"]
    serial = stomp(series, length)
    with obs.tracing(True):
        obs.reset()
        mp = parallel_stomp(series, length, n_jobs=2, n_chunks=4)
        pids = obs.snapshot()["pids"]
    obs.reset()
    obs.disable()
    np.testing.assert_array_equal(mp.profile, serial.profile)
    np.testing.assert_array_equal(mp.index, serial.index)
    assert len(pids) >= 2, "worker snapshots were not merged"


def test_repro_trace_env_does_not_change_results(tmp_path):
    """REPRO_TRACE=1 in a fresh process leaves the profile bitwise equal."""
    script = (
        "import numpy as np\n"
        "from repro.matrixprofile.stomp import stomp\n"
        "rng = np.random.default_rng(11)\n"
        "series = rng.standard_normal(300).cumsum()\n"
        "mp = stomp(series, 20)\n"
        "np.save(r'{out}', np.vstack([mp.profile, mp.index.astype(float)]))\n"
    )
    results = {}
    for label, env_value in (("off", "0"), ("on", "1")):
        out = tmp_path / f"{label}.npy"
        code = subprocess.run(
            [sys.executable, "-c", script.format(out=out)],
            env={
                "PYTHONPATH": str(
                    pathlib.Path(__file__).resolve().parent.parent / "src"
                ),
                "PATH": "/usr/bin:/bin",
                "REPRO_TRACE": env_value,
            },
            capture_output=True,
            text=True,
        )
        assert code.returncode == 0, code.stderr
        results[label] = np.load(out)
    np.testing.assert_array_equal(results["on"], results["off"])


def test_registry_lists_all_engines():
    names = engine_names()
    for expected in ("stomp", "stamp", "scrimp", "brute", "parallel-stomp"):
        assert expected in names
    assert get_engine("parallel-stomp").parallel
    assert not get_engine("stomp").parallel


def test_registry_rejects_unknown_engine():
    with pytest.raises(InvalidParameterError, match="parallel-stomp"):
        get_engine("no-such-engine")


class TestNJobsIgnored:
    """Serial engines warn once per engine when n_jobs is passed, and the
    ``engine.n_jobs_ignored`` counter fires on every occurrence."""

    @pytest.fixture(autouse=True)
    def _fresh_warning_state(self):
        from repro.matrixprofile.registry import _N_JOBS_WARNED

        saved = set(_N_JOBS_WARNED)
        _N_JOBS_WARNED.clear()
        yield
        _N_JOBS_WARNED.clear()
        _N_JOBS_WARNED.update(saved)

    def test_warns_once_per_engine_counts_every_time(self, oracles):
        import warnings as warnings_mod

        series, length, _ = oracles["short"]
        with obs.tracing(True):
            obs.reset()
            with warnings_mod.catch_warnings(record=True) as caught:
                warnings_mod.simplefilter("always")
                compute_with("stomp", series, length, n_jobs=4)
                compute_with("stomp", series, length, n_jobs=2)
                compute_with("brute", series, length, n_jobs=4)
            counters = obs.snapshot()["counters"]
        obs.reset()
        obs.disable()
        messages = [str(w.message) for w in caught if w.category is RuntimeWarning]
        assert len(messages) == 2, messages
        assert any("'stomp'" in m and "n_jobs=4" in m for m in messages)
        assert any("'brute'" in m for m in messages)
        assert counters["engine.n_jobs_ignored"] == 3

    @pytest.mark.parametrize("n_jobs", [None, 1])
    def test_serial_values_do_not_warn(self, n_jobs, oracles):
        import warnings as warnings_mod

        series, length, _ = oracles["short"]
        with obs.tracing(True):
            obs.reset()
            with warnings_mod.catch_warnings(record=True) as caught:
                warnings_mod.simplefilter("always")
                compute_with("stomp", series, length, n_jobs=n_jobs)
            counters = obs.snapshot()["counters"]
        obs.reset()
        obs.disable()
        assert [w for w in caught if w.category is RuntimeWarning] == []
        assert counters.get("engine.n_jobs_ignored", 0) == 0

    def test_parallel_engine_accepts_n_jobs_silently(self, oracles):
        import warnings as warnings_mod

        series, length, _ = oracles["short"]
        with warnings_mod.catch_warnings(record=True) as caught:
            warnings_mod.simplefilter("always")
            compute_with("parallel-stomp", series, length, n_jobs=2)
        assert [w for w in caught if w.category is RuntimeWarning] == []
