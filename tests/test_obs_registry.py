"""Tests for :mod:`repro.obs.registry` — the obs name catalog.

The registry is the single source of truth for every counter, gauge,
and span name the package emits; lint rule R010 checks emission sites
against it statically.  These tests cover the lookup API (exact names,
``{placeholder}`` templates, kinds) and close the loop dynamically: a
traced workload may only emit names the registry declares.
"""

import numpy as np
import pytest

from repro import obs
from repro.core.compute_mp import compute_matrix_profile
from repro.core.valmod import Valmod
from repro.exceptions import InvalidParameterError
from repro.matrixprofile.stomp import stomp
from repro.obs import registry


class TestLookup:
    def test_exact_names_are_declared(self):
        assert registry.is_declared("engine.rows", "counter")
        assert registry.is_declared("kernel.block_rows", "gauge")
        assert registry.is_declared("engine.stomp", "span")

    def test_kind_is_part_of_the_key(self):
        assert not registry.is_declared("engine.rows", "gauge")
        assert not registry.is_declared("kernel.block_rows", "counter")
        # kind=None searches all three tables
        assert registry.is_declared("engine.rows")

    def test_template_matches_concrete_expansion(self):
        assert registry.is_declared("submp.profiles.valid.l48", "counter")
        assert registry.is_declared("valmod.lengths.lb-pruned", "counter")

    def test_template_matches_structurally(self):
        # a template name matches its declaration regardless of the
        # placeholder's spelling
        assert registry.is_declared("submp.profiles.valid.l{length}", "counter")
        assert registry.is_declared("submp.profiles.valid.l{}", "counter")

    def test_placeholder_is_a_dot_free_fragment(self):
        assert not registry.is_declared("submp.profiles.valid.l4.8", "counter")

    def test_unknown_names_are_not_declared(self):
        assert not registry.is_declared("engine.rowz", "counter")
        assert not registry.is_declared("submp.profiles.totall", "counter")

    def test_unknown_kind_raises(self):
        with pytest.raises(InvalidParameterError):
            registry.is_declared("engine.rows", "bogus")

    def test_declared_passes_through_or_raises(self):
        assert registry.declared("engine.rows") == "engine.rows"
        with pytest.raises(InvalidParameterError):
            registry.declared("engine.rowz")

    def test_describe(self):
        assert registry.describe("engine.rows", "counter")
        # a concrete expansion inherits the template's description
        assert registry.describe("submp.profiles.valid.l48") == registry.describe(
            "submp.profiles.valid.l{length}"
        )
        assert registry.describe("no.such.name") is None

    def test_normalize_template(self):
        assert registry.normalize_template("a.l{length}.b{x}") == "a.l{}.b{}"
        assert registry.normalize_template("plain.name") == "plain.name"

    def test_all_names_sorted_and_filtered(self):
        counters = registry.all_names("counter")
        assert "engine.rows" in counters
        assert counters == sorted(counters)
        assert "engine.stomp" not in counters
        assert len(registry.all_names()) == len(counters) + len(
            registry.all_names("gauge")
        ) + len(registry.all_names("span"))

    def test_undeclared_filters(self):
        assert registry.undeclared(
            ["engine.rows", "zzz", "submp.profiles.valid.l9"], "counter"
        ) == ["zzz"]

    def test_format_catalog_lists_every_name(self):
        text = registry.format_catalog()
        for name in registry.all_names():
            assert f"`{name}`" in text


class TestRuntimeCoverage:
    """The dynamic half of the R010 contract.

    Everything a real traced workload records must be declared; this
    catches emission paths static analysis could miss (names built at
    runtime, worker-side span paths).
    """

    @pytest.fixture(autouse=True)
    def clean_tracer(self):
        obs.disable()
        obs.reset()
        yield
        obs.disable()
        obs.reset()

    def _assert_snapshot_declared(self):
        snap = obs.snapshot()
        assert registry.undeclared(snap["counters"], "counter") == []
        assert registry.undeclared(snap["gauges"], "gauge") == []
        # spans record under "/"-joined nesting paths; every segment of
        # a path was a name passed to obs.span
        segments = {seg for path in snap["spans"] for seg in path.split("/")}
        assert registry.undeclared(segments, "span") == []
        return snap

    def test_stomp_workload_emits_only_declared_names(self):
        series = np.random.default_rng(0).standard_normal(300)
        obs.enable()
        stomp(series, 16)
        compute_matrix_profile(series, 16, p=4)
        snap = self._assert_snapshot_declared()
        assert snap["counters"]  # the workload actually traced something

    def test_valmod_workload_emits_only_declared_names(self):
        # VALMOD drives the listDP store, sub-MP certification, and the
        # per-length counter families — the template-heavy part of the
        # catalog.
        series = np.random.default_rng(1).standard_normal(240)
        obs.enable()
        Valmod(series, 16, 24, p=8).run()
        snap = self._assert_snapshot_declared()
        assert any(name.startswith("submp.") for name in snap["counters"])
