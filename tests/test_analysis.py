"""Tests for the analysis instruments (Figures 2-4, 9-11, Table 1)."""

import numpy as np
import pytest

from repro.analysis.distances import distance_histogram, pairwise_distance_sample
from repro.analysis.normalization_study import (
    correction_spreads,
    normalization_comparison,
)
from repro.analysis.pruning import pruning_margins
from repro.analysis.ranking_study import (
    distance_rank_agreement,
    lower_bound_rank_agreement,
)
from repro.analysis.stats import dataset_statistics
from repro.analysis.tlb import average_tlb_per_profile
from repro.datasets import load_dataset, trace_pair_at_lengths
from repro.exceptions import InvalidParameterError


class TestDatasetStatistics:
    def test_values(self):
        stats = dataset_statistics(np.array([1.0, 2.0, 3.0, 4.0]))
        assert stats.minimum == 1.0
        assert stats.maximum == 4.0
        assert stats.mean == 2.5
        assert stats.n_points == 4

    def test_row_renders(self):
        row = dataset_statistics(np.arange(10.0)).row()
        assert "10" in row


class TestTLB:
    def test_range_and_shape(self, structured_series):
        tlb = average_tlb_per_profile(
            structured_series, base_length=30, target_length=40, n_profiles=16
        )
        assert tlb.shape == (16,)
        valid = tlb[np.isfinite(tlb)]
        assert np.all(valid >= 0.0)
        assert np.all(valid <= 1.0 + 1e-9)

    def test_k_zero_tlb_is_tighter_than_k_large(self, structured_series):
        near = average_tlb_per_profile(structured_series, 30, 31, n_profiles=12)
        far = average_tlb_per_profile(structured_series, 30, 70, n_profiles=12)
        assert np.nanmean(near) >= np.nanmean(far) - 0.05

    def test_validation(self, structured_series):
        with pytest.raises(InvalidParameterError):
            average_tlb_per_profile(structured_series, 40, 30)

    def test_random_sampling(self, structured_series):
        tlb = average_tlb_per_profile(
            structured_series, 30, 40, n_profiles=8,
            rng=np.random.default_rng(0),
        )
        assert tlb.shape == (8,)


class TestPruningMargins:
    def test_shape(self, structured_series):
        margins = pruning_margins(structured_series, 40, 44, p=10)
        assert margins.shape == (structured_series.size - 44 + 1,)
        assert np.isfinite(margins).all()

    def test_structured_mostly_positive(self, structured_series):
        """Figure 9's claim for the easy dataset: most profiles have a
        positive pruning margin."""
        margins = pruning_margins(structured_series, 40, 44, p=20)
        assert (margins > 0).mean() > 0.5

    def test_validation(self, structured_series):
        with pytest.raises(InvalidParameterError):
            pruning_margins(structured_series, 40, 40)


class TestDistanceDistribution:
    def test_sample_positive_finite(self, structured_series):
        sample = pairwise_distance_sample(structured_series, 40, n_profiles=10)
        assert sample.size > 0
        assert np.isfinite(sample).all()
        assert (sample >= 0).all()

    def test_histogram(self, structured_series):
        sample = pairwise_distance_sample(structured_series, 40, n_profiles=10)
        counts, edges = distance_histogram(sample, n_bins=12)
        assert counts.sum() == sample.size
        assert edges.size == 13

    def test_histogram_rejects_empty(self):
        with pytest.raises(InvalidParameterError):
            distance_histogram(np.array([np.inf]))

    def test_emg_tail_heavier_than_ecg(self):
        """The Figure 11 contrast, on the synthetic stand-ins."""
        emg = load_dataset("EMG", 4000, seed=0)
        ecg = load_dataset("ECG", 4000, seed=0)
        s_emg = pairwise_distance_sample(emg, 256, n_profiles=12)
        s_ecg = pairwise_distance_sample(ecg, 256, n_profiles=12)

        def tail_ratio(s):
            return np.quantile(s, 0.99) / np.median(s)

        assert tail_ratio(s_emg) > tail_ratio(s_ecg) * 0.9


class TestNormalizationStudy:
    def test_sqrt_correction_flattest(self):
        rows = normalization_comparison(
            trace_pair_at_lengths([100, 150, 200, 250, 300])
        )
        spreads = correction_spreads(rows)
        assert spreads["sqrt(1/l)"] < spreads["none"]
        assert spreads["sqrt(1/l)"] < spreads["divide-by-l"]

    def test_raw_biased_short_divl_biased_long(self):
        rows = normalization_comparison(trace_pair_at_lengths([100, 400]))
        assert rows[0].raw < rows[1].raw
        assert rows[0].divided_by_length > rows[1].divided_by_length

    def test_mismatched_pair_rejected(self):
        with pytest.raises(InvalidParameterError):
            normalization_comparison([(np.zeros(10), np.zeros(12))])

    def test_empty_rows_rejected(self):
        with pytest.raises(InvalidParameterError):
            correction_spreads([])


class TestRankingStudy:
    def test_lb_rank_agreement_is_exactly_one(self, structured_series):
        for k2 in (1, 10, 25):
            assert lower_bound_rank_agreement(
                structured_series, 40, 25, 0, k2, top=8
            ) == 1.0

    def test_distance_rank_agreement_bounded(self, structured_series):
        agreement = distance_rank_agreement(structured_series, 40, 25, 10, top=8)
        assert 0.0 <= agreement <= 1.0

    def test_distance_ranks_churn_on_noise(self, noise_series):
        """Figure 4 (top): on noisy data the true-distance ranking does
        NOT survive large length changes."""
        agreement = distance_rank_agreement(noise_series, 40, 16, 24, top=10)
        assert agreement < 1.0

    def test_validation(self, structured_series):
        with pytest.raises(InvalidParameterError):
            distance_rank_agreement(structured_series, 40, 25, 0)
        with pytest.raises(InvalidParameterError):
            lower_bound_rank_agreement(structured_series, 40, 25, -1, 2)
