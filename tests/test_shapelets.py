"""Tests for the shapelet subsystem."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import InvalidParameterError, NotComputedError
from repro.shapelets import (
    ShapeletClassifier,
    best_split,
    find_shapelets,
    information_gain,
    motif_candidates,
    series_to_shapelet_distance,
    window_candidates,
)
from repro.shapelets.evaluation import entropy


def make_two_class_data(n_per_class=6, n=300, seed=0):
    """Class A carries a smooth bump, class B a sharp sawtooth."""
    rng = np.random.default_rng(seed)
    pattern_a = np.hanning(40) * 3.0
    x = np.arange(40)
    pattern_b = 3.0 * ((x % 10) / 5.0 - 1.0)
    series, labels = [], []
    for _ in range(n_per_class):
        for pattern, label in ((pattern_a, "A"), (pattern_b, "B")):
            t = rng.standard_normal(n) * 0.5
            pos = int(rng.integers(0, n - 40))
            t[pos : pos + 40] += pattern
            series.append(t)
            labels.append(label)
    return series, labels


class TestEvaluation:
    def test_entropy_bounds(self):
        assert entropy([]) == 0.0
        assert entropy(["a", "a"]) == 0.0
        assert entropy(["a", "b"]) == pytest.approx(1.0)
        assert entropy(["a", "b", "c", "d"]) == pytest.approx(2.0)

    def test_information_gain_perfect_split(self):
        distances = np.array([0.1, 0.2, 0.9, 1.0])
        labels = ["A", "A", "B", "B"]
        assert information_gain(distances, labels, 0.5) == pytest.approx(1.0)

    def test_information_gain_useless_split(self):
        distances = np.array([0.1, 0.2, 0.3, 0.4])
        labels = ["A", "B", "A", "B"]
        assert information_gain(distances, labels, 0.25) == pytest.approx(0.0)

    def test_degenerate_split_is_zero(self):
        assert information_gain(np.array([1.0, 2.0]), ["A", "B"], 5.0) == 0.0

    def test_mismatched_lengths(self):
        with pytest.raises(InvalidParameterError):
            information_gain(np.array([1.0]), ["A", "B"], 0.5)

    def test_best_split_finds_perfect_threshold(self):
        distances = np.array([0.1, 0.3, 0.8, 0.9])
        labels = ["A", "A", "B", "B"]
        gain, threshold, margin = best_split(distances, labels)
        assert gain == pytest.approx(1.0)
        assert 0.3 < threshold < 0.8
        assert margin == pytest.approx(0.5)

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_best_split_gain_in_entropy_bounds(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(4, 20))
        distances = rng.random(n)
        labels = list(rng.integers(0, 2, n))
        gain, _, _ = best_split(distances, labels)
        assert 0.0 <= gain <= entropy(labels) + 1e-12


class TestDistanceFeature:
    def test_exact_match_is_zero(self, rng):
        t = rng.standard_normal(200)
        shapelet = t[50:90]
        assert series_to_shapelet_distance(t, shapelet) == pytest.approx(
            0.0, abs=1e-6
        )

    def test_equal_length_series(self, rng):
        t = rng.standard_normal(40)
        d = series_to_shapelet_distance(t, t[::-1].copy())
        assert d > 0

    def test_shapelet_longer_than_series(self, rng):
        with pytest.raises(InvalidParameterError):
            series_to_shapelet_distance(rng.standard_normal(10),
                                        rng.standard_normal(20))


class TestCandidates:
    def test_window_candidates_counts(self, rng):
        series = [rng.standard_normal(50), rng.standard_normal(60)]
        candidates = window_candidates(series, [20], stride=10)
        # series 0: starts 0,10,20,30 ; series 1: starts 0,10,20,30,40
        assert len(candidates) == 9
        assert all(values.size == 20 for values, _, _ in candidates)

    def test_window_stride_validation(self, rng):
        with pytest.raises(InvalidParameterError):
            window_candidates([rng.standard_normal(50)], [10], stride=0)

    def test_motif_candidates_come_from_series(self):
        series, _ = make_two_class_data(n_per_class=1)
        candidates = motif_candidates(series, 36, 44, per_series=2)
        assert candidates
        for values, source, start in candidates:
            np.testing.assert_array_equal(
                values, series[source][start : start + values.size]
            )


class TestDiscovery:
    def test_finds_discriminative_shapelet(self):
        series, labels = make_two_class_data()
        shapelets = find_shapelets(series, labels, 36, 44, k=2, strategy="motif")
        assert shapelets
        assert shapelets[0].gain > 0.5

    def test_window_strategy_works(self):
        series, labels = make_two_class_data(n_per_class=3, n=150)
        shapelets = find_shapelets(
            series, labels, 36, 40, k=1, strategy="window", stride=20
        )
        assert shapelets[0].gain > 0.4

    def test_single_class_rejected(self):
        series, _ = make_two_class_data(n_per_class=2)
        with pytest.raises(InvalidParameterError):
            find_shapelets(series, ["A"] * len(series), 36, 44)

    def test_unknown_strategy(self):
        series, labels = make_two_class_data(n_per_class=2)
        with pytest.raises(InvalidParameterError):
            find_shapelets(series, labels, 36, 44, strategy="magic")

    def test_shapelets_sorted_by_gain(self):
        series, labels = make_two_class_data()
        shapelets = find_shapelets(series, labels, 36, 44, k=3)
        gains = [s.gain for s in shapelets]
        assert gains == sorted(gains, reverse=True)


class TestClassifier:
    def test_end_to_end_accuracy(self):
        train_series, train_labels = make_two_class_data(n_per_class=5, seed=1)
        test_series, test_labels = make_two_class_data(n_per_class=3, seed=2)
        clf = ShapeletClassifier(36, 44, n_shapelets=2).fit(
            train_series, train_labels
        )
        assert clf.score(test_series, test_labels) >= 0.8

    def test_transform_shape(self):
        series, labels = make_two_class_data(n_per_class=2)
        clf = ShapeletClassifier(36, 44, n_shapelets=2).fit(series, labels)
        features = clf.transform(series[:3])
        assert features.shape == (3, len(clf.shapelets_))

    def test_predict_before_fit(self):
        clf = ShapeletClassifier(36, 44)
        with pytest.raises(NotComputedError):
            clf.predict([np.zeros(100)])

    def test_bad_n_shapelets(self):
        with pytest.raises(InvalidParameterError):
            ShapeletClassifier(36, 44, n_shapelets=0)
