"""Tests for the QUICK MOTIF baseline."""

import time

import numpy as np
import pytest

from repro.baselines.quick_motif import (
    QuickMotifStats,
    quick_motif,
    quick_motif_single,
)
from repro.baselines.stomp_range import stomp_range
from repro.exceptions import BudgetExceededError, InvalidParameterError
from repro.matrixprofile import stomp


class TestExactness:
    @pytest.mark.parametrize("length", [16, 24])
    def test_single_length_noise(self, noise_series, length):
        pair = quick_motif_single(noise_series, length, width=8, leaf_capacity=16)
        reference = stomp(noise_series, length).motif_pair()
        assert pair.distance == pytest.approx(reference.distance, abs=1e-6)

    def test_single_length_structured(self, structured_series):
        pair = quick_motif_single(structured_series, 40, width=8, leaf_capacity=16)
        reference = stomp(structured_series, 40).motif_pair()
        assert pair.distance == pytest.approx(reference.distance, abs=1e-6)

    def test_range_matches_stomp(self, planted):
        mine = quick_motif(planted.series, 36, 44, width=8, leaf_capacity=16)
        reference = stomp_range(planted.series, 36, 44)
        for length in reference:
            assert mine[length].distance == pytest.approx(
                reference[length].distance, abs=1e-6
            )

    @pytest.mark.parametrize("width", [2, 4, 16])
    def test_exact_for_any_paa_width(self, noise_series, width):
        pair = quick_motif_single(noise_series, 16, width=width, leaf_capacity=16)
        reference = stomp(noise_series, 16).motif_pair()
        assert pair.distance == pytest.approx(reference.distance, abs=1e-6)

    @pytest.mark.parametrize("capacity", [4, 64, 1000])
    def test_exact_for_any_leaf_capacity(self, noise_series, capacity):
        pair = quick_motif_single(noise_series, 16, leaf_capacity=capacity)
        reference = stomp(noise_series, 16).motif_pair()
        assert pair.distance == pytest.approx(reference.distance, abs=1e-6)

    def test_width_wider_than_length_is_clamped(self, noise_series):
        pair = quick_motif_single(noise_series, 10, width=64)
        reference = stomp(noise_series, 10).motif_pair()
        assert pair.distance == pytest.approx(reference.distance, abs=1e-6)


class TestSeeding:
    def test_initial_pair_used(self, structured_series):
        exact = stomp(structured_series, 40).motif_pair()
        pair = quick_motif_single(
            structured_series, 40, initial_pair=(exact.a, exact.b)
        )
        assert pair.distance == pytest.approx(exact.distance, abs=1e-6)

    def test_trivial_initial_pair_ignored(self, noise_series):
        pair = quick_motif_single(noise_series, 16, initial_pair=(10, 12))
        reference = stomp(noise_series, 16).motif_pair()
        assert pair.distance == pytest.approx(reference.distance, abs=1e-6)


class TestBehaviour:
    def test_stats_recorded(self, noise_series):
        stats = QuickMotifStats()
        quick_motif(noise_series, 16, 18, stats=stats)
        assert stats.lengths == [16, 17, 18]
        assert all(c >= 0 for c in stats.page_pairs_opened)

    def test_deadline_raises(self, noise_series):
        with pytest.raises(BudgetExceededError):
            quick_motif(noise_series, 16, 40, deadline=time.perf_counter() - 1.0)

    def test_reversed_range(self, noise_series):
        with pytest.raises(InvalidParameterError):
            quick_motif(noise_series, 20, 16)

    def test_pruning_beats_exhaustive_on_easy_data(self, structured_series):
        """On smooth data the best-first search opens only a fraction of
        all page pairs (on white noise it degrades to exhaustive — the
        sensitivity the paper reports for QUICK MOTIF)."""
        stats = QuickMotifStats()
        quick_motif_single(structured_series, 40, leaf_capacity=8, stats=stats)
        n_subs = structured_series.size - 40 + 1
        n_leaves = int(np.ceil(n_subs / 8))
        all_pairs = n_leaves + n_leaves * (n_leaves - 1) // 2
        assert stats.page_pairs_opened[0] < 0.5 * all_pairs
