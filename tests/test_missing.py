"""Tests for the missing-data admissible distance (Eq. 2's provenance)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.distance.missing import (
    admissible_distance,
    has_missing,
    missing_aware_profile,
)
from repro.distance.znorm import znormalized_distance
from repro.exceptions import InvalidParameterError, InvalidSeriesError


class TestAdmissibleDistance:
    def test_no_gaps_equals_exact(self, rng):
        x = rng.standard_normal(30)
        y = rng.standard_normal(30)
        assert admissible_distance(x, y) == pytest.approx(
            znormalized_distance(x, y), abs=1e-9
        )

    @given(st.integers(0, 2**31 - 1), st.integers(8, 40), st.integers(1, 6))
    @settings(max_examples=60, deadline=None)
    def test_admissible_under_any_imputation(self, seed, length, n_gaps):
        """The core property: the bound never exceeds the distance of
        ANY imputation of the gaps."""
        rng = np.random.default_rng(seed)
        x = rng.standard_normal(length)
        y = rng.standard_normal(length)
        gappy = y.copy()
        gaps = rng.choice(length, size=min(n_gaps, length - 3), replace=False)
        gappy[gaps] = np.nan
        bound = admissible_distance(x, gappy)
        for _ in range(5):
            imputed = gappy.copy()
            imputed[np.isnan(imputed)] = rng.standard_normal(int(np.isnan(imputed).sum())) * 3
            true = znormalized_distance(x, imputed)
            assert bound <= true + 1e-6

    def test_double_gaps_vacuous(self, rng):
        x = rng.standard_normal(20)
        y = rng.standard_normal(20)
        x[3] = np.nan
        y[7] = np.nan
        assert admissible_distance(x, y) == 0.0

    def test_symmetric_in_which_side_is_gappy(self, rng):
        x = rng.standard_normal(20)
        y = rng.standard_normal(20)
        y_gappy = y.copy()
        y_gappy[5] = np.nan
        d1 = admissible_distance(x, y_gappy)
        d2 = admissible_distance(y_gappy, x)
        assert d1 == pytest.approx(d2, abs=1e-12)

    def test_mostly_missing_vacuous(self):
        x = np.arange(10.0)
        y = np.full(10, np.nan)
        y[0] = 1.0
        assert admissible_distance(x, y) == 0.0

    def test_shape_mismatch(self, rng):
        with pytest.raises(InvalidParameterError):
            admissible_distance(rng.standard_normal(5), rng.standard_normal(6))

    def test_too_short(self):
        with pytest.raises(InvalidSeriesError):
            admissible_distance(np.array([1.0]), np.array([2.0]))


class TestMissingAwareProfile:
    def test_exact_where_complete(self, rng):
        t = rng.standard_normal(120)
        t[60] = np.nan
        bounds, exact = missing_aware_profile(t, 0, 15)
        assert exact[0]  # query complete, window 0 == query (no gaps)
        from repro.distance.profile import naive_distance_profile

        clean_region = np.where(exact)[0]
        assert clean_region.size > 0
        for j in clean_region[:10]:
            true = znormalized_distance(t[0:15], t[j : j + 15])
            assert bounds[j] == pytest.approx(true, abs=1e-6)

    def test_gappy_windows_flagged(self, rng):
        t = rng.standard_normal(100)
        t[50] = np.nan
        bounds, exact = missing_aware_profile(t, 0, 10)
        assert not exact[45]  # window [45, 55) covers the gap
        assert exact[10]

    def test_motif_recovered_despite_gap(self):
        """Prune-with-bounds workflow: the true motif (complete windows)
        still has the smallest bound."""
        rng = np.random.default_rng(4)
        pattern = np.sin(np.linspace(0, 4 * np.pi, 30))
        t = rng.standard_normal(300)
        t[40:70] += 6 * pattern
        t[200:230] += 6 * pattern
        t[120] = np.nan
        bounds, exact = missing_aware_profile(t, 40, 30)
        bounds[25:55] = np.inf  # exclusion zone around the query
        best = int(np.argmin(np.where(exact, bounds, np.inf)))
        assert abs(best - 200) <= 10

    def test_validation(self, rng):
        t = rng.standard_normal(50)
        with pytest.raises(InvalidParameterError):
            missing_aware_profile(t, 48, 10)


def test_has_missing(rng):
    t = rng.standard_normal(10)
    assert not has_missing(t)
    t[3] = np.nan
    assert has_missing(t)
