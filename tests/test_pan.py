"""Tests for the pan (all-lengths) matrix profile."""

import numpy as np
import pytest

from repro.core.pan import compute_pan_matrix_profile
from repro.core.valmod import Valmod
from repro.exceptions import InvalidParameterError
from repro.matrixprofile import stomp


@pytest.fixture(scope="module")
def pan_pair(structured_series):
    valmod_pan = compute_pan_matrix_profile(
        structured_series, 40, 50, strategy="valmod", p=20
    )
    exact_pan = compute_pan_matrix_profile(structured_series, 40, 50, strategy="exact")
    return valmod_pan, exact_pan


class TestExactness:
    def test_strategies_agree(self, pan_pair):
        valmod_pan, exact_pan = pan_pair
        fin_v = np.isfinite(valmod_pan.distances)
        fin_e = np.isfinite(exact_pan.distances)
        np.testing.assert_array_equal(fin_v, fin_e)
        np.testing.assert_allclose(
            valmod_pan.distances[fin_v], exact_pan.distances[fin_e], atol=1e-6
        )

    def test_each_row_is_the_true_matrix_profile(
        self, pan_pair, structured_series
    ):
        valmod_pan, _ = pan_pair
        for length in (40, 45, 50):
            mp = valmod_pan.profile_for(length)
            reference = stomp(structured_series, length)
            np.testing.assert_allclose(
                mp.profile[np.isfinite(mp.profile)],
                reference.profile[np.isfinite(reference.profile)],
                atol=1e-6,
            )

    def test_motif_pairs_match_valmod(self, pan_pair, structured_series):
        valmod_pan, _ = pan_pair
        run = Valmod(structured_series, 40, 50, p=20).run()
        pan_pairs = valmod_pan.motif_pairs()
        for length, pair in run.motif_pairs.items():
            assert pan_pairs[length].distance == pytest.approx(
                pair.distance, abs=1e-6
            )

    def test_noise_series_still_exact(self, noise_series):
        valmod_pan = compute_pan_matrix_profile(
            noise_series, 16, 20, strategy="valmod", p=3
        )
        exact_pan = compute_pan_matrix_profile(noise_series, 16, 20, strategy="exact")
        fin = np.isfinite(exact_pan.distances)
        np.testing.assert_allclose(
            valmod_pan.distances[fin], exact_pan.distances[fin], atol=1e-6
        )


class TestQueries:
    def test_valmp_arrays_match_valmp(self, pan_pair, structured_series):
        valmod_pan, _ = pan_pair
        norm, lengths = valmod_pan.valmp_arrays()
        # The pan VALMP is the exhaustive one: compare against the
        # stomp_range-built VALMP.
        from repro.baselines.stomp_range import stomp_range
        from repro.core.valmp import VALMP

        exact = VALMP(structured_series.size - 40 + 1)
        stomp_range(structured_series, 40, 50, valmp=exact)
        updated = exact.updated
        np.testing.assert_allclose(
            norm[updated], exact.norm_distances[updated], atol=1e-6
        )

    def test_discords_non_overlapping(self, pan_pair):
        valmod_pan, _ = pan_pair
        discords = valmod_pan.discords(k=3)
        assert discords
        for i, a in enumerate(discords):
            for b in discords[i + 1 :]:
                assert a.start != b.start

    def test_growth_curve(self, pan_pair):
        valmod_pan, _ = pan_pair
        curve = valmod_pan.growth_curve(10)
        assert curve.shape == (11,)
        assert np.isfinite(curve).all()

    def test_growth_curve_validation(self, pan_pair):
        valmod_pan, _ = pan_pair
        with pytest.raises(InvalidParameterError):
            valmod_pan.growth_curve(10**9)

    def test_profile_for_validation(self, pan_pair):
        valmod_pan, _ = pan_pair
        with pytest.raises(InvalidParameterError):
            valmod_pan.profile_for(39)

    def test_discords_validation(self, pan_pair):
        valmod_pan, _ = pan_pair
        with pytest.raises(InvalidParameterError):
            valmod_pan.discords(k=0)


class TestValidation:
    def test_bad_strategy(self, noise_series):
        with pytest.raises(InvalidParameterError):
            compute_pan_matrix_profile(noise_series, 16, 20, strategy="magic")

    def test_reversed_range(self, noise_series):
        with pytest.raises(InvalidParameterError):
            compute_pan_matrix_profile(noise_series, 20, 16)

    def test_build_metadata(self, pan_pair):
        valmod_pan, exact_pan = pan_pair
        assert valmod_pan.build_seconds > 0
        assert exact_pan.repaired_rows == 0
