"""Edge-path tests for the timed runner and sweep plumbing."""

import numpy as np
import pytest

from repro.harness.experiments import sweep_motif_range, sweep_series_size
from repro.harness.runner import RunOutcome, run_algorithm
from tests.test_harness import TINY


class TestRunOutcome:
    def test_cell_formats(self):
        assert RunOutcome("X", 1.234, dnf=False).cell() == "1.23s"
        assert RunOutcome("X", 9.0, dnf=True).cell() == "DNF"


class TestDnfPaths:
    @pytest.mark.parametrize("name", ["MOEN", "QUICKMOTIF"])
    def test_baselines_honor_budget(self, structured_series, name):
        outcome = run_algorithm(
            name, structured_series, 30, 60, timeout_seconds=0.0
        )
        assert outcome.dnf
        assert outcome.motif_pairs is None

    def test_valmod_never_dnfs(self, structured_series):
        outcome = run_algorithm(
            "VALMOD", structured_series, 30, 34, timeout_seconds=0.0
        )
        assert not outcome.dnf


class TestSweepPlumbing:
    def test_range_sweep_row_count(self):
        result = sweep_motif_range(
            datasets=["EMG"], algorithms=["VALMOD"], grid=TINY
        )
        assert len(result.rows) == len(TINY.motif_ranges)
        assert result.x_name == "range"

    def test_size_sweep_row_count(self):
        result = sweep_series_size(
            datasets=["ASTRO"], algorithms=["VALMOD"], grid=TINY
        )
        assert [row["x"] for row in result.rows] == TINY.series_sizes

    def test_custom_loader_receives_calls(self):
        calls = []

        def loader(name, n, seed=0):
            calls.append((name, n))
            return np.random.default_rng(seed).standard_normal(n)

        sweep_series_size(
            datasets=["ECG"], algorithms=["VALMOD"], grid=TINY, loader=loader
        )
        assert [n for _, n in calls] == TINY.series_sizes
        assert all(name == "ECG" for name, _ in calls)

    def test_missing_algorithm_column_renders_dash(self):
        result = sweep_motif_range(
            datasets=["EEG"], algorithms=["VALMOD"], grid=TINY
        )
        result.algorithms.append("GHOST")
        table = result.table_rows()
        assert all(row[-1] == "-" for row in table)
