"""Test package for the VALMOD reproduction.

Exists so cross-test imports (``from tests.conftest import ...``) work
under both ``pytest`` and ``python -m pytest`` invocations.
"""
