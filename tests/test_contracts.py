"""Tests for the repro.lint.contracts runtime-contract layer.

Contracts are compiled out at decoration time unless ``REPRO_CONTRACTS=1``
(or the ``_enabled`` override is passed).  The tests exercise both modes
explicitly via ``_enabled`` so they are independent of the environment
the suite happens to run under, plus one subprocess test for the env
knob itself.
"""

import os
import subprocess
import sys

import numpy as np
import pytest

from repro.exceptions import (
    ContractViolationError,
    InvalidSeriesError,
    ReproError,
    SeriesContractViolationError,
)
from repro.lint.contracts import (
    CONTRACTS_ENV,
    Contract,
    ensure,
    finite_array,
    float64_array,
    instance_of,
    int_at_least,
    no_nan_profile,
    number_in,
    optional,
    positive_int,
    require,
    series_like,
)


class TestPredicates:
    def test_series_like_accepts_finite_1d(self):
        assert series_like()(np.arange(8.0)) is None
        assert series_like()([1.0, 2.0, 3.0]) is None

    def test_series_like_rejects_bad_inputs(self):
        assert series_like()(np.zeros((3, 3))) is not None  # 2-D
        assert series_like(min_length=10)(np.arange(4.0)) is not None
        assert series_like()(np.array([1.0, np.nan])) is not None
        assert series_like()(object()) is not None

    def test_float64_array(self):
        assert float64_array()(np.zeros(3)) is None
        assert float64_array()(np.zeros(3, dtype=np.float32)) is not None
        assert float64_array(ndim=2)(np.zeros(3)) is not None
        assert float64_array()([1.0]) is not None  # not an ndarray

    def test_finite_array(self):
        assert finite_array()(np.ones(4)) is None
        assert finite_array()(np.array([1.0, np.inf])) is not None

    def test_positive_int(self):
        assert positive_int()(3) is None
        assert positive_int()(np.int64(3)) is None
        assert positive_int()(0) is not None
        assert positive_int()(-1) is not None
        assert positive_int()(2.0) is not None
        assert positive_int()(True) is not None  # bools are not lengths

    def test_int_at_least(self):
        assert int_at_least(0)(0) is None
        assert int_at_least(0)(-1) is not None

    def test_number_in_open_and_closed(self):
        assert number_in(0.0, 1.0)(0.0) is None
        assert number_in(0.0, 1.0, open_low=True)(0.0) is not None
        assert number_in(0.0, 1.0, open_high=True)(1.0) is not None
        assert number_in(0.0, 1.0)(2.0) is not None
        assert number_in(0.0, 1.0)("x") is not None

    def test_instance_of(self):
        assert instance_of(str)("hi") is None
        assert instance_of(str, int)(3) is None
        assert instance_of(str)(3) is not None

    def test_optional_wraps(self):
        pred = optional(positive_int())
        assert pred(None) is None
        assert pred(4) is None
        assert pred(-4) is not None

    def test_no_nan_profile(self):
        class Result:
            profile = np.array([1.0, np.inf])  # inf is fine (anytime runs)

        assert no_nan_profile(Result()) is None
        Result.profile = np.array([1.0, np.nan])
        assert no_nan_profile(Result()) is not None
        assert no_nan_profile(object()) is not None  # no .profile at all


class TestDisabledMode:
    def test_require_disabled_returns_function_unchanged(self):
        def fn(x):
            return x

        assert require(_enabled=False, x=positive_int())(fn) is fn

    def test_ensure_disabled_returns_function_unchanged(self):
        def fn():
            return None

        assert ensure(no_nan_profile, _enabled=False)(fn) is fn

    def test_disabled_contract_never_evaluates(self):
        @require(_enabled=False, x=positive_int())
        def fn(x):
            return x

        assert fn(-5) == -5  # violation passes through silently


class TestEnabledMode:
    def test_valid_arguments_pass_through(self):
        @require(_enabled=True, length=positive_int())
        def fn(series, length):
            return length * 2

        assert fn(None, 4) == 8

    def test_violation_raises_with_parameter_name(self):
        @require(_enabled=True, length=positive_int())
        def fn(series, length):
            return length

        with pytest.raises(ContractViolationError, match="'length'"):
            fn(None, -3)

    def test_violation_names_function(self):
        @require(_enabled=True, x=positive_int())
        def my_entry_point(x):
            return x

        with pytest.raises(ContractViolationError, match="my_entry_point"):
            my_entry_point(0)

    def test_checks_keyword_and_default_arguments(self):
        @require(_enabled=True, stride=optional(positive_int()))
        def fn(series, stride=None):
            return stride

        assert fn(None) is None
        assert fn(None, stride=3) == 3
        with pytest.raises(ContractViolationError):
            fn(None, stride=0)

    def test_ensure_checks_result(self):
        class Bad:
            profile = np.array([np.nan])

        @ensure(no_nan_profile, _enabled=True)
        def fn():
            return Bad()

        with pytest.raises(ContractViolationError, match="result"):
            fn()

    def test_unknown_parameter_name_fails_at_decoration(self):
        with pytest.raises(ContractViolationError, match="unknown parameter"):

            @require(_enabled=True, nope=positive_int())
            def fn(x):
                return x

    def test_contract_error_is_catchable_as_repro_and_type_error(self):
        @require(_enabled=True, x=positive_int())
        def fn(x):
            return x

        with pytest.raises(ReproError):
            fn(-1)
        with pytest.raises(TypeError):
            fn(-1)


class TestErrorClasses:
    def test_series_violation_is_an_invalid_series_error(self):
        # The ordinary validation for a bad series raises
        # InvalidSeriesError; the contract must be catchable the same way.
        @require(_enabled=True, series=series_like())
        def fn(series):
            return series

        with pytest.raises(InvalidSeriesError):
            fn([1.0])
        with pytest.raises(ContractViolationError):
            fn([1.0])

    def test_series_predicates_carry_the_series_error_class(self):
        for factory in (series_like, float64_array, finite_array):
            pred = factory()
            assert isinstance(pred, Contract)
            assert pred.error_class is SeriesContractViolationError

    def test_optional_propagates_the_error_class(self):
        pred = optional(series_like())
        assert isinstance(pred, Contract)
        assert pred.error_class is SeriesContractViolationError
        assert pred(None) is None

    def test_scalar_violation_is_not_a_series_error(self):
        @require(_enabled=True, length=positive_int())
        def fn(length):
            return length

        with pytest.raises(ContractViolationError) as excinfo:
            fn(-3)
        assert not isinstance(excinfo.value, InvalidSeriesError)


class TestEnvironmentKnob:
    @pytest.mark.parametrize("knob,expect_raise", [("1", True), ("", False)])
    def test_env_var_gates_public_api(self, knob, expect_raise):
        # stomp(series, length=-3) violates the positive_int contract on
        # the public API; with contracts off it must fail some other way
        # (the normal validation path), never with ContractViolationError.
        code = (
            "import numpy as np\n"
            "from repro.exceptions import ContractViolationError\n"
            "from repro.matrixprofile.stomp import stomp\n"
            "try:\n"
            "    stomp(np.arange(32.0), -3)\n"
            "except ContractViolationError:\n"
            "    print('CONTRACT')\n"
            "except Exception:\n"
            "    print('OTHER')\n"
        )
        env = dict(os.environ)
        env[CONTRACTS_ENV] = knob
        proc = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            env=env,
        )
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout.strip() == ("CONTRACT" if expect_raise else "OTHER")
