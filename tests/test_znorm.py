"""Unit and property tests for the z-normalized distance kernel."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.distance.znorm import (
    CONSTANT_EPS,
    as_series,
    distance_to_pearson,
    pearson_to_distance,
    znormalize,
    znormalized_distance,
)
from repro.exceptions import InvalidParameterError, InvalidSeriesError


def finite_arrays(min_size=4, max_size=64):
    # Values bounded to keep z-normalization numerically well-posed:
    # the kernel's contract (documented) is float64 data of sane scale.
    return st.lists(
        st.floats(min_value=-1e3, max_value=1e3, allow_nan=False),
        min_size=min_size,
        max_size=max_size,
    ).map(lambda xs: np.asarray(xs, dtype=np.float64))


class TestAsSeries:
    def test_accepts_list(self):
        out = as_series([1.0, 2.0, 3.0])
        assert out.dtype == np.float64
        assert out.shape == (3,)

    def test_rejects_2d(self):
        with pytest.raises(InvalidSeriesError):
            as_series(np.zeros((3, 3)))

    def test_rejects_short(self):
        with pytest.raises(InvalidSeriesError):
            as_series([1.0], min_length=2)

    def test_rejects_nan(self):
        with pytest.raises(InvalidSeriesError):
            as_series([1.0, np.nan, 2.0])

    def test_rejects_inf(self):
        with pytest.raises(InvalidSeriesError):
            as_series([1.0, np.inf, 2.0])

    def test_min_length_boundary(self):
        assert as_series([1.0, 2.0], min_length=2).size == 2


class TestZnormalize:
    def test_zero_mean_unit_std(self):
        out = znormalize([1.0, 2.0, 3.0, 4.0])
        assert abs(out.mean()) < 1e-12
        assert abs(out.std() - 1.0) < 1e-12

    def test_constant_maps_to_zeros(self):
        np.testing.assert_array_equal(znormalize([5.0] * 8), np.zeros(8))

    def test_rejects_empty(self):
        with pytest.raises(InvalidSeriesError):
            znormalize([])

    def test_scale_invariance(self):
        x = np.array([1.0, -2.0, 0.5, 3.0])
        np.testing.assert_allclose(znormalize(x), znormalize(3.7 * x + 11.0))


class TestZnormalizedDistance:
    def test_identical_is_zero(self):
        x = np.array([1.0, 2.0, 0.5, -1.0])
        assert znormalized_distance(x, x) == pytest.approx(0.0, abs=1e-9)

    def test_affine_copies_are_zero(self):
        x = np.array([1.0, 2.0, 0.5, -1.0, 4.0])
        assert znormalized_distance(x, -0.0 + 2.5 * x + 3.0) == pytest.approx(
            0.0, abs=1e-9
        )

    def test_symmetry(self):
        x = np.array([1.0, 2.0, 0.5, -1.0])
        y = np.array([0.0, 1.0, -1.0, 2.0])
        assert znormalized_distance(x, y) == pytest.approx(
            znormalized_distance(y, x)
        )

    def test_length_mismatch_raises(self):
        with pytest.raises(InvalidParameterError):
            znormalized_distance([1.0, 2.0], [1.0, 2.0, 3.0])

    def test_both_constant(self):
        assert znormalized_distance([3.0] * 5, [8.0] * 5) == 0.0

    def test_one_constant(self):
        d = znormalized_distance([3.0] * 5, [1.0, 2.0, 3.0, 4.0, 5.0])
        assert d == pytest.approx(math.sqrt(5))

    def test_anticorrelated_maximum(self):
        x = np.array([1.0, -1.0, 1.0, -1.0])
        d = znormalized_distance(x, -x)
        assert d == pytest.approx(math.sqrt(2 * 4 * 2))  # q = -1

    @given(finite_arrays(), st.floats(0.1, 100.0), st.floats(-50.0, 50.0))
    @settings(max_examples=50, deadline=None)
    def test_affine_invariance_property(self, x, scale, shift):
        y = np.random.default_rng(0).permutation(x)
        d1 = znormalized_distance(x, y)
        d2 = znormalized_distance(scale * x + shift, y)
        assert d1 == pytest.approx(d2, abs=1e-4)

    @given(finite_arrays())
    @settings(max_examples=50, deadline=None)
    def test_nonnegative_property(self, x):
        y = x[::-1].copy()
        assert znormalized_distance(x, y) >= 0.0

    @given(finite_arrays(min_size=8, max_size=32))
    @settings(max_examples=30, deadline=None)
    def test_upper_bound_property(self, x):
        """z-normalized vectors live on a sphere of radius sqrt(l):
        the distance can never exceed 2 sqrt(l)."""
        y = np.roll(x, 3)
        assert znormalized_distance(x, y) <= 2.0 * math.sqrt(x.size) + 1e-9


class TestPearsonConversions:
    def test_round_trip(self):
        for q in (-1.0, -0.5, 0.0, 0.3, 0.99, 1.0):
            d = pearson_to_distance(q, 32)
            assert distance_to_pearson(d, 32) == pytest.approx(q, abs=1e-12)

    def test_perfect_correlation_zero_distance(self):
        assert pearson_to_distance(1.0, 100) == 0.0

    def test_clipping(self):
        assert pearson_to_distance(1.5, 10) == 0.0

    def test_rejects_bad_length(self):
        with pytest.raises(InvalidParameterError):
            pearson_to_distance(0.5, 0)
        with pytest.raises(InvalidParameterError):
            distance_to_pearson(1.0, -1)

    def test_matches_naive_distance(self):
        rng = np.random.default_rng(5)
        x = rng.standard_normal(40)
        y = rng.standard_normal(40)
        q = float(np.corrcoef(x, y)[0, 1])
        assert pearson_to_distance(q, 40) == pytest.approx(
            znormalized_distance(x, y), abs=1e-8
        )


def test_constant_eps_is_tiny():
    assert 0 < CONSTANT_EPS < 1e-10
