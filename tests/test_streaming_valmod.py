"""The streaming-vs-batch differential wall for ``StreamingValmod``.

The correctness anchor of the streaming engine: after *any* sequence of
appends (and evictions), the materialized motifs and discords must be
bitwise identical to a fresh batch ``valmod`` / ``find_discords_pruned``
run on the exact retained window — for every registered engine.  The
eager bound layer may only change *when* work happens, never *what* the
answers are.

``Discord`` compares on normalized distance alone (it is an ordered
dataclass), so every discord comparison here goes through full tuples —
(length, start, distance, normalized_distance) — to catch positional
drift that distance equality would mask.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import obs
from repro.core.discords import find_discords
from repro.core.discords_variable import find_discords_pruned
from repro.core.valmod import valmod
from repro.exceptions import InvalidParameterError, WindowTooSmallError
from repro.matrixprofile.registry import engine_names
from repro.matrixprofile.streaming_valmod import StreamingValmod

L_MIN, L_MAX, P, K = 12, 18, 10, 2


@pytest.fixture()
def feed():
    rng = np.random.default_rng(11)
    series = np.cumsum(rng.standard_normal(320))
    series[40:58] += 4.0 * np.sin(np.linspace(0, 2 * np.pi, 18))
    series[200:218] += 4.0 * np.sin(np.linspace(0, 2 * np.pi, 18))
    return series


def discord_tuples(discords):
    return [
        (d.length, d.start, d.distance, d.normalized_distance) for d in discords
    ]


def assert_wall(stream, window, engine="stomp"):
    """Motifs and discords of ``stream`` == fresh batch runs on ``window``."""
    result = stream.motifs()
    batch = valmod(window, stream.l_min, stream.l_max, p=stream.p)
    assert result.motif_pairs == batch.motif_pairs
    np.testing.assert_array_equal(result.valmp.distances, batch.valmp.distances)
    np.testing.assert_array_equal(result.valmp.indices, batch.valmp.indices)
    np.testing.assert_array_equal(result.valmp.lengths, batch.valmp.lengths)

    streamed = stream.discords()
    pruned = find_discords_pruned(
        window, stream.l_min, stream.l_max, k=stream.k_discords,
        engine=engine, p=stream.p,
    )
    assert discord_tuples(streamed) == discord_tuples(pruned)


class TestDifferentialWall:
    @pytest.mark.parametrize("engine", sorted(engine_names()))
    def test_every_engine_bitwise(self, feed, engine):
        short = feed[:260]  # keeps the brute engine affordable
        stream = StreamingValmod(
            short[:230], L_MIN, L_MAX, p=P, k_discords=K, engine=engine
        )
        stream.extend(short[230:])
        assert_wall(stream, short, engine=engine)

    def test_pruned_matches_full_oracle(self, feed):
        stream = StreamingValmod(feed[:280], L_MIN, L_MAX, p=P, k_discords=K)
        stream.extend(feed[280:])
        oracle = find_discords(feed, L_MIN, L_MAX, k=K)
        assert discord_tuples(stream.discords()) == discord_tuples(oracle)

    def test_single_append(self, feed):
        stream = StreamingValmod(feed[:-1], L_MIN, L_MAX, p=P, k_discords=K)
        stream.append(float(feed[-1]))
        assert_wall(stream, feed)

    def test_warm_rematerialization_stays_exact(self, feed):
        stream = StreamingValmod(feed[:280], L_MIN, L_MAX, p=P, k_discords=K)
        stream.extend(feed[280:300])
        assert_wall(stream, feed[:300])  # cold materialization
        stream.extend(feed[300:])
        assert_wall(stream, feed)  # warm: bounds prune, values identical

    def test_eviction_wall(self, feed):
        stream = StreamingValmod(
            feed[:200], L_MIN, L_MAX, p=P, k_discords=K, max_points=240
        )
        stream.extend(feed[200:])
        assert stream.window_start == 80
        assert len(stream) == 240
        assert_wall(stream, feed[80:].copy())

    def test_constant_shelf_appends(self, feed):
        stream = StreamingValmod(feed[:280], L_MIN, L_MAX, p=P, k_discords=K)
        shelf = np.full(2 * L_MAX, 7.25)
        stream.extend(shelf)
        assert_wall(stream, np.concatenate([feed[:280], shelf]))

    def test_high_magnitude_appends(self, feed):
        rng = np.random.default_rng(3)
        spike = 1e8 + rng.standard_normal(40)
        stream = StreamingValmod(feed[:280], L_MIN, L_MAX, p=P, k_discords=K)
        stream.extend(spike)
        assert_wall(stream, np.concatenate([feed[:280], spike]))


class TestHypothesisWall:
    @given(
        seed=st.integers(0, 2**31 - 1),
        init=st.integers(120, 170),
        appends=st.integers(1, 35),
        l_min=st.integers(8, 12),
        span=st.integers(0, 3),
        windowed=st.booleans(),
    )
    @settings(max_examples=8, deadline=None)
    def test_random_append_sequences(
        self, seed, init, appends, l_min, span, windowed
    ):
        rng = np.random.default_rng(seed)
        series = np.cumsum(rng.standard_normal(init + appends))
        l_max = l_min + span
        max_points = max(2 * l_max, init - 10) if windowed else None
        stream = StreamingValmod(
            series[:init], l_min, l_max, p=5, k_discords=2,
            max_points=max_points,
        )
        stream.extend(series[init:])
        window = series[stream.window_start :].copy()
        assert_wall(stream, window)


class TestValidationAndEdges:
    def test_window_too_small_at_construction(self, feed):
        with pytest.raises(WindowTooSmallError):
            StreamingValmod(feed, L_MIN, L_MAX, max_points=2 * L_MAX - 1)

    def test_resize_below_floor_rejected(self, feed):
        stream = StreamingValmod(feed[:280], L_MIN, L_MAX, p=P)
        with pytest.raises(WindowTooSmallError):
            stream.resize(2 * L_MAX - 1)
        # the failed resize must not have mutated the window
        assert len(stream) == 280 and stream.max_points is None

    def test_resize_shrinks_and_stays_exact(self, feed):
        stream = StreamingValmod(feed, L_MIN, L_MAX, p=P, k_discords=K)
        stream.resize(260)
        assert len(stream) == 260 and stream.window_start == 60
        assert_wall(stream, feed[60:].copy())

    def test_invalid_parameters(self, feed):
        with pytest.raises(InvalidParameterError):
            StreamingValmod(feed, 1, L_MAX)
        with pytest.raises(InvalidParameterError):
            StreamingValmod(feed, L_MAX, L_MIN)
        with pytest.raises(InvalidParameterError):
            StreamingValmod(feed[:30], L_MIN, 16)  # l_max > n // 2
        stream = StreamingValmod(feed[:280], L_MIN, L_MAX)
        with pytest.raises(InvalidParameterError):
            stream.append(float("inf"))

    def test_extend_empty_is_strict_noop(self, feed):
        stream = StreamingValmod(feed, L_MIN, L_MAX, p=P, k_discords=K)
        first = stream.motifs()
        stream.extend([])
        # no version bump: the materialization cache must survive
        assert stream.motifs() is first

    def test_total_points_and_series(self, feed):
        stream = StreamingValmod(feed[:300], L_MIN, L_MAX, max_points=300)
        stream.extend(feed[300:])
        assert stream.total_points == feed.size
        assert len(stream) == 300
        np.testing.assert_array_equal(stream.series(), feed[20:])


class TestEventsAndObs:
    def test_motif_improved_fires_for_planted_pattern(self, feed):
        rng = np.random.default_rng(5)
        series = np.cumsum(rng.standard_normal(300))
        stream = StreamingValmod(series, L_MIN, L_MAX, p=P)
        stream.motifs()  # establish a finite baseline
        stream.drain_events()
        pattern = series[100 : 100 + L_MAX].copy()  # replay an old window
        stream.extend(pattern)
        kinds = {event.kind for event in stream.drain_events()}
        assert "motif-improved" in kinds
        assert stream.drain_events() == []  # drained

    def test_window_evicted_event(self, feed):
        stream = StreamingValmod(feed[:300], L_MIN, L_MAX, max_points=300)
        stream.append(0.5)
        events = stream.drain_events()
        assert [event.kind for event in events].count("window-evicted") == 1
        assert events[-1].at_point == stream.total_points

    def test_changed_events_on_materialization(self, feed):
        stream = StreamingValmod(feed[:250], L_MIN, L_MAX, p=P, k_discords=K)
        stream.motifs()
        stream.discords()
        stream.drain_events()
        # Replay an exact earlier window: the new trailing subsequence
        # ties it at distance zero, forcing a new best pair; the spike
        # afterwards plants a fresh top discord.
        stream.extend(feed[100 : 100 + 2 * L_MAX])
        stream.extend(feed[250:] + 40.0)
        stream.motifs()
        stream.discords()
        kinds = {event.kind for event in stream.drain_events()}
        assert "motifs-changed" in kinds
        assert "discords-changed" in kinds

    def test_obs_accounting(self, feed):
        with obs.tracing(True):
            obs.reset()
            stream = StreamingValmod(
                feed[:250], L_MIN, L_MAX, p=P, k_discords=K, max_points=280
            )
            stream.extend(feed[250:])
            stream.motifs()
            stream.discords()
            counters = dict(obs.snapshot()["counters"])
        assert counters["streaming.appends"] == feed.size - 250
        assert counters["streaming.lengths.updated"] > 0
        assert counters["streaming.entries.evicted"] == feed.size - 280
        # the discord materialization reuses the batch accounting
        # identity: every swept length is either pruned or recomputed
        assert (
            counters["discords.profiles.pruned"]
            + counters["discords.profiles.recomputed"]
            == counters["discords.lengths.swept"]
        )

    def test_warm_materialization_prunes(self, feed):
        with obs.tracing(True):
            obs.reset()
            stream = StreamingValmod(feed[:300], L_MIN, L_MAX, p=P, k_discords=K)
            stream.discords()
            cold = dict(obs.snapshot()["counters"])
            stream.extend(feed[300:])
            stream.discords()
            counters = dict(obs.snapshot()["counters"])
        warm_recomputed = (
            counters["discords.profiles.recomputed"]
            - cold["discords.profiles.recomputed"]
        )
        warm_pruned = (
            counters["discords.profiles.pruned"]
            - cold["discords.profiles.pruned"]
        )
        # the maintained bounds must rule out most lengths on a warm pass
        assert warm_pruned > warm_recomputed

    def test_bound_invariant_vs_batch_profiles(self, feed):
        """Maintained bounds are true upper bounds of the exact maxima."""
        from repro.matrixprofile.registry import compute_with

        stream = StreamingValmod(feed[:280], L_MIN, L_MAX, p=P, k_discords=K)
        stream.discords()
        stream.extend(feed[280:])
        window = stream.series()
        for length, bound in stream.discord_bounds().items():
            if not math.isfinite(bound):
                continue
            profile = compute_with("stomp", window, length).profile
            if not np.isfinite(profile).all():
                continue
            exact = float(profile.max()) / math.sqrt(length)
            assert bound * (1.0 + 1e-6) >= exact
