"""Tests for the shared result types."""

import math

import pytest

from repro.types import Motif, MotifPair, MotifSet, length_normalized


class TestLengthNormalized:
    def test_formula(self):
        assert length_normalized(4.0, 16) == pytest.approx(1.0)

    def test_invalid_length(self):
        with pytest.raises(ValueError):
            length_normalized(1.0, 0)

    def test_identity_at_length_one(self):
        assert length_normalized(3.0, 1) == 3.0


class TestMotif:
    def test_end(self):
        assert Motif(10, 5).end == 15

    def test_overlaps(self):
        assert Motif(0, 10).overlaps(Motif(5, 10))
        assert not Motif(0, 10).overlaps(Motif(10, 10))
        assert Motif(5, 10).overlaps(Motif(0, 10))

    def test_frozen(self):
        with pytest.raises(AttributeError):
            Motif(0, 1).start = 5


class TestMotifPair:
    def test_build_canonical_order(self):
        pair = MotifPair.build(20, 5, 10, 2.0)
        assert (pair.a, pair.b) == (5, 20)

    def test_build_computes_normalization(self):
        pair = MotifPair.build(0, 10, 25, 5.0)
        assert pair.normalized_distance == pytest.approx(5.0 * math.sqrt(1 / 25))

    def test_ordering_by_normalized_distance(self):
        shorter = MotifPair.build(0, 10, 4, 1.0)   # norm 0.5
        longer = MotifPair.build(0, 30, 16, 1.6)   # norm 0.4
        assert longer < shorter
        assert sorted([shorter, longer])[0] is longer

    def test_motifs_property(self):
        pair = MotifPair.build(3, 9, 4, 1.0)
        a, b = pair.motifs
        assert (a.start, a.length) == (3, 4)
        assert (b.start, b.length) == (9, 4)

    def test_is_trivial(self):
        pair = MotifPair.build(10, 12, 8, 1.0)
        assert pair.is_trivial(exclusion=4)
        assert not pair.is_trivial(exclusion=2)


class TestMotifSet:
    def test_frequency_and_length(self):
        pair = MotifPair.build(0, 50, 10, 1.0)
        ms = MotifSet(pair=pair, radius=3.0, members=(0, 50, 100))
        assert ms.frequency == 3
        assert ms.length == 10

    def test_member_motifs(self):
        pair = MotifPair.build(0, 50, 10, 1.0)
        ms = MotifSet(pair=pair, radius=3.0, members=(0, 50))
        motifs = ms.member_motifs()
        assert all(m.length == 10 for m in motifs)
        assert [m.start for m in motifs] == [0, 50]
