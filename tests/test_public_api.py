"""Public-API contract: everything advertised is importable and sane.

These tests protect the packaging surface: ``repro.__all__`` names must
resolve, the subpackage ``__all__`` lists must be consistent, and the
headline one-liners from the README must work verbatim.
"""

import importlib

import numpy as np
import pytest

import repro

SUBPACKAGES = [
    "repro.distance",
    "repro.matrixprofile",
    "repro.core",
    "repro.features",
    "repro.kernels",
    "repro.baselines",
    "repro.datasets",
    "repro.analysis",
    "repro.harness",
    "repro.shapelets",
    "repro.multidim",
    "repro.multiseries",
    "repro.io",
    "repro.viz",
    "repro.cli",
    "repro.types",
    "repro.exceptions",
]


def test_top_level_all_resolves():
    for name in repro.__all__:
        assert hasattr(repro, name), f"repro.__all__ advertises missing {name!r}"


@pytest.mark.parametrize("module_name", SUBPACKAGES)
def test_subpackage_all_resolves(module_name):
    module = importlib.import_module(module_name)
    for name in getattr(module, "__all__", []):
        assert hasattr(module, name), (
            f"{module_name}.__all__ advertises missing {name!r}"
        )


def test_version_present():
    parts = repro.__version__.split(".")
    assert len(parts) == 3
    assert all(p.isdigit() for p in parts)


def test_readme_quickstart_verbatim():
    rng = np.random.default_rng(7)
    series = rng.standard_normal(2000)
    result = repro.valmod(series, l_min=64, l_max=70)
    best = result.best_motif_pair()
    assert 64 <= best.length <= 70
    sets = repro.find_motif_sets(series, 64, 70, k=3, radius_factor=3.0)
    assert isinstance(sets, list)


def test_docstrings_on_public_callables():
    for name in repro.__all__:
        obj = getattr(repro, name)
        if callable(obj) and not isinstance(obj, type(repro)):
            assert obj.__doc__, f"public callable {name} lacks a docstring"


def test_exceptions_exported_consistently():
    assert repro.InvalidParameterError is repro.exceptions.InvalidParameterError
    assert issubclass(repro.InvalidSeriesError, repro.ReproError)


def test_features_facade_exported_at_top_level():
    # The façade symbols the ISSUE-7 refactor added to the surface.
    for name in (
        "SeriesFeatures",
        "AnnotationSummary",
        "FeatureStore",
        "extract_features",
        "extract_features_batch",
        "feature_cache_key",
    ):
        assert name in repro.__all__, name
        assert getattr(repro, name) is getattr(repro.features, name)


def test_features_subpackage_surface_pinned():
    # The exact public surface of repro.features: additions require a
    # deliberate edit here, removals break downstream imports loudly.
    assert sorted(repro.features.__all__) == [
        "AnnotationSummary",
        "DEFAULT_INCLUDE",
        "DEFAULT_MAX_ENTRIES",
        "DEFAULT_P",
        "FeatureStore",
        "INCLUDE_OPTIONS",
        "STORE_ENV",
        "STORE_SCHEMA_VERSION",
        "SeriesFeatures",
        "StreamingFeatures",
        "extract_features",
        "extract_features_batch",
        "feature_cache_key",
        "features_from_dict",
        "features_to_dict",
        "motif_set_summary",
        "resolve_store",
        "save_features_json",
    ]


def test_readme_features_quickstart_verbatim():
    rng = np.random.default_rng(7)
    series = rng.standard_normal(1500)
    features = repro.extract_features(series, l_min=24, l_max=28, p=10)
    assert 24 <= features.best_motif.length <= 28
    assert set(features.pairs_by_length()) == set(range(24, 29))
    assert len(features.motif_set_counts) == len(features.motif_sets)
    assert features.discords and features.discord_distance is not None
