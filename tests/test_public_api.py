"""Public-API contract: everything advertised is importable and sane.

These tests protect the packaging surface: ``repro.__all__`` names must
resolve, the subpackage ``__all__`` lists must be consistent, and the
headline one-liners from the README must work verbatim.
"""

import importlib

import numpy as np
import pytest

import repro

SUBPACKAGES = [
    "repro.distance",
    "repro.matrixprofile",
    "repro.core",
    "repro.baselines",
    "repro.datasets",
    "repro.analysis",
    "repro.harness",
    "repro.shapelets",
    "repro.multidim",
    "repro.multiseries",
    "repro.io",
    "repro.viz",
    "repro.cli",
    "repro.types",
    "repro.exceptions",
]


def test_top_level_all_resolves():
    for name in repro.__all__:
        assert hasattr(repro, name), f"repro.__all__ advertises missing {name!r}"


@pytest.mark.parametrize("module_name", SUBPACKAGES)
def test_subpackage_all_resolves(module_name):
    module = importlib.import_module(module_name)
    for name in getattr(module, "__all__", []):
        assert hasattr(module, name), (
            f"{module_name}.__all__ advertises missing {name!r}"
        )


def test_version_present():
    parts = repro.__version__.split(".")
    assert len(parts) == 3
    assert all(p.isdigit() for p in parts)


def test_readme_quickstart_verbatim():
    rng = np.random.default_rng(7)
    series = rng.standard_normal(2000)
    result = repro.valmod(series, l_min=64, l_max=70)
    best = result.best_motif_pair()
    assert 64 <= best.length <= 70
    sets = repro.find_motif_sets(series, 64, 70, k=3, radius_factor=3.0)
    assert isinstance(sets, list)


def test_docstrings_on_public_callables():
    for name in repro.__all__:
        obj = getattr(repro, name)
        if callable(obj) and not isinstance(obj, type(repro)):
            assert obj.__doc__, f"public callable {name} lacks a docstring"


def test_exceptions_exported_consistently():
    assert repro.InvalidParameterError is repro.exceptions.InvalidParameterError
    assert issubclass(repro.InvalidSeriesError, repro.ReproError)
