"""The content-addressed feature store: zero recompute, never a crash.

Three properties under test:

1. **Warm-path proof** — a second identical ``extract_features`` call
   hits the store (``features.cache.hits == 1``) and does zero kernel
   work (``engine.cells == 0``), returning bitwise-identical features.
2. **Key sensitivity** — any input that can change the result bits
   (series values, dtype, params, engine, kernel schema, package
   version) changes the key, so stale entries can never be served.
3. **Corruption tolerance** — every way an on-disk entry can rot
   (truncation, garbage, tampered payload, foreign schema, empty file)
   degrades to a counted miss, never an exception.
"""

import json
import os
import tempfile

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.features.store as store_module
from repro import obs
from repro.exceptions import InvalidParameterError
from repro.features import (
    STORE_ENV,
    FeatureStore,
    extract_features,
    feature_cache_key,
    features_to_dict,
    resolve_store,
)


@pytest.fixture
def series():
    return np.random.default_rng(42).standard_normal(300)


def traced_extract(series, store, **kwargs):
    """One extraction under tracing; returns (features, counters)."""
    kwargs.setdefault("p", 10)
    kwargs.setdefault("include", ())
    with obs.tracing(True):
        obs.reset()
        features = extract_features(series, 16, 18, store=store, **kwargs)
        counters = dict(obs.get_tracer().counters())
    return features, counters


#: every counter that implies distance-kernel work was done.  The warm
#: path must show zero across all of them, not just ``engine.cells``
#: (VALMOD's own sweep counts ``compute_mp.rows``; the engine registry
#: counts ``engine.cells``).
KERNEL_COUNTERS = ("engine.cells", "compute_mp.rows", "listdp.entries_advanced")


def kernel_work(counters):
    return sum(counters.get(name, 0) for name in KERNEL_COUNTERS)


class TestWarmPath:
    def test_cold_then_warm_skips_the_kernel(self, series, tmp_path):
        store = FeatureStore(tmp_path / "cache")
        cold, cold_counters = traced_extract(
            series, store, include=("discords",)
        )
        assert cold_counters.get("features.cache.misses", 0) == 1
        assert cold_counters.get("features.cache.hits", 0) == 0
        assert cold_counters.get("engine.cells", 0) > 0

        warm, warm_counters = traced_extract(
            series, store, include=("discords",)
        )
        assert warm_counters.get("features.cache.hits", 0) == 1
        assert warm_counters.get("features.cache.misses", 0) == 0
        assert warm_counters.get("engine.cells", 0) == 0
        assert kernel_work(warm_counters) == 0
        assert features_to_dict(warm) == features_to_dict(cold)

    def test_warm_features_equal_uncached(self, series, tmp_path):
        store = FeatureStore(tmp_path / "cache")
        traced_extract(series, store)
        warm, _ = traced_extract(series, store)
        uncached, _ = traced_extract(series, False)
        assert features_to_dict(warm) == features_to_dict(uncached)

    def test_all_families_round_trip_through_store(self, series, tmp_path):
        store = FeatureStore(tmp_path / "cache")
        include = ("motif_sets", "discords", "discords_variable", "chains",
                   "segmentation", "annotation")
        cold, _ = traced_extract(series, store, include=include)
        warm, counters = traced_extract(series, store, include=include)
        assert counters.get("features.cache.hits", 0) == 1
        assert kernel_work(counters) == 0
        assert features_to_dict(warm) == features_to_dict(cold)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    def test_cached_bits_equal_uncached_bits(self, seed):
        # hypothesis + function-scoped tmp_path don't mix; make our own.
        series = np.random.default_rng(seed).standard_normal(180)
        with tempfile.TemporaryDirectory() as root:
            store = FeatureStore(root)
            kwargs = dict(p=10, include=("motif_sets",))
            cold = extract_features(series, 8, 11, store=store, **kwargs)
            warm = extract_features(series, 8, 11, store=store, **kwargs)
            bare = extract_features(series, 8, 11, store=False, **kwargs)
            assert features_to_dict(warm) == features_to_dict(cold)
            assert features_to_dict(warm) == features_to_dict(bare)


class TestKeySensitivity:
    PARAMS = {"l_min": 16, "l_max": 18, "p": 10, "engine": "stomp"}

    def test_key_is_deterministic(self, series):
        assert feature_cache_key(series, self.PARAMS) == feature_cache_key(
            series.copy(), dict(self.PARAMS)
        )

    def test_series_values_change_the_key(self, series):
        other = series.copy()
        other[0] += 1e-9
        assert feature_cache_key(series, self.PARAMS) != feature_cache_key(
            other, self.PARAMS
        )

    def test_dtype_changes_the_key(self, series):
        narrowed = series.astype(np.float32)
        assert feature_cache_key(series, self.PARAMS) != feature_cache_key(
            narrowed, self.PARAMS
        )

    @pytest.mark.parametrize(
        "delta",
        [
            {"p": 11},
            {"l_max": 19},
            {"engine": "scamp"},
            {"top_k": 4},
            {"include": ["discords_variable"]},
        ],
    )
    def test_any_param_changes_the_key(self, series, delta):
        changed = {**self.PARAMS, **delta}
        assert feature_cache_key(series, self.PARAMS) != feature_cache_key(
            series, changed
        )

    def test_kernel_schema_version_changes_the_key(self, series, monkeypatch):
        base = feature_cache_key(series, self.PARAMS)
        monkeypatch.setattr(
            store_module,
            "KERNEL_SCHEMA_VERSION",
            store_module.KERNEL_SCHEMA_VERSION + 1,
        )
        assert feature_cache_key(series, self.PARAMS) != base

    def test_package_version_changes_the_key(self, series, monkeypatch):
        base = feature_cache_key(series, self.PARAMS)
        monkeypatch.setattr(
            store_module, "_package_version", lambda: "999.0.0"
        )
        assert feature_cache_key(series, self.PARAMS) != base

    def test_schema_bump_misses_behaviorally(self, series, tmp_path,
                                             monkeypatch):
        store = FeatureStore(tmp_path / "cache")
        traced_extract(series, store)
        monkeypatch.setattr(
            store_module,
            "KERNEL_SCHEMA_VERSION",
            store_module.KERNEL_SCHEMA_VERSION + 1,
        )
        _, counters = traced_extract(series, store)
        assert counters.get("features.cache.misses", 0) == 1
        assert counters.get("features.cache.hits", 0) == 0

    def test_param_change_misses_behaviorally(self, series, tmp_path):
        store = FeatureStore(tmp_path / "cache")
        traced_extract(series, store)
        _, counters = traced_extract(series, store, top_k=2)
        assert counters.get("features.cache.misses", 0) == 1
        assert counters.get("features.cache.hits", 0) == 0


def corrupt_truncate(path):
    path.write_text(path.read_text()[: len(path.read_text()) // 2])


def corrupt_garbage(path):
    path.write_bytes(b"\x00\xff definitely not json \xfe")


def corrupt_empty(path):
    path.write_text("")


def corrupt_payload(path):
    # Valid JSON, valid schema — but the payload no longer matches the
    # recorded checksum (an edit after the fact).
    envelope = json.loads(path.read_text())
    envelope["payload"]["l_min"] = 999
    path.write_text(json.dumps(envelope))


def corrupt_schema(path):
    envelope = json.loads(path.read_text())
    envelope["schema"] = -1
    path.write_text(json.dumps(envelope))


def corrupt_key(path):
    envelope = json.loads(path.read_text())
    envelope["key"] = "0" * 64
    path.write_text(json.dumps(envelope))


def corrupt_nondict_payload(path):
    envelope = json.loads(path.read_text())
    envelope["payload"] = [1, 2, 3]
    path.write_text(json.dumps(envelope))


class TestCorruptionTolerance:
    @pytest.mark.parametrize(
        "corrupt",
        [
            corrupt_truncate,
            corrupt_garbage,
            corrupt_empty,
            corrupt_payload,
            corrupt_schema,
            corrupt_key,
            corrupt_nondict_payload,
        ],
        ids=lambda f: f.__name__,
    )
    def test_rotten_entry_is_a_counted_miss(self, series, tmp_path, corrupt):
        store = FeatureStore(tmp_path / "cache")
        cold, _ = traced_extract(series, store)
        entries = list((tmp_path / "cache").glob("*.json"))
        assert len(entries) == 1
        corrupt(entries[0])

        recovered, counters = traced_extract(series, store)
        assert counters.get("features.cache.hits", 0) == 0
        assert counters.get("features.cache.misses", 0) == 1
        assert counters.get("features.cache.corrupt", 0) >= 1
        assert features_to_dict(recovered) == features_to_dict(cold)

    def test_rewrite_after_corruption_heals_the_entry(self, series, tmp_path):
        store = FeatureStore(tmp_path / "cache")
        traced_extract(series, store)
        entry = next((tmp_path / "cache").glob("*.json"))
        corrupt_garbage(entry)
        traced_extract(series, store)  # miss: recomputes and rewrites
        _, counters = traced_extract(series, store)
        assert counters.get("features.cache.hits", 0) == 1

    def test_get_on_missing_key_is_a_silent_none(self, tmp_path):
        store = FeatureStore(tmp_path / "cache")
        with obs.tracing(True):
            obs.reset()
            assert store.get("f" * 64) is None
            counters = dict(obs.get_tracer().counters())
        assert counters.get("features.cache.corrupt", 0) == 0


class TestEviction:
    def test_oldest_entries_are_evicted(self, tmp_path):
        store = FeatureStore(tmp_path / "cache", max_entries=2)
        with obs.tracing(True):
            obs.reset()
            for i, key in enumerate(["a" * 64, "b" * 64, "c" * 64]):
                store.put(key, {"i": i})
                # mtime resolution can be coarse; force strict ordering.
                os.utime(store.path_for(key), (1000 + i, 1000 + i))
            counters = dict(obs.get_tracer().counters())
        assert len(store) == 2
        assert store.get("a" * 64) is None
        assert store.get("b" * 64) == {"i": 1}
        assert store.get("c" * 64) == {"i": 2}
        assert counters.get("features.cache.evictions", 0) == 1

    def test_max_entries_env_fallback(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_FEATURES_STORE_MAX", "7")
        assert FeatureStore(tmp_path).max_entries == 7

    def test_nonpositive_max_entries_rejected(self, tmp_path):
        with pytest.raises(InvalidParameterError):
            FeatureStore(tmp_path, max_entries=0)


class TestResolution:
    def test_false_disables_even_with_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv(STORE_ENV, str(tmp_path / "envstore"))
        assert resolve_store(False) is None

    def test_none_without_env_disables(self, monkeypatch):
        monkeypatch.delenv(STORE_ENV, raising=False)
        assert resolve_store(None) is None

    def test_none_with_env_opens_store(self, tmp_path, monkeypatch):
        monkeypatch.setenv(STORE_ENV, str(tmp_path / "envstore"))
        resolved = resolve_store(None)
        assert isinstance(resolved, FeatureStore)
        assert resolved.root == tmp_path / "envstore"

    def test_path_and_instance_pass_through(self, tmp_path):
        assert resolve_store(str(tmp_path)).root == tmp_path
        store = FeatureStore(tmp_path)
        assert resolve_store(store) is store

    def test_env_store_used_by_default(self, series, tmp_path, monkeypatch):
        monkeypatch.setenv(STORE_ENV, str(tmp_path / "envstore"))
        _, cold = traced_extract(series, None)
        assert cold.get("features.cache.misses", 0) == 1
        assert list((tmp_path / "envstore").glob("*.json"))
        _, warm = traced_extract(series, None)
        assert warm.get("features.cache.hits", 0) == 1
