"""Tests for SAX and the grammar-style approximate baseline."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.grammar_motif import grammar_motif_per_length, grammar_motifs
from repro.baselines.sax import (
    gaussian_breakpoints,
    mindist,
    sax_transform,
    sax_words,
)
from repro.baselines.stomp_range import stomp_range
from repro.datasets.motif_planting import plant_motifs
from repro.distance.znorm import znormalized_distance
from repro.exceptions import InvalidParameterError


class TestBreakpoints:
    def test_counts(self):
        assert gaussian_breakpoints(4).shape == (3,)
        assert gaussian_breakpoints(2).shape == (1,)

    def test_symmetric_and_sorted(self):
        bp = gaussian_breakpoints(6)
        np.testing.assert_allclose(bp, -bp[::-1], atol=1e-12)
        assert (np.diff(bp) > 0).all()

    def test_equiprobable(self):
        """Breakpoints must split N(0,1) into equal-mass bins."""
        rng = np.random.default_rng(0)
        samples = rng.standard_normal(200_000)
        symbols = np.searchsorted(gaussian_breakpoints(4), samples)
        counts = np.bincount(symbols, minlength=4) / samples.size
        np.testing.assert_allclose(counts, 0.25, atol=0.01)

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            gaussian_breakpoints(1)
        with pytest.raises(InvalidParameterError):
            gaussian_breakpoints(27)


class TestSaxTransform:
    def test_shape_and_range(self, rng):
        t = rng.standard_normal(200)
        symbols = sax_transform(t, 32, 8, 4)
        assert symbols.shape == (169, 8)
        assert symbols.min() >= 0
        assert symbols.max() <= 3

    def test_identical_windows_same_word(self):
        pattern = np.sin(np.linspace(0, 2 * np.pi, 32))
        t = np.concatenate([pattern, np.zeros(20), pattern])
        symbols = sax_transform(t, 32, 8, 4)
        np.testing.assert_array_equal(symbols[0], symbols[52])

    def test_words_pack_uniquely(self, rng):
        t = rng.standard_normal(300)
        symbols = sax_transform(t, 20, 5, 4)
        words = sax_words(t, 20, 5, 4)
        # two positions with equal packed words must have equal symbols
        seen = {}
        for pos, word in enumerate(words):
            if word in seen:
                np.testing.assert_array_equal(symbols[pos], symbols[seen[word]])
            seen[int(word)] = pos

    def test_packing_budget(self, rng):
        with pytest.raises(InvalidParameterError):
            sax_words(rng.standard_normal(100), 40, 40, 26)


class TestMindist:
    @given(st.integers(0, 2**31 - 1), st.integers(3, 8))
    @settings(max_examples=40, deadline=None)
    def test_lower_bounds_true_distance(self, seed, alphabet):
        rng = np.random.default_rng(seed)
        length, word = 32, 8
        t = rng.standard_normal(length * 4)
        symbols = sax_transform(t, length, word, alphabet)
        i, j = 0, 2 * length
        lb = mindist(symbols[i], symbols[j], length, alphabet)
        true = znormalized_distance(t[i : i + length], t[j : j + length])
        assert lb <= true + 1e-7

    def test_identical_words_zero(self):
        word = np.array([0, 1, 2, 3])
        assert mindist(word, word, 16, 4) == 0.0

    def test_adjacent_symbols_zero(self):
        a = np.array([0, 1, 2, 3])
        b = np.array([1, 2, 3, 2])
        assert mindist(a, b, 16, 4) == 0.0

    def test_shape_mismatch(self):
        with pytest.raises(InvalidParameterError):
            mindist(np.array([0, 1]), np.array([0, 1, 2]), 16, 4)


class TestGrammarMotifs:
    @pytest.fixture(scope="class")
    def planted_strong(self):
        rng = np.random.default_rng(9)
        pattern = np.sin(np.linspace(0, 4 * np.pi, 40)) * np.hanning(40)
        return plant_motifs(
            rng.standard_normal(600), pattern,
            positions=[100, 400], scale=8.0, rng=rng,
        )

    def test_finds_strong_planted_motif(self, planted_strong):
        pair = grammar_motif_per_length(planted_strong.series, 40)
        assert pair is not None
        assert planted_strong.hit(pair.a, tolerance=40)
        assert planted_strong.hit(pair.b, tolerance=40)

    def test_approximate_never_beats_exact(self, planted_strong):
        """The approximate answer is a real pair, so its distance is an
        UPPER bound on the exact motif distance — never below it."""
        exact = stomp_range(planted_strong.series, 38, 42)
        approx = grammar_motifs(planted_strong.series, 38, 42)
        for length, pair in approx.items():
            assert pair.distance >= exact[length].distance - 1e-9

    def test_misses_are_possible_on_noise(self, noise_series):
        """The unbounded-error behaviour the paper criticizes: on data
        without strong repeats, the symbolic method may miss lengths or
        return inflated distances; it must never crash."""
        approx = grammar_motifs(noise_series, 16, 20)
        exact = stomp_range(noise_series, 16, 20)
        for length, pair in approx.items():
            assert pair.distance >= exact[length].distance - 1e-9

    def test_length_stride(self, planted_strong):
        approx = grammar_motifs(planted_strong.series, 38, 42, length_stride=2)
        assert set(approx) <= {38, 40, 42}

    def test_validation(self, noise_series):
        with pytest.raises(InvalidParameterError):
            grammar_motifs(noise_series, 20, 16)
        with pytest.raises(InvalidParameterError):
            grammar_motifs(noise_series, 16, 20, length_stride=0)

    def test_no_trivial_pairs(self, planted_strong):
        from repro.matrixprofile.exclusion import exclusion_zone_half_width

        approx = grammar_motifs(planted_strong.series, 38, 42)
        for length, pair in approx.items():
            assert abs(pair.a - pair.b) >= exclusion_zone_half_width(length)
