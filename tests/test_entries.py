"""Tests for the vectorized listDP entry store."""

import numpy as np
import pytest

from repro.core.compute_mp import compute_matrix_profile
from repro.core.entries import EntryStore
from repro.core.lower_bound import lower_bound_base
from repro.distance.profile import correlation_from_qt
from repro.distance.sliding import moving_mean_std, sliding_dot_product
from repro.exceptions import InvalidParameterError
from repro.matrixprofile.exclusion import exclusion_zone_half_width


class TestEmpty:
    def test_allocation(self):
        store = EntryStore.empty(10, 4, 16)
        assert store.n_profiles == 10
        assert store.p == 4
        assert store.current_length == 16
        assert (store.neighbor == -1).all()
        assert np.isinf(store.lb_base).all()

    def test_invalid_p(self):
        with pytest.raises(InvalidParameterError):
            EntryStore.empty(10, 0, 16)

    def test_invalid_profiles(self):
        with pytest.raises(InvalidParameterError):
            EntryStore.empty(0, 4, 16)


def build_row(series, row, length, p):
    """Helper: fill one store row exactly as compute_mp does."""
    mu, sigma = moving_mean_std(series, length)
    n_subs = series.size - length + 1
    qt = sliding_dot_product(series[row : row + length], series)
    corr = correlation_from_qt(
        qt, length, float(mu[row]), float(sigma[row]), mu, sigma
    )
    zone = exclusion_zone_half_width(length)
    eligible = np.abs(np.arange(n_subs) - row) >= zone
    store = EntryStore.empty(n_subs, p, length)
    store.fill_row(row, qt, corr, float(sigma[row]), length, eligible)
    return store, corr, eligible, float(sigma[row])


class TestFillRow:
    def test_keeps_p_smallest_lb(self, noise_series):
        t = noise_series
        store, corr, eligible, sigma_owner = build_row(t, 100, 16, 5)
        base_all = np.asarray(lower_bound_base(corr, 16, sigma_owner))
        base_all[~eligible] = np.inf
        expected = np.sort(base_all)[:5]
        stored = np.sort(store.lb_base[100])
        np.testing.assert_allclose(stored, expected, atol=1e-10)

    def test_excludes_trivial_matches(self, noise_series):
        store, _, _, _ = build_row(noise_series, 100, 16, 8)
        zone = exclusion_zone_half_width(16)
        neighbors = store.neighbor[100]
        neighbors = neighbors[neighbors >= 0]
        assert np.all(np.abs(neighbors - 100) >= zone)

    def test_partial_fill_when_few_candidates(self):
        t = np.random.default_rng(0).standard_normal(40)
        # length 16 -> zone 8, 25 subsequences, eligible ~ those beyond zone
        store, _, eligible, _ = build_row(t, 12, 16, 50)
        count = int((store.neighbor[12] >= 0).sum())
        assert count == int(eligible.sum())
        assert np.isinf(store.lb_base[12][count:]).all()

    def test_qt_values_are_dot_products(self, noise_series):
        t = noise_series
        store, _, _, _ = build_row(t, 50, 16, 4)
        for slot in range(4):
            j = store.neighbor[50, slot]
            if j < 0:
                continue
            expected = float(np.dot(t[50 : 50 + 16], t[j : j + 16]))
            assert store.qt[50, slot] == pytest.approx(expected, abs=1e-8)


class TestAdvance:
    def test_qt_updated_to_new_length(self, noise_series):
        t = noise_series
        _, store = compute_matrix_profile(t, 16, 6)
        store.advance_to(17, t)
        assert store.current_length == 17
        for row in (0, 40, 200):
            for slot in range(6):
                j = store.neighbor[row, slot]
                if j < 0 or j > t.size - 17:
                    continue
                expected = float(np.dot(t[row : row + 17], t[j : j + 17]))
                assert store.qt[row, slot] == pytest.approx(expected, abs=1e-8)

    def test_out_of_range_neighbors_frozen(self):
        t = np.random.default_rng(4).standard_normal(60)
        _, store = compute_matrix_profile(t, 20, 10)
        frozen = store.qt.copy()
        store.advance_to(21, t)
        n = t.size
        out_of_range = (store.neighbor >= 0) & (store.neighbor > n - 21)
        rows = min(store.n_profiles, n - 21 + 1)
        if out_of_range[:rows].any():
            np.testing.assert_array_equal(
                store.qt[:rows][out_of_range[:rows]],
                frozen[:rows][out_of_range[:rows]],
            )

    def test_must_advance_by_one(self, noise_series):
        _, store = compute_matrix_profile(noise_series, 16, 4)
        with pytest.raises(InvalidParameterError):
            store.advance_to(18, noise_series)
        with pytest.raises(InvalidParameterError):
            store.advance_to(16, noise_series)

    def test_sequential_advances(self, noise_series):
        t = noise_series
        _, store = compute_matrix_profile(t, 16, 4)
        for length in (17, 18, 19, 20):
            store.advance_to(length, t)
        assert store.current_length == 20
        j = store.neighbor[10, 0]
        if j >= 0 and j <= t.size - 20:
            expected = float(np.dot(t[10:30], t[j : j + 20]))
            assert store.qt[10, 0] == pytest.approx(expected, abs=1e-8)
