"""Tests for the d-dimensional Hilbert curve (Skilling's algorithm)."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.hilbert import hilbert_index, hilbert_sort_order, quantize
from repro.exceptions import InvalidParameterError


def full_grid(dims, bits):
    side = 1 << bits
    return np.array(
        list(itertools.product(range(side), repeat=dims)), dtype=np.uint64
    )


class TestHilbertIndex:
    @pytest.mark.parametrize("dims,bits", [(2, 2), (2, 3), (3, 2), (4, 1)])
    def test_bijective_on_full_grid(self, dims, bits):
        coords = full_grid(dims, bits)
        keys = hilbert_index(coords, bits)
        assert len(set(keys.tolist())) == coords.shape[0]
        assert int(keys.max()) == coords.shape[0] - 1

    @pytest.mark.parametrize("dims,bits", [(2, 3), (3, 2)])
    def test_consecutive_indices_are_grid_neighbors(self, dims, bits):
        """The defining Hilbert property: the curve visits adjacent cells."""
        coords = full_grid(dims, bits)
        keys = hilbert_index(coords, bits)
        ordered = coords[np.argsort(keys)].astype(np.int64)
        steps = np.abs(np.diff(ordered, axis=0)).sum(axis=1)
        assert (steps == 1).all()

    def test_empty_input(self):
        out = hilbert_index(np.empty((0, 3), dtype=np.uint64), 4)
        assert out.shape == (0,)

    def test_bit_budget_enforced(self):
        with pytest.raises(InvalidParameterError):
            hilbert_index(np.zeros((1, 9), dtype=np.uint64), 8)

    def test_rejects_1d(self):
        with pytest.raises(InvalidParameterError):
            hilbert_index(np.zeros(5, dtype=np.uint64), 4)

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_deterministic(self, seed):
        rng = np.random.default_rng(seed)
        coords = rng.integers(0, 16, size=(50, 3)).astype(np.uint64)
        k1 = hilbert_index(coords.copy(), 4)
        k2 = hilbert_index(coords.copy(), 4)
        np.testing.assert_array_equal(k1, k2)

    def test_input_not_mutated(self):
        coords = full_grid(2, 2)
        original = coords.copy()
        hilbert_index(coords, 2)
        np.testing.assert_array_equal(coords, original)


class TestQuantize:
    def test_range(self, rng):
        pts = rng.standard_normal((100, 4))
        q = quantize(pts, 8)
        assert q.min() >= 0
        assert q.max() <= 255

    def test_constant_dimension(self, rng):
        pts = rng.standard_normal((50, 2))
        pts[:, 1] = 3.0
        q = quantize(pts, 8)
        assert (q[:, 1] == 0).all()

    def test_extremes_map_to_extremes(self):
        pts = np.array([[0.0], [1.0]])
        q = quantize(pts, 4)
        assert q[0, 0] == 0
        assert q[1, 0] == 15

    def test_bits_validation(self, rng):
        with pytest.raises(InvalidParameterError):
            quantize(rng.standard_normal((5, 2)), 0)
        with pytest.raises(InvalidParameterError):
            quantize(rng.standard_normal((5, 2)), 17)

    def test_rejects_1d(self, rng):
        with pytest.raises(InvalidParameterError):
            quantize(rng.standard_normal(5), 4)


class TestSortOrder:
    def test_is_permutation(self, rng):
        pts = rng.standard_normal((200, 4))
        order = hilbert_sort_order(pts)
        assert sorted(order.tolist()) == list(range(200))

    def test_groups_nearby_points(self, rng):
        """Points in two well-separated clusters should not interleave."""
        a = rng.standard_normal((50, 3)) * 0.1
        b = rng.standard_normal((50, 3)) * 0.1 + 10.0
        pts = np.vstack([a, b])
        order = hilbert_sort_order(pts)
        labels = (order >= 50).astype(int)
        transitions = int(np.abs(np.diff(labels)).sum())
        assert transitions == 1, "each cluster should be one contiguous run"
