"""Tests for the synthetic dataset families and motif planting."""

import numpy as np
import pytest

from repro.datasets import (
    DATASET_NAMES,
    dataset_spec,
    generate_epg,
    load_dataset,
    plant_motifs,
    trace_signature,
)
from repro.datasets.generators import (
    affine_to,
    exponential_flare,
    gaussian_pulse,
    random_walk,
    resample,
    sine_mixture,
    smooth,
    white_noise,
)
from repro.distance.znorm import znormalized_distance
from repro.exceptions import InvalidParameterError


class TestRegistry:
    def test_all_families_listed(self):
        assert set(DATASET_NAMES) == {"ECG", "GAP", "ASTRO", "EMG", "EEG"}

    def test_unknown_name(self):
        with pytest.raises(InvalidParameterError):
            dataset_spec("NOPE")

    def test_case_insensitive(self):
        assert dataset_spec("ecg").name == "ECG"

    @pytest.mark.parametrize("name", DATASET_NAMES)
    def test_deterministic_per_seed(self, name):
        a = load_dataset(name, 2000, seed=5)
        b = load_dataset(name, 2000, seed=5)
        c = load_dataset(name, 2000, seed=6)
        np.testing.assert_array_equal(a, b)
        assert not np.array_equal(a, c)

    @pytest.mark.parametrize("name", DATASET_NAMES)
    def test_finite_and_sized(self, name):
        t = load_dataset(name, 3000, seed=1)
        assert t.shape == (3000,)
        assert np.isfinite(t).all()

    @pytest.mark.parametrize("name", ["ECG", "ASTRO", "EMG", "EEG"])
    def test_matches_table1_mean_std(self, name):
        spec = dataset_spec(name)
        t = load_dataset(name, 6000, seed=2)
        assert t.mean() == pytest.approx(spec.paper_mean, abs=abs(spec.paper_std) * 0.01)
        assert t.std() == pytest.approx(spec.paper_std, rel=0.01)

    def test_gap_is_positive_like_power_data(self):
        t = load_dataset("GAP", 6000, seed=2)
        assert t.min() >= 0.08 - 1e-9
        assert t.std() == pytest.approx(1.15, rel=0.01)

    def test_emg_has_heavier_tail_than_ecg(self):
        """The structural property Figures 10-11 rely on: EMG's distance
        distribution is heavy-tailed because its variance is bursty."""
        emg = load_dataset("EMG", 8000, seed=0)
        ecg = load_dataset("ECG", 8000, seed=0)

        def burstiness(t, w=256):
            stds = np.array([t[i : i + w].std() for i in range(0, t.size - w, w)])
            return stds.max() / np.median(stds)

        assert burstiness(emg) > burstiness(ecg)


class TestGenerators:
    def test_white_noise_stats(self):
        t = white_noise(10_000, np.random.default_rng(0), scale=2.0)
        assert t.std() == pytest.approx(2.0, rel=0.1)

    def test_random_walk_is_cumulative(self):
        rng = np.random.default_rng(1)
        t = random_walk(100, rng)
        assert t.shape == (100,)

    def test_sine_mixture_shape_and_validation(self):
        t = sine_mixture(100, [2.0, 5.0], amplitudes=[1.0, 0.5])
        assert t.shape == (100,)
        with pytest.raises(InvalidParameterError):
            sine_mixture(100, [1.0], amplitudes=[1.0, 2.0])

    def test_gaussian_pulse_peak_location(self):
        pulse = gaussian_pulse(101, center=0.5, width=0.05)
        assert np.argmax(pulse) == 50

    def test_exponential_flare_shape(self):
        flare = exponential_flare(100)
        assert flare.shape == (100,)
        assert np.argmax(flare) == pytest.approx(15, abs=2)

    def test_resample_preserves_shape_class(self):
        sig = np.sin(np.linspace(0, 2 * np.pi, 100))
        out = resample(sig, 250)
        assert out.shape == (250,)
        assert znormalized_distance(
            out, np.sin(np.linspace(0, 2 * np.pi, 250))
        ) < 1.0

    def test_affine_to_exact(self):
        t = np.random.default_rng(2).standard_normal(500)
        out = affine_to(t, mean=3.0, std=0.5)
        assert out.mean() == pytest.approx(3.0, abs=1e-9)
        assert out.std() == pytest.approx(0.5, abs=1e-9)

    def test_affine_to_rejects_constant(self):
        with pytest.raises(InvalidParameterError):
            affine_to(np.ones(10), 0.0, 1.0)

    def test_smooth_reduces_variance(self):
        t = np.random.default_rng(3).standard_normal(1000)
        assert smooth(t, 9).std() < t.std()
        np.testing.assert_array_equal(smooth(t, 1), t)


class TestTrace:
    def test_deterministic(self):
        np.testing.assert_array_equal(trace_signature(200, 5), trace_signature(200, 5))

    def test_length_parametric(self):
        """The phase parameterization makes lengths self-consistent:
        rendering at length L equals resampling from a fine render."""
        fine = trace_signature(1000)
        coarse = trace_signature(125)
        assert znormalized_distance(resample(fine, 125), coarse) < 1.0

    def test_variants_differ_but_match(self):
        a = trace_signature(200, 1)
        b = trace_signature(200, 2)
        d = znormalized_distance(a, b)
        assert 0.0 < d < 5.0


class TestEPG:
    def test_ground_truth_positions_valid(self):
        series, truth = generate_epg(8000, seed=1)
        for pos in truth.probing_positions:
            assert 0 <= pos <= series.size - truth.probing_length
        for pos in truth.ingestion_positions:
            assert 0 <= pos <= series.size - truth.ingestion_length

    def test_behaviours_planted(self):
        series, truth = generate_epg(8000, seed=2)
        assert len(truth.probing_positions) >= 2
        assert len(truth.ingestion_positions) >= 2

    def test_probing_copies_similar(self):
        series, truth = generate_epg(8000, seed=3)
        a, b = truth.probing_positions[:2]
        length = truth.probing_length
        d = znormalized_distance(series[a : a + length], series[b : b + length])
        assert d < 0.35 * np.sqrt(length), "probing copies should match closely"


class TestPlantMotifs:
    def test_positions_respected(self):
        planted = plant_motifs(np.zeros(200) + np.arange(200) * 1e-6,
                               np.ones(10), positions=[20, 100])
        assert planted.positions == (20, 100)

    def test_overlapping_positions_rejected(self):
        with pytest.raises(InvalidParameterError):
            plant_motifs(np.random.default_rng(0).standard_normal(100),
                         np.ones(10), positions=[20, 25])

    def test_out_of_range_rejected(self):
        with pytest.raises(InvalidParameterError):
            plant_motifs(np.random.default_rng(0).standard_normal(100),
                         np.ones(10), positions=[95, 20])

    def test_pattern_too_large(self):
        with pytest.raises(InvalidParameterError):
            plant_motifs(np.zeros(15), np.ones(10))

    def test_random_positions_non_overlapping(self):
        planted = plant_motifs(
            np.random.default_rng(1).standard_normal(500),
            np.ones(20),
            count=5,
            rng=np.random.default_rng(2),
        )
        positions = sorted(planted.positions)
        assert all(b - a >= 20 for a, b in zip(positions, positions[1:]))

    def test_hit_tolerance(self):
        planted = plant_motifs(
            np.random.default_rng(1).standard_normal(200),
            np.ones(16), positions=[50, 120],
        )
        assert planted.hit(52)
        assert not planted.hit(90)

    def test_background_unchanged_outside(self):
        background = np.random.default_rng(4).standard_normal(200)
        planted = plant_motifs(background, np.ones(10), positions=[50, 100])
        np.testing.assert_array_equal(planted.series[:50], background[:50])
        np.testing.assert_array_equal(planted.series[110:], background[110:])
