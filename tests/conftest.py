"""Shared fixtures for the test suite.

Series fixtures cover the three structure classes the algorithms behave
differently on: white noise (adversarial for pruning), smooth structured
data (friendly), and planted-motif data (known ground truth).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.motif_planting import plant_motifs


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def noise_series():
    """White noise: the hardest case for every pruning strategy."""
    return np.random.default_rng(7).standard_normal(400)


@pytest.fixture(scope="session")
def structured_series():
    """Smooth quasi-periodic series: the friendliest case."""
    x = np.linspace(0, 16 * np.pi, 500)
    wobble = 0.05 * np.random.default_rng(11).standard_normal(500)
    return np.sin(x) + 0.4 * np.sin(2.3 * x + 1.0) + wobble


@pytest.fixture(scope="session")
def planted():
    """Noise with two planted copies of a 40-point pattern."""
    generator = np.random.default_rng(3)
    background = generator.standard_normal(500)
    pattern = np.sin(np.linspace(0, 4 * np.pi, 40)) * np.hanning(40)
    return plant_motifs(
        background,
        pattern,
        positions=[70, 300],
        scale=5.0,
        rng=generator,
    )


@pytest.fixture(scope="session")
def planted_series(planted):
    return planted.series


def assert_profiles_close(a, b, atol=1e-6):
    """Profiles equal where both finite; infinities must coincide."""
    a = np.asarray(a)
    b = np.asarray(b)
    assert a.shape == b.shape
    fin_a = np.isfinite(a)
    fin_b = np.isfinite(b)
    np.testing.assert_array_equal(fin_a, fin_b)
    np.testing.assert_allclose(a[fin_a], b[fin_b], atol=atol)
