"""Tests for Algorithms 5-6 (variable-length motif sets) — invariant 7."""

import numpy as np
import pytest

from repro.core.motif_sets import (
    compute_motif_sets,
    find_motif_sets,
    motif_set_summary,
)
from repro.core.valmod import Valmod
from repro.distance.znorm import znormalized_distance
from repro.exceptions import InvalidParameterError
from repro.matrixprofile.exclusion import exclusion_zone_half_width


@pytest.fixture(scope="module")
def repeated_pattern_series():
    """Noise with five planted copies: motif sets should recover most."""
    rng = np.random.default_rng(17)
    t = rng.standard_normal(1200)
    pattern = np.sin(np.linspace(0, 4 * np.pi, 50)) * np.hanning(50)
    positions = [100, 320, 540, 760, 980]
    for pos in positions:
        t[pos : pos + 50] += 5.0 * (1.0 + 0.03 * rng.standard_normal()) * pattern
    return t, positions


@pytest.fixture(scope="module")
def motif_sets_result(repeated_pattern_series):
    series, _ = repeated_pattern_series
    sets = find_motif_sets(series, 44, 56, k=6, radius_factor=3.0, p=20)
    return series, sets


class TestStructuralGuarantees:
    def test_sets_not_empty(self, motif_sets_result):
        _, sets = motif_sets_result
        assert sets

    def test_disjointness(self, motif_sets_result):
        _, sets = motif_sets_result
        seen = set()
        for ms in sets:
            for member in ms.members:
                key = (member, ms.length)
                assert key not in seen
                seen.add(key)

    def test_radius_membership(self, motif_sets_result):
        series, sets = motif_sets_result
        for ms in sets:
            for member in ms.members:
                d_a = znormalized_distance(
                    series[member : member + ms.length],
                    series[ms.pair.a : ms.pair.a + ms.length],
                )
                d_b = znormalized_distance(
                    series[member : member + ms.length],
                    series[ms.pair.b : ms.pair.b + ms.length],
                )
                assert min(d_a, d_b) < ms.radius + 1e-9

    def test_no_trivial_matches_within_set(self, motif_sets_result):
        _, sets = motif_sets_result
        for ms in sets:
            zone = exclusion_zone_half_width(ms.length)
            members = sorted(ms.members)
            for a, b in zip(members, members[1:]):
                assert b - a >= zone

    def test_minimum_cardinality(self, motif_sets_result):
        _, sets = motif_sets_result
        for ms in sets:
            assert ms.frequency >= 2

    def test_recovers_planted_copies(self, repeated_pattern_series, motif_sets_result):
        _, positions = repeated_pattern_series
        _, sets = motif_sets_result
        best = max(sets, key=lambda ms: ms.frequency)
        hits = sum(
            1
            for pos in positions
            if any(abs(m - pos) <= 15 for m in best.members)
        )
        assert hits >= 4, f"expected >=4 of 5 planted copies, got {hits}"


class TestParameters:
    def test_radius_factor_validation(self):
        with pytest.raises(InvalidParameterError):
            compute_motif_sets(np.zeros(100), [], 0.0)

    def test_larger_radius_grows_sets(self, repeated_pattern_series):
        series, _ = repeated_pattern_series
        small = find_motif_sets(series, 48, 52, k=3, radius_factor=2.0, p=20)
        large = find_motif_sets(series, 48, 52, k=3, radius_factor=6.0, p=20)
        if small and large:
            assert max(s.frequency for s in large) >= max(
                s.frequency for s in small
            )

    def test_k_limits_sets(self, repeated_pattern_series):
        series, _ = repeated_pattern_series
        sets = find_motif_sets(series, 48, 52, k=2, radius_factor=3.0, p=20)
        assert len(sets) <= 2

    def test_summary_format(self, motif_sets_result):
        _, sets = motif_sets_result
        line = motif_set_summary(sets[0])
        assert "length=" in line and "freq=" in line


class TestSnapshotVsRecomputePath:
    def test_paths_agree(self, repeated_pattern_series):
        """Sets built from listDP snapshots must equal sets built by
        recomputing every profile (strip the snapshots to force it)."""
        series, _ = repeated_pattern_series
        run = Valmod(series, 48, 52, p=20, track_top_k=4).run()
        pairs = run.best_k_pairs()
        via_snapshots = compute_motif_sets(series, pairs, 3.0)
        for record in pairs:
            record.profile_a = None
            record.profile_b = None
        via_recompute = compute_motif_sets(series, pairs, 3.0)
        assert len(via_snapshots) == len(via_recompute)
        for a, b in zip(via_snapshots, via_recompute):
            assert a.members == b.members
