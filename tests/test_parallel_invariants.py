"""Chunk-boundary invariants of the parallel tiled engine.

Property tests for the guarantees :mod:`repro.matrixprofile.parallel`
documents: any partition of the diagonals merges to the unchunked
profile bit for bit, the exclusion zone holds across chunk seams, merges
are order-independent, and repeated runs are deterministic.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distance.sliding import moving_mean_std, sliding_dot_product
from repro.exceptions import InvalidParameterError
from repro.matrixprofile.exclusion import exclusion_zone_half_width
from repro.matrixprofile.parallel import (
    diagonal_chunk_min_profile,
    merge_profiles,
    parallel_stomp,
    resolve_n_jobs,
    split_diagonals,
)
from repro.matrixprofile.stomp import stomp, stomp_reanchor_rows


def _series(seed: int, n: int = 300) -> np.ndarray:
    return np.random.default_rng(seed).standard_normal(n).cumsum()


def _chunk_inputs(t: np.ndarray, length: int):
    mu, sigma = moving_mean_std(t, length)
    qt_first = sliding_dot_product(t[:length], t)
    anchors = stomp_reanchor_rows(t, length, sigma)
    return mu, sigma, qt_first, anchors


def _profile_from_cuts(t, length, cuts):
    """Merge the chunks induced by an arbitrary sorted cut list."""
    n_subs = t.size - length + 1
    zone = exclusion_zone_half_width(length)
    bounds = [zone] + cuts + [n_subs]
    mu, sigma, qt_first, anchors = _chunk_inputs(t, length)
    parts = [
        diagonal_chunk_min_profile(
            t, length, mu, sigma, qt_first, anchors, lo, hi
        )
        for lo, hi in zip(bounds[:-1], bounds[1:])
    ]
    return merge_profiles([p for p, _ in parts], [i for _, i in parts])


@settings(max_examples=20, deadline=None)
@given(st.data())
def test_random_chunk_splits_merge_to_serial(data):
    """Any random partition of the diagonals reproduces serial STOMP."""
    seed = data.draw(st.integers(0, 1000), label="seed")
    length = data.draw(st.sampled_from([8, 16, 24]), label="length")
    t = _series(seed)
    n_subs = t.size - length + 1
    zone = exclusion_zone_half_width(length)
    n_cuts = data.draw(st.integers(0, 6), label="n_cuts")
    cuts = sorted(
        data.draw(
            st.lists(
                st.integers(zone + 1, n_subs - 1),
                min_size=n_cuts,
                max_size=n_cuts,
                unique=True,
            ),
            label="cuts",
        )
    )
    serial = stomp(t, length)
    profile, index = _profile_from_cuts(t, length, cuts)
    np.testing.assert_array_equal(profile, serial.profile)
    np.testing.assert_array_equal(index, serial.index)


@pytest.mark.parametrize("n_chunks", [1, 2, 3, 5, 11])
def test_area_balanced_splits_merge_to_serial(n_chunks):
    t = _series(99, 400)
    length = 20
    serial = stomp(t, length)
    mp = parallel_stomp(t, length, n_jobs=1, n_chunks=n_chunks)
    np.testing.assert_array_equal(mp.profile, serial.profile)
    np.testing.assert_array_equal(mp.index, serial.index)


def test_split_diagonals_partitions_exactly():
    ranges = split_diagonals(100, 7, 4)
    assert ranges[0][0] == 7
    assert ranges[-1][1] == 100
    for (lo1, hi1), (lo2, hi2) in zip(ranges, ranges[1:]):
        assert hi1 == lo2
        assert lo1 < hi1
    # More chunks than diagonals degrades gracefully.
    tiny = split_diagonals(10, 8, 50)
    assert tiny == [(8, 9), (9, 10)]
    assert split_diagonals(8, 8, 3) == []
    with pytest.raises(InvalidParameterError):
        split_diagonals(100, 7, 0)


def test_exclusion_zone_respected_across_seams():
    """No merged neighbor may fall inside the exclusion zone, for any
    chunking — including cuts right next to the zone boundary."""
    t = _series(17, 350)
    length = 16
    zone = exclusion_zone_half_width(length)
    n_subs = t.size - length + 1
    for cuts in ([], [zone + 1], [zone + 1, zone + 2], [n_subs - 1]):
        profile, index = _profile_from_cuts(t, length, list(cuts))
        positions = np.arange(n_subs)
        valid = index >= 0
        assert valid.all()
        assert (np.abs(index[valid] - positions[valid]) >= zone).all()


def test_merge_is_order_independent():
    t = _series(23)
    length = 16
    mu, sigma, qt_first, anchors = _chunk_inputs(t, length)
    zone = exclusion_zone_half_width(length)
    n_subs = t.size - length + 1
    ranges = split_diagonals(n_subs, zone, 4)
    parts = [
        diagonal_chunk_min_profile(t, length, mu, sigma, qt_first, anchors, lo, hi)
        for lo, hi in ranges
    ]
    forward = merge_profiles([p for p, _ in parts], [i for _, i in parts])
    backward = merge_profiles(
        [p for p, _ in reversed(parts)], [i for _, i in reversed(parts)]
    )
    np.testing.assert_array_equal(forward[0], backward[0])
    np.testing.assert_array_equal(forward[1], backward[1])


def test_merge_rejects_mismatched_inputs():
    with pytest.raises(InvalidParameterError):
        merge_profiles([], [])
    with pytest.raises(InvalidParameterError):
        merge_profiles([np.zeros(3)], [])


def test_deterministic_across_repeated_runs():
    """Same seed, same series -> identical profiles on every run,
    including multi-process runs where chunk completion order varies."""
    t = _series(31, 320)
    length = 16
    first = parallel_stomp(t, length, n_jobs=2)
    for _ in range(2):
        again = parallel_stomp(t, length, n_jobs=2)
        np.testing.assert_array_equal(first.profile, again.profile)
        np.testing.assert_array_equal(first.index, again.index)


def test_resolve_n_jobs_conventions():
    import os

    cpus = os.cpu_count() or 1
    assert resolve_n_jobs(None) == cpus
    assert resolve_n_jobs(0) == cpus
    assert resolve_n_jobs(1) == 1
    assert resolve_n_jobs(3) == 3
    assert resolve_n_jobs(-1) == cpus
    assert resolve_n_jobs(-cpus - 5) == 1


def test_compute_mp_row_blocks_bitwise():
    """Algorithm 3's row-block parallel path matches serial exactly,
    profile and listDP store alike."""
    from repro.core.compute_mp import compute_matrix_profile, row_blocks

    t = _series(41, 280)
    mp1, st1 = compute_matrix_profile(t, 16, 8, n_jobs=1)
    mp2, st2 = compute_matrix_profile(t, 16, 8, n_jobs=2)
    np.testing.assert_array_equal(mp1.profile, mp2.profile)
    np.testing.assert_array_equal(mp1.index, mp2.index)
    np.testing.assert_array_equal(st1.neighbor, st2.neighbor)
    np.testing.assert_array_equal(st1.qt, st2.qt)
    np.testing.assert_array_equal(st1.lb_base, st2.lb_base)
    # Block boundaries tile the row range exactly.
    blocks = row_blocks(100, 4)
    assert blocks[0][0] == 0 and blocks[-1][1] == 100
    for (s1, e1), (s2, e2) in zip(blocks, blocks[1:]):
        assert e1 == s2 and s1 < e1
