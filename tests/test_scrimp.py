"""Tests for the SCRIMP / PRE-SCRIMP engines."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import InvalidParameterError
from repro.matrixprofile import brute_force_matrix_profile, stomp
from repro.matrixprofile.scrimp import pre_scrimp, scrimp
from tests.conftest import assert_profiles_close


class TestExactness:
    @pytest.mark.parametrize("length", [8, 16, 33])
    def test_matches_stomp_noise(self, noise_series, length):
        assert_profiles_close(
            scrimp(noise_series, length).profile,
            stomp(noise_series, length).profile,
            atol=1e-6,
        )

    def test_matches_stomp_structured(self, structured_series):
        assert_profiles_close(
            scrimp(structured_series, 40).profile,
            stomp(structured_series, 40).profile,
            atol=1e-6,
        )

    def test_matches_brute_with_constant_segments(self):
        t = np.random.default_rng(3).standard_normal(150)
        t[40:70] = -2.0
        assert_profiles_close(
            scrimp(t, 10).profile,
            brute_force_matrix_profile(t, 10).profile,
            atol=1e-6,
        )

    @given(st.integers(0, 2**31 - 1), st.integers(4, 20))
    @settings(max_examples=20, deadline=None)
    def test_matches_stomp_property(self, seed, length):
        rng = np.random.default_rng(seed)
        t = rng.standard_normal(length * 5 + int(rng.integers(0, 30)))
        assert_profiles_close(
            scrimp(t, length).profile, stomp(t, length).profile, atol=1e-5
        )


class TestAnytime:
    def test_partial_run_is_upper_bound(self, noise_series):
        exact = stomp(noise_series, 16)
        partial = scrimp(
            noise_series, 16, fraction=0.3, rng=np.random.default_rng(0)
        )
        finite = np.isfinite(partial.profile)
        assert np.all(partial.profile[finite] >= exact.profile[finite] - 1e-9)

    def test_full_random_order_is_exact(self, noise_series):
        shuffled = scrimp(noise_series, 16, rng=np.random.default_rng(5))
        assert_profiles_close(
            shuffled.profile, stomp(noise_series, 16).profile, atol=1e-6
        )

    def test_fraction_validation(self, noise_series):
        with pytest.raises(InvalidParameterError):
            scrimp(noise_series, 16, fraction=0.0)
        with pytest.raises(InvalidParameterError):
            scrimp(noise_series, 16, fraction=1.5)

    def test_half_fraction_finds_strong_motif(self, planted):
        """A planted motif survives even a half-budget anytime run most
        of the time; with this seed it must."""
        exact = stomp(planted.series, planted.length).motif_pair()
        partial = scrimp(
            planted.series,
            planted.length,
            fraction=0.5,
            rng=np.random.default_rng(2),
        )
        pair = partial.motif_pair()
        assert pair.distance >= exact.distance - 1e-9
        assert pair.distance <= 2.0 * exact.distance + 1e-9


class TestPreScrimp:
    def test_upper_bound(self, noise_series):
        exact = stomp(noise_series, 16)
        approx = pre_scrimp(noise_series, 16)
        finite = np.isfinite(approx.profile)
        assert finite.all(), "PRE-SCRIMP covers every position"
        assert np.all(approx.profile[finite] >= exact.profile[finite] - 1e-6)

    def test_finds_planted_motif(self, planted):
        approx = pre_scrimp(planted.series, planted.length, stride=8)
        pair = approx.motif_pair()
        assert planted.hit(pair.a, tolerance=planted.length)
        assert planted.hit(pair.b, tolerance=planted.length)

    def test_stride_validation(self, noise_series):
        with pytest.raises(InvalidParameterError):
            pre_scrimp(noise_series, 16, stride=0)

    def test_stride_one_is_exact(self, noise_series):
        short = noise_series[:120]
        exact = stomp(short, 12)
        approx = pre_scrimp(short, 12, stride=1)
        assert_profiles_close(approx.profile, exact.profile, atol=1e-6)
