"""Tests for the Hilbert-packed MBR index."""

import numpy as np
import pytest

from repro.baselines.rtree import MBRIndex
from repro.exceptions import InvalidParameterError


@pytest.fixture()
def points(rng):
    return rng.standard_normal((130, 4))


class TestConstruction:
    def test_leaves_cover_all_rows(self, points):
        index = MBRIndex(points, leaf_capacity=16)
        rows = np.concatenate([leaf.rows for leaf in index.leaves])
        assert sorted(rows.tolist()) == list(range(points.shape[0]))

    def test_leaf_sizes(self, points):
        index = MBRIndex(points, leaf_capacity=16)
        sizes = [leaf.rows.size for leaf in index.leaves]
        assert all(s <= 16 for s in sizes)
        assert sum(sizes) == 130

    def test_mbr_contains_points(self, points):
        index = MBRIndex(points, leaf_capacity=16)
        for leaf in index.leaves:
            block = points[leaf.rows]
            assert (block >= leaf.lo - 1e-12).all()
            assert (block <= leaf.hi + 1e-12).all()

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            MBRIndex(np.empty((0, 3)))
        with pytest.raises(InvalidParameterError):
            MBRIndex(np.zeros((5, 3)), leaf_capacity=0)


class TestMinDistance:
    def test_self_pair_is_zero(self, points):
        index = MBRIndex(points, leaf_capacity=16)
        assert index.mbr_min_distance(0, 0) == 0.0

    def test_lower_bounds_point_distances(self, points):
        index = MBRIndex(points, leaf_capacity=16, scale=1.0)
        for a in range(len(index)):
            for b in range(a, len(index)):
                bound = index.mbr_min_distance(a, b)
                rows_a, rows_b = index.candidate_rows(a, b)
                best = min(
                    float(np.linalg.norm(points[i] - points[j]))
                    for i in rows_a
                    for j in rows_b
                    if i != j
                )
                assert bound <= best + 1e-9

    def test_scale_applied(self, points):
        plain = MBRIndex(points, leaf_capacity=16, scale=1.0)
        scaled = MBRIndex(points, leaf_capacity=16, scale=3.0)
        for a in range(len(plain)):
            for b in range(len(plain)):
                assert scaled.mbr_min_distance(a, b) == pytest.approx(
                    3.0 * plain.mbr_min_distance(a, b)
                )


class TestLeafPairsAscending:
    def test_yields_all_pairs_in_order(self, points):
        index = MBRIndex(points, leaf_capacity=32)
        n = len(index)
        pairs = list(index.leaf_pairs_ascending())
        assert len(pairs) == n + n * (n - 1) // 2
        bounds = [p[0] for p in pairs]
        assert bounds == sorted(bounds)

    def test_diagonal_pairs_first(self, points):
        index = MBRIndex(points, leaf_capacity=32)
        first = list(index.leaf_pairs_ascending())[: len(index)]
        assert all(bound == 0.0 for bound, _, _ in first)
