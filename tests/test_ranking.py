"""Tests for cross-length motif ranking (Section 3 utilities)."""

import pytest

from repro.core.ranking import (
    deduplicate_pairs,
    rank_motif_pairs,
    top_motifs_across_lengths,
)
from repro.exceptions import InvalidParameterError
from repro.types import MotifPair


def pair(a, b, length, dist):
    return MotifPair.build(a, b, length, dist)


class TestRank:
    def test_sorted_by_normalized(self):
        pairs = [pair(0, 100, 16, 4.0), pair(0, 100, 64, 4.0)]
        ranked = rank_motif_pairs(pairs)
        assert ranked[0].length == 64  # same raw distance, longer wins

    def test_empty(self):
        assert rank_motif_pairs([]) == []


class TestDeduplicate:
    def test_collapses_shifted_rediscoveries(self):
        pairs = [
            pair(100, 300, 40, 1.0),
            pair(101, 301, 41, 1.2),  # same motif, one step longer
            pair(102, 302, 42, 1.3),
        ]
        assert len(deduplicate_pairs(pairs)) == 1

    def test_keeps_best_representative(self):
        pairs = [pair(100, 300, 40, 2.0), pair(101, 301, 41, 1.0)]
        kept = deduplicate_pairs(pairs)
        assert len(kept) == 1
        assert kept[0].distance == 1.0

    def test_distinct_motifs_survive(self):
        pairs = [pair(0, 300, 40, 1.0), pair(600, 900, 40, 1.1)]
        assert len(deduplicate_pairs(pairs)) == 2

    def test_crossed_duplicates_detected(self):
        pairs = [pair(100, 300, 40, 1.0), pair(300, 100, 40, 1.1)]
        assert len(deduplicate_pairs(pairs)) == 1

    def test_length_gap_limits_collapse(self):
        pairs = [pair(100, 300, 40, 1.0), pair(100, 300, 80, 7.0)]
        # with a tight gap the two lengths are treated as different motifs
        assert len(deduplicate_pairs(pairs, min_length_gap=10)) == 2
        assert len(deduplicate_pairs(pairs, min_length_gap=0)) == 1

    def test_negative_gap_rejected(self):
        with pytest.raises(InvalidParameterError):
            deduplicate_pairs([], min_length_gap=-1)


class TestTopAcrossLengths:
    def test_returns_k(self):
        pairs = {
            40: pair(0, 300, 40, 1.0),
            41: pair(600, 900, 41, 1.5),
            42: pair(1200, 1500, 42, 2.0),
        }
        top = top_motifs_across_lengths(pairs, 2)
        assert len(top) == 2
        assert top[0].distance == 1.0

    def test_dedup_toggle(self):
        pairs = {
            40: pair(100, 300, 40, 1.0),
            41: pair(101, 301, 41, 1.2),
        }
        assert len(top_motifs_across_lengths(pairs, 5, deduplicate=False)) == 2
        assert len(top_motifs_across_lengths(pairs, 5, deduplicate=True)) == 1

    def test_k_validation(self):
        with pytest.raises(InvalidParameterError):
            top_motifs_across_lengths({}, 0)
