"""Tests for cross-length motif ranking (Section 3 utilities)."""

import pytest

from repro.core.discords import Discord
from repro.core.ranking import (
    deduplicate_pairs,
    rank_motif_pairs,
    top_motifs_across_lengths,
    unified_ranking,
)
from repro.exceptions import InvalidParameterError
from repro.types import MotifPair, length_normalized


def pair(a, b, length, dist):
    return MotifPair.build(a, b, length, dist)


def discord(start, length, dist):
    return Discord(
        normalized_distance=length_normalized(dist, length),
        distance=dist,
        length=length,
        start=start,
    )


class TestRank:
    def test_sorted_by_normalized(self):
        pairs = [pair(0, 100, 16, 4.0), pair(0, 100, 64, 4.0)]
        ranked = rank_motif_pairs(pairs)
        assert ranked[0].length == 64  # same raw distance, longer wins

    def test_empty(self):
        assert rank_motif_pairs([]) == []


class TestDeduplicate:
    def test_collapses_shifted_rediscoveries(self):
        pairs = [
            pair(100, 300, 40, 1.0),
            pair(101, 301, 41, 1.2),  # same motif, one step longer
            pair(102, 302, 42, 1.3),
        ]
        assert len(deduplicate_pairs(pairs)) == 1

    def test_keeps_best_representative(self):
        pairs = [pair(100, 300, 40, 2.0), pair(101, 301, 41, 1.0)]
        kept = deduplicate_pairs(pairs)
        assert len(kept) == 1
        assert kept[0].distance == 1.0

    def test_distinct_motifs_survive(self):
        pairs = [pair(0, 300, 40, 1.0), pair(600, 900, 40, 1.1)]
        assert len(deduplicate_pairs(pairs)) == 2

    def test_crossed_duplicates_detected(self):
        pairs = [pair(100, 300, 40, 1.0), pair(300, 100, 40, 1.1)]
        assert len(deduplicate_pairs(pairs)) == 1

    def test_length_gap_limits_collapse(self):
        pairs = [pair(100, 300, 40, 1.0), pair(100, 300, 80, 7.0)]
        # with a tight gap the two lengths are treated as different motifs
        assert len(deduplicate_pairs(pairs, min_length_gap=10)) == 2
        assert len(deduplicate_pairs(pairs, min_length_gap=0)) == 1

    def test_negative_gap_rejected(self):
        with pytest.raises(InvalidParameterError):
            deduplicate_pairs([], min_length_gap=-1)


class TestTopAcrossLengths:
    def test_returns_k(self):
        pairs = {
            40: pair(0, 300, 40, 1.0),
            41: pair(600, 900, 41, 1.5),
            42: pair(1200, 1500, 42, 2.0),
        }
        top = top_motifs_across_lengths(pairs, 2)
        assert len(top) == 2
        assert top[0].distance == 1.0

    def test_dedup_toggle(self):
        pairs = {
            40: pair(100, 300, 40, 1.0),
            41: pair(101, 301, 41, 1.2),
        }
        assert len(top_motifs_across_lengths(pairs, 5, deduplicate=False)) == 2
        assert len(top_motifs_across_lengths(pairs, 5, deduplicate=True)) == 1

    def test_k_validation(self):
        with pytest.raises(InvalidParameterError):
            top_motifs_across_lengths({}, 0)


class TestUnifiedRanking:
    def test_interleaves_by_family_rank(self):
        motifs = [pair(0, 300, 16, 1.0), pair(600, 900, 24, 2.0)]
        discords = [discord(100, 16, 9.0), discord(400, 24, 8.0)]
        events = unified_ranking(motifs, discords)
        assert [(e.kind, e.rank) for e in events] == [
            ("motif", 1), ("discord", 1), ("motif", 2), ("discord", 2),
        ]
        # Best-first within each family on the normalized scale.
        assert events[0].normalized_distance < events[2].normalized_distance
        assert events[1].normalized_distance > events[3].normalized_distance

    def test_uneven_families_append_the_tail(self):
        motifs = [pair(0, 300, 16, 1.0)]
        discords = [discord(100, 16, 9.0), discord(400, 24, 8.0),
                    discord(700, 32, 7.0)]
        kinds = [e.kind for e in unified_ranking(motifs, discords)]
        assert kinds == ["motif", "discord", "discord", "discord"]

    def test_k_truncates(self):
        motifs = [pair(0, 300, 16, 1.0), pair(600, 900, 24, 2.0)]
        discords = [discord(100, 16, 9.0)]
        assert len(unified_ranking(motifs, discords, k=2)) == 2
        with pytest.raises(InvalidParameterError):
            unified_ranking(motifs, discords, k=0)

    def test_starts_carry_positions(self):
        events = unified_ranking(
            [pair(5, 50, 16, 1.0)], [discord(200, 16, 9.0)]
        )
        assert events[0].starts == (5, 50)
        assert events[1].starts == (200,)

    def test_empty_families(self):
        assert unified_ranking([], []) == []
        only_discords = unified_ranking([], [discord(0, 16, 3.0)])
        assert [e.kind for e in only_discords] == ["discord"]
