"""Tests for the MatrixProfile result object."""

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError, NotComputedError
from repro.matrixprofile import MatrixProfile, stomp


def make_mp(profile, index, length=10):
    return MatrixProfile(
        profile=np.asarray(profile, dtype=float),
        index=np.asarray(index, dtype=np.int64),
        length=length,
    )


class TestConstruction:
    def test_shape_mismatch(self):
        with pytest.raises(InvalidParameterError):
            make_mp([1.0, 2.0], [0])

    def test_bad_length(self):
        with pytest.raises(InvalidParameterError):
            make_mp([1.0], [0], length=1)

    def test_len(self):
        assert len(make_mp([1.0, 2.0, 3.0], [1, 0, 0])) == 3


class TestMotifPair:
    def test_picks_minimum(self):
        mp = make_mp([3.0, 1.0, 2.0], [2, 2, 1])
        pair = mp.motif_pair()
        assert {pair.a, pair.b} == {1, 2}
        assert pair.distance == 1.0

    def test_all_inf_raises(self):
        mp = make_mp([np.inf, np.inf], [-1, -1])
        with pytest.raises(NotComputedError):
            mp.motif_pair()

    def test_undefined_index_raises(self):
        mp = make_mp([1.0], [-1])
        with pytest.raises(NotComputedError):
            mp.motif_pair()

    def test_canonical_order(self):
        mp = make_mp([5.0, 1.0], [1, 0])
        pair = mp.motif_pair()
        assert pair.a <= pair.b


class TestTopKPairs:
    def test_non_overlapping(self, structured_series):
        mp = stomp(structured_series, 30)
        pairs = mp.top_k_pairs(4)
        assert 1 <= len(pairs) <= 4
        zone = mp.exclusion
        occupied = []
        for pair in pairs:
            for offset in (pair.a, pair.b):
                assert all(abs(offset - o) >= zone for o in occupied), (
                    "top-k pairs must not overlap previous pairs"
                )
            occupied.extend([pair.a, pair.b])

    def test_sorted_by_distance(self, structured_series):
        mp = stomp(structured_series, 30)
        pairs = mp.top_k_pairs(5)
        distances = [p.distance for p in pairs]
        assert distances == sorted(distances)

    def test_first_is_motif_pair(self, noise_series):
        mp = stomp(noise_series, 16)
        assert mp.top_k_pairs(1)[0].distance == pytest.approx(
            mp.motif_pair().distance
        )

    def test_k_validation(self, noise_series):
        mp = stomp(noise_series, 16)
        with pytest.raises(InvalidParameterError):
            mp.top_k_pairs(0)


class TestDiscords:
    def test_discord_is_profile_max(self, noise_series):
        mp = stomp(noise_series, 16)
        discord = mp.discords(1)[0]
        assert mp.profile[discord] == pytest.approx(np.max(mp.profile))

    def test_discords_respect_exclusion(self, noise_series):
        mp = stomp(noise_series, 16)
        discords = mp.discords(3)
        for i, a in enumerate(discords):
            for b in discords[i + 1 :]:
                assert abs(a - b) >= mp.exclusion

    def test_k_validation(self, noise_series):
        mp = stomp(noise_series, 16)
        with pytest.raises(InvalidParameterError):
            mp.discords(0)


def test_allclose(noise_series):
    a = stomp(noise_series, 16)
    b = stomp(noise_series, 16)
    c = stomp(noise_series, 17)
    assert a.allclose(b)
    assert not a.allclose(c)
